"""Shared fixtures.

Machines are expensive-ish to exercise (pipeline + PDN per run), so the
common ones are session-scoped; tests must not mutate them.  GA fixtures
are deliberately tiny — correctness of the machinery, not search
quality, is what unit tests check (the benchmarks cover search quality).
"""

from __future__ import annotations

import pytest

from repro.core import (GAParameters, RunConfig, Template, make_rng,
                        random_individual)
from repro.core.engine import WORKERS_ENV_VAR


@pytest.fixture(autouse=True)
def _serial_evaluation_marker(request, monkeypatch):
    """Honour the ``serial_evaluation`` marker.

    CI runs the whole suite under ``GEST_EVAL_WORKERS=2`` to prove the
    process-pool backend is behaviour-identical.  Tests that assert
    *in-process* plug-in state (call counters on test doubles, live
    screen stats) genuinely require the shared-state serial backend, so
    the marker pins them there by clearing the environment override.
    """
    if request.node.get_closest_marker("serial_evaluation"):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
from repro.core.instruction import InstructionLibrary, InstructionSpec
from repro.core.operand import ImmediateOperand, RegisterOperand
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.isa import ArmAssembler, X86Assembler, arm_library, arm_template


@pytest.fixture(scope="session")
def arm_lib():
    return arm_library()


@pytest.fixture(scope="session")
def arm_tmpl_text():
    return arm_template()


@pytest.fixture
def rng():
    return make_rng(1234)


@pytest.fixture(scope="session")
def arm_asm():
    return ArmAssembler()


@pytest.fixture(scope="session")
def x86_asm():
    return X86Assembler()


@pytest.fixture(scope="session")
def a15_machine():
    return SimulatedMachine("cortex_a15", seed=5, sim_cycles=600)


@pytest.fixture(scope="session")
def a7_machine():
    return SimulatedMachine("cortex_a7", seed=5, sim_cycles=600)


@pytest.fixture(scope="session")
def athlon_machine():
    return SimulatedMachine("athlon_x4", seed=5, sim_cycles=800)


@pytest.fixture
def target(a15_machine):
    t = SimulatedTarget(a15_machine)
    t.connect()
    return t


@pytest.fixture
def tiny_library():
    """A minimal 3-instruction library with known cardinalities."""
    operands = [
        RegisterOperand("dst", ["x1", "x2", "x3"]),
        RegisterOperand("src", ["x1", "x2", "x3", "x4"]),
        ImmediateOperand("imm", 0, 256, 8),
        RegisterOperand("base", ["x10"]),
    ]
    instructions = [
        InstructionSpec("ADD", ["dst", "src", "src"],
                        "add op1, op2, op3", "int_short"),
        InstructionSpec("LDR", ["dst", "base", "imm"],
                        "ldr op1, [op2, #op3]", "mem"),
        InstructionSpec("NOP", [], "nop", "nop"),
    ]
    return InstructionLibrary(operands, instructions)


@pytest.fixture
def tiny_template():
    return Template("mov x10, #4096\n.loop\nstart:\n#loop_code\n"
                    "subs x0, x0, #1\nbne start\n.endloop\n")


@pytest.fixture
def tiny_config(tiny_library, tiny_template):
    ga = GAParameters(population_size=6, individual_size=8,
                      mutation_rate=0.1, generations=3,
                      tournament_size=3, seed=99)
    return RunConfig(ga=ga, library=tiny_library,
                     template_text=tiny_template.text)


@pytest.fixture
def arm_individual(arm_lib, rng):
    return random_individual(arm_lib, 20, rng, uid=0)
