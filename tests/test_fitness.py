"""Unit tests for fitness functions (repro.fitness)."""

import pytest

from repro.core.errors import ConfigError, MeasurementError
from repro.core.individual import random_individual
from repro.core.instruction import ConcreteInstruction, InstructionSpec
from repro.core.individual import Individual
from repro.core.rng import make_rng
from repro.fitness import (DefaultFitness, DroopOverPowerFitness,
                           TemperatureSimplicityFitness, WeightedFitness)


def _individual_with_uniques(total, unique):
    """An individual with ``total`` instructions, ``unique`` distinct
    opcodes."""
    specs = [InstructionSpec(f"OP{i}", [], f"nop // {i}", "nop")
             for i in range(unique)]
    instrs = [ConcreteInstruction(specs[i % unique], ())
              for i in range(total)]
    return Individual(instrs)


class TestDefaultFitness:
    def test_uses_first_measurement(self):
        assert DefaultFitness().get_fitness([3.5, 9.9], None) == 3.5

    def test_empty_measurements_rejected(self):
        with pytest.raises(MeasurementError):
            DefaultFitness().get_fitness([], None)

    def test_original_api_alias(self):
        """GeST's method name is getFitness."""
        assert DefaultFitness().getFitness([2.0], None) == 2.0

    def test_returns_float(self):
        value = DefaultFitness().get_fitness([7], None)
        assert isinstance(value, float)


class TestTemperatureSimplicityFitness:
    @pytest.fixture
    def fitness(self):
        return TemperatureSimplicityFitness(idle_temperature_c=40.0,
                                            max_temperature_c=90.0)

    def test_paper_simplicity_examples(self, fitness):
        """Paper: 25 unique of 50 -> 0.5, 15 unique of 50 -> 0.7
        (before the 0.5 weight)."""
        assert fitness.simplicity_score(
            _individual_with_uniques(50, 25)) == pytest.approx(0.5)
        assert fitness.simplicity_score(
            _individual_with_uniques(50, 15)) == pytest.approx(0.7)

    def test_temperature_score_normalisation(self, fitness):
        assert fitness.temperature_score(40.0) == pytest.approx(0.0)
        assert fitness.temperature_score(90.0) == pytest.approx(1.0)
        assert fitness.temperature_score(65.0) == pytest.approx(0.5)

    def test_temperature_score_clamped(self, fitness):
        assert fitness.temperature_score(20.0) == 0.0
        assert fitness.temperature_score(150.0) == 1.0

    def test_equation1_equal_weights(self, fitness):
        ind = _individual_with_uniques(50, 25)
        value = fitness.get_fitness([65.0], ind)
        assert value == pytest.approx(0.5 * 0.5 + 0.5 * 0.5)

    def test_fitness_bounded_zero_one(self, fitness):
        ind = _individual_with_uniques(50, 1)
        assert 0.0 <= fitness.get_fitness([300.0], ind) <= 1.0

    def test_rewards_fewer_uniques_at_same_temperature(self, fitness):
        simple = _individual_with_uniques(50, 10)
        complex_ = _individual_with_uniques(50, 40)
        assert fitness.get_fitness([70.0], simple) > \
            fitness.get_fitness([70.0], complex_)

    def test_rewards_temperature_at_same_simplicity(self, fitness):
        ind = _individual_with_uniques(50, 20)
        assert fitness.get_fitness([85.0], ind) > \
            fitness.get_fitness([55.0], ind)

    def test_custom_weights(self):
        fitness = TemperatureSimplicityFitness(
            40.0, 90.0, temperature_weight=1.0, simplicity_weight=0.0)
        ind = _individual_with_uniques(50, 1)
        assert fitness.get_fitness([90.0], ind) == pytest.approx(1.0)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ConfigError):
            TemperatureSimplicityFitness(90.0, 40.0)

    def test_negative_weights_rejected(self):
        with pytest.raises(ConfigError):
            TemperatureSimplicityFitness(40.0, 90.0,
                                         temperature_weight=-1.0)

    def test_empty_individual_simplicity_zero(self, fitness):
        assert fitness.simplicity_score(Individual([])) == 0.0

    def test_empty_measurements_rejected(self, fitness):
        with pytest.raises(MeasurementError):
            fitness.get_fitness([], _individual_with_uniques(10, 2))


class TestWeightedFitness:
    def test_single_term(self):
        fitness = WeightedFitness([(0, 1.0, 2.0)])
        assert fitness.get_fitness([8.0], None) == pytest.approx(4.0)

    def test_multi_term_signed(self):
        fitness = WeightedFitness([(0, 1.0, 1.0), (1, -0.5, 2.0)])
        assert fitness.get_fitness([3.0, 4.0], None) == \
            pytest.approx(3.0 - 1.0)

    def test_missing_measurement_index(self):
        fitness = WeightedFitness([(3, 1.0, 1.0)])
        with pytest.raises(MeasurementError):
            fitness.get_fitness([1.0], None)

    def test_empty_terms_rejected(self):
        with pytest.raises(ConfigError):
            WeightedFitness([])

    def test_zero_normaliser_rejected(self):
        with pytest.raises(ConfigError):
            WeightedFitness([(0, 1.0, 0.0)])

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigError):
            WeightedFitness([(-1, 1.0, 1.0)])


class TestDroopOverPowerFitness:
    def test_prefers_droop_and_penalises_power(self):
        fitness = DroopOverPowerFitness(droop_normaliser_v=0.2,
                                        power_normaliser_w=100.0)
        # measurements: [pkpk, droop, v_min, v_max, avg_power]
        noisy_cool = [0.3, 0.2, 1.0, 1.3, 50.0]
        noisy_hot = [0.3, 0.2, 1.0, 1.3, 100.0]
        quiet = [0.05, 0.02, 1.2, 1.25, 50.0]
        assert fitness.get_fitness(noisy_cool, None) > \
            fitness.get_fitness(noisy_hot, None)
        assert fitness.get_fitness(noisy_hot, None) > \
            fitness.get_fitness(quiet, None)

    def test_bad_normalisers_rejected(self):
        with pytest.raises(ConfigError):
            DroopOverPowerFitness(0.0, 1.0)
        with pytest.raises(ConfigError):
            DroopOverPowerFitness(1.0, 1.0, power_penalty=-1.0)
