"""Final coverage batch: small distinct behaviours not exercised by the
focused unit files."""

import numpy as np
import pytest

from repro.analysis import current_spectrum
from repro.cli import build_parser
from repro.core.config import GAParameters, RunConfig, config_to_xml, \
    parse_config_text
from repro.core.individual import random_individual
from repro.core.output import OutputRecorder, individual_filename
from repro.core.rng import make_rng
from repro.cpu import PDNModel, PipelineSimulator, ThermalModel
from repro.cpu.microarch import ThermalParams, microarch_for
from repro.isa import ArmAssembler, arm_library, arm_template
from repro.workloads import workload, workload_names


class TestConfigRoundTripDetails:
    def test_seed_round_trips(self, tmp_path):
        (tmp_path / "t.s").write_text("#loop_code\n")
        ga = GAParameters(seed=777)
        config = RunConfig(ga=ga, library=arm_library(),
                           template_text="#loop_code\n")
        xml = config_to_xml(config)
        (tmp_path / "template.s").write_text("#loop_code\n")
        reparsed = parse_config_text(xml, base_dir=tmp_path)
        assert reparsed.ga.seed == 777

    def test_mutation_rate_precision_preserved(self, tmp_path):
        (tmp_path / "template.s").write_text("#loop_code\n")
        ga = GAParameters(mutation_rate=0.0333)
        config = RunConfig(ga=ga, library=arm_library(),
                           template_text="#loop_code\n")
        reparsed = parse_config_text(config_to_xml(config),
                                     base_dir=tmp_path)
        assert reparsed.ga.mutation_rate == 0.0333


class TestOutputNaming:
    def test_filename_includes_every_measurement(self, tiny_library):
        ind = random_individual(tiny_library, 4, make_rng(0), uid=2)
        ind.generation = 3
        ind.record_evaluation([1.0, 2.0, 3.0, 4.0], 1.0)
        assert individual_filename(ind) == "3_2_1.00_2.00_3.00_4.00.txt"

    def test_fittest_file_ignores_malformed_names(self, tmp_path):
        recorder = OutputRecorder(tmp_path)
        (recorder.individuals_dir / "notes.txt").write_text("x")
        (recorder.individuals_dir / "0_1_9.00.txt").write_text("best")
        best = recorder.fittest_individual_file()
        assert best is not None and best.read_text() == "best"


class TestModelEdges:
    def test_steady_state_ipc_handles_full_warmup(self):
        program = ArmAssembler().assemble("nop\n")
        sim = PipelineSimulator(microarch_for("cortex_a7"))
        # warmup_fraction close to 1 leaves at least one cycle.
        value = sim.steady_state_ipc(program, max_cycles=200,
                                     warmup_fraction=0.99)
        assert value >= 0.0

    def test_voltage_trace_steady_excludes_warmup(self):
        model = PDNModel(microarch_for("athlon_x4").pdn, 3.1e9)
        trace = model.simulate(np.full(1000, 5.0), 1.35,
                               warmup_fraction=0.5)
        assert len(trace.steady) == len(trace.voltage) - \
            trace.warmup_samples
        assert trace.warmup_samples == 500

    def test_thermal_sensor_without_quantisation(self):
        model = ThermalModel(ThermalParams(25.0, 2.0, 1.0),
                             sensor_step_c=0.0)
        assert model.sensor_reading_c(10.0, 100.0) == pytest.approx(
            model.temperature_c(10.0, 100.0))

    def test_spectrum_empty_band_is_zero(self):
        spectrum = current_spectrum(
            10.0 + np.sin(np.arange(512)), 1e9, warmup_fraction=0.0)
        assert spectrum.amplitude_near(1e18, 1.0) == 0.0


class TestCliParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        actions = {a.dest: a for a in parser._actions}
        sub = actions["command"]
        assert set(sub.choices) == {"run", "measure", "lint", "check",
                                    "analyze", "selfcheck", "stats",
                                    "presets", "serve", "submit",
                                    "runs", "tail"}

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "c.xml"])
        assert args.platform == "cortex_a15"
        assert args.generations is None
        assert args.quiet is False

    def test_measure_defaults(self):
        args = build_parser().parse_args(["measure", "x.s"])
        assert args.cores is None
        assert args.duration == 5.0


class TestWorkloadMetadata:
    def test_every_workload_has_a_description(self):
        for name in workload_names():
            w = workload(name, "arm")
            assert len(w.description) > 10
            assert w.name == name
            assert w.isa == "arm"

    def test_workload_sources_use_stock_template(self):
        w = workload("coremark", "arm")
        # The stock template's loop-edge and base-register init.
        assert "subs x0, x0, #1" in w.source
        assert "mov x10, #4096" in w.source

    def test_stock_template_iterations_parameter(self):
        text = arm_template(iterations=123)
        assert "mov x0, #123" in text
