"""Unit tests for the power model (repro.cpu.power)."""

import numpy as np
import pytest

from repro.cpu.microarch import microarch_for
from repro.cpu.pipeline import PipelineSimulator
from repro.cpu.power import PowerModel, value_toggle_activity
from repro.isa import ArmAssembler


@pytest.fixture(scope="module")
def a15():
    return microarch_for("cortex_a15")


@pytest.fixture(scope="module")
def model(a15):
    return PowerModel(a15)


def _program(source):
    return ArmAssembler().assemble(source)


def _trace(program, a15, cycles=300):
    return PipelineSimulator(a15).execute(program, max_cycles=cycles)


class TestToggleActivity:
    def test_checkerboard_is_maximal(self):
        assert value_toggle_activity(0xAAAAAAAAAAAAAAAA) == 1.0
        assert value_toggle_activity(0x5555555555555555) == 1.0

    def test_constant_words_are_zero(self):
        assert value_toggle_activity(0) == 0.0
        assert value_toggle_activity(2**64 - 1) == 0.0

    def test_single_bit_is_small(self):
        assert value_toggle_activity(1) == pytest.approx(1 / 63)

    def test_random_word_is_middling(self):
        import random
        rng = random.Random(5)
        values = [value_toggle_activity(rng.getrandbits(64))
                  for _ in range(100)]
        assert 0.35 < sum(values) / len(values) < 0.65

    def test_truncates_to_64_bits(self):
        assert value_toggle_activity(2**70) == value_toggle_activity(0)

    def test_bounded(self):
        for v in (0, 1, 0xAAAA, 2**63, 2**64 - 1):
            assert 0.0 <= value_toggle_activity(v) <= 1.0


class TestSlotActivities:
    def test_checkerboard_init_propagates(self, a15, model):
        program = _program(
            "mov x1, #0xAAAAAAAAAAAAAAAA\nmov x2, #0x5555555555555555\n"
            ".loop\nadd x3, x1, x2\n.endloop\n")
        activities = model.slot_activities(program)
        assert activities[0] == pytest.approx(1.0)

    def test_zero_init_propagates(self, a15, model):
        program = _program(
            "mov x1, #0\nmov x2, #0\n.loop\nadd x3, x1, x2\n.endloop\n")
        assert model.slot_activities(program)[0] == pytest.approx(0.0)

    def test_loads_import_memory_activity(self, a15, model):
        program = _program(".loop\nldr x7, [x10, #8]\n.endloop\n")
        assert model.slot_activities(program)[0] == \
            pytest.approx(model.memory_activity)

    def test_uninitialised_registers_use_default(self, a15, model):
        program = _program(".loop\nadd x3, x4, x5\n.endloop\n")
        assert model.slot_activities(program)[0] == \
            pytest.approx(model.default_activity)

    def test_mixed_sources_average(self, a15, model):
        program = _program(
            "mov x1, #0xAAAAAAAAAAAAAAAA\nmov x2, #0\n"
            ".loop\nadd x3, x1, x2\n.endloop\n")
        assert model.slot_activities(program)[0] == pytest.approx(0.5)


class TestSlotEnergies:
    def test_checkerboard_beats_zeros(self, a15, model):
        """The paper's register-init observation: checkerboard patterns
        raise power."""
        hot = _program("mov x1, #0xAAAAAAAAAAAAAAAA\n"
                       "mov x2, #0x5555555555555555\n"
                       ".loop\nadd x3, x1, x2\n.endloop\n")
        cold = _program("mov x1, #0\nmov x2, #0\n"
                        ".loop\nadd x3, x1, x2\n.endloop\n")
        assert model.slot_energies_pj(hot)[0] > \
            model.slot_energies_pj(cold)[0] * 1.5

    def test_simd_more_energetic_than_alu(self, a15, model):
        program = _program(".loop\nadd x1, x2, x3\nvmul v0, v1, v2\n"
                           ".endloop\n")
        energies = model.slot_energies_pj(program)
        assert energies[1] > energies[0] * 2

    def test_one_energy_per_slot(self, a15, model):
        program = _program(".loop\nnop\nnop\nnop\n.endloop\n")
        assert len(model.slot_energies_pj(program)) == 3


class TestTracesAndPower:
    def test_energy_trace_length_matches_cycles(self, a15, model):
        program = _program(".loop\nadd x1, x2, x3\n.endloop\n")
        trace = _trace(program, a15, cycles=120)
        energy = model.energy_trace_pj(program, trace)
        assert len(energy) == 120

    def test_energy_includes_base_every_cycle(self, a15, model):
        program = _program(".loop\nsdiv x1, x1, x2\n.endloop\n")
        trace = _trace(program, a15)
        energy = model.energy_trace_pj(program, trace)
        assert np.all(energy >= a15.base_cycle_pj)

    def test_busy_loop_burns_more_than_nops(self, a15, model):
        busy = _program(".loop\nvmul v0, v8, v9\nvmul v1, v10, v11\n"
                        "ldr x7, [x10, #8]\n.endloop\n")
        idle = _program(".loop\nnop\nnop\nnop\n.endloop\n")
        p_busy = model.core_power_w(busy, _trace(busy, a15))
        p_idle = model.core_power_w(idle, _trace(idle, a15))
        assert p_busy > p_idle * 1.5

    def test_core_power_includes_static(self, a15, model):
        program = _program(".loop\nnop\n.endloop\n")
        power = model.core_power_w(program, _trace(program, a15))
        assert power > model.static_power_w()

    def test_power_scales_with_voltage_squared(self, a15, model):
        program = _program(".loop\nadd x1, x2, x3\n.endloop\n")
        trace = _trace(program, a15)
        nominal = model.core_power_w(program, trace)
        reduced = model.core_power_w(program, trace,
                                     vdd=a15.vdd_nominal * 0.9)
        assert reduced == pytest.approx(nominal * 0.81, rel=0.01)

    def test_current_trace_is_power_over_voltage(self, a15, model):
        program = _program(".loop\nadd x1, x2, x3\n.endloop\n")
        trace = _trace(program, a15)
        current = model.current_trace_a(program, trace)
        assert len(current) == trace.cycles
        assert np.all(current > 0)

    def test_chip_power_scales_with_cores(self, a15, model):
        assert model.chip_power_w(1.0, 2) == pytest.approx(
            2.0 + a15.uncore_power_w)
        assert model.chip_power_w(1.0, 1) == pytest.approx(
            1.0 + a15.uncore_power_w)

    def test_chip_power_clamps_core_count(self, a15, model):
        assert model.chip_power_w(1.0, 99) == \
            model.chip_power_w(1.0, a15.core_count)
