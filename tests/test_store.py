"""Tests for the sqlite result store (repro.store).

Covers the schema/version contract, the submit → claim → finish run
lifecycle (the database *is* the service's queue), per-run data
round-trips (generations, winners, events, checkpoints), the shared
evaluation cache backend, and the concurrency satellite: multiple
processes hammering one store file must lose no updates and reproduce
exactly the fitness a serial run computes.
"""

import multiprocessing
import sqlite3
from pathlib import Path

import pytest

from repro.core.config import GAParameters, RunConfig
from repro.core.engine import GeneticEngine
from repro.core.errors import ConfigError
from repro.core.instruction import InstructionLibrary, InstructionSpec
from repro.core.operand import ImmediateOperand, RegisterOperand
from repro.evaluation import CachedEvaluation
from repro.fitness.default_fitness import DefaultFitness
from repro.store import (RunStore, SCHEMA_VERSION, SharedEvaluationCache,
                         StoreRecorder, open_store_connection)


def _tiny_config(seed=99):
    """Self-contained clone of the conftest tiny fixtures — must be
    importable by spawned child processes, so no pytest fixtures."""
    operands = [
        RegisterOperand("dst", ["x1", "x2", "x3"]),
        RegisterOperand("src", ["x1", "x2", "x3", "x4"]),
        ImmediateOperand("imm", 0, 256, 8),
        RegisterOperand("base", ["x10"]),
    ]
    instructions = [
        InstructionSpec("ADD", ["dst", "src", "src"],
                        "add op1, op2, op3", "int_short"),
        InstructionSpec("LDR", ["dst", "base", "imm"],
                        "ldr op1, [op2, #op3]", "mem"),
        InstructionSpec("NOP", [], "nop", "nop"),
    ]
    library = InstructionLibrary(operands, instructions)
    ga = GAParameters(population_size=6, individual_size=8,
                      mutation_rate=0.1, generations=3,
                      tournament_size=3, seed=seed)
    template = ("mov x10, #4096\n.loop\nstart:\n#loop_code\n"
                "subs x0, x0, #1\nbne start\n.endloop\n")
    return RunConfig(ga=ga, library=library, template_text=template)


class CountingMeasurement:
    def measure(self, source_text, individual):
        score = float(sum(1 for i in individual.instructions
                          if i.name == "LDR"))
        return [score, score + 1.0]

    def measure_repeated(self, source_text, individual):
        return self.measure(source_text, individual)


class TestSchema:
    def test_fresh_store_stamped(self, tmp_path):
        conn = open_store_connection(tmp_path / "gest.sqlite")
        version = conn.execute("PRAGMA user_version").fetchone()[0]
        assert version == SCHEMA_VERSION
        mode = conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        conn.close()

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "future.sqlite"
        conn = sqlite3.connect(str(path))
        conn.execute("PRAGMA user_version = 99")
        conn.commit()
        conn.close()
        with pytest.raises(ConfigError, match="schema version 99"):
            open_store_connection(path)

    def test_reopen_existing_store(self, tmp_path):
        path = tmp_path / "gest.sqlite"
        with RunStore(path) as store:
            store.submit_run(_tiny_config(), "cortex_a15")
        with RunStore(path) as store:
            assert len(store.list_runs()) == 1


class TestRunLifecycle:
    def test_submit_assigns_sequential_ids(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            first = store.submit_run(_tiny_config(), "cortex_a15")
            second = store.submit_run(_tiny_config(), "xgene2")
            assert first == "run-000001"
            assert second == "run-000002"

    def test_submit_claim_finish(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            run_id = store.submit_run(_tiny_config(), "cortex_a15",
                                      strategy="genetic", seed=7,
                                      generations=2)
            row = store.get_run(run_id)
            assert row.status == "queued"
            assert row.strategy == "genetic"
            assert row.seed == 7
            assert row.generations == 2
            assert row.submitted_at is not None

            assert store.claim_next() == run_id
            assert store.get_run(run_id).status == "running"
            assert store.claim_next() is None

            store.finish_run(run_id, best_uid=12, best_fitness=3.5)
            row = store.get_run(run_id)
            assert row.status == "finished"
            assert row.best_uid == 12
            assert row.best_fitness == 3.5
            assert row.finished_at is not None

    def test_claim_order_is_submission_order(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            ids = [store.submit_run(_tiny_config(), "cortex_a15")
                   for _ in range(3)]
            assert [store.claim_next() for _ in range(3)] == ids

    def test_fail_run_records_error(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            run_id = store.submit_run(_tiny_config(), "cortex_a15")
            store.claim_next()
            store.fail_run(run_id, "ValueError: boom")
            row = store.get_run(run_id)
            assert row.status == "failed"
            assert "boom" in row.error

    def test_requeue_interrupted(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            run_id = store.submit_run(_tiny_config(), "cortex_a15")
            store.claim_next()
            assert store.requeue_interrupted() == [run_id]
            assert store.get_run(run_id).status == "queued"
            assert store.requeue_interrupted() == []

    def test_cancel_queued_run_outright(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            run_id = store.submit_run(_tiny_config(), "cortex_a15")
            store.request_cancel(run_id)
            assert store.get_run(run_id).status == "cancelled"
            assert store.claim_next() is None

    def test_cancel_running_run_sets_flag_only(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            run_id = store.submit_run(_tiny_config(), "cortex_a15")
            store.claim_next()
            assert store.cancel_requested(run_id) is False
            store.request_cancel(run_id)
            assert store.get_run(run_id).status == "running"
            assert store.cancel_requested(run_id) is True

    def test_unknown_run_id_raises(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            with pytest.raises(ConfigError, match="no run"):
                store.get_run("run-999999")
            with pytest.raises(ConfigError, match="no run"):
                store.load_config("run-999999")

    def test_list_runs_filter_validates_status(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            store.submit_run(_tiny_config(), "cortex_a15")
            assert len(store.list_runs(status="queued")) == 1
            assert store.list_runs(status="finished") == []
            with pytest.raises(ConfigError, match="unknown run status"):
                store.list_runs(status="bogus")

    def test_config_round_trip(self, tmp_path):
        config = _tiny_config(seed=5)
        with RunStore(tmp_path / "s.sqlite") as store:
            run_id = store.submit_run(config, "cortex_a15")
            loaded = store.load_config(run_id)
        assert loaded.ga.seed == 5
        assert loaded.ga.population_size == config.ga.population_size
        assert loaded.template_text == config.template_text
        assert len(loaded.library.instructions) == \
            len(config.library.instructions)

    def test_submit_seed_override(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            run_id = store.submit_run(_tiny_config(seed=99), "cortex_a15",
                                      seed=123)
            assert store.get_run(run_id).seed == 123
            assert store.load_config(run_id).ga.seed == 123


class TestRunData:
    def test_generation_upsert_idempotent(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            store.record_generation("run-x", {"number": 0,
                                              "best_fitness": 1.0})
            store.record_generation("run-x", {"number": 0,
                                              "best_fitness": 2.0})
            store.record_generation("run-x", {"number": 1,
                                              "best_fitness": 3.0})
            records = store.generations("run-x")
            assert [r["number"] for r in records] == [0, 1]
            assert records[0]["best_fitness"] == 2.0

    def test_winner_round_trip(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            assert store.winner("run-x") is None
            store.record_winner("run-x", uid=4, generation=1, fitness=2.5,
                                measurements=[2.5, 3.0], source="nop\n")
            winner = store.winner("run-x")
            assert winner["uid"] == 4
            assert winner["measurements"] == [2.5, 3.0]
            assert winner["source"] == "nop\n"

    def test_event_log_sequences_per_run(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            assert store.record_event("run-a", "run_started", {}) == 0
            assert store.record_event("run-a", "generation_completed",
                                      {"number": 0}) == 1
            assert store.record_event("run-b", "run_started", {}) == 0
            events = store.events("run-a")
            assert [(seq, kind) for seq, kind, _ in events] == \
                [(0, "run_started"), (1, "generation_completed")]
            assert store.events("run-a", after_seq=0)[0][0] == 1

    def test_checkpoint_round_trip(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            assert store.load_checkpoint("run-x") is None
            store.save_checkpoint("run-x", 0, b"first")
            store.save_checkpoint("run-x", 1, b"second")
            generation, payload = store.load_checkpoint("run-x")
            assert generation == 1
            assert payload == b"second"


class TestStoreRecorder:
    def test_full_run_lands_in_store(self, tmp_path):
        config = _tiny_config()
        store_path = tmp_path / "s.sqlite"
        with RunStore(store_path) as store:
            recorder = StoreRecorder(store)
            engine = GeneticEngine(config, CountingMeasurement(),
                                   DefaultFitness(), recorder=recorder,
                                   checkpoint_path=tmp_path / "cp.bin")
            history = engine.run()

            records = store.generations(engine.run_id)
            assert [r["number"] for r in records] == [0, 1, 2]
            winner = store.winner(engine.run_id)
            assert winner["fitness"] == history.best_individual.fitness
            generation, payload = store.load_checkpoint(engine.run_id)
            assert generation == 2
            assert payload == (tmp_path / "cp.bin").read_bytes()
            kinds = [kind for _, kind, _ in store.events(engine.run_id)]
            assert kinds[0] == "run_started"
            assert kinds[-1] == "run_finished"
            assert kinds.count("generation_completed") == 3


class TestSharedEvaluationCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = SharedEvaluationCache(tmp_path / "s.sqlite", "fp")
        entry = CachedEvaluation((1.5, 2.0), compile_failed=False,
                                 screen_failed=True)
        cache.put("some source", entry)
        assert len(cache) == 1
        got = cache.get("some source")
        assert got == entry
        assert cache.get("other source") is None
        assert cache.hits == 1
        assert cache.misses == 1
        cache.close()

    def test_fingerprint_isolation(self, tmp_path):
        path = tmp_path / "s.sqlite"
        a = SharedEvaluationCache(path, "fp-a")
        b = SharedEvaluationCache(path, "fp-b")
        a.put("src", CachedEvaluation((1.0,)))
        assert b.get("src") is None
        assert len(b) == 0
        a.close()
        b.close()

    def test_iter_entries_bulk_read(self, tmp_path):
        path = tmp_path / "s.sqlite"
        cache = SharedEvaluationCache(path, "fp")
        sources = ["src a", "src b", "src c"]
        for index, source in enumerate(sources):
            cache.put(source, CachedEvaluation(
                (float(index),), compile_failed=index == 2))
        other = SharedEvaluationCache(path, "fp-other")
        other.put("src a", CachedEvaluation((99.0,)))

        entries = dict(cache.iter_entries())
        # every entry of this fingerprint, none of the other's
        assert len(entries) == 3
        for index, source in enumerate(sources):
            got = entries[cache.key(source)]
            assert got.measurements == (float(index),)
            assert got.compile_failed is (index == 2)
        # keys come back sorted (deterministic snapshot order)
        assert [k for k, _ in cache.iter_entries()] == \
            sorted(entries)
        # a bulk read is not a lookup: hit/miss counters untouched
        assert cache.hits == 0 and cache.misses == 0
        cache.close()
        other.close()

    def test_first_writer_wins(self, tmp_path):
        path = tmp_path / "s.sqlite"
        a = SharedEvaluationCache(path, "fp", run_id="run-a")
        b = SharedEvaluationCache(path, "fp", run_id="run-b")
        a.put("src", CachedEvaluation((1.0,)))
        b.put("src", CachedEvaluation((1.0,)))
        assert len(a) == 1
        assert b.get("src").measurements == (1.0,)
        a.close()
        b.close()

    def test_activity_flushed_per_run(self, tmp_path):
        path = tmp_path / "s.sqlite"
        cache = SharedEvaluationCache(path, "fp", run_id="run-000001")
        cache.put("src", CachedEvaluation((1.0,)))
        cache.get("src")
        cache.get("missing")
        cache.flush_activity()
        cache.get("src")
        cache.close()  # flushes only the post-flush delta
        with RunStore(path) as store:
            assert store.cache_activity("run-000001") == (2, 1)
            assert store.cache_activity("run-999999") == (0, 0)

    def test_json_persistence_refused(self, tmp_path):
        cache = SharedEvaluationCache(tmp_path / "s.sqlite", "fp")
        with pytest.raises(ConfigError, match="database"):
            cache.save(tmp_path / "cache.json")
        with pytest.raises(ConfigError, match="database"):
            SharedEvaluationCache.load(tmp_path / "cache.json")


def _hammer_worker(store_path, worker, count, out_path):
    """Child process: write and read back `count` shared entries."""
    cache = SharedEvaluationCache(store_path, "fp",
                                  run_id=f"run-{worker:06d}")
    for i in range(count):
        cache.put(f"source {i}", CachedEvaluation((float(i), float(i) + 1)))
    bad = 0
    for i in range(count):
        entry = cache.get(f"source {i}")
        if entry is None or entry.measurements != (float(i), float(i) + 1):
            bad += 1
    cache.close()
    Path(out_path).write_text(str(bad))


def _engine_worker(store_path, run_id, out_path):
    """Child process: full tiny GA run against the shared cache."""
    cache = SharedEvaluationCache(store_path, "fp", run_id=run_id)
    engine = GeneticEngine(_tiny_config(), CountingMeasurement(),
                           DefaultFitness(), cache=cache)
    history = engine.run()
    cache.close()
    Path(out_path).write_text(repr(history.best_individual.fitness))


class TestConcurrentAccess:
    """The satellite: processes hammering one sqlite cache file."""

    def test_two_processes_no_lost_updates(self, tmp_path):
        store_path = tmp_path / "s.sqlite"
        count = 40
        ctx = multiprocessing.get_context("spawn")
        outs = [tmp_path / f"out-{i}" for i in range(2)]
        procs = [ctx.Process(target=_hammer_worker,
                             args=(store_path, i, count, outs[i]))
                 for i in range(2)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        assert [out.read_text() for out in outs] == ["0", "0"]
        cache = SharedEvaluationCache(store_path, "fp")
        assert len(cache) == count  # every entry exactly once
        cache.close()

    def test_concurrent_runs_match_serial_fitness(self, tmp_path):
        serial = GeneticEngine(_tiny_config(), CountingMeasurement(),
                               DefaultFitness()).run()
        expected = serial.best_individual.fitness

        store_path = tmp_path / "s.sqlite"
        ctx = multiprocessing.get_context("spawn")
        outs = [tmp_path / f"fit-{i}" for i in range(2)]
        procs = [ctx.Process(target=_engine_worker,
                             args=(store_path, f"run-{i:06d}", outs[i]))
                 for i in range(2)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        assert [out.read_text() for out in outs] == [repr(expected)] * 2
