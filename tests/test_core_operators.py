"""Unit tests for GA operators (repro.core.operators)."""

import pytest

from repro.core.errors import ConfigError
from repro.core.individual import Individual, random_individual
from repro.core.operators import (CROSSOVER_OPERATORS, mutate,
                                  one_point_crossover, tournament_select,
                                  uniform_crossover)
from repro.core.rng import make_rng


def _evaluated(library, rng, fitness, size=10):
    ind = random_individual(library, size, rng)
    ind.record_evaluation([fitness], fitness)
    return ind


class TestTournamentSelect:
    def test_returns_member_of_population(self, tiny_library, rng):
        population = [_evaluated(tiny_library, rng, float(i))
                      for i in range(10)]
        for _ in range(20):
            assert tournament_select(population, rng, 5) in population

    def test_oversized_tournament_clamped_with_warning(self, tiny_library,
                                                       rng):
        import warnings

        from repro.core import operators as ops

        population = [_evaluated(tiny_library, rng, float(i))
                      for i in range(6)]
        ops._CLAMP_WARNED.clear()
        with pytest.warns(RuntimeWarning) as caught:
            winner = tournament_select(population, rng, 200)
        assert winner in population
        # The warning names both values, and fires once, not per call.
        message = str(caught[0].message)
        assert "200" in message and "6" in message
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            tournament_select(population, rng, 200)

    def test_clamped_tournament_draws_population_size(self, tiny_library):
        # A clamped tournament behaves exactly like one sized to the
        # population: same draws from the same stream.
        population = [_evaluated(tiny_library, make_rng(0), float(i))
                      for i in range(6)]
        a = tournament_select(population, make_rng(7), 200)
        b = tournament_select(population, make_rng(7), 6)
        assert a is b

    def test_selection_pressure_favours_fit(self, tiny_library):
        rng = make_rng(3)
        population = [_evaluated(tiny_library, rng, float(i))
                      for i in range(20)]
        wins = [tournament_select(population, rng, 5).fitness
                for _ in range(300)]
        assert sum(wins) / len(wins) > 14.0   # uniform mean would be 9.5

    def test_tournament_size_one_is_uniform(self, tiny_library):
        rng = make_rng(3)
        population = [_evaluated(tiny_library, rng, float(i))
                      for i in range(10)]
        picks = {tournament_select(population, rng, 1).fitness
                 for _ in range(300)}
        assert len(picks) >= 8   # nearly all individuals get picked

    def test_empty_population_rejected(self, rng):
        with pytest.raises(ConfigError):
            tournament_select([], rng, 5)

    def test_unevaluated_population_rejected(self, tiny_library, rng):
        population = [random_individual(tiny_library, 5, rng)
                      for _ in range(5)]
        with pytest.raises(ConfigError):
            tournament_select(population, rng, 5)

    def test_bad_tournament_size(self, tiny_library, rng):
        population = [_evaluated(tiny_library, rng, 1.0)]
        with pytest.raises(ConfigError):
            tournament_select(population, rng, 0)


class TestOnePointCrossover:
    def test_children_have_parent_length(self, tiny_library, rng):
        p1 = _evaluated(tiny_library, rng, 1.0, size=12)
        p2 = _evaluated(tiny_library, rng, 2.0, size=12)
        c1, c2 = one_point_crossover(p1, p2, rng)
        assert len(c1) == len(c2) == 12

    def test_children_swap_halves(self, tiny_library, rng):
        p1 = _evaluated(tiny_library, rng, 1.0, size=10)
        p2 = _evaluated(tiny_library, rng, 2.0, size=10)
        c1, c2 = one_point_crossover(p1, p2, rng)
        # Find the cut: c1 matches p1 up to it, p2 after it.
        for cut in range(1, 10):
            if (list(c1[:cut]) == list(p1.instructions[:cut]) and
                    list(c1[cut:]) == list(p2.instructions[cut:])):
                assert list(c2[:cut]) == list(p2.instructions[:cut])
                assert list(c2[cut:]) == list(p1.instructions[cut:])
                return
        pytest.fail("no valid one-point cut found")

    def test_every_gene_comes_from_a_parent(self, tiny_library, rng):
        p1 = _evaluated(tiny_library, rng, 1.0, size=15)
        p2 = _evaluated(tiny_library, rng, 2.0, size=15)
        c1, _ = one_point_crossover(p1, p2, rng)
        pool = set(p1.instructions) | set(p2.instructions)
        assert set(c1) <= pool

    def test_single_instruction_parents(self, tiny_library, rng):
        p1 = _evaluated(tiny_library, rng, 1.0, size=1)
        p2 = _evaluated(tiny_library, rng, 2.0, size=1)
        c1, c2 = one_point_crossover(p1, p2, rng)
        assert len(c1) == len(c2) == 1

    def test_length_mismatch_rejected(self, tiny_library, rng):
        p1 = _evaluated(tiny_library, rng, 1.0, size=5)
        p2 = _evaluated(tiny_library, rng, 2.0, size=6)
        with pytest.raises(ConfigError):
            one_point_crossover(p1, p2, rng)

    def test_preserves_contiguous_runs(self, tiny_library, rng):
        """One-point keeps instruction order within each inherited
        half — the property the paper prefers it for."""
        p1 = _evaluated(tiny_library, rng, 1.0, size=20)
        p2 = _evaluated(tiny_library, rng, 2.0, size=20)
        c1, _ = one_point_crossover(p1, p2, rng)
        # c1 must be expressible as prefix-of-p1 + suffix-of-p2.
        matches = [cut for cut in range(1, 20)
                   if list(c1[:cut]) == list(p1.instructions[:cut])
                   and list(c1[cut:]) == list(p2.instructions[cut:])]
        assert matches


class TestUniformCrossover:
    def test_children_have_parent_length(self, tiny_library, rng):
        p1 = _evaluated(tiny_library, rng, 1.0, size=14)
        p2 = _evaluated(tiny_library, rng, 2.0, size=14)
        c1, c2 = uniform_crossover(p1, p2, rng)
        assert len(c1) == len(c2) == 14

    def test_slots_complementary(self, tiny_library, rng):
        p1 = _evaluated(tiny_library, rng, 1.0, size=14)
        p2 = _evaluated(tiny_library, rng, 2.0, size=14)
        c1, c2 = uniform_crossover(p1, p2, rng)
        for slot in range(14):
            pair = {c1[slot], c2[slot]}
            assert pair == {p1.instructions[slot], p2.instructions[slot]}

    def test_mixes_both_parents(self, tiny_library):
        rng = make_rng(11)
        p1 = _evaluated(tiny_library, rng, 1.0, size=30)
        p2 = _evaluated(tiny_library, rng, 2.0, size=30)
        c1, _ = uniform_crossover(p1, p2, rng)
        from_p1 = sum(1 for s in range(30)
                      if c1[s] is p1.instructions[s])
        assert 3 < from_p1 < 27   # not a pure copy of either parent

    def test_length_mismatch_rejected(self, tiny_library, rng):
        p1 = _evaluated(tiny_library, rng, 1.0, size=5)
        p2 = _evaluated(tiny_library, rng, 2.0, size=7)
        with pytest.raises(ConfigError):
            uniform_crossover(p1, p2, rng)

    def test_registry_contains_both(self):
        assert set(CROSSOVER_OPERATORS) == {"one_point", "uniform"}


class TestMutate:
    def test_zero_rate_is_identity(self, tiny_library, rng):
        genome = list(random_individual(tiny_library, 20, rng).instructions)
        assert mutate(genome, tiny_library, rng, 0.0) == genome

    def test_rate_one_mutates_probabilistically_everything(self,
                                                           tiny_library):
        rng = make_rng(2)
        genome = list(random_individual(tiny_library, 50, rng).instructions)
        mutated = mutate(genome, tiny_library, rng, 1.0,
                         operand_mutation_share=0.0)
        # Whole-instruction mutation resamples every slot; identical
        # re-draws are possible but rare across 50 slots.
        changed = sum(1 for a, b in zip(genome, mutated) if a != b)
        assert changed > 25

    def test_expected_mutation_count_near_rate(self, tiny_library):
        """2% at 50 instructions ≈ 1 mutation per individual
        (paper's rule of thumb)."""
        rng = make_rng(4)
        total_changed = 0
        trials = 200
        for _ in range(trials):
            genome = list(random_individual(tiny_library, 50,
                                            rng).instructions)
            mutated = mutate(genome, tiny_library, rng, 0.02,
                             operand_mutation_share=0.0)
            total_changed += sum(1 for a, b in zip(genome, mutated)
                                 if a != b)
        mean = total_changed / trials
        assert 0.5 < mean < 1.6

    def test_operand_mutation_keeps_opcode(self, tiny_library):
        rng = make_rng(6)
        genome = list(random_individual(tiny_library, 40, rng).instructions)
        mutated = mutate(genome, tiny_library, rng, 1.0,
                         operand_mutation_share=1.0)
        for before, after in zip(genome, mutated):
            # Operand-less instructions fall back to whole-instruction
            # mutation; all others keep their opcode.
            if before.spec.num_operands > 0:
                assert after.name == before.name

    def test_returns_new_list(self, tiny_library, rng):
        genome = list(random_individual(tiny_library, 10, rng).instructions)
        mutated = mutate(genome, tiny_library, rng, 0.5)
        assert mutated is not genome

    def test_bad_rate_rejected(self, tiny_library, rng):
        genome = list(random_individual(tiny_library, 5, rng).instructions)
        with pytest.raises(ConfigError):
            mutate(genome, tiny_library, rng, 1.5)
        with pytest.raises(ConfigError):
            mutate(genome, tiny_library, rng, -0.1)

    def test_bad_share_rejected(self, tiny_library, rng):
        genome = list(random_individual(tiny_library, 5, rng).instructions)
        with pytest.raises(ConfigError):
            mutate(genome, tiny_library, rng, 0.1,
                   operand_mutation_share=2.0)

    def test_mutated_operands_stay_in_pools(self, tiny_library):
        rng = make_rng(8)
        genome = list(random_individual(tiny_library, 30, rng).instructions)
        mutated = mutate(genome, tiny_library, rng, 1.0)
        for instr in mutated:
            if instr.name == "ADD":
                assert instr.values[0] in {"x1", "x2", "x3"}
                assert instr.values[1] in {"x1", "x2", "x3", "x4"}
            elif instr.name == "LDR":
                assert instr.values[1] == "x10"
                assert 0 <= int(instr.values[2]) <= 256
