"""Unit tests for the ARM-flavoured front-end (repro.isa.arm)."""

import pytest

from repro.core.errors import AssemblyError
from repro.isa.model import FLAGS_REGISTER, InstrClass


def _one(arm_asm, line):
    return arm_asm.assemble(line + "\n").loop[0]


class TestIntegerOps:
    def test_add_three_registers(self, arm_asm):
        d = _one(arm_asm, "add x1, x2, x3")
        assert d.iclass is InstrClass.INT_SHORT
        assert d.group == "alu"
        assert d.reads == ("x2", "x3")
        assert d.writes == ("x1",)

    def test_add_immediate_form(self, arm_asm):
        d = _one(arm_asm, "add x1, x2, #16")
        assert d.reads == ("x2",)
        assert d.immediate == 16

    @pytest.mark.parametrize("opcode", ["sub", "and", "orr", "eor", "bic"])
    def test_alu_family(self, arm_asm, opcode):
        d = _one(arm_asm, f"{opcode} x4, x5, x6")
        assert d.iclass is InstrClass.INT_SHORT

    @pytest.mark.parametrize("opcode", ["lsl", "lsr", "asr", "ror"])
    def test_shift_family(self, arm_asm, opcode):
        d = _one(arm_asm, f"{opcode} x1, x2, #3")
        assert d.group == "shift"

    def test_mul_is_long_latency(self, arm_asm):
        d = _one(arm_asm, "mul x1, x2, x3")
        assert d.iclass is InstrClass.INT_LONG
        assert d.group == "mul"

    def test_mla_reads_three_sources(self, arm_asm):
        d = _one(arm_asm, "mla x1, x2, x3, x4")
        assert d.reads == ("x2", "x3", "x4")
        assert d.writes == ("x1",)

    @pytest.mark.parametrize("opcode", ["sdiv", "udiv"])
    def test_division(self, arm_asm, opcode):
        d = _one(arm_asm, f"{opcode} x1, x2, x3")
        assert d.group == "div"
        assert d.iclass is InstrClass.INT_LONG

    def test_subs_writes_flags(self, arm_asm):
        d = _one(arm_asm, "subs x0, x0, #1")
        assert FLAGS_REGISTER in d.writes
        assert "x0" in d.writes
        assert "x0" in d.reads

    def test_cmp_register(self, arm_asm):
        d = _one(arm_asm, "cmp x1, x2")
        assert d.writes == (FLAGS_REGISTER,)
        assert d.reads == ("x1", "x2")

    def test_cmp_immediate(self, arm_asm):
        d = _one(arm_asm, "cmp x1, #0")
        assert d.immediate == 0

    def test_mov_register(self, arm_asm):
        d = _one(arm_asm, "mov x1, x2")
        assert d.reads == ("x2",)

    def test_mov_hex_immediate(self, arm_asm):
        d = _one(arm_asm, "mov x1, #0xFF")
        assert d.immediate == 255

    def test_bad_register_rejected(self, arm_asm):
        with pytest.raises(AssemblyError):
            _one(arm_asm, "add x1, x99, x2")

    def test_wrong_arity_rejected(self, arm_asm):
        with pytest.raises(AssemblyError, match="expects 3"):
            _one(arm_asm, "add x1, x2")


class TestFloatSimd:
    @pytest.mark.parametrize("opcode,iclass", [
        ("fadd", InstrClass.FLOAT), ("fsub", InstrClass.FLOAT),
        ("fmul", InstrClass.FLOAT),
        ("vadd", InstrClass.SIMD), ("vmul", InstrClass.SIMD),
        ("veor", InstrClass.SIMD),
    ])
    def test_vector_three_operand(self, arm_asm, opcode, iclass):
        d = _one(arm_asm, f"{opcode} v1, v2, v3")
        assert d.iclass is iclass
        assert d.writes == ("v1",)

    def test_fma_reads_destination(self, arm_asm):
        """Fused multiply-accumulate also reads its accumulator."""
        d = _one(arm_asm, "fmla v1, v2, v3")
        assert set(d.reads) == {"v1", "v2", "v3"}
        assert d.group == "fma"

    def test_vfma_is_simd(self, arm_asm):
        d = _one(arm_asm, "vfma v1, v2, v3")
        assert d.iclass is InstrClass.SIMD

    def test_lane_qualified_register_accepted(self, arm_asm):
        d = _one(arm_asm, "vadd v1.4s, v2.4s, v3.4s")
        assert d.writes == ("v1",)

    def test_fdiv_group(self, arm_asm):
        d = _one(arm_asm, "fdiv v0, v1, v2")
        assert d.group == "fdiv"

    def test_int_register_in_vector_op_rejected(self, arm_asm):
        with pytest.raises(AssemblyError):
            _one(arm_asm, "fadd v1, x2, v3")


class TestMemory:
    def test_ldr_with_offset(self, arm_asm):
        d = _one(arm_asm, "ldr x7, [x10, #8]")
        assert d.iclass is InstrClass.MEM_LOAD
        assert d.mem_base == "x10"
        assert d.mem_offset == 8
        assert d.reads == ("x10",)
        assert d.writes == ("x7",)

    def test_ldr_no_offset(self, arm_asm):
        d = _one(arm_asm, "ldr x7, [x10]")
        assert d.mem_offset == 0

    def test_vector_ldr(self, arm_asm):
        d = _one(arm_asm, "ldr v2, [x10, #16]")
        assert d.writes == ("v2",)

    def test_str_reads_source_and_base(self, arm_asm):
        d = _one(arm_asm, "str x3, [x11, #24]")
        assert d.iclass is InstrClass.MEM_STORE
        assert set(d.reads) == {"x3", "x11"}
        assert d.writes == ()

    def test_ldp_two_destinations(self, arm_asm):
        d = _one(arm_asm, "ldp x7, x8, [x10, #0]")
        assert d.writes == ("x7", "x8")
        assert d.group == "load_pair"

    def test_ldp_same_destination_rejected(self, arm_asm):
        """ISA-incompatible operands produce compile failures (the
        paper's misconfiguration path)."""
        with pytest.raises(AssemblyError, match="differ"):
            _one(arm_asm, "ldp x7, x7, [x10, #0]")

    def test_stp(self, arm_asm):
        d = _one(arm_asm, "stp x1, x2, [x10, #8]")
        assert set(d.reads) == {"x1", "x2", "x10"}

    def test_bad_memory_operand(self, arm_asm):
        with pytest.raises(AssemblyError):
            _one(arm_asm, "ldr x7, x10")


class TestBranches:
    def test_unconditional_forward(self, arm_asm):
        program = arm_asm.assemble(".loop\nb 1f\n1:\nnop\n.endloop\n")
        d = program.loop[0]
        assert d.iclass is InstrClass.BRANCH
        assert d.reads == ()

    @pytest.mark.parametrize("opcode", ["bne", "beq", "bgt", "blt"])
    def test_conditional_reads_flags(self, arm_asm, opcode):
        program = arm_asm.assemble(
            f".loop\n1:\nnop\n{opcode} 1b\n.endloop\n")
        d = program.loop[1]
        assert d.reads == (FLAGS_REGISTER,)

    def test_cbnz_reads_register(self, arm_asm):
        program = arm_asm.assemble(".loop\ncbnz x3, 1f\n1:\nnop\n.endloop\n")
        d = program.loop[0]
        assert d.reads == ("x3",)
        assert d.branch_target == 1

    def test_nop(self, arm_asm):
        d = _one(arm_asm, "nop")
        assert d.iclass is InstrClass.NOP
        assert d.reads == () and d.writes == ()


class TestGaCatalogCompatibility:
    def test_every_catalog_instruction_assembles(self, arm_lib, arm_asm,
                                                 rng):
        """Every concrete form the GA can generate must be valid input
        for the target's toolchain."""
        for name in arm_lib.names:
            spec = arm_lib.spec(name)
            for _ in range(10):
                values = arm_lib.sample_values(spec, rng)
                text = spec.render(values)
                program = arm_asm.assemble(text)
                assert program.loop_length >= 1
