"""Unit tests for the cache hierarchy (repro.cpu.cache) and its
pipeline integration."""

import pytest

from repro.core.errors import ConfigError
from repro.cpu import (Cache, CacheConfig, MemoryHierarchy,
                       PipelineSimulator, SimulatedMachine)
from repro.cpu.microarch import microarch_for
from repro.isa import ArmAssembler


def _small_cache(size=1024, line=64, ways=2):
    return Cache(CacheConfig(name="t", size_bytes=size, line_bytes=line,
                             ways=ways, hit_latency=2, hit_energy_pj=10.0))


class TestCacheConfig:
    def test_sets_computed(self):
        config = CacheConfig("t", 32 * 1024, 64, 8, 4, 0.0)
        assert config.sets == 64

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig("t", 0, 64, 8, 4, 0.0)
        with pytest.raises(ConfigError):
            CacheConfig("t", 1000, 64, 8, 4, 0.0)   # not divisible
        with pytest.raises(ConfigError):
            CacheConfig("t", 1024, 48, 2, 4, 0.0)   # non-power-of-2 line


class TestCacheLru:
    def test_first_access_misses_then_hits(self):
        cache = _small_cache()
        assert not cache.lookup(0)
        assert cache.lookup(0)
        assert cache.lookup(63)        # same line
        assert not cache.lookup(64)    # next line

    def test_within_capacity_all_hit_on_second_pass(self):
        cache = _small_cache(size=1024, line=64, ways=2)   # 16 lines
        addresses = [i * 64 for i in range(16)]
        for a in addresses:
            cache.lookup(a)
        assert all(cache.lookup(a) for a in addresses)

    def test_capacity_misses_beyond_size(self):
        cache = _small_cache(size=1024, line=64, ways=2)
        addresses = [i * 64 for i in range(32)]   # 2x capacity
        for a in addresses:
            cache.lookup(a)
        # Streaming twice the capacity: second pass misses everything.
        assert not any(cache.lookup(a) for a in addresses[:16])

    def test_lru_eviction_order(self):
        # 2-way, keep hitting line A so line B gets evicted first.
        cache = _small_cache(size=256, line=64, ways=2)   # 2 sets
        sets = cache.config.sets
        a, b, c = 0, sets * 64, 2 * sets * 64   # all map to set 0
        cache.lookup(a)
        cache.lookup(b)
        cache.lookup(a)          # A is now MRU
        cache.lookup(c)          # evicts B
        assert cache.lookup(a)
        assert not cache.lookup(b)

    def test_conflict_misses_with_low_associativity(self):
        cache = _small_cache(size=256, line=64, ways=2)
        sets = cache.config.sets
        conflicting = [i * sets * 64 for i in range(3)]   # 3 lines, 2 ways
        for _ in range(3):
            for a in conflicting:
                cache.lookup(a)
        assert cache.stats.miss_rate > 0.9

    def test_stats(self):
        cache = _small_cache()
        cache.lookup(0)
        cache.lookup(0)
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_flush(self):
        cache = _small_cache()
        cache.lookup(0)
        cache.flush()
        assert cache.stats.accesses == 0
        assert not cache.lookup(0)


class TestMemoryHierarchy:
    def test_l1_hit_fast_and_free(self):
        hierarchy = MemoryHierarchy()
        hierarchy.access(0)
        result = hierarchy.access(0)
        assert result.level == "l1"
        assert result.energy_pj == 0.0
        assert result.latency == hierarchy.l1_config.hit_latency

    def test_miss_escalates_through_levels(self):
        hierarchy = MemoryHierarchy()
        first = hierarchy.access(0)
        assert first.level == "dram"
        assert first.energy_pj > hierarchy.l2_config.hit_energy_pj
        assert first.latency > 100

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = MemoryHierarchy()
        l1_lines = hierarchy.l1_config.size_bytes // 64
        # Touch twice the L1 capacity (fits in L2), then re-walk: L1
        # misses but L2 hits.
        addresses = [i * 64 for i in range(2 * l1_lines)]
        for a in addresses:
            hierarchy.access(a)
        result = hierarchy.access(addresses[0])
        assert result.level == "l2"
        assert result.energy_pj == hierarchy.l2_config.hit_energy_pj

    def test_summary_keys(self):
        hierarchy = MemoryHierarchy()
        hierarchy.access(0)
        summary = hierarchy.summary()
        assert {"l1_miss_rate", "l2_miss_rate", "llc_misses"} <= \
            set(summary)


class TestPipelineWithHierarchy:
    def _run(self, source, cycles=600):
        arch = microarch_for("xgene2")
        program = ArmAssembler().assemble(source)
        hierarchy = MemoryHierarchy()
        trace = PipelineSimulator(arch).execute(program, max_cycles=cycles,
                                                hierarchy=hierarchy)
        return trace, hierarchy

    def test_resident_loop_hits_l1(self):
        src = ("mov x10, #4096\n.loop\nldr x7, [x10, #0]\n"
               "ldr x8, [x10, #64]\n.endloop\n")
        trace, hierarchy = self._run(src)
        assert hierarchy.l1_miss_rate() < 0.05
        assert trace.cache_summary["l1_miss_rate"] < 0.05

    def test_streaming_loop_misses(self):
        src = ("mov x10, #4096\n.loop\nldr x7, [x10, #0]\n"
               "add x10, x10, #64\n.endloop\n")
        trace, hierarchy = self._run(src, cycles=1200)
        assert hierarchy.l1_miss_rate() > 0.9
        assert hierarchy.llc_misses() > 50

    def test_miss_latency_slows_dependent_code(self):
        # A loop that consumes its loads is slower when it streams.
        resident = ("mov x10, #4096\n.loop\nldr x7, [x10, #0]\n"
                    "add x1, x7, x2\n.endloop\n")
        streaming = ("mov x10, #4096\n.loop\nldr x7, [x10, #0]\n"
                     "add x1, x7, x2\nadd x10, x10, #8192\n.endloop\n")
        t_res, _ = self._run(resident)
        t_str, _ = self._run(streaming)
        loads_res = t_res.group_counts.get("load", 0)
        loads_str = t_str.group_counts.get("load", 0)
        assert loads_res > loads_str * 1.5

    def test_miss_energy_recorded(self):
        src = ("mov x10, #4096\n.loop\nldr x7, [x10, #0]\n"
               "add x10, x10, #4096\n.endloop\n")
        trace, _ = self._run(src)
        assert trace.extra_energy_per_cycle is not None
        assert sum(trace.extra_energy_per_cycle) > 0

    def test_no_hierarchy_no_extras(self):
        arch = microarch_for("xgene2")
        program = ArmAssembler().assemble(".loop\nldr x7, [x10, #0]\n"
                                          ".endloop\n")
        trace = PipelineSimulator(arch).execute(program, max_cycles=200)
        assert trace.extra_energy_per_cycle is None
        assert trace.cache_summary is None

    def test_wraparound_keeps_addresses_bounded(self):
        src = ("mov x10, #0\n.loop\nldr x7, [x10, #0]\n"
               "add x10, x10, #8192\n.endloop\n")
        trace, hierarchy = self._run(src, cycles=3000)
        # 16 MiB region / 8 KiB stride = 2048 distinct lines touched,
        # forever — miss traffic but no crash and no runaway state.
        assert hierarchy.llc_misses() > 0


class TestMachineWithHierarchy:
    def test_run_reports_cache_and_power_uplift(self):
        resident = (".loop\nldr x7, [x10, #0]\nadd x1, x2, x3\n.endloop\n")
        streaming = (".loop\nldr x7, [x10, #0]\nadd x10, x10, #4096\n"
                     ".endloop\n")
        machine = SimulatedMachine("xgene2", seed=1, sim_cycles=800,
                                   hierarchy=MemoryHierarchy())
        r_res = machine.run_source(resident)
        r_str = machine.run_source(streaming)
        assert r_res.cache["l1_miss_rate"] < 0.1
        assert r_str.cache["l1_miss_rate"] > 0.8
        # DRAM traffic burns measurable extra energy per instruction.
        epi_res = r_res.core_power_w / max(1, r_res.trace.ipc)
        epi_str = r_str.core_power_w / max(0.01, r_str.trace.ipc)
        assert epi_str > epi_res
