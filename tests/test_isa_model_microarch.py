"""Unit tests for the decoded-instruction model (repro.isa.model) and
microarchitecture lookup helpers (repro.cpu.microarch)."""

import pytest

from repro.core.errors import ConfigError
from repro.cpu.microarch import (MicroArch, PDNParams, ThermalParams,
                                 microarch_for)
from repro.isa.model import (DecodedInstruction, InstrClass, Program,
                             registers_named)


class TestInstrClass:
    def test_memory_classification(self):
        assert InstrClass.MEM_LOAD.is_memory
        assert InstrClass.MEM_STORE.is_memory
        assert not InstrClass.INT_SHORT.is_memory
        assert not InstrClass.BRANCH.is_memory

    @pytest.mark.parametrize("iclass,category", [
        (InstrClass.INT_SHORT, "ShortInt"),
        (InstrClass.INT_LONG, "LongInt"),
        (InstrClass.FLOAT, "Float/SIMD"),
        (InstrClass.SIMD, "Float/SIMD"),
        (InstrClass.MEM_LOAD, "Mem"),
        (InstrClass.MEM_STORE, "Mem"),
        (InstrClass.BRANCH, "Branch"),
        (InstrClass.NOP, "Nop"),
    ])
    def test_table_categories(self, iclass, category):
        assert iclass.table_category == category


class TestDecodedInstruction:
    def test_convenience_predicates(self):
        load = DecodedInstruction("ldr", InstrClass.MEM_LOAD)
        store = DecodedInstruction("str", InstrClass.MEM_STORE)
        branch = DecodedInstruction("b", InstrClass.BRANCH)
        assert load.is_load and not load.is_store
        assert store.is_store and not store.is_load
        assert branch.is_branch

    def test_defaults(self):
        instr = DecodedInstruction("nop", InstrClass.NOP)
        assert instr.reads == () and instr.writes == ()
        assert instr.immediate is None
        assert instr.branch_target is None
        assert not instr.backward


class TestProgram:
    def test_empty_program(self):
        program = Program(name="empty")
        assert program.loop_length == 0
        assert program.class_counts() == {}
        assert program.table_breakdown() == {}

    def test_registers_named(self):
        assert registers_named("x", 3) == ("x0", "x1", "x2")


class TestMicroArchHelpers:
    @pytest.fixture
    def arch(self):
        return microarch_for("cortex_a15")

    def test_latency_explicit_and_fallback(self, arch):
        assert arch.latency_of("div", InstrClass.INT_LONG) == 19
        # Unknown group falls back to the class default.
        assert arch.latency_of("exotic", InstrClass.INT_SHORT) == 1

    def test_epi_explicit_and_fallback(self, arch):
        assert arch.epi_of("vmul", InstrClass.SIMD) == 185.0
        assert arch.epi_of("exotic", InstrClass.SIMD) == 160.0

    def test_port_group_fallback(self, arch):
        assert arch.port_group_of("exotic", InstrClass.FLOAT) == "fp"

    def test_port_group_missing_port_errors(self):
        arch = MicroArch(name="broken", isa="arm", frequency_hz=1e9,
                         core_count=1, in_order=True, issue_width=1,
                         window_size=2, ports={"int": 1},
                         port_of={"weird": "gpu"})
        with pytest.raises(ConfigError, match="gpu"):
            arch.port_group_of("weird", InstrClass.INT_SHORT)

    def test_initiation_interval(self, arch):
        assert arch.initiation_interval("div", InstrClass.INT_LONG) == 19
        assert arch.initiation_interval("fma", InstrClass.SIMD) == 1

    def test_validate_catches_bad_configs(self):
        base = dict(name="bad", isa="arm", frequency_hz=1e9,
                    core_count=1, in_order=True, issue_width=2,
                    window_size=4, ports={"int": 1})
        with pytest.raises(ConfigError):
            MicroArch(**{**base, "issue_width": 0}).validate()
        with pytest.raises(ConfigError):
            MicroArch(**{**base, "window_size": 1}).validate()
        with pytest.raises(ConfigError):
            MicroArch(**{**base, "frequency_hz": 0}).validate()
        with pytest.raises(ConfigError):
            MicroArch(**{**base, "core_count": 0}).validate()
        with pytest.raises(ConfigError):
            MicroArch(**{**base, "ports": {}}).validate()

    def test_thermal_params_helpers(self):
        params = ThermalParams(25.0, 2.0, 4.0)
        assert params.steady_state_c(5.0) == 35.0
        assert params.transient_c(5.0, 1e9) == pytest.approx(35.0)

    def test_pdn_params_derived(self):
        params = PDNParams(1e-3, 1e-11, 1e-7)
        assert params.resonance_hz > 0
        assert params.q_factor > 0

    def test_xgene_noc_configured(self):
        assert microarch_for("xgene2").noc_epi_pj > 0
        assert microarch_for("cortex_a15").noc_epi_pj == 0.0
