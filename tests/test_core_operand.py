"""Unit tests for operand definitions (repro.core.operand)."""

import pytest

from repro.core.errors import ConfigError
from repro.core.operand import (ImmediateOperand, LabelOperand,
                                RegisterOperand)
from repro.core.rng import make_rng


class TestRegisterOperand:
    def test_choices_preserve_order(self):
        op = RegisterOperand("r", ["x2", "x3", "x4"])
        assert list(op.choices()) == ["x2", "x3", "x4"]

    def test_duplicates_are_removed(self):
        op = RegisterOperand("r", ["x2", "x3", "x2", "x3"])
        assert list(op.choices()) == ["x2", "x3"]

    def test_from_string_splits_on_whitespace(self):
        op = RegisterOperand.from_string("r", "x2 x3  x4")
        assert list(op.choices()) == ["x2", "x3", "x4"]

    def test_cardinality(self):
        assert RegisterOperand("r", ["x2", "x3", "x4"]).cardinality() == 3

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigError):
            RegisterOperand("r", [])

    def test_empty_strings_filtered_then_rejected(self):
        with pytest.raises(ConfigError):
            RegisterOperand("r", ["", ""])

    def test_empty_id_rejected(self):
        with pytest.raises(ConfigError):
            RegisterOperand("", ["x1"])

    def test_sample_returns_member(self):
        op = RegisterOperand("r", ["x2", "x3", "x4"])
        rng = make_rng(0)
        for _ in range(20):
            assert op.sample(rng) in {"x2", "x3", "x4"}

    def test_sample_is_deterministic_per_seed(self):
        op = RegisterOperand("r", ["x2", "x3", "x4"])
        a = [op.sample(make_rng(7)) for _ in range(1)]
        b = [op.sample(make_rng(7)) for _ in range(1)]
        assert a == b

    def test_sample_covers_all_choices(self):
        op = RegisterOperand("r", ["x2", "x3", "x4"])
        rng = make_rng(3)
        seen = {op.sample(rng) for _ in range(100)}
        assert seen == {"x2", "x3", "x4"}

    def test_contains(self):
        op = RegisterOperand("r", ["x2"])
        assert op.contains("x2")
        assert not op.contains("x9")

    def test_kind(self):
        assert RegisterOperand("r", ["x2"]).kind == "register"


class TestImmediateOperand:
    def test_figure4_example_has_33_values(self):
        """The paper's example: 0..256 stride 8 = 33 values."""
        op = ImmediateOperand("imm", 0, 256, 8)
        assert op.cardinality() == 33

    def test_values_are_strided(self):
        op = ImmediateOperand("imm", 0, 24, 8)
        assert list(op.choices()) == ["0", "8", "16", "24"]

    def test_inclusive_maximum(self):
        op = ImmediateOperand("imm", 0, 16, 8)
        assert "16" in op.choices()

    def test_max_not_on_stride_excluded(self):
        op = ImmediateOperand("imm", 0, 20, 8)
        assert list(op.choices()) == ["0", "8", "16"]

    def test_single_value_range(self):
        op = ImmediateOperand("imm", 5, 5, 1)
        assert list(op.choices()) == ["5"]

    def test_negative_range(self):
        op = ImmediateOperand("imm", -8, 8, 8)
        assert list(op.choices()) == ["-8", "0", "8"]

    def test_zero_stride_rejected(self):
        with pytest.raises(ConfigError):
            ImmediateOperand("imm", 0, 10, 0)

    def test_negative_stride_rejected(self):
        with pytest.raises(ConfigError):
            ImmediateOperand("imm", 0, 10, -1)

    def test_inverted_range_rejected(self):
        with pytest.raises(ConfigError):
            ImmediateOperand("imm", 10, 0, 1)

    def test_sample_within_range(self):
        op = ImmediateOperand("imm", 0, 256, 8)
        rng = make_rng(0)
        for _ in range(50):
            value = int(op.sample(rng))
            assert 0 <= value <= 256
            assert value % 8 == 0

    def test_kind(self):
        assert ImmediateOperand("imm", 0, 1).kind == "immediate"

    def test_default_stride_is_one(self):
        op = ImmediateOperand("imm", 0, 3)
        assert op.cardinality() == 4


class TestLabelOperand:
    def test_default_pool_is_forward_local_label(self):
        op = LabelOperand("lbl")
        assert list(op.choices()) == ["1f"]

    def test_custom_labels(self):
        op = LabelOperand("lbl", ["1f", "2f"])
        assert op.cardinality() == 2

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            LabelOperand("lbl", [])

    def test_kind(self):
        assert LabelOperand("lbl").kind == "label"
