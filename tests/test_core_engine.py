"""Unit tests for the GA engine (repro.core.engine).

These use a deterministic in-memory measurement/fitness pair so the
engine's mechanics (seeding, evaluation, breeding, elitism, recording,
compile-failure handling) are tested without the CPU substrate.
"""

import pytest

from repro.core.config import GAParameters, RunConfig
from repro.core.engine import GeneticEngine
from repro.core.errors import AssemblyError, ConfigError
from repro.core.individual import random_individual
from repro.core.output import OutputRecorder
from repro.core.population import Population
from repro.core.rng import make_rng
from repro.fitness.default_fitness import DefaultFitness


class CountingMeasurement:
    """Fitness = number of LDR instructions (deterministic, cheap)."""

    def __init__(self):
        self.calls = 0

    def measure(self, source_text, individual):
        self.calls += 1
        score = float(sum(1 for i in individual.instructions
                          if i.name == "LDR"))
        return [score, score + 1.0]

    def measure_repeated(self, source_text, individual):
        return self.measure(source_text, individual)


class FailingMeasurement(CountingMeasurement):
    """Marks every individual containing a NOP as a compile failure."""

    def measure(self, source_text, individual):
        if any(i.name == "NOP" for i in individual.instructions):
            raise AssemblyError("synthetic compile failure")
        return super().measure(source_text, individual)


def _engine(config, measurement=None, recorder=None):
    return GeneticEngine(config, measurement or CountingMeasurement(),
                         DefaultFitness(), recorder=recorder)


class TestRunMechanics:
    def test_history_has_one_entry_per_generation(self, tiny_config):
        history = _engine(tiny_config).run()
        assert len(history.generations) == tiny_config.ga.generations

    def test_population_size_constant(self, tiny_config):
        history = _engine(tiny_config).run()
        assert len(history.final_population) == \
            tiny_config.ga.population_size

    def test_individual_size_constant(self, tiny_config):
        history = _engine(tiny_config).run()
        assert all(len(ind) == tiny_config.ga.individual_size
                   for ind in history.final_population)

    @pytest.mark.serial_evaluation
    def test_every_individual_evaluated(self, tiny_config):
        measurement = CountingMeasurement()
        history = _engine(tiny_config, measurement).run()
        expected = tiny_config.ga.population_size * \
            tiny_config.ga.generations
        assert measurement.calls == expected
        assert history.final_population.evaluated

    def test_generations_override(self, tiny_config):
        history = _engine(tiny_config).run(generations=1)
        assert len(history.generations) == 1

    def test_bad_generations_override(self, tiny_config):
        with pytest.raises(ConfigError):
            _engine(tiny_config).run(generations=0)

    def test_uids_unique_across_run(self, tiny_config, tmp_path):
        recorder = OutputRecorder(tmp_path / "run")
        _engine(tiny_config, recorder=recorder).run()
        seen = set()
        from repro.core.population import load_population
        for path in recorder.population_files():
            for ind in load_population(path):
                assert ind.uid not in seen
                seen.add(ind.uid)

    def test_best_individual_tracked(self, tiny_config):
        history = _engine(tiny_config).run()
        best = history.best_individual
        assert best is not None
        assert best.fitness == max(g.best_fitness
                                   for g in history.generations)


class TestDeterminism:
    def test_same_seed_same_trajectory(self, tiny_config):
        h1 = _engine(tiny_config).run()
        h2 = _engine(tiny_config).run()
        assert h1.best_fitness_series() == h2.best_fitness_series()
        assert h1.best_individual.genome_key() == \
            h2.best_individual.genome_key()

    def test_different_seed_different_trajectory(self, tiny_library,
                                                 tiny_template):
        def run(seed):
            ga = GAParameters(population_size=6, individual_size=8,
                              mutation_rate=0.1, generations=3,
                              tournament_size=3, seed=seed)
            config = RunConfig(ga=ga, library=tiny_library,
                               template_text=tiny_template.text)
            return _engine(config).run()
        a = run(1).best_individual.genome_key()
        b = run(2).best_individual.genome_key()
        assert a != b


class TestSelectionAndElitism:
    def test_fitness_improves_with_elitism(self, tiny_library,
                                           tiny_template):
        ga = GAParameters(population_size=10, individual_size=12,
                          mutation_rate=0.08, generations=8,
                          tournament_size=3, seed=5)
        config = RunConfig(ga=ga, library=tiny_library,
                           template_text=tiny_template.text)
        history = _engine(config).run()
        series = history.best_fitness_series()
        assert series[-1] >= series[0]
        # Deterministic fitness + elitism => monotone non-decreasing.
        assert all(b >= a for a, b in zip(series, series[1:]))

    def test_converges_to_all_ldr(self, tiny_library, tiny_template):
        """With fitness = LDR count, the GA must saturate the loop."""
        ga = GAParameters(population_size=14, individual_size=10,
                          mutation_rate=0.1, generations=25,
                          tournament_size=4, seed=5)
        config = RunConfig(ga=ga, library=tiny_library,
                           template_text=tiny_template.text)
        history = _engine(config).run()
        assert history.best_individual.fitness >= 9.0

    def test_without_elitism_best_can_regress(self, tiny_library,
                                              tiny_template):
        ga = GAParameters(population_size=6, individual_size=10,
                          mutation_rate=0.5, generations=12,
                          tournament_size=2, elitism=False, seed=11)
        config = RunConfig(ga=ga, library=tiny_library,
                           template_text=tiny_template.text)
        series = _engine(config).run().best_fitness_series()
        assert any(b < a for a, b in zip(series, series[1:]))


class TestCompileFailures:
    def test_failures_get_zero_fitness_and_stay_recorded(self, tiny_config):
        history = _engine(tiny_config, FailingMeasurement()).run()
        failed = [ind for pop in [history.final_population]
                  for ind in pop if ind.compile_failed]
        for ind in failed:
            assert ind.fitness == 0.0
            assert ind.measurements == [0.0]

    def test_search_still_progresses_despite_failures(self, tiny_library,
                                                      tiny_template):
        ga = GAParameters(population_size=12, individual_size=6,
                          mutation_rate=0.15, generations=15,
                          tournament_size=4, seed=3)
        config = RunConfig(ga=ga, library=tiny_library,
                           template_text=tiny_template.text)
        history = _engine(config, FailingMeasurement()).run()
        # NOP-bearing individuals are unfit, so the winner has none.
        assert all(i.name != "NOP"
                   for i in history.best_individual.instructions)
        assert history.best_individual.fitness > 0

    def test_failure_counter_in_stats(self, tiny_config):
        history = _engine(tiny_config, FailingMeasurement()).run()
        assert all(g.compile_failures >= 0 for g in history.generations)


class TestSeedPopulation:
    def test_seed_population_used(self, tiny_config, tiny_library,
                                  tmp_path):
        rng = make_rng(0)
        seeds = [random_individual(tiny_library, 8, rng, uid=i)
                 for i in range(tiny_config.ga.population_size)]
        seed_pop = Population(seeds, number=9)
        path = seed_pop.save(tmp_path / "seed.bin")

        tiny_config.seed_population_file = path
        engine = _engine(tiny_config)
        history = engine.run(generations=1)
        got = {ind.genome_key() for ind in history.final_population}
        expected = {ind.genome_key() for ind in seeds}
        assert got == expected

    def test_seed_population_size_mismatch(self, tiny_config,
                                           tiny_library, tmp_path):
        rng = make_rng(0)
        seeds = [random_individual(tiny_library, 8, rng) for _ in range(3)]
        path = Population(seeds).save(tmp_path / "seed.bin")
        tiny_config.seed_population_file = path
        with pytest.raises(ConfigError, match="seed population"):
            _engine(tiny_config).run(generations=1)


class TestRecording:
    def test_recorder_writes_everything(self, tiny_config, tmp_path):
        recorder = OutputRecorder(tmp_path / "run")
        _engine(tiny_config, recorder=recorder).run()
        n_individuals = len(list(recorder.individuals_dir.glob("*.txt")))
        expected = tiny_config.ga.population_size * \
            tiny_config.ga.generations
        assert n_individuals == expected
        assert len(recorder.population_files()) == \
            tiny_config.ga.generations
        assert (recorder.results_dir / "config.xml").exists()
        assert (recorder.results_dir / "template.s").exists()

    def test_recorded_sources_contain_template(self, tiny_config,
                                               tmp_path):
        recorder = OutputRecorder(tmp_path / "run")
        _engine(tiny_config, recorder=recorder).run(generations=1)
        any_source = next(recorder.individuals_dir.glob("*.txt"))
        text = any_source.read_text()
        assert ".loop" in text
        assert "#loop_code" not in text


class TestRenderSource:
    def test_render_source_instantiates_template(self, tiny_config,
                                                 tiny_library, rng):
        engine = _engine(tiny_config)
        ind = random_individual(tiny_library, 8, rng)
        source = engine.render_source(ind)
        assert "mov x10, #4096" in source
        assert "#loop_code" not in source
        for line in ind.render_body().splitlines():
            assert line in source


class _EmptyMeasurement:
    """A broken measurement plug-in: returns no values at all."""

    def measure(self, source_text, individual):
        return []

    def measure_repeated(self, source_text, individual):
        return self.measure(source_text, individual)


class _RejectNopScreen:
    """Deterministic screen stub: fails any NOP-bearing individual."""

    def __init__(self):
        self.calls = 0

    def screen(self, source_text, individual):
        self.calls += 1
        failed = any(i.name == "NOP" for i in individual.instructions)

        class Report:
            passed = not failed
            assembly_failed = False
        return Report()


class TestStaticScreening:
    @pytest.mark.serial_evaluation
    def test_screen_failures_take_zero_fitness_path(self, tiny_config):
        measurement = CountingMeasurement()
        screen = _RejectNopScreen()
        engine = GeneticEngine(tiny_config, measurement, DefaultFitness(),
                               screen=screen)
        history = engine.run()
        total = tiny_config.ga.population_size * tiny_config.ga.generations
        assert screen.calls == total
        # Screened individuals never reach the measurement.
        failures = sum(g.screen_failures for g in history.generations)
        assert failures > 0
        assert measurement.calls == total - failures
        for ind in history.final_population:
            if ind.screen_failed:
                assert ind.fitness == 0.0
                assert ind.measurements == [0.0]
                assert not ind.compile_failed

    def test_screen_failures_counted_per_generation(self, tiny_config):
        engine = GeneticEngine(tiny_config, CountingMeasurement(),
                               DefaultFitness(), screen=_RejectNopScreen())
        history = engine.run()
        for stats in history.generations:
            population = [i for i in history.final_population
                          if i.generation == stats.number]
            if population:  # only the final generation is retained
                assert stats.screen_failures == \
                    sum(1 for i in population if i.screen_failed)

    def test_no_screen_means_no_screen_failures(self, tiny_config):
        history = _engine(tiny_config).run()
        assert all(g.screen_failures == 0 for g in history.generations)

    def test_static_screen_preserves_fitness_series(self, tiny_config):
        """The acceptance property: with the default error-only policy
        the real StaticScreen passes every generated individual, so a
        seeded run is bit-identical to an unscreened one."""
        from repro.isa import ArmAssembler
        from repro.staticcheck import StaticScreen

        unscreened = _engine(tiny_config).run()
        screen = StaticScreen(ArmAssembler())
        screened = GeneticEngine(tiny_config, CountingMeasurement(),
                                 DefaultFitness(), screen=screen).run()

        assert screened.best_fitness_series() == \
            unscreened.best_fitness_series()
        assert screened.best_individual.genome_key() == \
            unscreened.best_individual.genome_key()
        assert all(g.screen_failures == 0 for g in screened.generations)
        total = tiny_config.ga.population_size * tiny_config.ga.generations
        assert screen.stats.screened == total
        assert screen.stats.passed == total


class TestEmptyMeasurementError:
    def test_error_names_individual_and_generation(self, tiny_config):
        with pytest.raises(ConfigError) as excinfo:
            _engine(tiny_config, _EmptyMeasurement()).run()
        message = str(excinfo.value)
        assert "_EmptyMeasurement" in message
        assert "uid=" in message
        assert "generation" in message

    def test_partial_generation_checkpointed_before_raise(
            self, tiny_config, tmp_path):
        checkpoint = tmp_path / "partial.ckpt"
        engine = GeneticEngine(tiny_config, _EmptyMeasurement(),
                               DefaultFitness(),
                               checkpoint_path=checkpoint)
        with pytest.raises(ConfigError, match="empty result list"):
            engine.run()
        assert checkpoint.exists()

    def test_no_checkpoint_path_still_raises_cleanly(self, tiny_config):
        with pytest.raises(ConfigError, match="empty result list"):
            _engine(tiny_config, _EmptyMeasurement()).run()
