"""Tests for the staged evaluation layer (repro.evaluation).

The acceptance property of the refactor: the same config + seed yields
bit-identical populations and identical run histories under the serial
backend, the process-pool backend, and with the evaluation cache on or
off.  These tests pin that property, plus the layer's satellite
contracts: loud protocol validation, ragged-repeat rejection, partial
generation resume, cache persistence, and per-stage observability.
"""

import os
import pickle

import pytest

from repro.core.config import EvaluationParameters, config_to_xml, \
    parse_config_text
from repro.core.engine import GenerationStats, GeneticEngine, \
    WORKERS_ENV_VAR
from repro.core.errors import ConfigError
from repro.core.output import OutputRecorder
from repro.core.population import load_population
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.evaluation import (CachedEvaluation, EvaluationCache,
                              EvaluationPipeline, ProcessPoolBackend,
                              SerialBackend, StageTimings, noise_key)
from repro.evaluation.backends import AutoSelectBackend, BatchedBackend
from repro.fitness.default_fitness import DefaultFitness
from repro.measurement import PowerMeasurement


class _LdrCounter:
    """Deterministic in-memory measurement: fitness = LDR count."""

    def measure(self, source_text, individual):
        return [float(sum(1 for i in individual.instructions
                          if i.name == "LDR"))]

    def measure_repeated(self, source_text, individual):
        return self.measure(source_text, individual)


class _PrefixFailing(_LdrCounter):
    """Behaves like _LdrCounter until ``fail_from`` — then returns an
    empty measurement list (the checkpoint-then-abort plug-in bug)."""

    def __init__(self, fail_from):
        self.fail_from = fail_from

    def measure(self, source_text, individual):
        if individual.uid >= self.fail_from:
            return []
        return super().measure(source_text, individual)


def _power_measurement(seed=99):
    machine = SimulatedMachine("cortex_a15", seed=seed, sim_cycles=600)
    target = SimulatedTarget(machine)
    target.connect()
    return PowerMeasurement(target, {"samples": "2"})


def _run(config, tmp_path=None, name="run", **engine_kwargs):
    recorder = OutputRecorder(tmp_path / name) if tmp_path else None
    engine = GeneticEngine(config, _power_measurement(config.ga.seed),
                           DefaultFitness(), recorder=recorder,
                           **engine_kwargs)
    history = engine.run()
    return history, recorder


# ---------------------------------------------------------------------------
# serial / parallel / cache equivalence (the acceptance property)
# ---------------------------------------------------------------------------

class TestBackendEquivalence:
    def test_histories_identical(self, tiny_config):
        serial, _ = _run(tiny_config, backend=SerialBackend())
        pooled, _ = _run(tiny_config, backend=ProcessPoolBackend(2))
        assert serial.generations == pooled.generations
        assert serial.best_individual.genome_key() == \
            pooled.best_individual.genome_key()
        assert [i.measurements for i in serial.final_population] == \
            [i.measurements for i in pooled.final_population]

    def test_population_binaries_bit_identical(self, tiny_config,
                                               tmp_path):
        _, rec_serial = _run(tiny_config, tmp_path, "serial",
                             backend=SerialBackend())
        _, rec_pooled = _run(tiny_config, tmp_path, "pooled",
                             backend=ProcessPoolBackend(2))
        serial_files = rec_serial.population_files()
        pooled_files = rec_pooled.population_files()
        assert len(serial_files) == len(pooled_files) > 0
        for a, b in zip(serial_files, pooled_files):
            assert a.read_bytes() == b.read_bytes()

    def test_workers_argument_selects_auto_pool(self, tiny_config):
        engine = GeneticEngine(tiny_config, _LdrCounter(),
                               DefaultFitness(), workers=2)
        assert isinstance(engine.evaluator.backend, AutoSelectBackend)
        assert engine.evaluator.backend.pool_workers == 2
        engine.evaluator.close()

    @pytest.mark.serial_evaluation
    def test_config_workers_selects_auto_pool(self, tiny_config):
        tiny_config.evaluation.workers = 3
        engine = GeneticEngine(tiny_config, _LdrCounter(),
                               DefaultFitness())
        assert isinstance(engine.evaluator.backend, AutoSelectBackend)
        assert engine.evaluator.backend.pool_workers == 3
        engine.evaluator.close()

    def test_explicit_backend_names(self, tiny_config):
        for name, expected in (("serial", SerialBackend),
                               ("batched", BatchedBackend),
                               ("pool", ProcessPoolBackend),
                               ("auto", SerialBackend)):
            engine = GeneticEngine(tiny_config, _LdrCounter(),
                                   DefaultFitness(), backend=name,
                                   workers=1)
            assert isinstance(engine.evaluator.backend, expected), name
            engine.evaluator.close()
        with pytest.raises(ConfigError, match="backend"):
            GeneticEngine(tiny_config, _LdrCounter(), DefaultFitness(),
                          backend="boards")

    @pytest.mark.serial_evaluation
    def test_environment_override(self, tiny_config, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        engine = GeneticEngine(tiny_config, _LdrCounter(),
                               DefaultFitness())
        assert isinstance(engine.evaluator.backend, AutoSelectBackend)
        engine.evaluator.close()
        # An explicit workers argument wins over the environment.
        engine = GeneticEngine(tiny_config, _LdrCounter(),
                               DefaultFitness(), workers=1)
        assert isinstance(engine.evaluator.backend, SerialBackend)

    @pytest.mark.serial_evaluation
    def test_workers_zero_means_auto(self, tiny_config, monkeypatch):
        # The "0 = auto" contract holds for the environment variable,
        # the argument, and the config field alike — historically the
        # env path accepted 0 (falling through to serial) while the
        # config path rejected it, so pin all three.
        monkeypatch.setenv(WORKERS_ENV_VAR, "0")
        engine = GeneticEngine(tiny_config, _LdrCounter(),
                               DefaultFitness())
        assert isinstance(engine.evaluator.backend, AutoSelectBackend)
        assert engine.evaluator.backend.pool_workers >= 1
        engine.evaluator.close()
        monkeypatch.delenv(WORKERS_ENV_VAR)
        engine = GeneticEngine(tiny_config, _LdrCounter(),
                               DefaultFitness(), workers=0)
        assert isinstance(engine.evaluator.backend, AutoSelectBackend)
        engine.evaluator.close()
        tiny_config.evaluation.workers = 0
        tiny_config.evaluation.validate()  # 0 is a legal config value
        engine = GeneticEngine(tiny_config, _LdrCounter(),
                               DefaultFitness())
        assert isinstance(engine.evaluator.backend, AutoSelectBackend)
        engine.evaluator.close()
        with pytest.raises(ConfigError, match="workers"):
            GeneticEngine(tiny_config, _LdrCounter(), DefaultFitness(),
                          workers=-1)

    @pytest.mark.serial_evaluation
    def test_bad_environment_value_rejected(self, tiny_config,
                                            monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "many")
        with pytest.raises(ConfigError, match=WORKERS_ENV_VAR):
            GeneticEngine(tiny_config, _LdrCounter(), DefaultFitness())

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ConfigError, match="workers"):
            ProcessPoolBackend(0)

    def test_empty_measurement_aborts_under_pool(self, tiny_config):
        engine = GeneticEngine(
            tiny_config, _PrefixFailing(0), DefaultFitness(),
            backend=ProcessPoolBackend(2))
        with pytest.raises(ConfigError, match="empty result list"):
            engine.run()


class TestCacheEquivalence:
    def test_cache_does_not_change_results(self, tiny_config):
        plain, _ = _run(tiny_config)
        cache = EvaluationCache("test")
        cached, _ = _run(tiny_config, cache=cache)
        assert plain.generations == cached.generations
        assert plain.best_individual.genome_key() == \
            cached.best_individual.genome_key()
        # Elitism re-injects the best genome every generation, so a
        # cached run must hit at least once per later generation.
        assert cache.hits >= tiny_config.ga.generations - 1

    def test_seeded_rerun_is_all_hits(self, tiny_config):
        cache = EvaluationCache("test")
        first, _ = _run(tiny_config, cache=cache)
        misses_after_first = cache.misses
        second, _ = _run(tiny_config, cache=cache)
        assert second.generations == first.generations
        assert cache.misses == misses_after_first  # no new pipeline work
        assert sum(g.cache_hits for g in second.generations) == \
            tiny_config.ga.population_size * tiny_config.ga.generations

    def test_cache_with_pool_backend(self, tiny_config):
        plain, _ = _run(tiny_config)
        cached, _ = _run(tiny_config, cache=EvaluationCache("test"),
                         backend=ProcessPoolBackend(2))
        assert plain.generations == cached.generations

    def test_config_cache_flag_builds_cache(self, tiny_config):
        tiny_config.evaluation.cache = True
        engine = GeneticEngine(tiny_config, _power_measurement(),
                               DefaultFitness())
        assert engine.evaluator.cache is not None
        assert "PowerMeasurement" in engine.evaluator.cache.fingerprint

    def test_fingerprint_stable_across_hash_seeds(self):
        """A persisted cache is only useful if the fingerprint written
        by one process matches the one computed by the next — set reprs
        under hash randomisation silently broke that."""
        import subprocess
        import sys
        script = (
            "from repro.cpu import SimulatedMachine, SimulatedTarget\n"
            "from repro.measurement.power import PowerMeasurement\n"
            "m = SimulatedMachine('cortex_a15', seed=7, sim_cycles=600)\n"
            "t = SimulatedTarget(m)\n"
            "t.connect()\n"
            "print(PowerMeasurement(t, {}).fingerprint())\n")
        prints = []
        for hash_seed in ("0", "1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(sys.path)
            prints.append(subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True).stdout)
        assert prints[0] == prints[1] == prints[2]


class TestCachePersistence:
    def test_save_load_round_trip(self, tmp_path):
        cache = EvaluationCache("fp")
        cache.put("src-a", CachedEvaluation((1.0, 2.0)))
        cache.put("src-b", CachedEvaluation((0.0,), compile_failed=True))
        path = cache.save(tmp_path / "cache.json")
        loaded = EvaluationCache.load(path, "fp")
        assert len(loaded) == 2
        assert loaded.get("src-a") == CachedEvaluation((1.0, 2.0))
        assert loaded.get("src-b").compile_failed

    def test_fingerprint_mismatch_yields_empty_cache(self, tmp_path):
        cache = EvaluationCache("platform-a")
        cache.put("src", CachedEvaluation((1.0,)))
        path = cache.save(tmp_path / "cache.json")
        loaded = EvaluationCache.load(path, "platform-b")
        assert len(loaded) == 0
        assert loaded.fingerprint == "platform-b"

    def test_missing_and_wrong_format_files_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="does not exist"):
            EvaluationCache.load(tmp_path / "nope.json")
        wrong = tmp_path / "wrong.json"
        wrong.write_text('{"format": "something-else"}')
        with pytest.raises(ConfigError, match="not an evaluation cache"):
            EvaluationCache.load(wrong)

    def test_corrupt_cache_warns_and_starts_empty(self, tmp_path):
        """A mangled cache file costs re-measurement, not the run:
        load warns and returns an empty cache instead of crashing."""
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            cache = EvaluationCache.load(bad, "fp")
        assert len(cache) == 0
        assert cache.fingerprint == "fp"

    def test_truncated_cache_warns_and_starts_empty(self, tmp_path):
        """A cache file torn mid-write (killed run, full disk) is
        treated the same as corrupt: warn, start empty."""
        cache = EvaluationCache("fp")
        cache.put("src-a", CachedEvaluation((1.0, 2.0)))
        path = cache.save(tmp_path / "cache.json")
        intact = path.read_text()
        path.write_text(intact[:len(intact) // 2])
        with pytest.warns(RuntimeWarning, match="corrupt"):
            loaded = EvaluationCache.load(path, "fp")
        assert len(loaded) == 0


# ---------------------------------------------------------------------------
# protocol validation (no more duck-typed getattr fallback)
# ---------------------------------------------------------------------------

class TestProtocolValidation:
    def test_missing_measure_repeated_fails_at_construction(
            self, tiny_config):
        class SingleShot:
            def measure(self, source_text, individual):
                return [1.0]

        with pytest.raises(ConfigError, match="measure_repeated"):
            GeneticEngine(tiny_config, SingleShot(), DefaultFitness())

    def test_missing_measure_fails_at_construction(self, tiny_config):
        class NoMeasure:
            def measure_repeated(self, source_text, individual):
                return [1.0]

        with pytest.raises(ConfigError,
                           match=r"implement measure\(\)"):
            GeneticEngine(tiny_config, NoMeasure(), DefaultFitness())

    def test_missing_get_fitness_fails_at_construction(self, tiny_config):
        class NotFitness:
            pass

        with pytest.raises(ConfigError, match="get_fitness"):
            GeneticEngine(tiny_config, _LdrCounter(), NotFitness())


class TestRaggedRepeats:
    def test_ragged_widths_raise_with_uid_and_widths(self, arm_individual):
        class Ragged(PowerMeasurement):
            widths = iter([2, 3])

            def measure(self, source_text, individual):
                return [0.0] * next(self.widths)

        measurement = Ragged(
            SimulatedTarget(SimulatedMachine("cortex_a15", seed=1,
                                             sim_cycles=600)),
            {"repeats": "2"})
        arm_individual.uid = 7
        with pytest.raises(ConfigError) as excinfo:
            measurement.measure_repeated("src", arm_individual)
        message = str(excinfo.value)
        assert "ragged" in message
        assert "uid=7" in message
        assert "[2, 3]" in message
        assert "Ragged" in message


# ---------------------------------------------------------------------------
# resume finishes a partially evaluated generation (regression)
# ---------------------------------------------------------------------------

class TestResumePartialGeneration:
    def test_resume_finishes_partial_generation(self, tiny_config,
                                                tmp_path):
        checkpoint = tmp_path / "run.ckpt"
        # Generation 1 holds uids 6..11; the plug-in dies at uid 9, so
        # the abort checkpoint holds generation 1 with 6, 7, 8 evaluated.
        engine = GeneticEngine(tiny_config, _PrefixFailing(9),
                               DefaultFitness(),
                               checkpoint_path=checkpoint)
        with pytest.raises(ConfigError, match="empty result list"):
            engine.run()
        with open(checkpoint, "rb") as handle:
            payload = pickle.load(handle)
        partial = payload["population"]
        assert payload["generation"] == 1
        assert any(not ind.evaluated for ind in partial)
        assert any(ind.evaluated for ind in partial)

        recorder = OutputRecorder(tmp_path / "resumed")
        resumed = GeneticEngine.resume(tiny_config, _LdrCounter(),
                                       DefaultFitness(), checkpoint,
                                       recorder=recorder)
        history = resumed.run()

        # The checkpointed generation is finished, not bred past: the
        # first recorded generation is number 1 and holds exactly the
        # checkpointed uids, every one of them evaluated.
        assert history.generations[0].number == 1
        recorded = load_population(recorder.populations_dir /
                                   "population_1.bin")
        assert {i.uid for i in recorded} == {i.uid for i in partial}
        assert all(ind.evaluated for ind in recorded)

        # And the finished trajectory matches an uninterrupted run with
        # the healthy plug-in (the failing one agrees on uids < 9).
        uninterrupted = GeneticEngine(tiny_config, _LdrCounter(),
                                      DefaultFitness()).run()
        assert history.generations == uninterrupted.generations[1:]
        assert [i.genome_key() for i in history.final_population] == \
            [i.genome_key() for i in uninterrupted.final_population]

    def test_resume_completed_generation_still_breeds(self, tiny_config,
                                                      tmp_path):
        checkpoint = tmp_path / "run.ckpt"
        full = GeneticEngine(tiny_config, _LdrCounter(), DefaultFitness(),
                             checkpoint_path=checkpoint)
        full_history = full.run(generations=2)
        assert checkpoint.exists()
        resumed = GeneticEngine.resume(tiny_config, _LdrCounter(),
                                       DefaultFitness(), checkpoint)
        history = resumed.run(generations=3)
        assert [g.number for g in history.generations] == [2]
        assert full_history.generations[-1].number == 1


# ---------------------------------------------------------------------------
# observability: stats fields, stats.jsonl, timings
# ---------------------------------------------------------------------------

class TestObservability:
    def test_stats_equality_ignores_observability_fields(self):
        a = GenerationStats(number=0, best_fitness=1.0, mean_fitness=0.5,
                            best_uid=3, compile_failures=0)
        b = GenerationStats(number=0, best_fitness=1.0, mean_fitness=0.5,
                            best_uid=3, compile_failures=0)
        b.cache_hits = 5
        b.measured = 6
        b.timings = StageTimings(render_s=1.0, measure_s=2.0)
        assert a == b

    def test_generation_counters_populated(self, tiny_config):
        history, _ = _run(tiny_config, cache=EvaluationCache("test"))
        first = history.generations[0]
        assert first.measured == tiny_config.ga.population_size
        assert first.timings.measure_s > 0.0
        assert first.timings.render_s > 0.0
        later_hits = sum(g.cache_hits for g in history.generations[1:])
        assert later_hits >= tiny_config.ga.generations - 1

    def test_stats_jsonl_written(self, tiny_config, tmp_path):
        import json
        history, recorder = _run(tiny_config, tmp_path)
        stats_path = recorder.results_dir / "stats.jsonl"
        lines = stats_path.read_text().splitlines()
        assert len(lines) == tiny_config.ga.generations
        first = json.loads(lines[0])
        assert first["number"] == 0
        assert first["best_fitness"] == \
            history.generations[0].best_fitness
        assert "measure_s" in first["timings"]

    def test_stage_timings_accumulate(self):
        total = StageTimings(render_s=1.0)
        total.add(StageTimings(render_s=0.5, measure_s=2.0))
        assert total.render_s == 1.5
        assert total.measure_s == 2.0
        assert total.total_s == 3.5


# ---------------------------------------------------------------------------
# noise keying and config plumbing
# ---------------------------------------------------------------------------

class TestNoiseKey:
    def test_deterministic(self):
        assert noise_key(5, "mov x0, #1") == noise_key(5, "mov x0, #1")

    def test_sensitive_to_source_and_seed(self):
        assert noise_key(5, "mov x0, #1") != noise_key(5, "mov x0, #2")
        assert noise_key(5, "mov x0, #1") != noise_key(6, "mov x0, #1")

    def test_pipeline_measurements_are_order_free(self, tiny_config,
                                                  tiny_library, rng):
        from repro.core.individual import random_individual
        from repro.core.template import Template
        measurement = _power_measurement()
        pipeline = EvaluationPipeline(
            Template(tiny_config.template_text), measurement,
            DefaultFitness(), noise_seed=99)
        a = random_individual(tiny_library, 8, rng, uid=0)
        b = random_individual(tiny_library, 8, rng, uid=1)
        forward = [pipeline.evaluate(a).measurements,
                   pipeline.evaluate(b).measurements]
        backward = [pipeline.evaluate(b).measurements,
                    pipeline.evaluate(a).measurements]
        assert forward == list(reversed(backward))


class TestEvaluationConfig:
    def test_defaults(self):
        params = EvaluationParameters()
        assert params.workers == 1
        assert params.cache is False

    def test_parse_and_round_trip(self, tiny_config, tmp_path):
        (tmp_path / "t.s").write_text(tiny_config.template_text)
        tiny_config.evaluation = EvaluationParameters(workers=4,
                                                      cache=True)
        xml = config_to_xml(tiny_config, template_filename="t.s")
        assert 'workers="4"' in xml
        parsed = parse_config_text(xml, base_dir=tmp_path)
        assert parsed.evaluation.workers == 4
        assert parsed.evaluation.cache is True

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigError, match="workers"):
            EvaluationParameters(workers=-1).validate()
        EvaluationParameters(workers=0).validate()  # 0 = auto
