"""Unit tests for templates (repro.core.template)."""

import pytest

from repro.core.errors import TemplateError
from repro.core.template import LOOP_MARKER, Template


BASIC = "init line\n.loop\n#loop_code\ntail\n.endloop\n"


class TestTemplateValidation:
    def test_marker_required(self):
        with pytest.raises(TemplateError, match="loop_code"):
            Template("no marker here\n")

    def test_single_marker_required(self):
        with pytest.raises(TemplateError, match="exactly one"):
            Template("#loop_code\n#loop_code\n")

    def test_marker_must_be_whole_line(self):
        # A marker embedded in a longer line does not count.
        with pytest.raises(TemplateError):
            Template("x #loop_code y\n")

    def test_valid_template_accepted(self):
        Template(BASIC)

    def test_from_file(self, tmp_path):
        path = tmp_path / "t.s"
        path.write_text(BASIC)
        template = Template.from_file(path)
        assert template.name == str(path)

    def test_from_missing_file(self, tmp_path):
        with pytest.raises(TemplateError):
            Template.from_file(tmp_path / "missing.s")


class TestInstantiate:
    def test_marker_replaced_by_body(self):
        out = Template(BASIC).instantiate("add x1, x2, x3")
        assert "#loop_code" not in out
        assert "add x1, x2, x3" in out

    def test_surrounding_lines_preserved(self):
        out = Template(BASIC).instantiate("body")
        lines = out.splitlines()
        assert lines[0] == "init line"
        assert lines[1] == ".loop"
        assert lines[3] == "tail"
        assert lines[4] == ".endloop"

    def test_multi_line_body(self):
        out = Template(BASIC).instantiate("one\ntwo\nthree")
        lines = out.splitlines()
        assert lines[2:5] == ["one", "two", "three"]

    def test_indentation_applied_to_body(self):
        template = Template(".loop\n    #loop_code\n.endloop\n")
        out = template.instantiate("a\nb")
        assert "    a\n    b" in out

    def test_fixed_loop_code_survives(self):
        """The paper: users may add fixed code (e.g. NOP padding) inside
        the loop body alongside the generated individual."""
        template = Template(".loop\nnop\n#loop_code\nnop\n.endloop\n")
        out = template.instantiate("add x1, x2, x3")
        lines = [l for l in out.splitlines() if l]
        assert lines.count("nop") == 2
        assert lines.index("nop") < lines.index("add x1, x2, x3")

    def test_output_ends_with_newline(self):
        assert Template(BASIC).instantiate("x").endswith("\n")

    def test_empty_body_lines_not_indented(self):
        template = Template(".loop\n  #loop_code\n.endloop\n")
        out = template.instantiate("a\n\nb")
        assert "\n\n" in out

    def test_marker_constant(self):
        assert LOOP_MARKER == "#loop_code"
