"""Unit tests for the workload substrate (repro.workloads)."""

import pytest

from repro.core.errors import ConfigError
from repro.cpu import SimulatedMachine
from repro.workloads import (FIGURE_BASELINES, LoopBuilder,
                             build_workload_source, workload,
                             workload_names, workloads)


class TestLoopBuilder:
    def test_block_counts(self):
        b = LoopBuilder("arm").int_block(3).float_block(2).load_block(1)
        assert len(b) == 6
        assert len(b.lines) == 6

    def test_branch_blocks_render_two_lines(self):
        b = LoopBuilder("arm").branch_block(2)
        assert all("\n1:" in line for line in b.lines)

    def test_chain_blocks_serialise_on_one_register(self):
        b = LoopBuilder("arm").int_block(4, chain=True)
        assert all(line.endswith("x1, x1, x2") for line in b.lines)

    def test_unknown_isa_rejected(self):
        with pytest.raises(ConfigError):
            LoopBuilder("mips")

    def test_empty_body_rejected(self):
        with pytest.raises(ConfigError):
            LoopBuilder("arm").body()

    def test_x86_and_arm_same_block_lengths(self):
        for isa in ("arm", "x86"):
            b = LoopBuilder(isa)
            b.int_block(2).mul_block(1).div_block(1).float_block(2)
            b.simd_block(2).load_block(2).store_block(1)
            b.branch_block(1).nop_block(1)
            assert len(b) == 13

    def test_builder_is_chainable(self):
        b = LoopBuilder("x86").int_block(1).simd_block(1)
        assert isinstance(b, LoopBuilder)


class TestWorkloadLibrary:
    def test_all_names_buildable_both_isas(self):
        for name in workload_names():
            for isa in ("arm", "x86"):
                w = workload(name, isa)
                assert w.source
                assert w.description

    def test_unknown_workload(self):
        with pytest.raises(ConfigError, match="unknown workload"):
            workload("doom")

    def test_workloads_helper(self):
        ws = workloads(["coremark", "fdct"], "arm")
        assert [w.name for w in ws] == ["coremark", "fdct"]

    def test_figure_baselines_reference_known_workloads(self):
        names = set(workload_names())
        for figure, baselines in FIGURE_BASELINES.items():
            assert set(baselines) <= names, figure

    def test_fig5_baselines_match_paper(self):
        assert set(FIGURE_BASELINES["fig5_a15_power"]) == {
            "coremark", "imdct", "fdct", "a15_manual_stress"}

    def test_fig8_includes_stability_tests(self):
        fig8 = FIGURE_BASELINES["fig8_voltage_noise"]
        assert "prime95" in fig8
        assert "amd_stability_test" in fig8


class TestWorkloadsExecute:
    @pytest.mark.parametrize("name", workload_names())
    def test_every_arm_workload_runs(self, name, a15_machine):
        result = a15_machine.run_source(workload(name, "arm").source)
        assert result.ipc > 0
        assert result.core_power_w > 0

    @pytest.mark.parametrize("name", workload_names())
    def test_every_x86_workload_runs(self, name, athlon_machine):
        result = athlon_machine.run_source(workload(name, "x86").source)
        assert result.ipc > 0

    def test_idle_spin_is_low_anchor(self, a15_machine):
        powers = {name: a15_machine.run_source(
            workload(name, "arm").source).core_power_w
            for name in ("idle_spin", "coremark", "prime95")}
        assert powers["idle_spin"] < powers["coremark"]
        assert powers["idle_spin"] < powers["prime95"]

    def test_prime95_is_high_power_on_athlon(self, athlon_machine):
        """Prime95's defining trait: near-top sustained power."""
        powers = {name: athlon_machine.run_source(
            workload(name, "x86").source, cores=4).avg_power_w
            for name in FIGURE_BASELINES["fig8_voltage_noise"]}
        assert powers["prime95"] == max(powers.values())

    def test_manual_stress_beats_conventional_apps(self, a15_machine,
                                                   a7_machine):
        """The hand-written stress loops must top the conventional
        bare-metal workloads on their own platform (Figures 5/6)."""
        for machine, manual in ((a15_machine, "a15_manual_stress"),
                                (a7_machine, "a7_manual_stress")):
            powers = {name: machine.run_source(
                workload(name, "arm").source,
                cores=machine.arch.core_count).avg_power_w
                for name in ("coremark", "imdct", "fdct", manual)}
            assert powers[manual] == max(powers.values())

    def test_build_workload_source_wraps_template(self):
        src = build_workload_source("arm", "nop")
        assert ".loop" in src
        assert "#loop_code" not in src
