"""Additional property-based tests covering the extension subsystems:
the C-like compiler, the abstract workload model, the cache hierarchy
and the engine's checkpoint determinism."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abstractmodel import WorkloadProfile, generate_loop
from repro.core.rng import make_rng
from repro.cpu.cache import Cache, CacheConfig, MemoryHierarchy
from repro.isa import ArmAssembler, clike_library, compile_clike

ASM = ArmAssembler()
CLIKE_LIB = clike_library()


# ---------------------------------------------------------------------------
# C-like compiler
# ---------------------------------------------------------------------------

@given(seed=st.integers(0, 2**32 - 1), size=st.integers(1, 30))
@settings(max_examples=40)
def test_any_clike_statement_sequence_compiles_and_assembles(seed, size):
    """Whatever the C-level GA can generate must survive the full
    toolchain: C statements -> SimISA -> decoded program."""
    rng = make_rng(seed)
    statements = []
    for _ in range(size):
        name = CLIKE_LIB.names[rng.randrange(len(CLIKE_LIB.names))]
        spec = CLIKE_LIB.spec(name)
        statements.append(spec.render(CLIKE_LIB.sample_values(spec, rng)))
    source = "loop {\n" + "\n".join(statements) + "\n}\n"
    program = ASM.assemble(compile_clike(source))
    # Every statement lowers to exactly one instruction, plus the loop
    # edge (subs + bne) the compiler appends.
    assert program.loop_length == size + 2


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=25)
def test_clike_compile_is_deterministic(seed):
    rng = make_rng(seed)
    name = CLIKE_LIB.names[rng.randrange(len(CLIKE_LIB.names))]
    spec = CLIKE_LIB.spec(name)
    statement = spec.render(CLIKE_LIB.sample_values(spec, rng))
    source = f"loop {{\n{statement}\n}}\n"
    assert compile_clike(source) == compile_clike(source)


# ---------------------------------------------------------------------------
# abstract workload model
# ---------------------------------------------------------------------------

@given(seed=st.integers(0, 2**32 - 1), size=st.integers(1, 60))
@settings(max_examples=40)
def test_generated_abstract_code_always_assembles(seed, size):
    rng = make_rng(seed)
    profile = WorkloadProfile.random(rng)
    program = ASM.assemble(generate_loop(profile, size, rng))
    assert program.loop_length == size


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=40)
def test_profile_operator_closure(seed):
    """Mutation and crossover always yield valid profiles."""
    rng = make_rng(seed)
    a = WorkloadProfile.random(rng)
    b = WorkloadProfile.random(rng)
    a.crossover(b, rng).validate()
    a.mutate(rng).validate()
    a.mutate(rng, sigma=1.0).validate()


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=30)
def test_normalized_mix_is_distribution(seed):
    profile = WorkloadProfile.random(make_rng(seed))
    mix = profile.normalized_mix()
    assert sum(mix.values()) == pytest.approx(1.0)
    assert all(v >= 0 for v in mix.values())


# ---------------------------------------------------------------------------
# cache hierarchy
# ---------------------------------------------------------------------------

@given(addresses=st.lists(st.integers(0, 2**22), min_size=1,
                          max_size=300))
@settings(max_examples=30)
def test_cache_stats_always_consistent(addresses):
    cache = Cache(CacheConfig("t", 4096, 64, 4, 2, 1.0))
    for address in addresses:
        cache.lookup(address)
    stats = cache.stats
    assert stats.accesses == len(addresses)
    assert 0 <= stats.hits <= stats.accesses
    assert 0.0 <= stats.miss_rate <= 1.0


@given(addresses=st.lists(st.integers(0, 2**22), min_size=1,
                          max_size=200))
@settings(max_examples=30)
def test_hierarchy_inclusion_of_counts(addresses):
    """L2 sees exactly the L1's misses."""
    hierarchy = MemoryHierarchy()
    for address in addresses:
        hierarchy.access(address)
    assert hierarchy.l2.stats.accesses == hierarchy.l1.stats.misses
    assert hierarchy.llc_misses() <= hierarchy.l2.stats.accesses


@given(address=st.integers(0, 2**22))
def test_repeated_access_eventually_hits(address):
    hierarchy = MemoryHierarchy()
    hierarchy.access(address)
    assert hierarchy.access(address).level == "l1"


# ---------------------------------------------------------------------------
# value-toggle / immediate interplay (regression-style property)
# ---------------------------------------------------------------------------

@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_machine_runs_are_reproducible(seed):
    """Identical machines produce identical observable results for the
    same program — the substrate is a pure function of (seed, code)."""
    from repro.cpu import SimulatedMachine
    source = (".loop\nadd x1, x2, x3\nvmul v0, v8, v9\n"
              "ldr x7, [x10, #8]\n.endloop\n")
    a = SimulatedMachine("cortex_a7", seed=seed, sim_cycles=400)
    b = SimulatedMachine("cortex_a7", seed=seed, sim_cycles=400)
    ra, rb = a.run_source(source), b.run_source(source)
    assert ra.power_samples_w == rb.power_samples_w
    assert ra.temperature_samples_c == rb.temperature_samples_c
    assert ra.voltage.v_min == rb.voltage.v_min


# ---------------------------------------------------------------------------
# shmoo / timing-model invariants
# ---------------------------------------------------------------------------

@given(fraction=st.floats(0.5, 1.5, allow_nan=False))
@settings(max_examples=25)
def test_critical_voltage_monotone_in_frequency(fraction):
    from repro.cpu import SimulatedMachine
    machine = SimulatedMachine("athlon_x4", seed=0, sim_cycles=400)
    reclocked = machine.at_frequency(
        machine.nominal_frequency_hz * fraction)
    if fraction >= 1.0:
        assert reclocked.critical_voltage_v() >= \
            machine.critical_voltage_v() - 1e-12
    else:
        assert reclocked.critical_voltage_v() <= \
            machine.critical_voltage_v() + 1e-12


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_diversity_metrics_bounded_on_random_populations(seed):
    from repro.analysis import population_diversity
    from repro.core.individual import random_individual
    from repro.core.population import Population
    from repro.isa import arm_library
    rng = make_rng(seed)
    library = arm_library()
    population = Population([random_individual(library, 10, rng)
                             for _ in range(8)])
    stats = population_diversity(population)
    assert 0 < stats.unique_fraction <= 1.0
    assert stats.mean_slot_entropy_bits >= 0.0
    assert 0.0 < stats.dominant_opcode_share <= 1.0
