"""Unit tests for dynamic class loading and run output recording
(repro.core.loader, repro.core.output)."""

import pytest

from repro.core.errors import LoaderError
from repro.core.individual import random_individual
from repro.core.loader import instantiate, load_class
from repro.core.output import OutputRecorder, individual_filename
from repro.core.population import Population
from repro.core.rng import make_rng
from repro.fitness.default_fitness import DefaultFitness


class TestLoadClass:
    def test_loads_framework_class(self):
        cls = load_class("repro.fitness.default_fitness.DefaultFitness")
        assert cls is DefaultFitness

    def test_loads_stdlib_class(self):
        cls = load_class("collections.OrderedDict")
        import collections
        assert cls is collections.OrderedDict

    def test_bare_name_rejected(self):
        with pytest.raises(LoaderError, match="dotted"):
            load_class("DefaultFitness")

    def test_missing_module(self):
        with pytest.raises(LoaderError, match="cannot import"):
            load_class("repro.nothing.Whatever")

    def test_missing_class(self):
        with pytest.raises(LoaderError, match="no class"):
            load_class("repro.fitness.default_fitness.Nope")

    def test_non_class_attribute(self):
        with pytest.raises(LoaderError, match="not a class"):
            load_class("repro.core.rng.make_rng")


class TestInstantiate:
    def test_plain_instantiation(self):
        obj = instantiate("repro.fitness.default_fitness.DefaultFitness")
        assert isinstance(obj, DefaultFitness)

    def test_base_class_check_passes_for_subclass(self):
        obj = instantiate(
            "repro.fitness.weighted.WeightedFitness",
            DefaultFitness, [(0, 1.0, 1.0)])
        assert obj.get_fitness([3.0], None) == pytest.approx(3.0)

    def test_base_class_check_fails_for_unrelated(self):
        with pytest.raises(LoaderError, match="inherit"):
            instantiate("collections.OrderedDict", DefaultFitness)


class TestIndividualFilename:
    def test_paper_naming_convention(self, tiny_library):
        """Paper III.D example: generation 1, id 10, measurements
        1.30/1.33 -> '1_10_1.30_1.33.txt'."""
        ind = random_individual(tiny_library, 4, make_rng(0), uid=10)
        ind.generation = 1
        ind.record_evaluation([1.2986, 1.3349], 1.2986)
        assert individual_filename(ind) == "1_10_1.30_1.33.txt"

    def test_no_measurements(self, tiny_library):
        ind = random_individual(tiny_library, 4, make_rng(0), uid=3)
        ind.generation = 0
        assert individual_filename(ind) == "0_3.txt"


class TestOutputRecorder:
    def _evaluated_population(self, library, number=0):
        rng = make_rng(7)
        individuals = []
        for i in range(4):
            ind = random_individual(library, 6, rng, uid=i)
            ind.generation = number
            ind.record_evaluation([float(i) + 0.5, float(i)], float(i) + 0.5)
            individuals.append(ind)
        return Population(individuals, number=number)

    def test_layout_created(self, tmp_path):
        recorder = OutputRecorder(tmp_path / "run")
        assert recorder.individuals_dir.is_dir()
        assert recorder.populations_dir.is_dir()

    def test_record_individual_writes_source(self, tmp_path, tiny_library):
        recorder = OutputRecorder(tmp_path / "run")
        pop = self._evaluated_population(tiny_library)
        path = recorder.record_individual(pop[0], "source text")
        assert path.read_text() == "source text"
        assert path.name.startswith("0_0_")

    def test_record_population_and_listing(self, tmp_path, tiny_library):
        recorder = OutputRecorder(tmp_path / "run")
        for number in range(3):
            recorder.record_population(
                self._evaluated_population(tiny_library, number))
        files = recorder.population_files()
        assert [f.name for f in files] == [
            "population_0.bin", "population_1.bin", "population_2.bin"]

    def test_population_files_sorted_numerically(self, tmp_path,
                                                 tiny_library):
        recorder = OutputRecorder(tmp_path / "run")
        for number in (0, 2, 10, 1):
            recorder.record_population(
                self._evaluated_population(tiny_library, number))
        numbers = [int(f.stem.split("_")[1])
                   for f in recorder.population_files()]
        assert numbers == [0, 1, 2, 10]

    def test_fittest_individual_file_uses_first_measurement(self, tmp_path,
                                                            tiny_library):
        """The naming convention makes the fittest individual findable
        with basic file tools (paper III.D)."""
        recorder = OutputRecorder(tmp_path / "run")
        pop = self._evaluated_population(tiny_library)
        for ind in pop:
            recorder.record_individual(ind, f"src {ind.uid}")
        best = recorder.fittest_individual_file()
        assert best is not None
        assert best.read_text() == "src 3"   # uid 3 has measurement 3.5

    def test_fittest_individual_file_empty_dir(self, tmp_path):
        recorder = OutputRecorder(tmp_path / "run")
        assert recorder.fittest_individual_file() is None

    def test_record_provenance(self, tmp_path, tiny_config):
        recorder = OutputRecorder(tmp_path / "run")
        recorder.record_provenance(tiny_config)
        assert (recorder.results_dir / "template.s").read_text() == \
            tiny_config.template_text
        assert "<gest_config>" in \
            (recorder.results_dir / "config.xml").read_text()
