"""Golden equivalence suite for steady-state kernel detection.

The tiling contract is *bit-identical observables*: a trace produced by
stopping at the first recurring scheduler state and analytically tiling
the detected period must be indistinguishable — IPC, per-cycle issue
lists, power, voltage waveform, crash verdict — from the full
cycle-by-cycle simulation.  That is what keeps the evaluation cache,
checkpoints and shipped config results valid with detection on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cpu.cache import MemoryHierarchy
from repro.cpu.machine import SimulatedMachine
from repro.cpu.pdn import PDNModel
from repro.cpu.pipeline import PipelineSimulator
from repro.cpu.power import PowerModel
from repro.staticcheck.screen import StaticScreen

ARM_LOOP = """
1:
add x1, x7, x8
mul x2, x5, x6
vmul v0, v1, v2
ldr x3, [x4, #0]
add x9, x9, #8
b 1b
"""

X86_LOOP = """
1:
add rax, rbx
imul rcx, rdx
mulsd xmm0, xmm1
mov r8, [r9 + 0]
add r10, 8
jmp 1b
"""

#: The paper's four platforms: two OOO ARM cores, one in-order ARM
#: core, one x86 OOO core.
PRESETS = ["cortex_a15", "cortex_a7", "xgene2", "athlon_x4"]


def source_for(preset: str) -> str:
    return X86_LOOP if preset == "athlon_x4" else ARM_LOOP


def traces_for(preset: str, hierarchy=None, cycles: int = 1600):
    machine = SimulatedMachine(preset, seed=3)
    program = machine.compile(source_for(preset))
    tiled = PipelineSimulator(machine.arch, detect_steady_state=True) \
        .execute(program, cycles, hierarchy=hierarchy)
    full = PipelineSimulator(machine.arch, detect_steady_state=False) \
        .execute(program, cycles, hierarchy=hierarchy)
    return machine, program, tiled, full


def assert_traces_identical(tiled, full):
    assert tiled.cycles == full.cycles
    assert tiled.instructions_issued == full.instructions_issued
    assert tiled.loop_iterations == full.loop_iterations
    assert tiled.ipc == full.ipc
    assert tiled.group_counts == full.group_counts
    assert list(tiled.group_counts) == list(full.group_counts)
    assert tiled.issued_per_cycle == full.issued_per_cycle
    assert tiled.occupancy == full.occupancy
    assert np.array_equal(tiled.issue_counts, full.issue_counts)
    assert tiled.issue_width_histogram() == full.issue_width_histogram()
    assert np.array_equal(tiled.slot_counts, full.slot_counts)


class TestTraceEquivalence:
    @pytest.mark.parametrize("preset", PRESETS)
    def test_tiled_trace_matches_full_simulation(self, preset):
        _, _, tiled, full = traces_for(preset)
        assert tiled.period_cycles > 0, \
            f"detection must fire on a periodic loop ({preset})"
        assert full.period_cycles == 0
        assert tiled.simulated_cycles < full.simulated_cycles
        assert_traces_identical(tiled, full)

    @pytest.mark.parametrize("preset", PRESETS)
    def test_hierarchy_forces_full_simulation(self, preset):
        _, _, tiled, full = traces_for(preset,
                                       hierarchy=MemoryHierarchy())
        # Striding addresses + cache state defeat scheduler-state
        # recurrence, so detection must not fire at all.
        assert tiled.period_cycles == 0
        assert_traces_identical(tiled, full)
        assert np.array_equal(tiled.extra_energy_per_cycle,
                              full.extra_energy_per_cycle)
        assert tiled.cache_summary == full.cache_summary

    def test_in_order_core_detects(self):
        _, _, tiled, _ = traces_for("cortex_a7")
        assert tiled.period_cycles > 0

    def test_longer_horizon_same_kernel(self):
        machine = SimulatedMachine("cortex_a15", seed=3)
        program = machine.compile(ARM_LOOP)
        sim = PipelineSimulator(machine.arch)
        short = sim.execute(program, 1600)
        long = sim.execute(program, 160000)
        assert long.period_cycles == short.period_cycles
        assert long.simulated_cycles == short.simulated_cycles
        assert long.cycles == 160000
        # Per-cycle rates converge to the kernel's, independent of the
        # horizon length.
        assert long.ipc == pytest.approx(short.ipc, rel=0.05)


class TestCompressedGeometry:
    def test_expand_reconstructs_full_length(self):
        _, _, tiled, full = traces_for("cortex_a15")
        occ = tiled.expand(tiled.occupancy_counts)
        assert len(occ) == tiled.cycles
        assert occ.tolist() == full.occupancy

    def test_expand_rejects_wrong_length(self):
        _, _, tiled, _ = traces_for("cortex_a15")
        from repro.core.errors import SimulationError
        with pytest.raises(SimulationError):
            tiled.expand(np.zeros(tiled.cycles + 1))

    def test_tiling_arithmetic_covers_all_cycles(self):
        _, _, tiled, _ = traces_for("xgene2")
        covered = tiled.prefix_cycles \
            + tiled.repeats * tiled.period_cycles + tiled.remainder_cycles
        assert covered == tiled.cycles

    def test_full_trace_has_identity_geometry(self):
        _, _, _, full = traces_for("cortex_a7")
        assert full.repeats == 0
        assert full.remainder_cycles == 0
        assert full.prefix_cycles == full.simulated_cycles


class TestEnergyEquivalence:
    @pytest.mark.parametrize("preset", PRESETS)
    @pytest.mark.parametrize("with_hierarchy", [False, True])
    def test_vectorized_energy_bit_identical(self, preset,
                                             with_hierarchy):
        hierarchy = MemoryHierarchy() if with_hierarchy else None
        machine, program, tiled, full = traces_for(preset,
                                                   hierarchy=hierarchy)
        model = PowerModel(machine.arch)
        slot_energy = model.slot_energies_pj(program)
        for trace in (tiled, full):
            got = model.energy_trace_pj(program, trace)
            # Reference: the historical per-cycle Python accumulation.
            want = np.empty(trace.cycles)
            occupancy = trace.occupancy
            for cycle, issued in enumerate(trace.issued_per_cycle):
                energy = machine.arch.base_cycle_pj
                energy += machine.arch.window_slot_pj * occupancy[cycle]
                for slot in issued:
                    energy += slot_energy[slot]
                want[cycle] = energy
            if trace.extra_energy_per_cycle is not None:
                want += np.asarray(trace.extra_energy_per_cycle)
            assert np.array_equal(got, want)

    def test_core_power_identical_between_modes(self):
        machine, program, tiled, full = traces_for("cortex_a15")
        model = PowerModel(machine.arch)
        assert model.core_power_w(program, tiled) == \
            model.core_power_w(program, full)
        assert np.array_equal(model.current_trace_a(program, tiled),
                              model.current_trace_a(program, full))


class TestPDNEquivalence:
    def test_periodic_hint_bit_identical(self):
        machine, program, tiled, _ = traces_for("cortex_a15")
        model = PowerModel(machine.arch)
        current = model.current_trace_a(program, tiled)
        pdn = PDNModel(machine.arch.pdn, machine.arch.frequency_hz)
        hinted = pdn.simulate(current, machine.supply_v,
                              period=tiled.period_cycles,
                              prefix=tiled.prefix_cycles)
        plain = pdn.simulate(current, machine.supply_v)
        assert np.array_equal(hinted.voltage, plain.voltage)
        assert hinted.v_min == plain.v_min
        assert hinted.peak_to_peak == plain.peak_to_peak

    def test_wrong_hint_is_harmless(self):
        machine, program, tiled, _ = traces_for("cortex_a15")
        model = PowerModel(machine.arch)
        rng = np.random.default_rng(5)
        current = model.current_trace_a(program, tiled) \
            + rng.normal(0, 0.05, tiled.cycles)   # aperiodic input
        pdn = PDNModel(machine.arch.pdn, machine.arch.frequency_hz)
        hinted = pdn.simulate(current, machine.supply_v,
                              period=7, prefix=3)
        plain = pdn.simulate(current, machine.supply_v)
        assert np.array_equal(hinted.voltage, plain.voltage)


class TestMachineEquivalence:
    @pytest.mark.parametrize("preset", PRESETS)
    @pytest.mark.parametrize("with_hierarchy", [False, True])
    def test_run_results_bit_identical(self, preset, with_hierarchy):
        hierarchy = MemoryHierarchy() if with_hierarchy else None
        kwargs = dict(seed=11, hierarchy=hierarchy)
        on = SimulatedMachine(preset, **kwargs)
        off = SimulatedMachine(preset, steady_state_detection=False,
                               **kwargs)
        a = on.run_source(source_for(preset))
        b = off.run_source(source_for(preset))
        assert a.ipc == b.ipc
        assert a.core_power_w == b.core_power_w
        assert a.chip_power_w == b.chip_power_w
        assert a.power_samples_w == b.power_samples_w
        assert a.temperature_samples_c == b.temperature_samples_c
        assert np.array_equal(a.voltage.voltage, b.voltage.voltage)
        assert a.voltage.v_min == b.voltage.v_min
        assert a.crashed == b.crashed
        assert a.noc_power_w == b.noc_power_w

    def test_crash_verdict_identical_under_low_supply(self):
        on = SimulatedMachine("athlon_x4", seed=2)
        off = SimulatedMachine("athlon_x4", seed=2,
                               steady_state_detection=False)
        low = on.critical_voltage_v() * 1.001
        a = on.run_source(X86_LOOP, supply_v=low)
        b = off.run_source(X86_LOOP, supply_v=low)
        assert a.crashed == b.crashed
        assert np.array_equal(a.voltage.voltage, b.voltage.voltage)

    def test_at_frequency_preserves_detection_setting(self):
        machine = SimulatedMachine("cortex_a15",
                                   steady_state_detection=False)
        shifted = machine.at_frequency(machine.arch.frequency_hz * 1.5)
        assert shifted.steady_state_detection is False
        assert shifted.pipeline.detect_steady_state is False


class TestDetectPeriodHelper:
    def test_detect_period_returns_kernel(self):
        machine = SimulatedMachine("cortex_a15", seed=0)
        program = machine.compile(ARM_LOOP)
        kernel = machine.pipeline.detect_period(program)
        assert kernel is not None
        prefix, period = kernel
        trace = machine.pipeline.execute(program, 1600)
        assert (prefix, period) == (trace.prefix_cycles,
                                    trace.period_cycles)

    def test_screen_reports_period_with_probe(self):
        machine = SimulatedMachine("cortex_a15", seed=0)
        screen = StaticScreen(machine.assembler,
                              period_probe=machine.pipeline)
        report = screen.screen(ARM_LOOP)
        assert report.passed
        assert report.detected_period is not None
        assert report.detected_period > 0
        assert report.detected_prefix is not None

    def test_screen_without_probe_reports_none(self):
        machine = SimulatedMachine("cortex_a15", seed=0)
        screen = StaticScreen(machine.assembler)
        report = screen.screen(ARM_LOOP)
        assert report.passed
        assert report.detected_period is None
        assert report.detected_prefix is None


class TestCompileCache:
    def test_identical_sources_hit(self):
        machine = SimulatedMachine("cortex_a15", seed=0)
        first = machine.compile(ARM_LOOP)
        second = machine.compile(ARM_LOOP)
        assert second is first
        assert machine.compile_cache_hits == 1
        assert machine.compile_cache_misses == 1

    def test_distinct_names_miss(self):
        machine = SimulatedMachine("cortex_a15", seed=0)
        machine.compile(ARM_LOOP, name="a.s")
        machine.compile(ARM_LOOP, name="b.s")
        assert machine.compile_cache_hits == 0
        assert machine.compile_cache_misses == 2

    def test_failures_not_cached(self):
        from repro.core.errors import AssemblyError
        machine = SimulatedMachine("cortex_a15", seed=0)
        for _ in range(2):
            with pytest.raises(AssemblyError):
                machine.compile("1:\nbogus x1, x2\nb 1b\n")
        assert machine.compile_cache_hits == 0

    def test_lru_eviction_bounds_size(self):
        machine = SimulatedMachine("cortex_a15", seed=0)
        cap = machine.COMPILE_CACHE_CAP
        for index in range(cap + 10):
            machine.compile(f"1:\nadd x1, x2, x{index % 10}\n"
                            f"mov x3, #{index}\nb 1b\n")
        assert len(machine._compile_cache) == cap
