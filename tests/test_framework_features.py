"""Tests for framework conveniences: measurement repetition policy,
atomic instruction sequences, and the `gest measure` CLI command."""

import pytest

from repro.cli import main
from repro.core import (GAParameters, GeneticEngine, RunConfig,
                        random_individual)
from repro.core.errors import MeasurementError
from repro.core.instruction import InstructionLibrary, InstructionSpec
from repro.core.operand import RegisterOperand
from repro.core.rng import make_rng
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.fitness import DefaultFitness
from repro.isa import ArmAssembler, arm_template
from repro.measurement import PowerMeasurement


# ---------------------------------------------------------------------------
# measurement repetition
# ---------------------------------------------------------------------------

class CountingPower(PowerMeasurement):
    def __init__(self, *args, **kwargs):
        self.calls = 0
        super().__init__(*args, **kwargs)

    def measure(self, source_text, individual):
        self.calls += 1
        return super().measure(source_text, individual)


SRC = ".loop\nvmul v0, v8, v9\nldr x7, [x10, #8]\n.endloop\n"


def _os_target(seed=6):
    machine = SimulatedMachine("xgene2", environment="os", seed=seed,
                               sim_cycles=600)
    t = SimulatedTarget(machine)
    t.connect()
    return t


class TestMeasurementRepeats:
    def test_default_is_single_shot(self):
        meas = CountingPower(_os_target(), {"samples": "2"})
        meas.measure_repeated(SRC, None)
        assert meas.calls == 1

    def test_repeats_invoke_measure_n_times(self):
        meas = CountingPower(_os_target(), {"samples": "2",
                                            "repeats": "4"})
        values = meas.measure_repeated(SRC, None)
        assert meas.calls == 4
        assert len(values) == 2

    def test_repeats_reduce_variance(self):
        def spread(repeats):
            meas = PowerMeasurement(
                _os_target(seed=8),
                {"samples": "1", "repeats": str(repeats)})
            values = [meas.measure_repeated(SRC, None)[0]
                      for _ in range(12)]
            mean = sum(values) / len(values)
            return max(abs(v - mean) for v in values)
        assert spread(8) < spread(1)

    def test_median_aggregate(self):
        class Scripted(PowerMeasurement):
            sequence = iter([1.0, 100.0, 2.0])

            def measure(self, source_text, individual):
                return [next(self.sequence)]

        meas = Scripted(_os_target(), {"repeats": "3",
                                       "aggregate": "median"})
        # Median resists the 100.0 outlier.
        assert meas.measure_repeated(SRC, None) == [2.0]

    def test_bad_repeats_rejected(self):
        with pytest.raises(MeasurementError):
            PowerMeasurement(_os_target(), {"repeats": "0"})

    def test_bad_aggregate_rejected(self):
        with pytest.raises(MeasurementError):
            PowerMeasurement(_os_target(), {"aggregate": "mode"})

    @pytest.mark.serial_evaluation
    def test_engine_uses_repeated_path(self, tiny_template):
        operands = [RegisterOperand("r", ["x1", "x2"])]
        specs = [InstructionSpec("ADD", ["r", "r", "r"],
                                 "add op1, op2, op3", "int_short")]
        library = InstructionLibrary(operands, specs)
        ga = GAParameters(population_size=4, individual_size=4,
                          mutation_rate=0.1, generations=1, seed=0)
        config = RunConfig(ga=ga, library=library,
                           template_text=tiny_template.text)
        meas = CountingPower(_os_target(), {"samples": "1",
                                            "repeats": "3"})
        GeneticEngine(config, meas, DefaultFitness()).run()
        assert meas.calls == 4 * 3   # population x repeats


# ---------------------------------------------------------------------------
# atomic instruction sequences (paper III.B.1)
# ---------------------------------------------------------------------------

class TestAtomicSequences:
    """'the experimenter can specify both individual-instructions as
    well as whole instructions sequences that will be atomically
    included in the GA optimization search' — multi-line format
    strings are that mechanism."""

    @pytest.fixture
    def sequence_library(self):
        operands = [
            RegisterOperand("acc", ["x1", "x2"]),
            RegisterOperand("base", ["x10"]),
        ]
        specs = [
            # A load-multiply-store macro: three instructions, one gene.
            InstructionSpec(
                "LDMULST", ["acc", "base"],
                "ldr op1, [op2, #8]\nmul op1, op1, op1\n"
                "str op1, [op2, #16]", "mem"),
            InstructionSpec("NOP", [], "nop", "nop"),
        ]
        return InstructionLibrary(operands, specs)

    def test_sequence_renders_three_lines(self, sequence_library, rng):
        instr = sequence_library.random_instruction(rng)
        while instr.name != "LDMULST":
            instr = sequence_library.random_instruction(rng)
        assert len(instr.render().splitlines()) == 3

    def test_sequence_assembles_atomically(self, sequence_library, rng):
        ind = random_individual(sequence_library, 6, rng)
        program = ArmAssembler().assemble(ind.render_body())
        macros = sum(1 for i in ind.instructions if i.name == "LDMULST")
        nops = sum(1 for i in ind.instructions if i.name == "NOP")
        assert program.loop_length == 3 * macros + nops

    def test_ga_search_over_sequences(self, sequence_library,
                                      tiny_template):
        ga = GAParameters(population_size=6, individual_size=6,
                          mutation_rate=0.15, generations=4, seed=2)
        config = RunConfig(ga=ga, library=sequence_library,
                           template_text=tiny_template.text)
        machine = SimulatedMachine("cortex_a15", seed=2, sim_cycles=600)
        target = SimulatedTarget(machine)
        target.connect()
        engine = GeneticEngine(config,
                               PowerMeasurement(target, {"samples": "2"}),
                               DefaultFitness())
        history = engine.run()
        # The macro draws far more power than NOPs; it must dominate.
        best = history.best_individual
        macros = sum(1 for i in best.instructions if i.name == "LDMULST")
        assert macros >= 4


# ---------------------------------------------------------------------------
# gest measure
# ---------------------------------------------------------------------------

class TestCliMeasure:
    def test_measure_prints_sensors(self, tmp_path, capsys):
        source = tmp_path / "probe.s"
        source.write_text(SRC)
        rc = main(["measure", str(source), "--platform", "cortex_a7",
                   "--cores", "2", "--duration", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "IPC:" in out
        assert "avg chip power:" in out
        assert "status:          ok" in out

    def test_measure_shows_noc_power_for_shared_code(self, tmp_path,
                                                     capsys):
        from repro.core.template import Template
        from repro.isa import arm_shared_template
        source = tmp_path / "shared.s"
        source.write_text(Template(arm_shared_template()).instantiate(
            "ldr x7, [x11, #8]\nvmul v0, v1, v2"))
        rc = main(["measure", str(source), "--platform", "xgene2"])
        assert rc == 0
        assert "NoC power:" in capsys.readouterr().out

    def test_measure_missing_file(self, tmp_path, capsys):
        rc = main(["measure", str(tmp_path / "none.s")])
        assert rc == 1
        assert "does not exist" in capsys.readouterr().err

    def test_measure_bad_assembly(self, tmp_path, capsys):
        source = tmp_path / "bad.s"
        source.write_text("frobnicate x1\n")
        rc = main(["measure", str(source)])
        assert rc == 1
        assert "error" in capsys.readouterr().err
