"""Unit tests for the abstract-workload-model GA (repro.abstractmodel)."""

import pytest

from repro.abstractmodel import (AbstractEngine, CATEGORIES,
                                 WorkloadProfile, generate_loop)
from repro.core.errors import ConfigError
from repro.core.rng import make_rng
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.fitness import DefaultFitness
from repro.isa import ArmAssembler, arm_template
from repro.isa.model import InstrClass
from repro.measurement import PowerMeasurement


class TestWorkloadProfile:
    def test_default_is_valid(self):
        WorkloadProfile().validate()

    def test_random_profiles_valid(self):
        rng = make_rng(1)
        for _ in range(50):
            WorkloadProfile.random(rng).validate()

    def test_normalized_mix_sums_to_one(self):
        profile = WorkloadProfile.random(make_rng(2))
        assert sum(profile.normalized_mix().values()) == pytest.approx(1.0)

    def test_mutation_produces_valid_profiles(self):
        rng = make_rng(3)
        profile = WorkloadProfile.random(rng)
        for _ in range(100):
            profile = profile.mutate(rng)
            profile.validate()

    def test_mutation_changes_something_eventually(self):
        rng = make_rng(4)
        base = WorkloadProfile.random(rng)
        assert any(base.mutate(rng) != base for _ in range(10))

    def test_crossover_blends_within_parent_range(self):
        rng = make_rng(5)
        p1 = WorkloadProfile.random(rng)
        p2 = WorkloadProfile.random(rng)
        child = p1.crossover(p2, rng)
        child.validate()
        for category in CATEGORIES:
            low = min(p1.mix[category], p2.mix[category])
            high = max(p1.mix[category], p2.mix[category])
            assert low - 1e-9 <= child.mix[category] <= high + 1e-9

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadProfile(mix={"int_short": 1.0}).validate()
        bad_mix = {c: 0.0 for c in CATEGORIES}
        with pytest.raises(ConfigError):
            WorkloadProfile(mix=bad_mix).validate()
        with pytest.raises(ConfigError):
            WorkloadProfile(dependency_distance=0).validate()
        with pytest.raises(ConfigError):
            WorkloadProfile(fma_fraction=1.5).validate()
        with pytest.raises(ConfigError):
            WorkloadProfile(mem_stride=48).validate()

    def test_describe_mentions_knobs(self):
        text = WorkloadProfile().describe()
        assert "dep=" in text and "stride=" in text


class TestGenerator:
    def test_generates_requested_size(self):
        profile = WorkloadProfile()
        body = generate_loop(profile, 40, make_rng(0))
        program = ArmAssembler().assemble(body)
        assert program.loop_length == 40

    def test_generated_code_always_assembles(self):
        rng = make_rng(1)
        asm = ArmAssembler()
        for _ in range(30):
            profile = WorkloadProfile.random(rng)
            asm.assemble(generate_loop(profile, 30, rng))

    def test_mix_statistics_follow_profile(self):
        mix = {c: 0.0 for c in CATEGORIES}
        mix["simd"] = 3.0
        mix["mem_load"] = 1.0
        profile = WorkloadProfile(mix=mix)
        body = generate_loop(profile, 400, make_rng(2))
        program = ArmAssembler().assemble(body)
        counts = program.class_counts()
        simd = counts.get(InstrClass.SIMD, 0)
        loads = counts.get(InstrClass.MEM_LOAD, 0)
        assert simd + loads == 400
        assert 2.0 < simd / max(1, loads) < 4.5   # ~3:1

    def test_pure_branch_profile(self):
        mix = {c: 0.0 for c in CATEGORIES}
        mix["branch"] = 1.0
        body = generate_loop(WorkloadProfile(mix=mix), 10, make_rng(3))
        program = ArmAssembler().assemble(body)
        assert program.class_counts()[InstrClass.BRANCH] == 10

    def test_determinism_per_seed(self):
        profile = WorkloadProfile.random(make_rng(4))
        a = generate_loop(profile, 25, make_rng(9))
        b = generate_loop(profile, 25, make_rng(9))
        assert a == b

    def test_dependency_distance_affects_ilp(self):
        """Small dependency distance serialises the float pipeline."""
        from repro.cpu import PipelineSimulator
        from repro.cpu.microarch import microarch_for
        mix = {c: 0.0 for c in CATEGORIES}
        mix["float"] = 1.0
        sim = PipelineSimulator(microarch_for("cortex_a15"))
        asm = ArmAssembler()

        def ipc(dep):
            profile = WorkloadProfile(mix=mix, dependency_distance=dep,
                                      fma_fraction=0.0)
            body = generate_loop(profile, 30, make_rng(5))
            return sim.execute(asm.assemble(body), 400).ipc

        assert ipc(12) > ipc(2) * 1.2

    def test_bad_size_rejected(self):
        with pytest.raises(ConfigError):
            generate_loop(WorkloadProfile(), 0, make_rng(0))


class TestAbstractEngine:
    def _engine(self, **kwargs):
        machine = SimulatedMachine("cortex_a15", seed=8, sim_cycles=600)
        target = SimulatedTarget(machine)
        target.connect()
        defaults = dict(population_size=8, generations=5, loop_size=20,
                        tournament_size=3, seed=8)
        defaults.update(kwargs)
        return AbstractEngine(
            PowerMeasurement(target, {"samples": "2"}),
            DefaultFitness(), arm_template(), **defaults)

    def test_search_improves(self):
        engine = self._engine(generations=8)
        best = engine.run()
        series = engine.best_fitness_series()
        assert best.fitness >= series[0]
        assert series[-1] >= series[0]

    def test_history_length(self):
        engine = self._engine()
        engine.run()
        assert len(engine.history) == 5

    def test_best_individual_has_realisation(self):
        engine = self._engine()
        best = engine.run()
        assert best.loop_body
        assert best.measurements
        ArmAssembler().assemble(best.loop_body)

    def test_deterministic_per_seed(self):
        a = self._engine().run()
        b = self._engine().run()
        assert a.fitness == b.fitness
        assert a.profile == b.profile

    def test_elitism_keeps_best_monotone(self):
        engine = self._engine(generations=8)
        engine.run()
        series = engine.best_fitness_series()
        assert all(b >= a - 0.02 * series[-1]
                   for a, b in zip(series, series[1:]))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            self._engine(population_size=1)
        with pytest.raises(ConfigError):
            self._engine(generations=0)
