"""Tests for the paper's Section IV/VII extensions: cache-miss
measurement, LLC stress search, shared-memory power, current-spectrum
analysis, C-level optimisation and checkpoint/resume."""

import numpy as np
import pytest

from repro.core import (GAParameters, GeneticEngine, RunConfig,
                        random_individual)
from repro.core.errors import AssemblyError, ConfigError, MeasurementError
from repro.core.rng import make_rng
from repro.cpu import MemoryHierarchy, SimulatedMachine, SimulatedTarget
from repro.experiments import GAScale
from repro.fitness import DefaultFitness
from repro.isa import (arm_cache_stress_library, arm_library,
                       arm_shared_template, arm_template, clike_library,
                       clike_template, compile_clike)
from repro.measurement import CacheMissMeasurement, PowerMeasurement


# ---------------------------------------------------------------------------
# cache-miss measurement & catalog
# ---------------------------------------------------------------------------

class TestCacheMissMeasurement:
    def _target(self):
        machine = SimulatedMachine("xgene2", seed=2, sim_cycles=800,
                                   hierarchy=MemoryHierarchy())
        t = SimulatedTarget(machine)
        t.connect()
        return t

    def test_measures_streaming_higher_than_resident(self):
        meas = CacheMissMeasurement(self._target(), {"samples": "2"})
        streaming = (".loop\nldr x7, [x10, #0]\nadd x10, x10, #4096\n"
                     ".endloop\n")
        resident = (".loop\nldr x7, [x10, #0]\nldr x8, [x10, #64]\n"
                    ".endloop\n")
        assert meas.measure(streaming, None)[0] > \
            meas.measure(resident, None)[0] * 10

    def test_requires_hierarchy(self, a15_machine):
        target = SimulatedTarget(a15_machine)
        target.connect()
        meas = CacheMissMeasurement(target, {"samples": "2"})
        with pytest.raises(MeasurementError, match="MemoryHierarchy"):
            meas.measure(".loop\nnop\n.endloop\n", None)

    def test_returns_five_values(self):
        meas = CacheMissMeasurement(self._target(), {"samples": "2"})
        values = meas.measure(".loop\nldr x7, [x10, #0]\n.endloop\n", None)
        assert len(values) == 5

    def test_cache_stress_catalog_assembles(self, rng):
        lib = arm_cache_stress_library()
        from repro.isa import ArmAssembler
        asm = ArmAssembler()
        for name in lib.names:
            spec = lib.spec(name)
            for _ in range(8):
                asm.assemble(spec.render(lib.sample_values(spec, rng)))

    def test_cache_stress_ga_learns_to_miss(self):
        """A short GA on the cache catalog must discover striding."""
        machine = SimulatedMachine("xgene2", environment="os", seed=3,
                                   sim_cycles=800,
                                   hierarchy=MemoryHierarchy())
        target = SimulatedTarget(machine)
        target.connect()
        ga = GAParameters(population_size=10, individual_size=16,
                          mutation_rate=0.08, generations=8, seed=3)
        config = RunConfig(ga=ga, library=arm_cache_stress_library(),
                           template_text=arm_template())
        engine = GeneticEngine(
            config, CacheMissMeasurement(target, {"samples": "2"}),
            DefaultFitness())
        history = engine.run()
        series = history.best_fitness_series()
        assert series[-1] > series[0]
        assert history.best_individual.fitness > 50   # misses/kinstr
        advances = sum(1 for i in history.best_individual.instructions
                       if i.name == "ADVANCE")
        assert advances >= 1


# ---------------------------------------------------------------------------
# shared-memory power
# ---------------------------------------------------------------------------

class TestSharedMemoryPower:
    def _run(self, template_src, body, cores=8):
        machine = SimulatedMachine("xgene2", seed=4, sim_cycles=800)
        from repro.core.template import Template
        source = Template(template_src).instantiate(body)
        program = machine.compile(source)
        return machine, machine.run(program, cores=cores), program

    BODY = "\n".join(["ldr x7, [x11, #8]", "str x1, [x11, #16]",
                      "ldr x8, [x10, #0]", "vmul v0, v1, v2"] * 5)

    def test_shared_template_adds_noc_power(self):
        _, private, _ = self._run(arm_template(), self.BODY)
        _, shared, _ = self._run(arm_shared_template(), self.BODY)
        assert private.noc_power_w == 0.0
        assert shared.noc_power_w > 0.5
        assert shared.chip_power_w > private.chip_power_w

    def test_shared_fraction_counts_bases(self):
        machine, _, program = self._run(arm_shared_template(), self.BODY)
        # 2 of 3 memory instructions use the shared base x11.
        assert machine.shared_access_fraction(program) == \
            pytest.approx(2 / 3)

    def test_noc_power_scales_with_cores(self):
        _, one, _ = self._run(arm_shared_template(), self.BODY, cores=1)
        _, eight, _ = self._run(arm_shared_template(), self.BODY, cores=8)
        assert eight.noc_power_w > one.noc_power_w * 6

    def test_platform_without_noc_is_unaffected(self):
        machine = SimulatedMachine("cortex_a15", seed=4, sim_cycles=600)
        from repro.core.template import Template
        source = Template(arm_shared_template()).instantiate(self.BODY)
        result = machine.run_source(source, cores=2)
        assert result.noc_power_w == 0.0

    def test_no_memory_instructions_no_noc(self):
        _, result, _ = self._run(arm_shared_template(),
                                 "add x1, x2, x3\nvmul v0, v1, v2")
        assert result.noc_power_w == 0.0


# ---------------------------------------------------------------------------
# current spectrum
# ---------------------------------------------------------------------------

class TestSpectrum:
    def test_pure_tone_detected(self):
        from repro.analysis import current_spectrum
        fs = 3.1e9
        n = 4096
        f0 = 100e6
        t = np.arange(n) / fs
        current = 10.0 + 2.0 * np.sin(2 * np.pi * f0 * t)
        spectrum = current_spectrum(current, fs, warmup_fraction=0.0)
        assert spectrum.dominant_frequency_hz() == pytest.approx(
            f0, rel=0.02)
        assert spectrum.dc_a == pytest.approx(10.0, abs=0.01)
        assert spectrum.amplitude_near(f0, 10e6) == pytest.approx(
            2.0, rel=0.1)

    def test_flat_current_has_no_ac(self):
        from repro.analysis import current_spectrum
        spectrum = current_spectrum(np.full(2048, 5.0), 1e9)
        assert spectrum.total_ac_amplitude() < 1e-9

    def test_resonance_band_ratio(self):
        from repro.analysis import current_spectrum, resonance_band_ratio
        fs = 3.1e9
        t = np.arange(4096) / fs
        current = 10.0 + 2.0 * np.sin(2 * np.pi * 100e6 * t) \
            + 0.2 * np.sin(2 * np.pi * 500e6 * t)
        spectrum = current_spectrum(current, fs, warmup_fraction=0.0)
        band, fraction = resonance_band_ratio(spectrum, 100e6)
        assert band == pytest.approx(2.0, rel=0.1)
        assert fraction > 0.9

    def test_input_validation(self):
        from repro.analysis import current_spectrum
        from repro.core.errors import SimulationError
        with pytest.raises(SimulationError):
            current_spectrum(np.array([1.0, 2.0]), 1e9)
        with pytest.raises(SimulationError):
            current_spectrum(np.ones(64), 0.0)


# ---------------------------------------------------------------------------
# C-level optimisation
# ---------------------------------------------------------------------------

class TestClike:
    def test_declarations_lower_to_movs(self):
        asm = compile_clike("long a = 5;\nloop {\na = a + b;\n}\n")
        assert "mov x1, #5" in asm
        assert "add x1, x1, x2" in asm

    def test_loop_block_becomes_measured_region(self):
        asm = compile_clike("long i = 10;\nloop {\na = b + c;\n}\n")
        assert ".loop" in asm and ".endloop" in asm
        assert "subs x0, x0, #1" in asm
        assert "bne __clike_loop__" in asm

    def test_float_ops_and_fma(self):
        asm = compile_clike(
            "loop {\nf0 = f1 * f2;\nf3 = fma(f4, f5);\n}\n")
        assert "fmul v0, v1, v2" in asm
        assert "fmla v3, v4, v5" in asm

    def test_memory_access(self):
        asm = compile_clike("loop {\na = p[16];\nq[8] = b;\n}\n")
        assert "ldr x1, [x10, #16]" in asm
        assert "str x2, [x11, #8]" in asm

    def test_compiled_output_assembles_and_runs(self, a15_machine):
        source = compile_clike(clike_template(1000).replace(
            "#loop_code", "f0 = f1 * f2;\na = p[8];\nb = a ^ c;"))
        result = a15_machine.run_source(source)
        assert result.ipc > 0

    def test_unknown_variable_rejected(self):
        with pytest.raises(AssemblyError, match="unknown variable"):
            compile_clike("loop {\nz = a + b;\n}\n")

    def test_mixed_types_rejected(self):
        with pytest.raises(AssemblyError, match="mixed"):
            compile_clike("loop {\nf0 = a + f1;\n}\n")

    def test_unparseable_statement_rejected(self):
        with pytest.raises(AssemblyError, match="cannot parse"):
            compile_clike("loop {\nwhile (1) {}\n}\n")

    def test_missing_loop_rejected(self):
        with pytest.raises(AssemblyError, match="no loop"):
            compile_clike("long a = 1;\n")

    def test_catalog_statements_all_compile(self, rng):
        lib = clike_library()
        for name in lib.names:
            spec = lib.spec(name)
            for _ in range(8):
                statement = spec.render(lib.sample_values(spec, rng))
                compile_clike(f"loop {{\n{statement}\n}}\n")

    def test_c_level_ga_improves(self):
        machine = SimulatedMachine("cortex_a15", seed=5, sim_cycles=800)
        target = SimulatedTarget(machine, translator=compile_clike)
        target.connect()
        ga = GAParameters(population_size=10, individual_size=15,
                          mutation_rate=0.08, generations=8, seed=5)
        config = RunConfig(ga=ga, library=clike_library(),
                           template_text=clike_template())
        engine = GeneticEngine(
            config, PowerMeasurement(target, {"samples": "3"}),
            DefaultFitness())
        history = engine.run()
        series = history.best_fitness_series()
        assert series[-1] > series[0]


# ---------------------------------------------------------------------------
# checkpoint / resume
# ---------------------------------------------------------------------------

class _LdrCounter:
    def measure(self, source_text, individual):
        return [float(sum(1 for i in individual.instructions
                          if i.name == "LDR"))]

    def measure_repeated(self, source_text, individual):
        return self.measure(source_text, individual)


class TestCheckpointResume:
    def test_resume_reproduces_uninterrupted_run(self, tiny_library,
                                                 tiny_template, tmp_path):
        def config():
            ga = GAParameters(population_size=8, individual_size=10,
                              mutation_rate=0.1, generations=8,
                              tournament_size=3, seed=77)
            return RunConfig(ga=ga, library=tiny_library,
                             template_text=tiny_template.text)

        # Reference: one uninterrupted run.
        full = GeneticEngine(config(), _LdrCounter(),
                             DefaultFitness()).run()

        # Interrupted run: 4 generations, checkpointing...
        checkpoint = tmp_path / "run.ckpt"
        first = GeneticEngine(config(), _LdrCounter(), DefaultFitness(),
                              checkpoint_path=checkpoint)
        first.run(generations=4)
        assert checkpoint.exists()

        # ...then resume to the full 8.
        resumed_engine = GeneticEngine.resume(
            config(), _LdrCounter(), DefaultFitness(), checkpoint)
        resumed = resumed_engine.run(generations=8)

        assert len(resumed.generations) == 4   # generations 4..7
        assert resumed.best_individual.genome_key() == \
            full.best_individual.genome_key()
        assert resumed.generations[-1].best_fitness == \
            full.generations[-1].best_fitness

    def test_resume_missing_file(self, tiny_config, tmp_path):
        with pytest.raises(ConfigError, match="does not exist"):
            GeneticEngine.resume(tiny_config, _LdrCounter(),
                                 DefaultFitness(), tmp_path / "none.ckpt")

    def test_resume_garbage_file(self, tiny_config, tmp_path):
        import pickle
        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(pickle.dumps({"not": "a checkpoint"}))
        with pytest.raises(ConfigError, match="not a checkpoint"):
            GeneticEngine.resume(tiny_config, _LdrCounter(),
                                 DefaultFitness(), bad)

    def test_resume_unsupported_version(self, tiny_config, tmp_path):
        import pickle
        checkpoint = tmp_path / "v.ckpt"
        GeneticEngine(tiny_config, _LdrCounter(), DefaultFitness(),
                      checkpoint_path=checkpoint).run(generations=1)
        payload = pickle.loads(checkpoint.read_bytes())
        payload["version"] = 99
        checkpoint.write_bytes(pickle.dumps(payload))
        with pytest.raises(ConfigError,
                           match="unsupported version 99"):
            GeneticEngine.resume(tiny_config, _LdrCounter(),
                                 DefaultFitness(), checkpoint)

    def test_resume_missing_version_field(self, tiny_config, tmp_path):
        import pickle
        checkpoint = tmp_path / "v.ckpt"
        GeneticEngine(tiny_config, _LdrCounter(), DefaultFitness(),
                      checkpoint_path=checkpoint).run(generations=1)
        payload = pickle.loads(checkpoint.read_bytes())
        del payload["version"]
        checkpoint.write_bytes(pickle.dumps(payload))
        with pytest.raises(ConfigError,
                           match="unsupported version None"):
            GeneticEngine.resume(tiny_config, _LdrCounter(),
                                 DefaultFitness(), checkpoint)

    def test_resume_past_the_end_rejected(self, tiny_library,
                                          tiny_template, tmp_path):
        ga = GAParameters(population_size=6, individual_size=8,
                          mutation_rate=0.1, generations=3, seed=1)
        config = RunConfig(ga=ga, library=tiny_library,
                           template_text=tiny_template.text)
        checkpoint = tmp_path / "c.ckpt"
        GeneticEngine(config, _LdrCounter(), DefaultFitness(),
                      checkpoint_path=checkpoint).run()
        resumed = GeneticEngine.resume(config, _LdrCounter(),
                                       DefaultFitness(), checkpoint)
        with pytest.raises(ConfigError, match="already covers"):
            resumed.run()

    def test_checkpoint_without_path_rejected(self, tiny_config):
        engine = GeneticEngine(tiny_config, _LdrCounter(),
                               DefaultFitness())
        from repro.core.population import Population
        with pytest.raises(ConfigError, match="no checkpoint path"):
            engine.save_checkpoint(Population([random_individual(
                tiny_config.library, 4, make_rng(0))]))


# ---------------------------------------------------------------------------
# frequency scaling & shmoo
# ---------------------------------------------------------------------------

class TestFrequencyScaling:
    def test_at_frequency_returns_reclocked_machine(self, athlon_machine):
        faster = athlon_machine.at_frequency(3.4e9)
        assert faster.arch.frequency_hz == 3.4e9
        assert faster.nominal_frequency_hz == \
            athlon_machine.arch.frequency_hz
        # The original machine is untouched.
        assert athlon_machine.arch.frequency_hz == 3.1e9

    def test_critical_voltage_rises_with_frequency(self, athlon_machine):
        slow = athlon_machine.at_frequency(2.5e9)
        fast = athlon_machine.at_frequency(3.6e9)
        assert slow.critical_voltage_v() \
            < athlon_machine.critical_voltage_v() \
            < fast.critical_voltage_v()

    def test_nominal_point_unchanged(self, athlon_machine):
        reclocked = athlon_machine.at_frequency(3.1e9)
        assert reclocked.critical_voltage_v() == pytest.approx(
            athlon_machine.critical_voltage_v())

    def test_bad_frequency_rejected(self, athlon_machine):
        from repro.core.errors import TargetError
        with pytest.raises(TargetError):
            athlon_machine.at_frequency(0.0)

    def test_higher_clock_draws_more_power(self, athlon_machine):
        src = ".loop\naddps xmm0, xmm1\nmov r9, [rbp+8]\n.endloop\n"
        base = athlon_machine.run_source(src).core_power_w
        fast = athlon_machine.at_frequency(3.6e9).run_source(
            src).core_power_w
        assert fast > base

    def test_reclocking_shifts_current_spectrum(self, athlon_machine):
        """The same loop's current fundamental moves with the clock —
        the mechanism that detunes a dI/dt virus off its sweet spot."""
        from repro.analysis import current_spectrum
        src = (".loop\n" + "vfmadd231ps xmm0, xmm1, xmm2\n" * 8
               + "idiv2 rsi, rdi\n" * 2 + ".endloop\n")

        def dominant(machine):
            program = machine.compile(src)
            trace = machine.pipeline.execute(
                program, max_cycles=machine.sim_cycles)
            current = machine.power.current_trace_a(program, trace)
            return current_spectrum(
                current, machine.arch.frequency_hz
            ).dominant_frequency_hz()

        base = dominant(athlon_machine)
        fast = dominant(athlon_machine.at_frequency(3.6e9))
        assert fast == pytest.approx(base * 3.6 / 3.1, rel=0.1)


class TestShmoo:
    def _machine(self):
        return SimulatedMachine("athlon_x4", seed=9, sim_cycles=800)

    def test_vmin_curve_monotone(self):
        from repro.analysis import frequency_shmoo
        machine = self._machine()
        result = frequency_shmoo(
            machine, ".loop\naddps xmm0, xmm1\nmulps xmm2, xmm3\n"
            ".endloop\n", "probe",
            frequency_fractions=(0.9, 1.0, 1.1))
        assert result.is_monotonic_in_frequency()
        assert len(result.frequencies_hz) == 3

    def test_shmoo_table_renders(self):
        from repro.analysis import frequency_shmoo, shmoo_table
        machine = self._machine()
        result = frequency_shmoo(machine, ".loop\nnop\n.endloop\n",
                                 "idleish", frequency_fractions=(1.0,))
        text = shmoo_table([result])
        assert "idleish" in text and "f (GHz)" in text

    def test_empty_grid_rejected(self):
        from repro.analysis import frequency_shmoo
        from repro.core.errors import SimulationError
        with pytest.raises(SimulationError):
            frequency_shmoo(self._machine(), ".loop\nnop\n.endloop\n",
                            "x", frequency_fractions=())

    def test_negative_fraction_rejected(self):
        from repro.analysis import frequency_shmoo
        from repro.core.errors import SimulationError
        with pytest.raises(SimulationError):
            frequency_shmoo(self._machine(), ".loop\nnop\n.endloop\n",
                            "x", frequency_fractions=(-1.0,))
