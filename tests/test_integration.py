"""Integration tests: full GA searches against the simulated machines.

These run small-but-real searches end to end (config → engine →
measurement on the simulated target → fitness → output recording) and
check the paper's qualitative mechanics at miniature scale.
"""

import pytest

from repro.analysis.postprocess import run_statistics
from repro.core import (GAParameters, GeneticEngine, OutputRecorder,
                        RunConfig)
from repro.core.population import load_population
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.fitness import DefaultFitness, TemperatureSimplicityFitness
from repro.isa import arm_library, arm_template, x86_library, x86_template
from repro.measurement import (IPCMeasurement, OscilloscopeMeasurement,
                               PowerMeasurement, TemperatureMeasurement)


def _engine(platform, measurement_cls, fitness=None, seed=11,
            pop=10, gens=6, size=20, env="bare_metal", samples=3,
            recorder=None):
    machine = SimulatedMachine(platform, environment=env, seed=seed,
                               sim_cycles=800)
    target = SimulatedTarget(machine)
    target.connect()
    isa = machine.arch.isa
    library = arm_library() if isa == "arm" else x86_library()
    template = arm_template() if isa == "arm" else x86_template()
    ga = GAParameters(population_size=pop, individual_size=size,
                      mutation_rate=max(0.02, 1.0 / size),
                      generations=gens, seed=seed)
    config = RunConfig(ga=ga, library=library, template_text=template)
    measurement = measurement_cls(target, {"samples": str(samples)})
    engine = GeneticEngine(config, measurement,
                           fitness or DefaultFitness(), recorder=recorder)
    return machine, engine


class TestPowerSearch:
    def test_power_search_improves(self):
        _, engine = _engine("cortex_a15", PowerMeasurement)
        history = engine.run()
        series = history.best_fitness_series()
        assert series[-1] > series[0]

    def test_nops_bred_out(self):
        """NOPs contribute almost no power; a converged power search
        should carry few of them."""
        _, engine = _engine("cortex_a15", PowerMeasurement, gens=12,
                            pop=14)
        history = engine.run()
        mix = history.best_individual.instruction_mix()
        assert mix.get("nop", 0) <= 2


class TestIpcSearch:
    def test_ipc_search_improves_and_drops_divisions(self):
        """The paper's DIV example: long-latency instructions disappear
        from IPC-maximising individuals."""
        _, engine = _engine("xgene2", IPCMeasurement, env="os", gens=10,
                            pop=12)
        history = engine.run()
        best = history.best_individual
        assert best.fitness > 2.5
        sdivs = sum(1 for i in best.instructions if i.name == "SDIV")
        assert sdivs <= 1


class TestTemperatureSearch:
    def test_temperature_search_improves(self):
        machine, engine = _engine("xgene2", TemperatureMeasurement,
                                  env="os", gens=8, pop=10, size=30,
                                  samples=6)
        history = engine.run()
        series = history.best_fitness_series()
        assert series[-1] >= series[0]
        assert history.best_individual.fitness > \
            machine.idle_temperature_c()


class TestComplexFitnessSearch:
    def test_equation1_reduces_unique_instructions(self):
        machine = SimulatedMachine("xgene2", environment="os", seed=11,
                                   sim_cycles=800)
        fitness = TemperatureSimplicityFitness(
            idle_temperature_c=machine.idle_temperature_c(),
            max_temperature_c=machine.max_temperature_c(active_cores=1))
        _, engine = _engine("xgene2", TemperatureMeasurement,
                            fitness=fitness, env="os", gens=12, pop=12,
                            size=30, samples=4)
        history = engine.run()
        random_baseline = load = None
        first_best = history.generations[0]
        best = history.best_individual
        # Simplicity pressure: the final winner uses fewer unique
        # opcodes than a 30-instruction random individual typically
        # does (~15+ of the 24 available).
        assert best.unique_instruction_count() <= 14
        assert 0.0 <= best.fitness <= 1.0


class TestDidtSearch:
    def test_didt_search_improves_noise(self):
        _, engine = _engine("athlon_x4", OscilloscopeMeasurement,
                            env="os", gens=10, pop=12, size=31)
        history = engine.run()
        series = history.best_fitness_series()
        assert series[-1] > series[0] * 1.2


class TestRecordingIntegration:
    def test_full_run_recorded_and_postprocessable(self, tmp_path):
        recorder = OutputRecorder(tmp_path / "run")
        _, engine = _engine("cortex_a7", PowerMeasurement, gens=4,
                            pop=6, recorder=recorder)
        history = engine.run()
        stats = run_statistics(recorder.results_dir)
        assert stats.generations == 4
        assert stats.best_fitness_per_generation == \
            history.best_fitness_series()

    def test_recorded_population_seeds_new_search(self, tmp_path):
        recorder = OutputRecorder(tmp_path / "run")
        _, engine = _engine("cortex_a7", PowerMeasurement, gens=3,
                            pop=6, recorder=recorder)
        first = engine.run()

        seed_file = recorder.population_files()[-1]
        machine = SimulatedMachine("cortex_a7", seed=12, sim_cycles=800)
        target = SimulatedTarget(machine)
        target.connect()
        ga = GAParameters(population_size=6, individual_size=20,
                          mutation_rate=0.05, generations=3, seed=12)
        config = RunConfig(ga=ga, library=arm_library(),
                           template_text=arm_template(),
                           seed_population_file=seed_file)
        engine2 = GeneticEngine(config,
                                PowerMeasurement(target, {"samples": "3"}),
                                DefaultFitness())
        second = engine2.run()
        # The seeded run starts from the recorded population's level,
        # not from random-population level.
        assert second.generations[0].best_fitness >= \
            first.generations[-1].best_fitness * 0.95

    def test_recorded_sources_reassemble(self, tmp_path):
        recorder = OutputRecorder(tmp_path / "run")
        machine, engine = _engine("cortex_a15", PowerMeasurement,
                                  gens=2, pop=5, recorder=recorder)
        engine.run()
        for path in recorder.individuals_dir.glob("*.txt"):
            program = machine.compile(path.read_text())
            assert program.loop_length >= 20


class TestCrossPlatform:
    def test_x86_ga_runs_on_athlon(self):
        _, engine = _engine("athlon_x4", PowerMeasurement, env="os",
                            gens=4, pop=8)
        history = engine.run()
        assert history.best_individual.fitness > 0
