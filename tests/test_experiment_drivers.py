"""Smoke tests for the figure/table drivers at miniature scale.

The benchmarks run the drivers at full scale and assert the paper's
shapes; these tests only verify the drivers' plumbing — result
structures, renderers, normalisation — so they run in seconds.
"""

import pytest

from repro.experiments import (GAScale, clear_virus_cache, figure5,
                               figure7, figure8, figure9,
                               instruction_order_experiment,
                               llc_stress_experiment,
                               shared_memory_experiment, table3, table4)

TINY = GAScale(population_size=6, generations=2, individual_size=12,
               samples=2)


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_virus_cache()
    yield
    clear_virus_cache()


class TestPowerFigureDriver:
    @pytest.fixture(scope="class")
    def fig5(self):
        return figure5(scale=TINY)

    def test_contains_all_series(self, fig5):
        expected = {"GA_virus_cortex_a15", "GA_virus_cortex_a7",
                    "coremark", "imdct", "fdct", "a15_manual_stress"}
        assert set(fig5.power_w) == expected

    def test_normalised_reference_is_one(self, fig5):
        assert fig5.normalized["coremark"] == pytest.approx(1.0)

    def test_rows_sorted_descending(self, fig5):
        values = [v for _, v in fig5.rows()]
        assert values == sorted(values, reverse=True)

    def test_render_is_bar_chart(self, fig5):
        text = fig5.render()
        assert "cortex_a15" in text and "#" in text

    def test_margin_helper(self, fig5):
        assert fig5.virus_margin_over_manual() > 0


class TestTemperatureDriver:
    def test_figure7_structure(self):
        result = figure7(scale=TINY)
        assert "powerVirus" in result.temperature_c
        assert "IPCvirus" in result.temperature_c
        assert "bodytrack" in result.temperature_c
        assert result.normalized["bodytrack"] == pytest.approx(1.0)
        rise = result.rise_over_ambient
        assert all(v > 0 for v in rise.values())
        assert "Figure 7" in result.render()


class TestTableDrivers:
    def test_table3_structure(self):
        result = table3(scale=TINY)
        assert sum(v for k, v in result.a15_mix.items()) == 12
        assert "Cortex-A15" in result.render()

    def test_table4_structure(self):
        result = table4(scale=TINY)
        assert set(result.relative_ipc) == {
            "powerVirus", "powerVirusSimple", "IPCvirus"}
        assert result.relative_ipc["powerVirus"] == pytest.approx(1.0)
        assert result.relative_power["powerVirus"] == pytest.approx(1.0)
        assert "# Unique Instr." in result.render()


class TestVoltageDrivers:
    def test_figure8_structure(self):
        result = figure8(scale=TINY)
        assert "didtVirus" in result.peak_to_peak_v
        assert "prime95" in result.peak_to_peak_v
        assert result.virus_margin() > 0
        assert "mV" in result.render()

    def test_figure9_structure(self):
        result = figure9(scale=TINY)
        assert "didtVirus" in result.vmin_v
        ranked = result.ranked()
        assert ranked[0].vmin_v == max(result.vmin_v.values())
        assert "V_MIN" in result.render()


class TestExtensionDrivers:
    def test_llc_stress_structure(self):
        result = llc_stress_experiment(seed=41, scale=TINY)
        assert set(result.runs) == {"llcVirus", "l1_resident",
                                    "streaming"}
        misses = result.llc_misses_per_kinstr()
        assert all(v >= 0 for v in misses.values())
        assert "LLC misses" in result.render()

    def test_shared_memory_structure(self):
        result = shared_memory_experiment(seed=51, scale=TINY)
        assert set(result.runs) == {"privateVirus", "sharedVirus"}
        assert result.runs["privateVirus"].noc_power_w == 0.0
        assert "NoC" in result.render()

    def test_instruction_order_structure(self):
        result = instruction_order_experiment(orderings=5, seed=3)
        assert len(result.powers_w) == 5
        assert result.max_w >= result.min_w
        assert result.spread >= 0
        assert "orderings" in result.render()
