"""Tests for the asyncio run orchestrator (repro.service).

The service contract: runs submitted to the store and executed by
orchestrator worker slots — concurrently, sharing one sqlite
evaluation cache — finish with exactly the best fitness a direct
``gest run`` of the same configuration produces; cancellation stops a
run at a generation boundary; a run interrupted mid-flight resumes
from the store checkpoint and still matches the uninterrupted result.
"""

import sqlite3

import pytest

from repro.analysis.postprocess import run_statistics
from repro.cli import main
from repro.core.config import parse_config_file
from repro.isa.catalogs import write_stock_config
from repro.service import Orchestrator, execute_run
from repro.store import RunStore

PLATFORM = "xgene2"


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    """A tiny ready-to-run stock config bundle (arm/ipc)."""
    directory = tmp_path_factory.mktemp("bundle")
    return write_stock_config(directory, isa="arm", metric="ipc",
                              population_size=6, individual_size=10,
                              generations=3, seed=11)


@pytest.fixture(scope="module")
def direct_best(bundle, tmp_path_factory):
    """Best overall fitness of a plain `gest run` on the bundle."""
    results = tmp_path_factory.mktemp("direct") / "results"
    rc = main(["run", str(bundle), "--platform", PLATFORM,
               "--results", str(results), "--quiet"])
    assert rc == 0
    return run_statistics(results).overall_best_fitness


def _submit(store_path, bundle, **kwargs):
    with RunStore(store_path) as store:
        return store.submit_run(parse_config_file(bundle),
                                platform=PLATFORM, **kwargs)


class TestOrchestrator:
    def test_concurrent_runs_match_direct_run(self, bundle, direct_best,
                                              tmp_path):
        """Two runs share one store + sqlite cache and both land on the
        direct-run fitness — the headline service acceptance check."""
        store_path = tmp_path / "gest.sqlite"
        first = _submit(store_path, bundle)
        second = _submit(store_path, bundle)

        orchestrator = Orchestrator(store_path, workers=2,
                                    workdir=tmp_path / "work")
        completed = orchestrator.serve_until_idle()
        assert sorted(completed) == [first, second]

        with RunStore(store_path) as store:
            for run_id in (first, second):
                row = store.get_run(run_id)
                assert row.status == "finished"
                assert row.best_fitness == pytest.approx(direct_best)
                winner = store.winner(run_id)
                assert winner["fitness"] == pytest.approx(direct_best)
                assert [g["number"] for g in store.generations(run_id)] \
                    == [0, 1, 2]
                hits, misses = store.cache_activity(run_id)
                assert hits + misses > 0
            # The second run re-discovers genomes the first already
            # measured, so the shared pool must have produced hits.
            total_hits = sum(store.cache_activity(r)[0]
                             for r in (first, second))
            assert total_hits > 0

    def test_workdir_gets_paper_layout(self, bundle, tmp_path):
        store_path = tmp_path / "gest.sqlite"
        run_id = _submit(store_path, bundle, generations=1)
        Orchestrator(store_path, workers=1,
                     workdir=tmp_path / "work").serve_until_idle()
        run_dir = tmp_path / "work" / run_id
        assert (run_dir / "template.s").exists()
        assert (run_dir / "config.xml").exists()
        assert (run_dir / "populations" / "population_0.bin").exists()
        records = list(run_statistics(run_dir).stats_records)
        assert records and records[0]["run_id"] == run_id

    def test_failed_run_recorded_not_raised(self, bundle, tmp_path):
        store_path = tmp_path / "gest.sqlite"
        bad = _submit(store_path, bundle)
        with RunStore(store_path) as store:
            store.claim_next()
            # Sabotage: a platform no machine catalog knows.
            with store.connection() as conn:
                conn.execute(
                    "UPDATE runs SET platform = 'no_such_chip' "
                    "WHERE run_id = ?", (bad,))
        status = execute_run(store_path, bad)
        assert status == "failed"
        with RunStore(store_path) as store:
            row = store.get_run(bad)
            assert row.status == "failed"
            assert "no_such_chip" in row.error

    def test_failure_does_not_block_other_runs(self, bundle, direct_best,
                                               tmp_path):
        store_path = tmp_path / "gest.sqlite"
        bad = _submit(store_path, bundle)
        good = _submit(store_path, bundle)
        with RunStore(store_path) as store:
            with store.connection() as conn:
                conn.execute(
                    "UPDATE runs SET platform = 'no_such_chip' "
                    "WHERE run_id = ?", (bad,))
        completed = Orchestrator(store_path,
                                 workers=1).serve_until_idle()
        assert sorted(completed) == [bad, good]
        with RunStore(store_path) as store:
            assert store.get_run(bad).status == "failed"
            row = store.get_run(good)
            assert row.status == "finished"
            assert row.best_fitness == pytest.approx(direct_best)


class TestCancellation:
    def test_cancel_requested_stops_at_generation_boundary(self, bundle,
                                                           tmp_path):
        store_path = tmp_path / "gest.sqlite"
        run_id = _submit(store_path, bundle)
        with RunStore(store_path) as store:
            assert store.claim_next() == run_id
            store.request_cancel(run_id)  # running: flag only
        status = execute_run(store_path, run_id)
        assert status == "cancelled"
        with RunStore(store_path) as store:
            row = store.get_run(run_id)
            assert row.status == "cancelled"
            numbers = [g["number"] for g in store.generations(run_id)]
            assert numbers and numbers[-1] < 2  # stopped early
            assert store.load_checkpoint(run_id) is not None

    def test_cancel_queued_run_never_executes(self, bundle, tmp_path):
        store_path = tmp_path / "gest.sqlite"
        run_id = _submit(store_path, bundle)
        with RunStore(store_path) as store:
            store.request_cancel(run_id)
        completed = Orchestrator(store_path,
                                 workers=1).serve_until_idle()
        assert completed == []
        with RunStore(store_path) as store:
            assert store.get_run(run_id).status == "cancelled"


def _reset_to_queued(store_path, run_id):
    """Simulate a crash: put a half-done run back in line, flag clear."""
    conn = sqlite3.connect(str(store_path))
    with conn:
        conn.execute(
            "UPDATE runs SET status = 'queued', cancel_requested = 0 "
            "WHERE run_id = ?", (run_id,))
    conn.close()


class TestCrashResume:
    def test_resume_from_store_checkpoint_matches_direct(self, bundle,
                                                         direct_best,
                                                         tmp_path):
        """Interrupt after generation 0, resume via the service, and
        land exactly where the uninterrupted run lands (the engine's
        bit-identical resume contract, now through the store)."""
        store_path = tmp_path / "gest.sqlite"
        run_id = _submit(store_path, bundle)
        with RunStore(store_path) as store:
            store.claim_next()
            store.request_cancel(run_id)
        assert execute_run(store_path, run_id) == "cancelled"
        with RunStore(store_path) as store:
            done_before = [g["number"] for g in store.generations(run_id)]
        assert done_before == [0]

        _reset_to_queued(store_path, run_id)
        completed = Orchestrator(store_path,
                                 workers=1).serve_until_idle()
        assert completed == [run_id]
        with RunStore(store_path) as store:
            row = store.get_run(run_id)
            assert row.status == "finished"
            assert row.best_fitness == pytest.approx(direct_best)
            assert [g["number"] for g in store.generations(run_id)] == \
                [0, 1, 2]
            resumed_events = [payload for _, kind, payload in
                              store.events(run_id)
                              if kind == "run_started"]
            assert resumed_events[-1]["resumed"] is True

    def test_checkpoint_covering_final_generation_closes_books(
            self, bundle, direct_best, tmp_path):
        """A run that checkpointed its last generation but died before
        the ledger update is finalized without recomputation."""
        store_path = tmp_path / "gest.sqlite"
        run_id = _submit(store_path, bundle)
        with RunStore(store_path) as store:
            store.claim_next()
        assert execute_run(store_path, run_id) == "finished"
        _reset_to_queued(store_path, run_id)
        assert execute_run(store_path, run_id) == "finished"
        with RunStore(store_path) as store:
            row = store.get_run(run_id)
            assert row.status == "finished"
            assert row.best_fitness == pytest.approx(direct_best)


class TestServiceCLI:
    def test_submit_runs_tail_round_trip(self, bundle, tmp_path, capsys):
        db = tmp_path / "gest.sqlite"
        rc = main(["submit", str(bundle), "--db", str(db),
                   "--platform", PLATFORM, "--generations", "1"])
        assert rc == 0
        run_id = capsys.readouterr().out.strip().splitlines()[-1]
        assert run_id.startswith("run-")

        Orchestrator(db, workers=1).serve_until_idle()
        capsys.readouterr()

        assert main(["runs", "--db", str(db)]) == 0
        table = capsys.readouterr().out
        assert run_id in table
        assert "finished" in table

        assert main(["tail", run_id, "--db", str(db)]) == 0
        lines = [line for line in capsys.readouterr().out.splitlines()
                 if line.startswith("{")]
        import json
        events = [json.loads(line) for line in lines]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_started"
        assert kinds[-1] == "run_finished"
        assert [e["seq"] for e in events] == \
            sorted(e["seq"] for e in events)

    def test_runs_missing_store_errors(self, tmp_path, capsys):
        assert main(["runs", "--db", str(tmp_path / "nope.sqlite")]) == 1
        assert "does not exist" in capsys.readouterr().err
