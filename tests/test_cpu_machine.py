"""Unit tests for the simulated machine and target
(repro.cpu.machine, repro.cpu.target)."""

import pytest

from repro.core.errors import (AssemblyError, SimulationError, TargetError)
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.cpu.microarch import PRESETS, microarch_for, preset_names

SRC = (".loop\nadd x1, x2, x3\nvmul v0, v8, v9\nldr x7, [x10, #16]\n"
       ".endloop\n")


class TestPresets:
    def test_table2_platforms_present(self):
        """The four Table II platforms, plus the authors' industrial
        A57 cluster (refs [11][12][22]) as a fifth preset."""
        assert set(preset_names()) == {
            "cortex_a15", "cortex_a7", "xgene2", "athlon_x4",
            "cortex_a57"}

    def test_table2_core_counts(self):
        assert PRESETS["cortex_a15"].core_count == 2
        assert PRESETS["cortex_a7"].core_count == 3
        assert PRESETS["xgene2"].core_count == 8
        assert PRESETS["athlon_x4"].core_count == 4

    def test_isa_assignment(self):
        assert PRESETS["athlon_x4"].isa == "x86"
        assert all(PRESETS[n].isa == "arm"
                   for n in ("cortex_a15", "cortex_a7", "xgene2"))

    def test_a7_is_the_only_in_order(self):
        in_order = [n for n in preset_names() if PRESETS[n].in_order]
        assert in_order == ["cortex_a7"]

    def test_unknown_preset(self):
        from repro.core.errors import ConfigError
        with pytest.raises(ConfigError, match="unknown"):
            microarch_for("pentium4")

    def test_presets_validate(self):
        for name in preset_names():
            PRESETS[name].validate()

    def test_with_overrides(self):
        arch = microarch_for("cortex_a15").with_overrides(core_count=4)
        assert arch.core_count == 4
        assert microarch_for("cortex_a15").core_count == 2


class TestMachineBasics:
    def test_construct_by_name(self):
        machine = SimulatedMachine("cortex_a7", seed=0)
        assert machine.arch.name == "cortex_a7"

    def test_unknown_environment(self):
        with pytest.raises(TargetError):
            SimulatedMachine("cortex_a7", environment="hypervisor")

    def test_compile_error_propagates(self, a15_machine):
        with pytest.raises(AssemblyError):
            a15_machine.compile("frobnicate x1, x2\n")

    def test_run_source_round_trip(self, a15_machine):
        result = a15_machine.run_source(SRC)
        assert result.ipc > 0
        assert result.core_power_w > 0
        assert result.chip_power_w > result.core_power_w
        assert len(result.power_samples_w) == 10

    def test_bad_core_count(self, a15_machine):
        program = a15_machine.compile(SRC)
        with pytest.raises(SimulationError):
            a15_machine.run(program, cores=0)
        with pytest.raises(SimulationError):
            a15_machine.run(program, cores=3)

    def test_bad_duration(self, a15_machine):
        program = a15_machine.compile(SRC)
        with pytest.raises(SimulationError):
            a15_machine.run(program, duration_s=0)

    def test_multicore_draws_more_power(self, a15_machine):
        program = a15_machine.compile(SRC)
        one = a15_machine.run(program, cores=1)
        two = a15_machine.run(program, cores=2)
        assert two.chip_power_w > one.chip_power_w

    def test_multicore_runs_hotter(self, a15_machine):
        program = a15_machine.compile(SRC)
        one = a15_machine.run(program, cores=1)
        two = a15_machine.run(program, cores=2)
        assert two.temperature_c > one.temperature_c

    def test_idle_power_below_active(self, a15_machine):
        result = a15_machine.run_source(SRC)
        assert a15_machine.idle_core_power_w() < result.core_power_w

    def test_idle_temperature_below_active(self, a15_machine):
        result = a15_machine.run_source(SRC, cores=2, duration_s=30.0)
        assert a15_machine.idle_temperature_c() < result.temperature_c

    def test_max_temperature_bounds_runs(self, a15_machine):
        result = a15_machine.run_source(SRC, cores=2, duration_s=30.0)
        assert result.temperature_c < a15_machine.max_temperature_c()

    def test_single_core_max_below_all_core_max(self, a15_machine):
        assert a15_machine.max_temperature_c(active_cores=1) < \
            a15_machine.max_temperature_c()

    def test_supply_override_scales_power(self, a15_machine):
        program = a15_machine.compile(SRC)
        nominal = a15_machine.run(program)
        lowered = a15_machine.run(
            program, supply_v=a15_machine.arch.vdd_nominal - 0.1)
        assert lowered.chip_power_w < nominal.chip_power_w

    def test_voltage_trace_present(self, athlon_machine):
        result = athlon_machine.run_source(
            ".loop\naddps xmm0, xmm1\nmov r9, [rbp+8]\n.endloop\n")
        assert result.peak_to_peak_v > 0
        assert result.v_min < athlon_machine.supply_v

    def test_crash_detection_at_low_supply(self, athlon_machine):
        src = (".loop\n" + "vfmadd231ps xmm0, xmm1, xmm2\n" * 4 +
               "mov r9, [rbp+8]\n.endloop\n")
        program = athlon_machine.compile(src)
        nominal = athlon_machine.run(program, cores=4)
        starved = athlon_machine.run(
            program, cores=4,
            supply_v=athlon_machine.critical_voltage_v() + 0.01)
        assert not nominal.crashed
        assert starved.crashed

    def test_environment_noise_levels(self):
        bare = SimulatedMachine("xgene2", environment="bare_metal",
                                seed=1, sim_cycles=600)
        osy = SimulatedMachine("xgene2", environment="os",
                               seed=1, sim_cycles=600)
        def spread(machine):
            result = machine.run_source(SRC, power_sample_count=30)
            samples = result.power_samples_w
            mean = sum(samples) / len(samples)
            return max(samples) - min(samples), mean
        bare_spread, bare_mean = spread(bare)
        os_spread, os_mean = spread(osy)
        assert os_spread / os_mean > bare_spread / bare_mean * 2

    def test_deterministic_given_seed(self):
        a = SimulatedMachine("cortex_a15", seed=42, sim_cycles=600)
        b = SimulatedMachine("cortex_a15", seed=42, sim_cycles=600)
        ra, rb = a.run_source(SRC), b.run_source(SRC)
        assert ra.power_samples_w == rb.power_samples_w
        assert ra.ipc == rb.ipc

    def test_avg_peak_power_properties(self, a15_machine):
        result = a15_machine.run_source(SRC)
        assert result.peak_power_w >= result.avg_power_w


class TestSimulatedTarget:
    def test_requires_connection(self, a15_machine):
        target = SimulatedTarget(a15_machine)
        with pytest.raises(TargetError, match="not connected"):
            target.copy_file("x.s", "nop")

    def test_scp_compile_run_cycle(self, target):
        target.copy_file("stress.s", SRC)
        binary = target.compile_file("stress.s")
        assert binary == "stress.bin"
        result = target.run_binary(binary, duration_s=2.0)
        assert result.ipc > 0

    def test_compile_failure_surfaces(self, target):
        target.copy_file("bad.s", "zap x1\n")
        with pytest.raises(AssemblyError):
            target.compile_file("bad.s")

    def test_read_and_list_files(self, target):
        target.copy_file("a.s", "nop")
        target.copy_file("b.s", "nop")
        assert target.read_file("a.s") == "nop"
        assert target.list_files() == ("a.s", "b.s")

    def test_missing_file(self, target):
        with pytest.raises(TargetError):
            target.read_file("ghost.s")

    def test_missing_binary(self, target):
        with pytest.raises(TargetError, match="binary"):
            target.run_binary("ghost.bin")

    def test_remove_file_removes_binary(self, target):
        target.copy_file("x.s", SRC)
        target.compile_file("x.s")
        target.remove_file("x.s")
        with pytest.raises(TargetError):
            target.run_binary("x.bin")

    def test_cleanup(self, target):
        target.copy_file("x.s", SRC)
        target.cleanup()
        assert target.list_files() == ()

    def test_empty_name_rejected(self, target):
        with pytest.raises(TargetError):
            target.copy_file("", "nop")

    def test_disconnect(self, target):
        target.disconnect()
        with pytest.raises(TargetError):
            target.list_files()


class TestCortexA57Preset:
    """The fifth preset: the authors' industrial dual-core A57 cluster
    (paper references [11][12][22]); usable with every metric."""

    def test_listed_and_valid(self):
        assert "cortex_a57" in preset_names()
        PRESETS["cortex_a57"].validate()

    def test_cluster_facts(self):
        arch = PRESETS["cortex_a57"]
        assert arch.core_count == 2          # dual-core cluster
        assert arch.isa == "arm"
        assert not arch.in_order

    def test_pdn_resonance_near_100mhz(self):
        pdn = PRESETS["cortex_a57"].pdn
        assert 80e6 < pdn.resonance_hz < 120e6

    def test_runs_all_sensor_paths(self):
        machine = SimulatedMachine("cortex_a57", seed=1, sim_cycles=600)
        result = machine.run_source(SRC, cores=2)
        assert result.ipc > 0
        assert result.core_power_w > 0
        assert result.temperature_c > 28.0
        assert result.peak_to_peak_v >= 0
        assert not result.crashed

    def test_ga_search_works(self):
        from repro.experiments import GAScale, evolve_virus
        virus = evolve_virus(
            "cortex_a57", "power", seed=3,
            scale=GAScale(population_size=6, generations=2,
                          individual_size=10, samples=2),
            use_cache=False)
        assert virus.fitness > 0
