"""Unit tests for the pipeline model (repro.cpu.pipeline).

These check the scheduling semantics against hand-computable cases on
synthetic microarchitectures, not just the presets.
"""

import pytest

from repro.core.errors import SimulationError
from repro.cpu.microarch import MicroArch, microarch_for
from repro.cpu.pipeline import PipelineSimulator
from repro.isa import ArmAssembler


def _arch(in_order=False, width=2, window=16, ports=None, latency=None,
          unpipelined=()):
    return MicroArch(
        name="synthetic", isa="arm", frequency_hz=1e9, core_count=1,
        in_order=in_order, issue_width=width, window_size=window,
        ports=ports or {"int": 2, "fp": 2, "mem": 2, "br": 1},
        latency=latency or {},
        unpipelined=frozenset(unpipelined),
    )


def _run(source, arch, cycles=200):
    program = ArmAssembler().assemble(source)
    return PipelineSimulator(arch).execute(program, max_cycles=cycles)


class TestThroughputBounds:
    def test_independent_ops_saturate_width(self):
        # Six independent adds, 2 int ports... width 2 — IPC limited by
        # the int port count (2).
        src = "\n".join(f"add x{i}, x{i + 6}, x{i + 6}" for i in range(1, 5))
        trace = _run(src, _arch(width=2))
        assert trace.ipc == pytest.approx(2.0, rel=0.05)

    def test_ipc_never_exceeds_width(self):
        src = "\n".join(f"add x{i}, x{i + 6}, x{i + 6}" for i in range(1, 6))
        trace = _run(src, _arch(width=2, ports={"int": 4, "fp": 2,
                                                "mem": 2, "br": 1}))
        assert trace.ipc <= 2.0 + 1e-9

    def test_port_limit_binds(self):
        # Only one int port: IPC capped at 1 despite width 2.
        src = "add x1, x7, x8\nadd x2, x7, x8\nadd x3, x7, x8"
        trace = _run(src, _arch(ports={"int": 1, "fp": 1, "mem": 1,
                                       "br": 1}))
        assert trace.ipc == pytest.approx(1.0, rel=0.05)

    def test_dependency_chain_limits_to_inverse_latency(self):
        # A single self-dependent multiply with latency 4: one issue per
        # 4 cycles.
        arch = _arch(latency={"mul": 4})
        trace = _run("mul x1, x1, x2", arch)
        assert trace.ipc == pytest.approx(0.25, rel=0.1)

    def test_unpipelined_unit_blocks(self):
        # Independent divides, 1 int port... er 2 ports, latency 8
        # non-pipelined: throughput = 2 units / 8 cycles.
        arch = _arch(latency={"div": 8}, unpipelined=["div"])
        src = "\n".join(f"sdiv x{i}, x{i + 6}, x{i + 7}"
                        for i in range(1, 5))
        trace = _run(src, arch, cycles=400)
        assert trace.ipc == pytest.approx(2 / 8, rel=0.15)

    def test_pipelined_long_latency_sustains_throughput(self):
        # Independent latency-4 multiplies are fully pipelined: the two
        # int units sustain 2/cycle.
        arch = _arch(latency={"mul": 4})
        src = "\n".join(f"mul x{i}, x{i + 6}, x{i + 7}"
                        for i in range(1, 6))
        trace = _run(src, arch, cycles=400)
        assert trace.ipc == pytest.approx(2.0, rel=0.1)


class TestInOrderVsOutOfOrder:
    # A latency-4 multiply chain immediately followed by its consumer:
    # an in-order front stalls at the consumer; OOO slips the four
    # independent adds underneath the stall.
    SRC = ("mul x1, x1, x2\n"
           "add x3, x1, x4\n"
           "add x5, x7, x8\n"
           "add x6, x7, x8\n"
           "add x4, x7, x8\n"
           "add x9, x7, x8\n")

    def test_ooo_hides_chain_behind_independents(self):
        ooo = _run(self.SRC, _arch(in_order=False, width=2), cycles=300)
        ino = _run(self.SRC, _arch(in_order=True, width=2, window=4),
                   cycles=300)
        assert ooo.ipc > ino.ipc * 1.2

    def test_in_order_stalls_at_head(self):
        # The consumer blocks the head for the mul latency each
        # iteration, capping in-order IPC around 1.
        ino = _run(self.SRC, _arch(in_order=True, width=2, window=4),
                   cycles=300)
        assert ino.ipc < 1.3


class TestBranchesAndLoops:
    def test_predictable_branches_fill_br_port(self):
        src = "b 1f\n1:\nadd x1, x7, x8\nadd x2, x7, x8"
        trace = _run(src, _arch(width=3))
        # 1 branch + 2 adds per iteration, all issueable each cycle.
        assert trace.ipc == pytest.approx(3.0, rel=0.1)

    def test_loop_iterations_counted(self):
        trace = _run("add x1, x7, x8\nadd x2, x7, x8", _arch(), cycles=100)
        assert trace.loop_iterations == pytest.approx(100, rel=0.1)

    def test_issue_width_histogram_sums_to_cycles(self):
        trace = _run("add x1, x7, x8\nmul x2, x2, x3", _arch(), cycles=150)
        histogram = trace.issue_width_histogram()
        assert sum(histogram.values()) == trace.cycles


class TestTraceContents:
    def test_issued_per_cycle_matches_total(self):
        trace = _run("add x1, x7, x8\nnop", _arch(), cycles=100)
        assert sum(len(c) for c in trace.issued_per_cycle) == \
            trace.instructions_issued

    def test_occupancy_bounded_by_window(self):
        arch = _arch(window=8)
        trace = _run("sdiv x1, x1, x2", arch, cycles=100)
        assert all(0 <= occ <= 8 for occ in trace.occupancy)

    def test_group_counts_match_issues(self):
        trace = _run("add x1, x7, x8\nmul x2, x7, x8", _arch(), cycles=100)
        assert sum(trace.group_counts.values()) == \
            trace.instructions_issued
        assert set(trace.group_counts) == {"alu", "mul"}

    def test_empty_loop_rejected(self):
        program = ArmAssembler().assemble("mov x1, #1\n.loop\n.endloop\n")
        with pytest.raises(SimulationError, match="empty"):
            PipelineSimulator(_arch()).execute(program)

    def test_bad_cycle_count_rejected(self):
        program = ArmAssembler().assemble("nop\n")
        with pytest.raises(SimulationError):
            PipelineSimulator(_arch()).execute(program, max_cycles=0)

    def test_determinism(self):
        a = _run("add x1, x7, x8\nmul x2, x2, x3", _arch(), cycles=200)
        b = _run("add x1, x7, x8\nmul x2, x2, x3", _arch(), cycles=200)
        assert a.issued_per_cycle == b.issued_per_cycle


class TestSteadyStateIpc:
    def test_steady_state_close_to_raw(self):
        program = ArmAssembler().assemble("add x1, x7, x8\nadd x2, x7, x8")
        sim = PipelineSimulator(_arch())
        raw = sim.execute(program, max_cycles=200).ipc
        steady = sim.steady_state_ipc(program, max_cycles=200)
        assert steady == pytest.approx(raw, rel=0.1)


class TestPresetBehaviour:
    def test_a7_is_narrower_than_a15(self):
        src = "\n".join(f"vmul v{i}, v{i + 8}, v{i + 4}" for i in range(4))
        src += "\nadd x1, x2, x3\nadd x4, x5, x6"
        a15 = PipelineSimulator(microarch_for("cortex_a15"))
        a7 = PipelineSimulator(microarch_for("cortex_a7"))
        program = ArmAssembler().assemble(src)
        assert a15.execute(program, 400).ipc > a7.execute(program, 400).ipc

    def test_xgene_reaches_width_four(self):
        src = ("add x1, x7, x8\nadd x2, x7, x8\n"
               "ldr x9, [x10, #8]\nldr x7, [x11, #16]\n"
               "vmul v0, v8, v9\nvmul v1, v10, v11\n"
               "b 1f\n1:\n")
        program = ArmAssembler().assemble(src)
        trace = PipelineSimulator(microarch_for("xgene2")).execute(
            program, 400)
        assert trace.ipc > 3.4
