"""Tests for the static-analysis subsystem (repro.staticcheck).

Golden tests: one minimal trigger per diagnostic code, the derived
StaticProfile features, the pre-measurement screen, the determinism
self-lint, and the CLI entry points.  The parametrised config test at
the bottom is the repository's own lint gate: every shipped
configuration must stay clean.
"""

from pathlib import Path

import pytest

from repro.cli import main
from repro.core.config import parse_config_file
from repro.core.instruction import InstructionLibrary, InstructionSpec
from repro.core.operand import ImmediateOperand, RegisterOperand
from repro.isa import ArmAssembler
from repro.staticcheck import (CODES, Diagnostic, Location, Severity,
                               StaticScreen, analyze_program,
                               detect_syntax, diagnostics_to_json,
                               format_diagnostics, has_errors,
                               lint_config, lint_config_file,
                               lint_library, lint_source, lint_template,
                               lint_tree, make_diagnostic,
                               repro_package_root, summarise,
                               worst_severity)

CONFIG_FILES = sorted(
    Path(__file__).resolve().parent.parent.glob("configs/*/config.xml"))


def codes_of(diagnostics):
    return [d.code for d in diagnostics]


def asm_program(body, init="mov x10, #0", name="test.s"):
    text = f"{init}\n.loop\n{body}\n.endloop\n"
    return ArmAssembler().assemble(text, name=name)


# ---------------------------------------------------------------------------
# diagnostics model


class TestDiagnosticModel:
    def test_severity_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert Severity.from_name("error") is Severity.ERROR
        with pytest.raises(ValueError):
            Severity.from_name("fatal")

    def test_every_code_has_default_severity_and_title(self):
        for code, (severity, title) in CODES.items():
            assert isinstance(severity, Severity)
            assert title
            assert code.startswith("SC")

    def test_make_diagnostic_defaults_severity_from_table(self):
        diag = make_diagnostic("SC103", "empty")
        assert diag.severity is Severity.ERROR
        assert diag.title == CODES["SC103"][1]

    def test_make_diagnostic_rejects_unknown_code(self):
        with pytest.raises(ValueError):
            make_diagnostic("SC999", "nope")

    def test_location_describe(self):
        loc = Location(file="a.xml", line=3, instruction="ADD",
                       operand="dst")
        text = loc.describe()
        assert "a.xml:3" in text
        assert "instruction 'ADD'" in text
        assert "operand 'dst'" in text

    def test_format_includes_code_severity_location(self):
        diag = make_diagnostic("SC202", "boom", file="c.xml",
                               instruction="ADD", operand="bad")
        line = diag.format()
        assert line.startswith("SC202 error")
        assert "instruction 'ADD'" in line and "operand 'bad'" in line

    def test_helpers(self):
        diags = [make_diagnostic("SC102", "d"),
                 make_diagnostic("SC101", "w"),
                 make_diagnostic("SC202", "e")]
        assert has_errors(diags)
        assert not has_errors(diags[:2])
        assert worst_severity(diags) is Severity.ERROR
        assert worst_severity([]) is None
        assert summarise(diags) == "1 error, 1 warning, 1 note"

    def test_json_round_trip(self):
        import json
        diags = [make_diagnostic("SC101", "w", file="x.s", index=2)]
        payload = json.loads(diagnostics_to_json(diags, file="x.s"))
        assert payload["errors"] == 0 and payload["warnings"] == 1
        entry = payload["diagnostics"][0]
        assert entry["code"] == "SC101"
        assert entry["severity"] == "warning"
        assert entry["location"] == {"file": "x.s", "index": 2}

    def test_diagnostic_is_immutable(self):
        diag = make_diagnostic("SC101", "w")
        with pytest.raises(Exception):
            diag.code = "SC102"
        assert isinstance(diag, Diagnostic)


# ---------------------------------------------------------------------------
# dataflow pass (SC1xx)


class TestDataflow:
    def test_sc101_uninitialised_read(self):
        report = analyze_program(asm_program("add x1, x5, x6"))
        sc101 = [d for d in report.diagnostics if d.code == "SC101"]
        assert {d.location.index for d in sc101} == {0}
        named = " ".join(d.message for d in sc101)
        assert "'x5'" in named and "'x6'" in named
        assert report.profile.uninitialised_reads == 2

    def test_sc101_reported_once_per_register(self):
        report = analyze_program(
            asm_program("add x1, x5, x5\nadd x2, x5, x5"))
        assert codes_of(report.diagnostics).count("SC101") == 1

    def test_sc101_init_section_defines_registers(self):
        report = analyze_program(
            asm_program("add x1, x10, x10", init="mov x10, #7"))
        assert "SC101" not in codes_of(report.diagnostics)

    def test_sc101_loop_carried_write_still_flagged(self):
        # x1 is written inside the loop but only *after* the read, so
        # iteration 0 reads an undefined value.
        report = analyze_program(asm_program("add x2, x1, x1\nmov x1, #3"))
        sc101 = [d for d in report.diagnostics if d.code == "SC101"]
        assert len(sc101) == 1
        assert "first" in sc101[0].message

    def test_sc102_dead_write(self):
        report = analyze_program(
            asm_program("mov x1, #1\nmov x1, #2\nadd x3, x1, x1\n"
                        "add x4, x3, x3\nadd x5, x4, x4\n"
                        "add x1, x5, x5"))
        sc102 = [d for d in report.diagnostics if d.code == "SC102"]
        assert 0 in {d.location.index for d in sc102}
        assert report.profile.dead_writes >= 1

    def test_sc102_cyclic_liveness_no_false_positive(self):
        # x1 is read at the top of the *next* iteration: live, not dead.
        report = analyze_program(asm_program("add x2, x1, x1\nmov x1, #1"))
        dead_indices = {d.location.index for d in report.diagnostics
                        if d.code == "SC102"}
        assert 1 not in dead_indices

    def test_sc103_empty_loop_is_error(self):
        report = analyze_program(asm_program(""))
        sc103 = [d for d in report.diagnostics if d.code == "SC103"]
        assert len(sc103) == 1
        assert sc103[0].severity is Severity.ERROR
        assert report.profile.loop_length == 0

    def test_sc104_footprint_exceeds_cache(self):
        body = "\n".join(f"ldr x{i}, [x10, #{i * 64}]" for i in range(1, 5))
        report = analyze_program(asm_program(body), l1_bytes=128,
                                 l2_bytes=None)
        sc104 = [d for d in report.diagnostics if d.code == "SC104"]
        assert len(sc104) == 1
        assert "L1" in sc104[0].message
        assert report.profile.footprint_bytes == 4 * 64
        assert report.profile.distinct_lines == 4

    def test_sc104_disabled_without_geometry(self):
        body = "\n".join(f"ldr x{i}, [x10, #{i * 64}]" for i in range(1, 5))
        report = analyze_program(asm_program(body), l1_bytes=None,
                                 l2_bytes=None)
        assert "SC104" not in codes_of(report.diagnostics)

    def test_sc105_fully_serial_chain(self):
        report = analyze_program(
            asm_program("add x1, x10, x10\nadd x2, x1, x1\n"
                        "add x3, x2, x2"))
        assert "SC105" in codes_of(report.diagnostics)
        assert report.profile.chain_depth == 3

    def test_sc105_not_emitted_for_parallel_body(self):
        report = analyze_program(
            asm_program("add x1, x10, x10\nadd x2, x10, x10"))
        assert "SC105" not in codes_of(report.diagnostics)
        assert report.profile.chain_depth == 1

    def test_chain_depth_counts_load_base_dependency(self):
        report = analyze_program(
            asm_program("add x9, x10, x10\nldr x1, [x9, #0]"))
        assert report.profile.chain_depth == 2

    def test_profile_mix_vector_aligned_and_normalised(self):
        report = analyze_program(
            asm_program("add x1, x10, x10\nldr x2, [x10, #0]"))
        mix = report.profile.mix_vector
        assert abs(sum(mix.values()) - 1.0) < 1e-9
        assert mix["int_short"] == 0.5
        assert all(isinstance(v, float) for v in mix.values())
        # every class key appears, even at zero, so vectors align
        from repro.isa.model import InstrClass
        assert set(mix) == {cls.value for cls in InstrClass}

    def test_profile_as_features_flat_floats(self):
        report = analyze_program(asm_program("add x1, x10, x10"))
        features = report.profile.as_features()
        assert features["loop_length"] == 1.0
        assert features["chain_depth_ratio"] == 1.0
        assert all(isinstance(v, float) for v in features.values())

    def test_clean_program_has_no_diagnostics(self):
        # Every write is read (x3 loop-carried), every read initialised,
        # and the 3-deep body has a 2-deep chain: nothing to report.
        report = analyze_program(
            asm_program("add x1, x3, x3\nadd x2, x3, x3\n"
                        "add x3, x1, x2", init="mov x3, #5"))
        assert report.diagnostics == []


# ---------------------------------------------------------------------------
# config & library lint (SC2xx)


def library_with(operands, instructions):
    return InstructionLibrary(operands, instructions)


GOOD_TEMPLATE = ("mov x10, #4096\n.loop\nstart:\n#loop_code\n"
                 "subs x0, x0, #1\nbne start\n.endloop\n")


class TestTemplateLint:
    def test_clean_template(self):
        assert lint_template(GOOD_TEMPLATE) == []

    def test_sc206_missing_marker(self):
        diags = lint_template(".loop\nnop\n.endloop\n")
        assert codes_of(diags) == ["SC206"]

    def test_sc206_duplicate_marker(self):
        diags = lint_template(".loop\n#loop_code\n#loop_code\n.endloop\n")
        assert "SC206" in codes_of(diags)
        assert "2" in diags[0].message

    def test_sc206_marker_outside_loop_section(self):
        diags = lint_template("#loop_code\n.loop\nnop\n.endloop\n")
        sc206 = [d for d in diags if d.code == "SC206"]
        assert len(sc206) == 1
        assert "before the .loop" in sc206[0].message

    def test_sc207_unassemblable_template(self):
        diags = lint_template("definitely not assembly ???\n#loop_code\n"
                              ".loop\n.endloop\n")
        assert "SC207" in codes_of(diags)

    def test_sc208_no_loop_section(self):
        diags = lint_template("mov x1, #0\n#loop_code\n")
        assert "SC208" in codes_of(diags)
        assert all(d.severity < Severity.ERROR for d in diags)

    def test_detect_syntax(self):
        assert detect_syntax(GOOD_TEMPLATE) == "arm"
        assert detect_syntax("mov rax, 1\n.loop\n#loop_code\n.endloop\n") \
            == "x86"
        assert detect_syntax("???\n") is None


class TestLibraryLint:
    def test_clean_library(self, tiny_library):
        diags = lint_library(tiny_library, ArmAssembler(), file="t.xml")
        assert not has_errors(diags)

    def test_sc202_impossible_operand_range(self):
        lib = library_with(
            [RegisterOperand("dst", ["x1", "x2"]),
             RegisterOperand("badreg", ["zzz9", "qqq3"])],
            [InstructionSpec("ADD", ["dst", "badreg", "dst"],
                             "add op1, op2, op3", "int_short")])
        diags = lint_library(lib, ArmAssembler(), file="bad.xml")
        sc202 = [d for d in diags if d.code == "SC202"]
        assert len(sc202) == 1
        assert sc202[0].location.instruction == "ADD"
        assert sc202[0].location.operand == "badreg"
        assert sc202[0].severity is Severity.ERROR

    def test_sc203_partially_assembling_range(self):
        lib = library_with(
            [RegisterOperand("dst", ["x1", "x2"]),
             RegisterOperand("mixed", ["x3", "zzz9"])],
            [InstructionSpec("ADD", ["dst", "mixed", "dst"],
                             "add op1, op2, op3", "int_short")])
        diags = lint_library(lib, ArmAssembler())
        sc203 = [d for d in diags if d.code == "SC203"]
        assert len(sc203) == 1
        assert sc203[0].location.operand == "mixed"
        assert "1 of 2" in sc203[0].message

    def test_sc204_unreachable_instruction(self):
        lib = library_with(
            [], [InstructionSpec("BOGUS", [], "bogusop x1", "int_short")])
        diags = lint_library(lib, ArmAssembler())
        sc204 = [d for d in diags if d.code == "SC204"]
        assert len(sc204) == 1
        assert sc204[0].location.instruction == "BOGUS"

    def test_sc205_unused_operand(self):
        lib = library_with(
            [RegisterOperand("dst", ["x1"]),
             RegisterOperand("orphan", ["x2"])],
            [InstructionSpec("MOV", ["dst"], "mov op1, #1", "int_short")])
        diags = lint_library(lib, ArmAssembler())
        sc205 = [d for d in diags if d.code == "SC205"]
        assert len(sc205) == 1
        assert sc205[0].location.operand == "orphan"

    def test_without_assembler_only_static_checks_run(self):
        lib = library_with(
            [RegisterOperand("badreg", ["zzz9"])],
            [InstructionSpec("ADD", ["badreg"], "add op1, op1, op1",
                             "int_short")])
        diags = lint_library(lib, None)
        assert "SC202" not in codes_of(diags)

    def test_lint_config_combines_template_and_library(self, tiny_config):
        diags = lint_config(tiny_config, file="tiny.xml")
        assert not has_errors(diags)


class TestConfigFileLint:
    def test_sc201_unparsable_file(self, tmp_path):
        bad = tmp_path / "broken.xml"
        bad.write_text("<not-even-close")
        diags = lint_config_file(bad)
        assert codes_of(diags) == ["SC201"]
        assert diags[0].severity is Severity.ERROR

    def test_missing_file_is_sc201(self, tmp_path):
        diags = lint_config_file(tmp_path / "absent.xml")
        assert codes_of(diags) == ["SC201"]


# ---------------------------------------------------------------------------
# pre-measurement screen


class TestStaticScreen:
    def test_pass_and_profile(self):
        screen = StaticScreen(ArmAssembler())
        report = screen.screen(
            "mov x10, #0\n.loop\nadd x1, x10, x10\n.endloop\n")
        assert report.passed and not report.assembly_failed
        assert report.profile is not None
        assert report.profile.loop_length == 1
        assert screen.stats.passed == 1
        assert screen.stats.failures == 0

    def test_assembly_failure(self):
        screen = StaticScreen(ArmAssembler())
        report = screen.screen("??? garbage\n")
        assert not report.passed and report.assembly_failed
        assert codes_of(report.diagnostics) == ["SC201"]
        assert screen.stats.assembly_failures == 1

    def test_dataflow_error_fails(self):
        screen = StaticScreen(ArmAssembler())
        report = screen.screen("mov x10, #0\n.loop\n.endloop\n")
        assert not report.passed and not report.assembly_failed
        assert "SC103" in codes_of(report.diagnostics)
        assert screen.stats.dataflow_failures == 1

    def test_warning_severity_gate(self):
        screen = StaticScreen(ArmAssembler(),
                              fail_severity=Severity.WARNING)
        report = screen.screen(
            "mov x10, #0\n.loop\nadd x1, x5, x5\n.endloop\n")
        assert not report.passed          # SC101 warning trips the gate
        default = StaticScreen(ArmAssembler())
        assert default.screen(
            "mov x10, #0\n.loop\nadd x1, x5, x5\n.endloop\n").passed

    def test_individual_uid_in_location(self):
        class FakeIndividual:
            uid = 42
        screen = StaticScreen(ArmAssembler())
        report = screen.screen("??? nope\n", FakeIndividual())
        assert report.diagnostics[0].location.file == "uid42.s"


# ---------------------------------------------------------------------------
# determinism self-lint (SC4xx)


class TestSelfLint:
    def test_sc400_syntax_error(self):
        diags = lint_source("def broken(:\n", filename="bad.py")
        assert codes_of(diags) == ["SC400"]

    def test_sc401_module_level_random(self):
        diags = lint_source("import random\nx = random.random()\n"
                            "random.seed(4)\n")
        assert codes_of(diags) == ["SC401", "SC401"]

    def test_sc401_seeded_random_instance_allowed(self):
        diags = lint_source("import random\nrng = random.Random(7)\n"
                            "x = rng.random()\n")
        assert diags == []

    def test_sc402_set_iteration(self):
        diags = lint_source("for x in {1, 2}:\n    pass\n"
                            "ys = [y for y in set(range(3))]\n")
        assert codes_of(diags) == ["SC402", "SC402"]

    def test_sc402_sorted_set_allowed(self):
        diags = lint_source("for x in sorted({1, 2}):\n    pass\n")
        assert diags == []

    def test_sc403_bare_popitem(self):
        diags = lint_source("d = {}\nd.popitem()\n")
        assert codes_of(diags) == ["SC403"]

    def test_sc403_directed_popitem_allowed(self):
        diags = lint_source("import collections\n"
                            "d = collections.OrderedDict()\n"
                            "d.popitem(last=False)\n")
        assert diags == []

    def test_sc404_wall_clock(self):
        diags = lint_source("import time\nt = time.time()\n"
                            "p = time.perf_counter()\n")
        assert codes_of(diags) == ["SC404", "SC404"]

    def test_suppression_comment(self):
        diags = lint_source(
            "import time\n"
            "t = time.time()  # staticcheck: disable=SC404\n")
        assert diags == []

    def test_suppression_is_code_specific(self):
        diags = lint_source(
            "import time\n"
            "t = time.time()  # staticcheck: disable=SC401\n")
        assert codes_of(diags) == ["SC404"]

    def test_blanket_suppression(self):
        diags = lint_source(
            "import time\nt = time.time()  # staticcheck: disable\n")
        assert diags == []

    def test_lint_tree_stable_order(self, tmp_path):
        (tmp_path / "b.py").write_text("import time\nt = time.time()\n")
        (tmp_path / "a.py").write_text("import random\nrandom.seed(1)\n")
        diags = lint_tree(tmp_path)
        assert [Path(d.location.file).name for d in diags] == \
            ["a.py", "b.py"]

    def test_repro_package_is_clean(self):
        # The CI gate: the framework's own sources must stay free of
        # determinism hazards (or carry an explicit disable comment).
        diags = lint_tree(repro_package_root())
        assert diags == [], format_diagnostics(diags)


# ---------------------------------------------------------------------------
# CLI entry points


class TestCli:
    def test_lint_clean_config_exits_zero(self, capsys):
        rc = main(["lint", str(CONFIG_FILES[0])])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 errors" in out

    def test_lint_bad_config_names_instruction_and_operand(
            self, tmp_path, capsys):
        config = _write_bad_config(tmp_path)
        rc = main(["lint", str(config)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "SC202" in out
        assert "instruction 'ADDBAD'" in out and "operand 'badreg'" in out

    def test_lint_json_output(self, tmp_path, capsys):
        import json
        config = _write_bad_config(tmp_path)
        rc = main(["lint", "--json", str(config)])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["errors"] >= 1
        assert any(d["code"] == "SC202" for d in payload["diagnostics"])

    def test_check_reports_profile_and_diagnostics(self, tmp_path, capsys):
        source = tmp_path / "virus.s"
        source.write_text("mov x10, #0\n.loop\nadd x1, x5, x5\n"
                          "mov x2, #1\nmov x2, #2\n.endloop\n")
        rc = main(["check", str(source)])
        out = capsys.readouterr().out
        assert rc == 0                      # warnings don't fail check
        assert "loop length:    3" in out
        assert "SC101" in out and "SC102" in out

    def test_check_json(self, tmp_path, capsys):
        import json
        source = tmp_path / "ok.s"
        source.write_text("mov x10, #0\n.loop\nadd x1, x10, x10\n"
                          ".endloop\n")
        rc = main(["check", "--json", str(source)])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["profile"]["loop_length"] == 1
        assert payload["errors"] == 0

    def test_check_unassemblable_source(self, tmp_path, capsys):
        source = tmp_path / "bad.s"
        source.write_text("??? nope\n")
        assert main(["check", str(source)]) == 1

    def test_selfcheck_clean(self, capsys):
        rc = main(["selfcheck"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 errors" in out

    def test_selfcheck_flags_hazards(self, tmp_path, capsys):
        (tmp_path / "hazard.py").write_text(
            "import random, time\nrandom.seed(1)\nt = time.time()\n")
        rc = main(["selfcheck", "--path", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "SC401" in out and "SC404" in out


def _write_bad_config(tmp_path):
    """A config whose 'badreg' operand can never assemble (the
    acceptance scenario from the issue)."""
    import shutil
    copy = tmp_path / CONFIG_FILES[0].parent.name
    shutil.copytree(CONFIG_FILES[0].parent, copy)
    config = copy / "config.xml"
    text = config.read_text()
    assert "</operands>" in text and "</instructions>" in text
    text = text.replace(
        "</operands>",
        '<operand id="badreg" type="register" values="zzz9 qqq3" />'
        "</operands>")
    text = text.replace(
        "</instructions>",
        '<instruction name="ADDBAD" num_of_operands="3" '
        'format="add op1, op2, op3" type="int_short" '
        'operand1="int_dst" operand2="badreg" operand3="int_src" />'
        "</instructions>")
    config.write_text(text)
    return config


# ---------------------------------------------------------------------------
# the repository lint gate: every shipped config must be clean


@pytest.mark.parametrize("config_path", CONFIG_FILES,
                         ids=[p.parent.name for p in CONFIG_FILES])
def test_shipped_config_lints_clean(config_path):
    diags = lint_config_file(config_path)
    errors = [d for d in diags if d.severity >= Severity.ERROR]
    assert errors == [], format_diagnostics(errors)


def test_config_dir_is_nonempty():
    assert CONFIG_FILES, "configs/ should ship at least one configuration"
