"""Tests for the experiment harness (repro.experiments).

GA-bearing drivers run here at very small scale — the full-scale shape
assertions live in benchmarks/.  These tests cover the plumbing:
memoisation, scoring methodology, runtime model, scale math.
"""

import pytest

from repro.experiments import (GAScale, MEASUREMENTS, clear_virus_cache,
                               didt_loop_length, didt_scale,
                               estimate_runtime, evolve_virus,
                               make_engine, make_machine, score_baselines)
from repro.experiments.runtime import RuntimeEstimate


TINY = GAScale(population_size=6, generations=2, individual_size=10,
               samples=2)


class TestGAScale:
    def test_default_mutation_targets_one_per_individual(self):
        scale = GAScale(individual_size=50)
        assert scale.effective_mutation_rate() == pytest.approx(0.02)

    def test_short_loops_get_higher_rate(self):
        scale = GAScale(individual_size=15)
        assert scale.effective_mutation_rate() == pytest.approx(1 / 15,
                                                                abs=1e-3)

    def test_explicit_rate_wins(self):
        scale = GAScale(individual_size=50, mutation_rate=0.05)
        assert scale.effective_mutation_rate() == 0.05


class TestMakeMachine:
    def test_environment_matches_table2(self):
        assert make_machine("cortex_a15").environment == "bare_metal"
        assert make_machine("cortex_a7").environment == "bare_metal"
        assert make_machine("xgene2").environment == "os"
        assert make_machine("athlon_x4").environment == "os"

    def test_environment_override(self):
        assert make_machine("xgene2",
                            environment="bare_metal").environment == \
            "bare_metal"


class TestMakeEngine:
    def test_unknown_metric_rejected(self):
        machine = make_machine("cortex_a15")
        with pytest.raises(ValueError, match="unknown metric"):
            make_engine(machine, "luminosity", 0, TINY)

    def test_metric_registry(self):
        assert set(MEASUREMENTS) == {"power", "temperature", "ipc",
                                     "didt"}

    def test_engine_runs(self):
        machine = make_machine("cortex_a7", seed=1)
        engine = make_engine(machine, "power", 1, TINY)
        history = engine.run()
        assert history.best_individual.fitness > 0


class TestEvolveVirus:
    def test_memoisation_returns_same_object(self):
        clear_virus_cache()
        a = evolve_virus("cortex_a7", "power", 5, scale=TINY)
        b = evolve_virus("cortex_a7", "power", 5, scale=TINY)
        assert a is b
        clear_virus_cache()

    def test_cache_key_includes_scale(self):
        clear_virus_cache()
        a = evolve_virus("cortex_a7", "power", 5, scale=TINY)
        other = GAScale(population_size=6, generations=3,
                        individual_size=10, samples=2)
        b = evolve_virus("cortex_a7", "power", 5, scale=other)
        assert a is not b
        clear_virus_cache()

    def test_use_cache_false_bypasses(self):
        clear_virus_cache()
        a = evolve_virus("cortex_a7", "power", 5, scale=TINY)
        b = evolve_virus("cortex_a7", "power", 5, scale=TINY,
                         use_cache=False)
        assert a is not b
        # Same seed, same config: identical genome regardless.
        assert a.individual.genome_key() == b.individual.genome_key()
        clear_virus_cache()

    def test_all_cores_scoring(self):
        clear_virus_cache()
        virus = evolve_virus("cortex_a7", "power", 5, scale=TINY)
        assert virus.all_cores_run.cores_used == 3   # Table II: A7 x3
        assert virus.source
        assert virus.fitness > 0
        clear_virus_cache()


class TestScoreBaselines:
    def test_scores_requested_workloads(self):
        results = score_baselines("cortex_a7", ["coremark", "fdct"],
                                  seed=0)
        assert set(results) == {"coremark", "fdct"}
        for run in results.values():
            assert run.cores_used == 3


class TestDidtScale:
    def test_loop_length_follows_resonance_rule(self):
        machine = make_machine("athlon_x4")
        expected = machine.pdn.resonant_loop_length(
            machine.arch.max_ipc / 2)
        assert didt_loop_length(machine) == expected

    def test_loop_length_in_paper_range(self):
        """The paper: the rule of thumb typically yields 15-50."""
        assert 15 <= didt_loop_length(make_machine("athlon_x4")) <= 50

    def test_scale_mutation_rate_targets_one_mutation(self):
        scale = didt_scale()
        expected = scale.individual_size * scale.effective_mutation_rate()
        assert 0.9 < expected < 2.1


class TestRuntimeModel:
    def test_paper_example_is_about_seven_hours(self):
        """50 individuals x 100 generations x ~5s -> ~7 hours."""
        estimate = estimate_runtime()
        assert estimate.measurements == 5000
        assert 6.5 < estimate.total_hours < 8.0

    def test_runtime_linear_in_population(self):
        small = estimate_runtime(population_size=25)
        big = estimate_runtime(population_size=50)
        assert big.total_s == pytest.approx(2 * small.total_s)

    def test_invalid_inputs(self):
        from repro.core.errors import ConfigError
        with pytest.raises(ConfigError):
            estimate_runtime(population_size=0)
        with pytest.raises(ConfigError):
            estimate_runtime(measurement_s=0)

    def test_estimate_is_frozen_dataclass(self):
        estimate = estimate_runtime()
        assert isinstance(estimate, RuntimeEstimate)
        with pytest.raises(Exception):
            estimate.population_size = 1
