"""Tests for run post-processing and the CLI
(repro.analysis.postprocess, repro.cli)."""

import pytest

from repro.analysis.postprocess import load_run, run_statistics
from repro.cli import main
from repro.core.config import GAParameters, RunConfig
from repro.core.engine import GeneticEngine
from repro.core.errors import ConfigError
from repro.core.output import OutputRecorder
from repro.fitness.default_fitness import DefaultFitness
from repro.isa.catalogs import write_stock_config


class _LdrCounter:
    def measure(self, source_text, individual):
        return [float(sum(1 for i in individual.instructions
                          if i.name == "LDR"))]

    def measure_repeated(self, source_text, individual):
        return self.measure(source_text, individual)


@pytest.fixture
def recorded_run(tiny_config, tmp_path):
    recorder = OutputRecorder(tmp_path / "run")
    engine = GeneticEngine(tiny_config, _LdrCounter(), DefaultFitness(),
                           recorder=recorder)
    history = engine.run()
    return recorder.results_dir, history


class TestPostprocess:
    def test_load_run_returns_all_generations(self, recorded_run):
        results_dir, history = recorded_run
        populations = load_run(results_dir)
        assert len(populations) == len(history.generations)
        assert [p.number for p in populations] == list(
            range(len(populations)))

    def test_statistics_match_history(self, recorded_run):
        results_dir, history = recorded_run
        stats = run_statistics(results_dir)
        assert stats.best_fitness_per_generation == \
            history.best_fitness_series()
        assert stats.mean_fitness_per_generation == pytest.approx(
            history.mean_fitness_series())
        assert stats.overall_best_fitness == \
            history.best_individual.fitness

    def test_statistics_include_mix_per_generation(self, recorded_run):
        results_dir, _ = recorded_run
        stats = run_statistics(results_dir)
        assert len(stats.best_mix_per_generation) == stats.generations
        assert all(sum(m.values()) == 8
                   for m in stats.best_mix_per_generation)

    def test_not_a_run_directory(self, tmp_path):
        with pytest.raises(ConfigError):
            load_run(tmp_path)

    def test_empty_populations_dir(self, tmp_path):
        (tmp_path / "populations").mkdir()
        with pytest.raises(ConfigError):
            load_run(tmp_path)


class TestCli:
    def test_run_and_stats_round_trip(self, tmp_path, capsys):
        config = write_stock_config(tmp_path, "arm", "power",
                                    population_size=6, generations=2,
                                    individual_size=10)
        rc = main(["run", str(config), "--platform", "cortex_a7",
                   "--results", str(tmp_path / "results")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "generation" in out
        assert "best individual" in out

        rc = main(["stats", str(tmp_path / "results")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "overall best fitness" in out

    def test_run_quiet(self, tmp_path, capsys):
        config = write_stock_config(tmp_path, "x86", "didt",
                                    population_size=4, generations=1,
                                    individual_size=8)
        rc = main(["run", str(config), "--platform", "athlon_x4",
                   "--quiet"])
        assert rc == 0
        assert capsys.readouterr().out == ""

    def test_generation_override(self, tmp_path, capsys):
        config = write_stock_config(tmp_path, "arm", "ipc",
                                    population_size=4, generations=9,
                                    individual_size=8)
        rc = main(["run", str(config), "--platform", "xgene2",
                   "--generations", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("generation ") == 1

    def test_seed_override_changes_outcome(self, tmp_path, capsys):
        config = write_stock_config(tmp_path, "arm", "power",
                                    population_size=4, generations=1,
                                    individual_size=8)
        def body(seed):
            main(["run", str(config), "--seed", str(seed)])
            out = capsys.readouterr().out
            return out.split("best individual")[1]
        assert body(1) != body(2)

    def test_missing_config_reports_error(self, tmp_path, capsys):
        rc = main(["run", str(tmp_path / "none.xml")])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_stats_on_garbage_reports_error(self, tmp_path, capsys):
        rc = main(["stats", str(tmp_path)])
        assert rc == 1

    def test_presets_lists_platforms(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        for name in ("cortex_a15", "cortex_a7", "xgene2", "athlon_x4"):
            assert name in out
