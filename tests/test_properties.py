"""Property-based tests (hypothesis) on core data structures and model
invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.individual import Individual, random_individual
from repro.core.operand import ImmediateOperand, RegisterOperand
from repro.core.operators import (mutate, one_point_crossover,
                                  tournament_select, uniform_crossover)
from repro.core.rng import make_rng, spawn
from repro.cpu.microarch import PDNParams, ThermalParams, microarch_for
from repro.cpu.pdn import PDNModel
from repro.cpu.pipeline import PipelineSimulator
from repro.cpu.power import value_toggle_activity
from repro.cpu.thermal import ThermalModel
from repro.isa import ArmAssembler, arm_library

LIB = arm_library()
ASM = ArmAssembler()


# ---------------------------------------------------------------------------
# operand pools
# ---------------------------------------------------------------------------

@given(minimum=st.integers(-1000, 1000), span=st.integers(0, 2000),
       stride=st.integers(1, 97))
def test_immediate_pool_membership(minimum, span, stride):
    op = ImmediateOperand("imm", minimum, minimum + span, stride)
    values = [int(v) for v in op.choices()]
    assert values[0] == minimum
    assert all(minimum <= v <= minimum + span for v in values)
    assert all((v - minimum) % stride == 0 for v in values)
    assert op.cardinality() == span // stride + 1


@given(names=st.lists(st.sampled_from([f"x{i}" for i in range(16)]),
                      min_size=1, max_size=30))
def test_register_pool_dedup_preserves_order(names):
    op = RegisterOperand("r", names)
    choices = list(op.choices())
    assert len(choices) == len(set(choices))
    # Order of first occurrence is preserved.
    firsts = []
    for n in names:
        if n not in firsts:
            firsts.append(n)
    assert choices == firsts


@given(seed=st.integers(0, 2**32 - 1), size=st.integers(1, 60))
def test_random_individual_always_assembles(seed, size):
    """Any individual the GA can generate from the stock ARM catalog is
    valid input for the ARM assembler."""
    ind = random_individual(LIB, size, make_rng(seed))
    program = ASM.assemble(ind.render_body())
    assert program.loop_length >= size   # branches add label lines only


# ---------------------------------------------------------------------------
# GA operators
# ---------------------------------------------------------------------------

@given(seed=st.integers(0, 2**32 - 1), size=st.integers(2, 40))
@settings(max_examples=40)
def test_one_point_crossover_preserves_multiset(seed, size):
    rng = make_rng(seed)
    p1 = random_individual(LIB, size, rng)
    p2 = random_individual(LIB, size, rng)
    p1.record_evaluation([1.0], 1.0)
    p2.record_evaluation([2.0], 2.0)
    c1, c2 = one_point_crossover(p1, p2, rng)
    combined_children = sorted(
        (i.name, i.values) for i in list(c1) + list(c2))
    combined_parents = sorted(
        (i.name, i.values)
        for i in list(p1.instructions) + list(p2.instructions))
    assert combined_children == combined_parents


@given(seed=st.integers(0, 2**32 - 1), size=st.integers(1, 40))
@settings(max_examples=40)
def test_uniform_crossover_preserves_multiset(seed, size):
    rng = make_rng(seed)
    p1 = random_individual(LIB, size, rng)
    p2 = random_individual(LIB, size, rng)
    p1.record_evaluation([1.0], 1.0)
    p2.record_evaluation([2.0], 2.0)
    c1, c2 = uniform_crossover(p1, p2, rng)
    for slot in range(size):
        assert {c1[slot], c2[slot]} == \
            {p1.instructions[slot], p2.instructions[slot]}


@given(seed=st.integers(0, 2**32 - 1),
       rate=st.floats(0.0, 1.0, allow_nan=False),
       size=st.integers(1, 40))
@settings(max_examples=40)
def test_mutation_preserves_length_and_validity(seed, rate, size):
    rng = make_rng(seed)
    genome = list(random_individual(LIB, size, rng).instructions)
    mutated = mutate(genome, LIB, rng, rate)
    assert len(mutated) == size
    # Every mutated instruction still renders and assembles.
    ASM.assemble(Individual(mutated).render_body())


@given(seed=st.integers(0, 2**32 - 1), size=st.integers(2, 20),
       tsize=st.integers(1, 10))
@settings(max_examples=40)
def test_tournament_winner_never_below_population_min(seed, size, tsize):
    rng = make_rng(seed)
    population = []
    for i in range(size):
        ind = random_individual(LIB, 5, rng)
        ind.record_evaluation([float(i)], float(i))
        population.append(ind)
    winner = tournament_select(population, rng, tsize)
    assert winner.fitness >= 0.0


# ---------------------------------------------------------------------------
# rng
# ---------------------------------------------------------------------------

@given(seed=st.integers(0, 2**63 - 1))
def test_spawned_streams_differ_from_parent(seed):
    parent = make_rng(seed)
    child = spawn(parent, 1)
    a = [child.random() for _ in range(5)]
    parent2 = make_rng(seed)
    b = [parent2.random() for _ in range(5)]
    assert a != b


# ---------------------------------------------------------------------------
# power / thermal / PDN invariants
# ---------------------------------------------------------------------------

@given(value=st.integers(0, 2**64 - 1))
def test_toggle_activity_bounded(value):
    assert 0.0 <= value_toggle_activity(value) <= 1.0


@given(value=st.integers(0, 2**64 - 1))
def test_toggle_activity_invariant_under_complement(value):
    """Complementing every bit preserves adjacent-bit transitions."""
    complement = value ^ (2**64 - 1)
    assert value_toggle_activity(value) == pytest.approx(
        value_toggle_activity(complement))


@given(power=st.floats(0.0, 200.0, allow_nan=False),
       elapsed=st.floats(0.0, 100.0, allow_nan=False))
def test_thermal_bounded_by_steady_state(power, elapsed):
    model = ThermalModel(ThermalParams(25.0, 1.5, 3.0))
    t = model.temperature_c(power, elapsed)
    assert 25.0 <= t <= model.steady_state_c(power) + 1e-9


@given(power_a=st.floats(0.0, 100.0), power_b=st.floats(0.0, 100.0),
       elapsed=st.floats(0.01, 50.0))
def test_thermal_monotone_in_power(power_a, power_b, elapsed):
    model = ThermalModel(ThermalParams(25.0, 1.5, 3.0))
    lo, hi = sorted((power_a, power_b))
    assert model.temperature_c(lo, elapsed) <= \
        model.temperature_c(hi, elapsed) + 1e-9


@given(level=st.floats(1.0, 50.0), supply=st.floats(0.8, 1.5))
@settings(max_examples=25)
def test_pdn_dc_solution(level, supply):
    model = PDNModel(PDNParams(2e-3, 8e-12, 3e-7), 3e9)
    trace = model.simulate(np.full(3000, level), supply)
    assert trace.mean == pytest.approx(supply - 2e-3 * level, abs=1e-4)
    assert trace.peak_to_peak < 1e-5


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_pipeline_ipc_bounded_by_width(seed):
    arch = microarch_for("cortex_a15")
    ind = random_individual(LIB, 30, make_rng(seed))
    program = ASM.assemble(ind.render_body())
    trace = PipelineSimulator(arch).execute(program, max_cycles=300)
    assert 0.0 <= trace.ipc <= arch.issue_width
    assert trace.instructions_issued == \
        sum(len(c) for c in trace.issued_per_cycle)
