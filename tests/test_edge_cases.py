"""Edge-case battery across modules: paths not covered by the focused
unit files."""

import pytest

from repro.analysis import figure_rows, final_improvement
from repro.analysis.vmin import characterize_vmin
from repro.core.engine import RunHistory
from repro.core.errors import AssemblyError, ConfigError
from repro.core.rng import make_rng, spawn
from repro.cpu import SimulatedMachine
from repro.isa import (ArmAssembler, X86Assembler, arm_library,
                       library_for, template_for, write_stock_config)
from repro.workloads import FIGURE_BASELINES
from repro.workloads.builder import LoopBuilder, build_workload_source


class TestRngHelpers:
    def test_make_rng_deterministic(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_spawn_keys_decorrelate(self):
        parent = make_rng(5)
        a = spawn(parent, 1)
        parent2 = make_rng(5)
        b = spawn(parent2, 2)
        assert [a.random() for _ in range(3)] != \
            [b.random() for _ in range(3)]

    def test_spawn_same_key_same_stream(self):
        a = spawn(make_rng(5), 7)
        b = spawn(make_rng(5), 7)
        assert [a.random() for _ in range(5)] == \
            [b.random() for _ in range(5)]


class TestCatalogDispatch:
    def test_library_for_unknown_isa(self):
        with pytest.raises(ValueError, match="unknown ISA"):
            library_for("riscv")

    def test_template_for_unknown_isa(self):
        with pytest.raises(ValueError, match="unknown ISA"):
            template_for("riscv")

    def test_write_stock_config_unknown_metric(self, tmp_path):
        with pytest.raises(ValueError, match="unknown metric"):
            write_stock_config(tmp_path, "arm", "luminosity")

    def test_library_kwargs_forwarded(self):
        narrow = library_for("arm", max_offset=64, offset_stride=64)
        assert narrow.operand("mem_offset").cardinality() == 2

    def test_library_names_stable(self):
        assert arm_library().names == arm_library().names


class TestStreamBlock:
    @pytest.mark.parametrize("isa,assembler", [
        ("arm", ArmAssembler), ("x86", X86Assembler)])
    def test_stream_block_assembles(self, isa, assembler):
        body = LoopBuilder(isa).stream_block(6, advance=64).body()
        source = build_workload_source(isa, body)
        program = assembler().assemble(source)
        # 6 loads plus 3 base advances (every second load).
        mem = sum(1 for i in program.loop if i.iclass.is_memory)
        assert mem >= 6

    def test_stream_block_counts_loads_only(self):
        b = LoopBuilder("arm").stream_block(4)
        assert len(b) == 4                      # logical block size
        assert len(b.lines) == 6                # 4 loads + 2 advances


class TestVminEdges:
    def test_floor_stops_sweep(self, athlon_machine):
        program = athlon_machine.compile(".loop\nnop\n.endloop\n")
        floor = athlon_machine.arch.vdd_nominal - 0.05
        result = characterize_vmin(athlon_machine, program, cores=1,
                                   floor_v=floor)
        assert min(s for s, _ in result.sweep) > floor

    def test_crash_at_nominal_reports_above_nominal(self):
        """A workload that fails even at nominal supply gets a V_MIN
        above nominal to preserve ordering."""
        machine = SimulatedMachine("athlon_x4", seed=2, sim_cycles=800,
                                   supply_v=1.10)   # undervolted board
        heavy = (".loop\n" + "vfmadd231ps xmm0, xmm1, xmm2\n" * 6
                 + "idiv2 rsi, rdi\n" * 2 + ".endloop\n")
        program = machine.compile(heavy)
        # Force the sweep to start from an already-failing setting by
        # checking the nominal-supply run crashes under these params.
        result = characterize_vmin(machine, program, cores=4)
        assert result.vmin_v <= result.nominal_v + 0.0126


class TestReportEdges:
    def test_figure_rows_ascending(self):
        rows = figure_rows({"a": 2.0, "b": 1.0}, descending=False)
        assert [name for name, _ in rows] == ["b", "a"]

    def test_final_improvement_empty_history(self):
        assert final_improvement(RunHistory()) == 0.0


class TestFigureBaselineConsistency:
    def test_fig9_subset_of_fig8(self):
        assert set(FIGURE_BASELINES["fig9_vmin"]) <= \
            set(FIGURE_BASELINES["fig8_voltage_noise"])

    def test_no_viruses_in_baselines(self):
        for names in FIGURE_BASELINES.values():
            assert not any("virus" in n.lower() for n in names)


class TestX86Extras:
    def test_test_opcode_writes_only_flags(self, x86_asm):
        d = x86_asm.assemble("test rax, rbx\n").loop[0]
        assert d.writes == ("flags",)

    def test_lea_does_not_touch_memory(self, x86_asm):
        d = x86_asm.assemble("lea rax, [rbp+8]\n").loop[0]
        assert not d.iclass.is_memory

    def test_shift_by_register_reads_both(self, x86_asm):
        d = x86_asm.assemble("shl rax, rcx\n").loop[0]
        assert set(d.reads) == {"rax", "rcx"}
        assert d.group == "shift"

    def test_truly_bad_operand_fails(self, x86_asm):
        with pytest.raises(AssemblyError):
            x86_asm.assemble("shl rax, xmm1\n")


class TestArmExtras:
    def test_movk_reads_and_writes_destination(self, arm_asm):
        d = arm_asm.assemble("movk x1, #0xFF\n").loop[0]
        assert d.reads == ("x1",)
        assert d.writes == ("x1",)

    def test_adds_sets_flags(self, arm_asm):
        d = arm_asm.assemble("adds x1, x2, x3\n").loop[0]
        assert "flags" in d.writes

    def test_fmov_between_registers(self, arm_asm):
        d = arm_asm.assemble("fmov v1, v2\n").loop[0]
        assert d.reads == ("v2",)
        d = arm_asm.assemble("fmov v1, x2\n").loop[0]
        assert d.reads == ("x2",)

    def test_negative_immediate(self, arm_asm):
        d = arm_asm.assemble("add x1, x2, #-8\n").loop[0]
        assert d.immediate == -8


class TestMachineMisc:
    def test_run_result_temperature_is_mean_of_samples(self, a15_machine):
        result = a15_machine.run_source(
            ".loop\nadd x1, x2, x3\n.endloop\n", power_sample_count=7)
        assert len(result.temperature_samples_c) == 7
        assert result.temperature_c == pytest.approx(
            sum(result.temperature_samples_c) / 7)

    def test_shared_fraction_zero_without_shared_bases(self, a15_machine):
        program = a15_machine.compile(
            ".loop\nldr x7, [x10, #8]\n.endloop\n")
        assert a15_machine.shared_access_fraction(program) == 0.0

    def test_sim_cycles_guard(self):
        from repro.core.errors import TargetError
        with pytest.raises(TargetError):
            SimulatedMachine("cortex_a7", sim_cycles=10)

    def test_idle_chip_power_composition(self, a15_machine):
        idle_chip = a15_machine.idle_chip_power_w()
        idle_core = a15_machine.idle_core_power_w()
        assert idle_chip == pytest.approx(
            idle_core * a15_machine.arch.core_count
            + a15_machine.arch.uncore_power_w)


class TestConfigEdges:
    def test_operand_mutation_share_parsed(self, tmp_path):
        from repro.core.config import parse_config_text
        (tmp_path / "t.s").write_text("#loop_code\n")
        xml = """
<gest_config>
  <ga operand_mutation_share="0.9"/>
  <paths template="t.s"/>
  <operands>
    <operand id="r" type="register" values="x1"/>
  </operands>
  <instructions>
    <instruction name="N" num_of_operands="1" operand1="r"
                 format="mov op1, op1" type="int_short"/>
  </instructions>
</gest_config>
"""
        config = parse_config_text(xml, base_dir=tmp_path)
        assert config.ga.operand_mutation_share == pytest.approx(0.9)

    def test_label_operand_from_xml(self, tmp_path):
        from repro.core.config import parse_config_text
        (tmp_path / "t.s").write_text("#loop_code\n")
        xml = """
<gest_config>
  <paths template="t.s"/>
  <operands>
    <operand id="lbl" type="label" values="1f 2f"/>
  </operands>
  <instructions>
    <instruction name="B" num_of_operands="1" operand1="lbl"
                 format="b op1" type="branch"/>
  </instructions>
</gest_config>
"""
        config = parse_config_text(xml, base_dir=tmp_path)
        assert config.library.operand("lbl").cardinality() == 2


class TestShippedConfigs:
    """The configs/ bundles must always parse and run against their
    suggested platforms."""

    @pytest.mark.parametrize("bundle,platform", [
        ("arm_power", "cortex_a15"),
        ("arm_temperature", "xgene2"),
        ("arm_ipc", "xgene2"),
        ("x86_didt", "athlon_x4"),
    ])
    def test_bundle_parses_and_runs_one_generation(self, bundle, platform,
                                                   tmp_path):
        from pathlib import Path
        from repro.cli import main
        config = Path(__file__).parent.parent / "configs" / bundle \
            / "config.xml"
        assert config.exists(), f"missing shipped bundle {bundle}"
        # --results: the bundle's own results_dir points at the committed
        # configs/<bundle>/results/, which this run must not touch.
        rc = main(["run", str(config), "--platform", platform,
                   "--generations", "1", "--quiet",
                   "--results", str(tmp_path / "results")])
        assert rc == 0
