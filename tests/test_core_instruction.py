"""Unit tests for instruction specs and the library
(repro.core.instruction)."""

import pytest

from repro.core.errors import ConfigError
from repro.core.instruction import (ConcreteInstruction, InstructionLibrary,
                                    InstructionSpec)
from repro.core.operand import ImmediateOperand, RegisterOperand
from repro.core.rng import make_rng


def _spec(name="LDR", operands=("res", "base", "off"),
          fmt="ldr op1, [op2, #op3]", itype="mem"):
    return InstructionSpec(name, operands, fmt, itype)


def _operands():
    return [
        RegisterOperand("res", ["x2", "x3", "x4"]),
        RegisterOperand("base", ["x10"]),
        ImmediateOperand("off", 0, 256, 8),
    ]


class TestInstructionSpec:
    def test_render_substitutes_operands(self):
        spec = _spec()
        assert spec.render(["x2", "x10", "8"]) == "ldr x2, [x10, #8]"

    def test_render_high_slots_before_low(self):
        """op10 must not be corrupted by the op1 substitution."""
        ids = [f"o{i}" for i in range(10)]
        fmt = " ".join(f"op{i}" for i in range(1, 11))
        spec = InstructionSpec("WIDE", ids, fmt, "int_short")
        rendered = spec.render([str(i) for i in range(10)])
        assert rendered == "0 1 2 3 4 5 6 7 8 9"

    def test_render_wrong_arity_rejected(self):
        with pytest.raises(ConfigError):
            _spec().render(["x2", "x10"])

    def test_num_operands(self):
        assert _spec().num_operands == 3

    def test_zero_operand_instruction(self):
        spec = InstructionSpec("NOP", [], "nop", "nop")
        assert spec.render([]) == "nop"

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            InstructionSpec("", [], "nop", "nop")

    def test_empty_format_rejected(self):
        with pytest.raises(ConfigError):
            InstructionSpec("NOP", [], "", "nop")

    def test_format_missing_placeholder_rejected(self):
        with pytest.raises(ConfigError):
            InstructionSpec("ADD", ["a", "b"], "add op1", "int_short")

    def test_multiline_format_allowed(self):
        """Branch definitions render two lines (b 1f / 1:)."""
        spec = InstructionSpec("B", [], "b 1f\n1:", "branch")
        assert spec.render([]) == "b 1f\n1:"


class TestConcreteInstruction:
    def test_render(self):
        instr = ConcreteInstruction(_spec(), ("x2", "x10", "8"))
        assert instr.render() == "ldr x2, [x10, #8]"

    def test_str_matches_render(self):
        instr = ConcreteInstruction(_spec(), ("x2", "x10", "8"))
        assert str(instr) == instr.render()

    def test_name_and_itype(self):
        instr = ConcreteInstruction(_spec(), ("x2", "x10", "8"))
        assert instr.name == "LDR"
        assert instr.itype == "mem"

    def test_with_value_replaces_single_slot(self):
        instr = ConcreteInstruction(_spec(), ("x2", "x10", "8"))
        changed = instr.with_value(2, "16")
        assert changed.values == ("x2", "x10", "16")
        assert instr.values == ("x2", "x10", "8")   # original untouched

    def test_with_value_bad_slot(self):
        instr = ConcreteInstruction(_spec(), ("x2", "x10", "8"))
        with pytest.raises(ConfigError):
            instr.with_value(3, "x")

    def test_hashable_and_equal(self):
        spec = _spec()
        a = ConcreteInstruction(spec, ("x2", "x10", "8"))
        b = ConcreteInstruction(spec, ("x2", "x10", "8"))
        assert a == b
        assert hash(a) == hash(b)


class TestInstructionLibrary:
    def test_undefined_operand_id_terminates(self):
        """Paper: 'If the instruction definition contains an undefined
        operand id, the framework will terminate the execution.'"""
        with pytest.raises(ConfigError, match="undefined"):
            InstructionLibrary(_operands()[:2], [_spec()])

    def test_duplicate_instruction_name_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            InstructionLibrary(_operands(), [_spec(), _spec()])

    def test_duplicate_operand_id_rejected(self):
        ops = _operands() + [RegisterOperand("res", ["x9"])]
        with pytest.raises(ConfigError, match="duplicate"):
            InstructionLibrary(ops, [_spec()])

    def test_empty_library_rejected(self):
        with pytest.raises(ConfigError):
            InstructionLibrary(_operands(), [])

    def test_variant_count_matches_paper_example(self):
        """Figure 4's LDR: 3 result regs x 1 base x 33 immediates = 99."""
        lib = InstructionLibrary(_operands(), [_spec()])
        assert lib.variant_count("LDR") == 99

    def test_variant_count_zero_operand(self):
        lib = InstructionLibrary(
            _operands(), [_spec(), InstructionSpec("NOP", [], "nop", "nop")])
        assert lib.variant_count("NOP") == 1

    def test_spec_lookup(self):
        lib = InstructionLibrary(_operands(), [_spec()])
        assert lib.spec("LDR").name == "LDR"

    def test_spec_unknown(self):
        lib = InstructionLibrary(_operands(), [_spec()])
        with pytest.raises(ConfigError):
            lib.spec("SUB")

    def test_operand_lookup(self):
        lib = InstructionLibrary(_operands(), [_spec()])
        assert lib.operand("res").id == "res"
        with pytest.raises(ConfigError):
            lib.operand("nope")

    def test_contains(self):
        lib = InstructionLibrary(_operands(), [_spec()])
        assert "LDR" in lib
        assert "SUB" not in lib

    def test_len(self):
        lib = InstructionLibrary(_operands(), [_spec()])
        assert len(lib) == 1

    def test_random_instruction_is_valid(self):
        lib = InstructionLibrary(_operands(), [_spec()])
        rng = make_rng(5)
        for _ in range(30):
            instr = lib.random_instruction(rng)
            assert instr.name == "LDR"
            assert instr.values[0] in {"x2", "x3", "x4"}
            assert instr.values[1] == "x10"
            assert 0 <= int(instr.values[2]) <= 256

    def test_random_operand_value_respects_pool(self):
        lib = InstructionLibrary(_operands(), [_spec()])
        rng = make_rng(5)
        instr = lib.random_instruction(rng)
        for _ in range(20):
            assert lib.random_operand_value(instr, 0, rng) in \
                {"x2", "x3", "x4"}

    def test_random_operand_value_bad_slot(self):
        lib = InstructionLibrary(_operands(), [_spec()])
        rng = make_rng(5)
        instr = lib.random_instruction(rng)
        with pytest.raises(ConfigError):
            lib.random_operand_value(instr, 9, rng)

    def test_sample_values_arity(self, rng):
        lib = InstructionLibrary(_operands(), [_spec()])
        values = lib.sample_values(lib.spec("LDR"), rng)
        assert len(values) == 3

    def test_shared_operand_definition_across_instructions(self):
        """Paper: an operand definition can be common for multiple
        instructions (LDR/STR sharing base and offset)."""
        ops = _operands()
        specs = [
            _spec(),
            InstructionSpec("STR", ["res", "base", "off"],
                            "str op1, [op2, #op3]", "mem"),
        ]
        lib = InstructionLibrary(ops, specs)
        assert lib.variant_count("STR") == lib.variant_count("LDR")
