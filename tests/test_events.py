"""Tests for the typed event stream (repro.core.events).

The engine emits run_started / individual_evaluated /
generation_completed / checkpoint_written / run_finished to any number
of RunRecorder subscribers; FileRecorder is the paper's directory
layout expressed as one such subscriber.  These tests pin the event
protocol (ordering, payloads, run-id stamping), the atomic stats
append, and the bit-identical golden contract against the shipped
configuration bundles.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.engine import GeneticEngine, derive_run_id
from repro.core.events import (CheckpointWritten, GenerationCompleted,
                               IndividualEvaluated, RecorderSet, RunFinished,
                               RunRecorder, RunStarted, STATS_SCHEMA_VERSION,
                               as_recorders)
from repro.core.output import FileRecorder, read_stats
from repro.fitness.default_fitness import DefaultFitness

REPO_ROOT = Path(__file__).resolve().parent.parent


class CountingMeasurement:
    def measure(self, source_text, individual):
        score = float(sum(1 for i in individual.instructions
                          if i.name == "LDR"))
        return [score, score + 1.0]

    def measure_repeated(self, source_text, individual):
        return self.measure(source_text, individual)


class EventLog(RunRecorder):
    """Collects every event in emission order."""

    def __init__(self):
        self.events = []
        self.closed = False

    def handle(self, event):
        self.events.append(event)
        super().handle(event)

    def close(self):
        self.closed = True

    def of_type(self, cls):
        return [e for e in self.events if isinstance(e, cls)]


def _engine(config, recorder=None, **kwargs):
    return GeneticEngine(config, CountingMeasurement(), DefaultFitness(),
                         recorder=recorder, **kwargs)


class TestEventStream:
    def test_event_sequence(self, tiny_config, tmp_path):
        log = EventLog()
        engine = _engine(tiny_config, recorder=log,
                         checkpoint_path=tmp_path / "cp.bin")
        engine.run()
        gens = tiny_config.ga.generations
        pop = tiny_config.ga.population_size

        assert isinstance(log.events[0], RunStarted)
        assert isinstance(log.events[-1], RunFinished)
        assert len(log.of_type(IndividualEvaluated)) == gens * pop
        assert len(log.of_type(GenerationCompleted)) == gens
        assert len(log.of_type(CheckpointWritten)) == gens

        # Within each generation: evaluations strictly precede the
        # generation summary, which precedes its checkpoint.
        kinds = [type(e).__name__ for e in log.events]
        per_gen = (["IndividualEvaluated"] * pop +
                   ["GenerationCompleted", "CheckpointWritten"])
        assert kinds == ["RunStarted"] + per_gen * gens + ["RunFinished"]

    def test_events_carry_run_id(self, tiny_config):
        log = EventLog()
        engine = _engine(tiny_config, recorder=log)
        engine.run()
        assert all(e.run_id == engine.run_id for e in log.events)
        assert engine.run_id.startswith("run-")

    def test_run_started_payload(self, tiny_config):
        log = EventLog()
        _engine(tiny_config, recorder=log).run()
        started = log.of_type(RunStarted)[0]
        assert started.config is tiny_config
        assert started.strategy == "genetic"
        assert started.seed == tiny_config.ga.seed
        assert started.resumed is False

    def test_run_finished_payload(self, tiny_config):
        log = EventLog()
        history = _engine(tiny_config, recorder=log).run()
        finished = log.of_type(RunFinished)[0]
        assert finished.generations == tiny_config.ga.generations
        assert finished.cancelled is False
        assert finished.best is history.best_individual

    def test_generation_stats_stamped(self, tiny_config):
        log = EventLog()
        engine = _engine(tiny_config, recorder=log)
        engine.run()
        for event in log.of_type(GenerationCompleted):
            assert event.stats["schema"] == STATS_SCHEMA_VERSION
            assert event.stats["run_id"] == engine.run_id
            assert event.stats["number"] == event.population.number

    def test_stop_check_cancels_between_generations(self, tiny_config):
        log = EventLog()
        seen = []

        def stop():
            seen.append(True)
            return len(seen) >= 2

        history = _engine(tiny_config, recorder=log).run(stop_check=stop)
        assert history.cancelled is True
        assert len(history.generations) < tiny_config.ga.generations
        assert log.of_type(RunFinished)[0].cancelled is True

    def test_multiple_recorders_all_receive_events(self, tiny_config):
        a, b = EventLog(), EventLog()
        _engine(tiny_config, recorder=[a, b]).run()
        assert [type(e) for e in a.events] == [type(e) for e in b.events]

    def test_recorder_set_fans_out_and_closes(self, tiny_config):
        a, b = EventLog(), EventLog()
        group = RecorderSet([a, b])
        group.handle(RunStarted(run_id="run-x", config=tiny_config,
                                strategy="classic", seed=1))
        group.close()
        assert len(a.events) == len(b.events) == 1
        assert a.closed and b.closed

    def test_as_recorders_normalization(self):
        single = RunRecorder()
        assert as_recorders(None) == []
        assert as_recorders(single) == [single]
        assert as_recorders([single, single]) == [single, single]


class TestRunIdentity:
    def test_derive_run_id_deterministic(self, tiny_config):
        assert derive_run_id(tiny_config, "classic") == \
            derive_run_id(tiny_config, "classic")

    def test_derive_run_id_varies_with_strategy(self, tiny_config):
        assert derive_run_id(tiny_config, "classic") != \
            derive_run_id(tiny_config, "random")

    def test_explicit_run_id_wins(self, tiny_config):
        engine = _engine(tiny_config, run_id="run-000042")
        assert engine.run_id == "run-000042"


class TestAtomicStatsAppend:
    def test_single_line_per_record(self, tmp_path):
        recorder = FileRecorder(tmp_path / "run")
        recorder.record_stats({"number": 0, "best_fitness": 1.0})
        recorder.record_stats({"number": 1, "best_fitness": 2.0})
        lines = (tmp_path / "run" / "stats.jsonl").read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["number"] == i
                   for i, line in enumerate(lines))

    def test_truncated_trailing_record_skipped_with_warning(self, tmp_path):
        recorder = FileRecorder(tmp_path / "run")
        recorder.record_stats({"number": 0})
        recorder.record_stats({"number": 1})
        path = tmp_path / "run" / "stats.jsonl"
        # Simulate a torn write from a pre-atomic-append build: chop
        # the last record in half, no trailing newline.
        raw = path.read_bytes()
        path.write_bytes(raw[:-8])
        with pytest.warns(RuntimeWarning, match="unparseable"):
            records = list(read_stats(path))
        assert [r["number"] for r in records] == [0]

    def test_reader_tolerates_unknown_keys_and_blank_lines(self, tmp_path):
        path = tmp_path / "stats.jsonl"
        path.write_text('{"number": 0, "schema": 99, "novel_key": [1]}\n'
                        '\n'
                        '{"number": 1}\n')
        records = list(read_stats(path))
        assert len(records) == 2
        assert records[0]["novel_key"] == [1]

    def test_append_preserves_existing_records(self, tmp_path):
        recorder = FileRecorder(tmp_path / "run")
        recorder.record_stats({"number": 0})
        again = FileRecorder(tmp_path / "run")
        again.record_stats({"number": 1})
        assert [r["number"] for r in again.read_stats()] == [0, 1]


SHIPPED_CONFIGS = [
    ("arm_power", "cortex_a15"),
    ("arm_ipc", "xgene2"),
    ("arm_temperature", "xgene2"),
    ("x86_didt", "athlon_x4"),
]


class TestFileRecorderGolden:
    """The refactor's core contract: FileRecorder driven by the event
    stream produces byte-for-byte the tree the pre-event engine wrote.

    The shipped ``configs/*/results`` bundles were recorded before the
    refactor; generation 0 of a fresh run must reproduce every
    individual source file and the template copy exactly.  (Population
    binaries are covered by the long-standing golden test in
    test_search.py; stats.jsonl intentionally gained ``schema`` and
    ``run_id`` fields, so it is compared on content, not bytes.)
    """

    @pytest.mark.parametrize("name,platform", SHIPPED_CONFIGS)
    def test_generation0_files_bit_identical(self, name, platform,
                                             tmp_path):
        shipped = REPO_ROOT / "configs" / name
        rc = main(["run", str(shipped / "config.xml"),
                   "--platform", platform, "--generations", "1",
                   "--results", str(tmp_path / "results"), "--quiet"])
        assert rc == 0
        produced = tmp_path / "results"

        assert (produced / "template.s").read_bytes() == \
            (shipped / "results" / "template.s").read_bytes()

        golden_dir = shipped / "results" / "individuals"
        golden = {p.name: p for p in golden_dir.glob("0_*.txt")}
        mine = {p.name: p for p in
                (produced / "individuals").glob("0_*.txt")}
        assert set(mine) == set(golden)
        for fname, path in mine.items():
            assert path.read_bytes() == golden[fname].read_bytes(), fname

    def test_stats_record_content_matches_shipped(self, tmp_path):
        name, platform = "arm_ipc", "xgene2"
        shipped = REPO_ROOT / "configs" / name
        rc = main(["run", str(shipped / "config.xml"),
                   "--platform", platform, "--generations", "1",
                   "--results", str(tmp_path / "results"), "--quiet"])
        assert rc == 0
        [mine] = [r for r in
                  read_stats(tmp_path / "results" / "stats.jsonl")]
        # The shipped file holds repeated appends of the same
        # deterministic generation-0 record; any copy serves as golden.
        golden = next(r for r in
                      read_stats(shipped / "results" / "stats.jsonl")
                      if r["number"] == 0)
        assert mine["schema"] == STATS_SCHEMA_VERSION
        assert mine["run_id"].startswith("run-")
        for key in ("best_fitness", "best_uid", "best_measurements",
                    "mean_fitness", "measured", "number"):
            assert mine[key] == golden[key], key
