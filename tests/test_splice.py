"""Tests for the template splice compiler (:mod:`repro.isa.splice`)."""

import random

import pytest

from repro.core.config import parse_config_file
from repro.core.errors import AssemblyError
from repro.core.individual import random_individual
from repro.core.template import Template
from repro.cpu.machine import SimulatedMachine
from repro.isa.splice import TemplateSplicer

CONFIG = "configs/arm_power/config.xml"


@pytest.fixture(scope="module")
def config():
    return parse_config_file(CONFIG)


@pytest.fixture()
def setup(config):
    machine = SimulatedMachine("cortex_a15")
    template = Template(config.template_text)
    splicer = TemplateSplicer(template, machine.assembler)
    return machine, template, splicer


def _sources(config, template, count, seed=13):
    rng = random.Random(seed)
    sources = []
    for uid in range(count):
        individual = random_individual(config.library,
                                       config.ga.individual_size, rng,
                                       uid=uid)
        sources.append(template.instantiate(individual.render_body()))
    return sources


class TestTemplateSplicer:
    def test_spliced_programs_equal_full_assembly(self, config, setup):
        machine, template, splicer = setup
        for index, source in enumerate(_sources(config, template, 32)):
            spliced = splicer.compile(source, name=f"s{index}.s")
            reference = machine.assembler.assemble(source,
                                                   name=f"s{index}.s")
            assert spliced == reference
            assert spliced.register_values == reference.register_values
            assert spliced.dependence_summary() \
                == reference.dependence_summary()
        assert splicer.active
        assert splicer.spliced > 0

    def test_non_template_source_takes_full_path(self, setup):
        machine, _, splicer = setup
        source = ".loop\nadd x1, x1, x2\n.endloop\n"
        program = splicer.compile(source, name="other.s")
        assert program == machine.assembler.assemble(source, name="other.s")
        assert splicer.spliced == 0
        assert splicer.full_assemblies == 1

    def test_bad_body_keeps_assembler_diagnostics(self, config, setup):
        _, template, splicer = setup
        source = template.instantiate("no_such_opcode x1, x2")
        with pytest.raises(AssemblyError):
            splicer.compile(source, name="bad.s")
        assert splicer.active  # diagnostics came from the full path

    def test_numeric_label_bodies_splice(self, config, setup):
        machine, template, splicer = setup
        body = "1:\nadd x1, x1, x2\nsubs x3, x3, #1\nbne 1b"
        source = template.instantiate(body)
        # Compile twice: first validates against the full assembler,
        # second goes through the splice path proper.
        splicer.compile(source, name="lbl.s")
        spliced = splicer.compile(source, name="lbl.s")
        assert spliced == machine.assembler.assemble(source, name="lbl.s")
        assert splicer.active

    def test_validation_failure_deactivates(self, config, setup):
        _, template, splicer = setup
        source = template.instantiate("add x1, x1, x2")
        parts = splicer._capture_parts(source, ["add x1, x1, x2"],
                                       "warm.s")
        assert parts is not None
        # Corrupt the captured suffix: validation must catch the
        # mismatch and permanently fall back to the full assembler.
        parts = dict(parts)
        assert parts["suffix"], "template fixture lost its loop suffix"
        parts["suffix"] = parts["suffix"] + parts["suffix"][:1]
        splicer._parts = parts
        splicer.compile(source, name="warm.s")
        assert not splicer.active
