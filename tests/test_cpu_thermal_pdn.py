"""Unit tests for the thermal and PDN models
(repro.cpu.thermal, repro.cpu.pdn)."""

import math

import numpy as np
import pytest

from repro.cpu.microarch import PDNParams, ThermalParams, microarch_for
from repro.cpu.pdn import PDNModel
from repro.cpu.thermal import ThermalModel


@pytest.fixture
def thermal():
    return ThermalModel(ThermalParams(t_ambient_c=25.0, r_th_c_per_w=2.0,
                                      tau_s=2.0))


class TestThermalModel:
    def test_steady_state_linear_in_power(self, thermal):
        assert thermal.steady_state_c(10.0) == pytest.approx(45.0)
        assert thermal.steady_state_c(0.0) == pytest.approx(25.0)

    def test_transient_approaches_steady_state(self, thermal):
        t_short = thermal.temperature_c(10.0, 0.5)
        t_long = thermal.temperature_c(10.0, 20.0)
        assert t_short < t_long
        assert t_long == pytest.approx(45.0, abs=0.1)

    def test_transient_time_constant(self, thermal):
        # After one tau: 63.2% of the rise.
        t = thermal.temperature_c(10.0, 2.0)
        assert t == pytest.approx(25.0 + 20.0 * (1 - math.exp(-1)),
                                  abs=1e-6)

    def test_zero_time_is_ambient(self, thermal):
        assert thermal.temperature_c(50.0, 0.0) == pytest.approx(25.0)

    def test_negative_time_rejected(self, thermal):
        with pytest.raises(ValueError):
            thermal.temperature_c(10.0, -1.0)

    def test_sensor_quantisation(self, thermal):
        reading = thermal.sensor_reading_c(10.0, 100.0)
        step = thermal.sensor_step_c
        assert reading == pytest.approx(round(45.0 / step) * step)

    def test_idle_temperature(self, thermal):
        assert thermal.idle_temperature_c(1.0) == pytest.approx(27.0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            ThermalModel(ThermalParams(25.0, -1.0, 2.0))
        with pytest.raises(ValueError):
            ThermalModel(ThermalParams(25.0, 1.0, 0.0))


class TestPDNParams:
    def test_resonance_formula(self):
        params = PDNParams(r_ohm=1e-3, l_h=10e-12, c_f=2.53e-7)
        expected = 1.0 / (2 * math.pi * math.sqrt(10e-12 * 2.53e-7))
        assert params.resonance_hz == pytest.approx(expected)

    def test_q_factor_formula(self):
        params = PDNParams(r_ohm=2e-3, l_h=8e-12, c_f=2e-7)
        assert params.q_factor == pytest.approx(
            math.sqrt(8e-12 / 2e-7) / 2e-3)

    def test_athlon_preset_resonance_near_100mhz(self):
        pdn = microarch_for("athlon_x4").pdn
        assert 80e6 < pdn.resonance_hz < 120e6
        assert pdn.q_factor > 1.5


class TestPDNModel:
    @pytest.fixture
    def model(self):
        return PDNModel(microarch_for("athlon_x4").pdn, 3.1e9)

    def test_constant_current_gives_ir_drop_only(self, model):
        current = np.full(4000, 10.0)
        trace = model.simulate(current, supply_v=1.35)
        expected = 1.35 - model.params.r_ohm * 10.0
        assert trace.mean == pytest.approx(expected, rel=1e-3)
        assert trace.peak_to_peak < 1e-6

    def test_bigger_current_bigger_ir_drop(self, model):
        low = model.simulate(np.full(3000, 5.0), 1.35)
        high = model.simulate(np.full(3000, 50.0), 1.35)
        assert high.mean < low.mean

    def test_resonant_excitation_beats_offresonance(self, model):
        """A square wave at f_res produces much larger swings than the
        same amplitude far from resonance — the physics dI/dt viruses
        exploit."""
        n = 8000
        period_res = round(model.resonance_period_cycles)
        cycles = np.arange(n)
        square_res = 10.0 + 8.0 * ((cycles // (period_res // 2)) % 2)
        square_off = 10.0 + 8.0 * ((cycles // 2) % 2)   # ~8x f_res
        pkpk_res = model.simulate(square_res, 1.35).peak_to_peak
        pkpk_off = model.simulate(square_off, 1.35).peak_to_peak
        assert pkpk_res > pkpk_off * 3

    def test_impedance_peaks_near_resonance(self, model):
        f_res = model.resonance_hz
        z_res = model.impedance_magnitude(f_res)
        assert z_res > model.impedance_magnitude(f_res / 8)
        assert z_res > model.impedance_magnitude(f_res * 8)

    def test_impedance_dc_equals_zero_hz_series_resistance(self, model):
        assert model.impedance_magnitude(0.0) == pytest.approx(
            model.params.r_ohm)

    def test_voltage_trace_statistics_consistent(self, model):
        current = 10.0 + 2.0 * np.sin(
            2 * np.pi * np.arange(5000) / 31.0)
        trace = model.simulate(current, 1.35)
        assert trace.v_min <= trace.mean <= trace.v_max
        assert trace.peak_to_peak == pytest.approx(
            trace.v_max - trace.v_min)
        assert trace.max_droop == pytest.approx(1.35 - trace.v_min)

    def test_resonant_loop_length_rule(self, model):
        """loop length = IPC x f_clk / f_res (paper Section III.A)."""
        period = model.resonance_period_cycles
        assert model.resonant_loop_length(1.5) == round(1.5 * period)

    def test_resonant_loop_length_bad_ipc(self, model):
        with pytest.raises(ValueError):
            model.resonant_loop_length(0.0)

    def test_empty_current_rejected(self, model):
        with pytest.raises(ValueError):
            model.simulate(np.array([]), 1.35)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            PDNModel(PDNParams(0.0, 1e-12, 1e-7), 1e9)
        with pytest.raises(ValueError):
            PDNModel(PDNParams(1e-3, 1e-12, 1e-7), 0.0)

    def test_integration_is_stable(self, model):
        """Semi-implicit Euler must not blow up over long traces."""
        rng = np.random.default_rng(0)
        current = 10.0 + 5.0 * rng.random(60_000)
        trace = model.simulate(current, 1.35)
        assert np.all(np.isfinite(trace.voltage))
        assert 0.5 < trace.mean < 1.4
