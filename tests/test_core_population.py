"""Unit tests for populations and their persistence
(repro.core.population)."""

import pytest

from repro.core.errors import ConfigError
from repro.core.individual import random_individual
from repro.core.population import Population, load_population
from repro.core.rng import make_rng


def _population(library, size=6, number=0, evaluate=True, seed=0):
    rng = make_rng(seed)
    individuals = []
    for i in range(size):
        ind = random_individual(library, 8, rng, uid=i)
        if evaluate:
            ind.record_evaluation([float(i), float(i) + 0.5], float(i))
        individuals.append(ind)
    return Population(individuals, number=number)


class TestPopulation:
    def test_len_and_iteration(self, tiny_library):
        pop = _population(tiny_library, size=5)
        assert len(pop) == 5
        assert [ind.uid for ind in pop] == [0, 1, 2, 3, 4]

    def test_indexing(self, tiny_library):
        pop = _population(tiny_library)
        assert pop[0].uid == 0
        assert pop[-1].uid == 5

    def test_generation_number_stamped_on_members(self, tiny_library):
        pop = _population(tiny_library, number=3)
        assert all(ind.generation == 3 for ind in pop)

    def test_fittest(self, tiny_library):
        pop = _population(tiny_library)
        assert pop.fittest().uid == 5

    def test_fittest_empty_population(self):
        with pytest.raises(ConfigError):
            Population([]).fittest()

    def test_fittest_with_unevaluated_member(self, tiny_library):
        pop = _population(tiny_library, evaluate=False)
        with pytest.raises(ConfigError):
            pop.fittest()

    def test_ranked_descending(self, tiny_library):
        pop = _population(tiny_library)
        fitnesses = [ind.fitness for ind in pop.ranked()]
        assert fitnesses == sorted(fitnesses, reverse=True)

    def test_mean_fitness(self, tiny_library):
        pop = _population(tiny_library, size=4)
        assert pop.mean_fitness() == pytest.approx((0 + 1 + 2 + 3) / 4)

    def test_evaluated_flag(self, tiny_library):
        assert _population(tiny_library).evaluated
        assert not _population(tiny_library, evaluate=False).evaluated


class TestPersistence:
    def test_round_trip(self, tiny_library, tmp_path):
        pop = _population(tiny_library, number=4)
        path = pop.save(tmp_path / "population_4.bin")
        loaded = load_population(path)
        assert loaded.number == 4
        assert len(loaded) == len(pop)
        for a, b in zip(pop, loaded):
            assert a.uid == b.uid
            assert a.fitness == b.fitness
            assert a.measurements == b.measurements
            assert a.genome_key() == b.genome_key()
            assert a.parent_ids == b.parent_ids

    def test_round_trip_preserves_renderability(self, tiny_library,
                                                tmp_path):
        pop = _population(tiny_library)
        loaded = load_population(pop.save(tmp_path / "p.bin"))
        for ind in loaded:
            assert ind.render_body()

    def test_save_creates_parent_directories(self, tiny_library, tmp_path):
        pop = _population(tiny_library)
        path = pop.save(tmp_path / "deep" / "dir" / "p.bin")
        assert path.exists()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            load_population(tmp_path / "nope.bin")

    def test_load_garbage_file(self, tmp_path):
        bad = tmp_path / "bad.bin"
        import pickle
        bad.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(ConfigError):
            load_population(bad)

    def test_expected_size_check(self, tiny_library, tmp_path):
        pop = _population(tiny_library, size=6)
        path = pop.save(tmp_path / "p.bin")
        load_population(path, expected_size=6)
        with pytest.raises(ConfigError):
            load_population(path, expected_size=50)
