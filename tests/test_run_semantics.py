"""Semantics tests for run continuation paths: resume + recorder
interplay, seeded continuation numbering, and the virus cache key."""

import pytest

from repro.core import (GAParameters, GeneticEngine, OutputRecorder,
                        RunConfig)
from repro.core.population import load_population
from repro.experiments import GAScale, clear_virus_cache, evolve_virus
from repro.fitness import DefaultFitness


class _LdrCounter:
    def measure(self, source_text, individual):
        return [float(sum(1 for i in individual.instructions
                          if i.name == "LDR"))]

    def measure_repeated(self, source_text, individual):
        return self.measure(source_text, individual)


def _config(tiny_library, tiny_template, generations=6, seed=55):
    ga = GAParameters(population_size=6, individual_size=8,
                      mutation_rate=0.1, generations=generations,
                      tournament_size=3, seed=seed)
    return RunConfig(ga=ga, library=tiny_library,
                     template_text=tiny_template.text)


class TestResumeWithRecorder:
    def test_resumed_run_extends_recorded_generations(self, tiny_library,
                                                      tiny_template,
                                                      tmp_path):
        recorder_dir = tmp_path / "run"
        checkpoint = tmp_path / "run.ckpt"

        first = GeneticEngine(
            _config(tiny_library, tiny_template),
            _LdrCounter(), DefaultFitness(),
            recorder=OutputRecorder(recorder_dir),
            checkpoint_path=checkpoint)
        first.run(generations=3)

        resumed = GeneticEngine.resume(
            _config(tiny_library, tiny_template),
            _LdrCounter(), DefaultFitness(), checkpoint,
            recorder=OutputRecorder(recorder_dir))
        history = resumed.run(generations=6)

        recorder = OutputRecorder(recorder_dir)
        numbers = [int(p.stem.split("_")[1])
                   for p in recorder.population_files()]
        assert numbers == [0, 1, 2, 3, 4, 5]
        assert [g.number for g in history.generations] == [3, 4, 5]

    def test_resumed_populations_carry_fresh_uids(self, tiny_library,
                                                  tiny_template, tmp_path):
        checkpoint = tmp_path / "c.ckpt"
        recorder_dir = tmp_path / "run"
        GeneticEngine(_config(tiny_library, tiny_template),
                      _LdrCounter(), DefaultFitness(),
                      recorder=OutputRecorder(recorder_dir),
                      checkpoint_path=checkpoint).run(generations=3)
        resumed = GeneticEngine.resume(
            _config(tiny_library, tiny_template), _LdrCounter(),
            DefaultFitness(), checkpoint,
            recorder=OutputRecorder(recorder_dir))
        resumed.run(generations=5)

        seen = set()
        recorder = OutputRecorder(recorder_dir)
        for path in recorder.population_files():
            for individual in load_population(path):
                assert individual.uid not in seen
                seen.add(individual.uid)

    def test_checkpoint_overwritten_atomically(self, tiny_library,
                                               tiny_template, tmp_path):
        checkpoint = tmp_path / "c.ckpt"
        GeneticEngine(_config(tiny_library, tiny_template),
                      _LdrCounter(), DefaultFitness(),
                      checkpoint_path=checkpoint).run()
        # No stray temp file remains after the run.
        assert not checkpoint.with_suffix(".tmp").exists()
        assert checkpoint.exists()


class TestVirusCacheKey:
    def test_samples_is_part_of_the_key(self):
        clear_virus_cache()
        tiny = dict(population_size=6, generations=2, individual_size=10)
        a = evolve_virus("cortex_a7", "power", 5,
                         scale=GAScale(samples=2, **tiny))
        b = evolve_virus("cortex_a7", "power", 5,
                         scale=GAScale(samples=4, **tiny))
        assert a is not b
        clear_virus_cache()
