"""Golden equivalence suite for the population-batched evaluation path.

The batched pipeline (:class:`repro.cpu.machine.BatchedMachine`,
:class:`repro.evaluation.backends.BatchedBackend`) promises *bitwise*
identical per-individual observables to the serial path — not merely
statistically equivalent.  These tests enforce that promise across
microarchitecture presets (in-order and out-of-order), steady-state
detection on and off, cache-modelled machines (which take the batched
path's serial fallback), repeated measurements, noisy environments,
and ragged generations where screen failures and evaluation-cache hits
interleave with the batch.
"""

import random

import numpy as np
import pytest

from repro.core.config import RunConfig, parse_config_file
from repro.core.engine import GeneticEngine
from repro.core.individual import random_individual
from repro.core.template import Template
from repro.cpu.cache import MemoryHierarchy
from repro.cpu.machine import BatchedMachine, SimulatedMachine
from repro.cpu.target import SimulatedTarget
from repro.evaluation import EvaluationCache
from repro.evaluation.backends import (AutoSelectBackend, BatchedBackend,
                                       SerialBackend, supports_batching)
from repro.evaluation.pipeline import EvaluationPipeline, noise_key
from repro.fitness.default_fitness import DefaultFitness
from repro.measurement.oscilloscope import OscilloscopeMeasurement
from repro.measurement.power import PowerMeasurement
from repro.staticcheck.screen import StaticScreen

CONFIG = "configs/arm_power/config.xml"

#: In-order (cortex_a7) and out-of-order presets, per the golden matrix.
PRESETS = ("cortex_a15", "cortex_a7", "xgene2", "cortex_a57")


@pytest.fixture(scope="module")
def config() -> RunConfig:
    return parse_config_file(CONFIG)


def _programs(machine: SimulatedMachine, config: RunConfig, count: int,
              seed: int = 42):
    template = Template(config.template_text)
    rng = random.Random(seed)
    programs = []
    for uid in range(count):
        individual = random_individual(config.library,
                                       config.ga.individual_size, rng,
                                       uid=uid)
        source = template.instantiate(individual.render_body())
        programs.append(machine.assembler.assemble(source,
                                                   name=f"g{uid}.s"))
    return programs


def _assert_run_results_equal(serial, batched):
    assert serial.ipc == batched.ipc
    assert serial.core_power_w == batched.core_power_w
    assert serial.chip_power_w == batched.chip_power_w
    assert serial.power_samples_w == batched.power_samples_w
    assert serial.temperature_samples_c == batched.temperature_samples_c
    assert np.array_equal(serial.voltage.voltage, batched.voltage.voltage)
    assert serial.voltage.warmup_samples == batched.voltage.warmup_samples
    assert serial.crashed == batched.crashed
    assert serial.noc_power_w == batched.noc_power_w


class TestBatchedMachineGoldens:
    """run_batch vs machine.run, bit for bit."""

    @pytest.mark.parametrize("preset", PRESETS)
    @pytest.mark.parametrize("detection", [True, False],
                             ids=["detect", "full-sim"])
    def test_presets_and_detection(self, config, preset, detection):
        machine = SimulatedMachine(preset, sim_cycles=400,
                                   steady_state_detection=detection)
        programs = _programs(machine, config, 12)
        keys = [noise_key(3, p.name) for p in programs]
        serial = []
        for key, program in zip(keys, programs):
            machine.reseed(key)
            serial.append(machine.run(program, duration_s=1.0,
                                      power_sample_count=3))
        batched = BatchedMachine(machine).run_batch(
            programs, duration_s=1.0, power_sample_count=3,
            noise_keys=keys)
        for reference, rounds in zip(serial, batched):
            assert len(rounds) == 1
            _assert_run_results_equal(reference, rounds[0])

    def test_noisy_environment_and_repeats(self, config):
        machine = SimulatedMachine("cortex_a15", sim_cycles=400,
                                   environment="os")
        programs = _programs(machine, config, 8)
        keys = [noise_key(9, p.name) for p in programs]
        serial = []
        for key, program in zip(keys, programs):
            machine.reseed(key)
            serial.append([machine.run(program, duration_s=1.0,
                                       power_sample_count=4)
                           for _ in range(3)])
        batched = BatchedMachine(machine).run_batch(
            programs, duration_s=1.0, power_sample_count=4,
            noise_keys=keys, repeats=3)
        for reference_rounds, rounds in zip(serial, batched):
            assert len(rounds) == 3
            for reference, result in zip(reference_rounds, rounds):
                _assert_run_results_equal(reference, result)

    def test_cache_hierarchy_falls_back_bit_identically(self, config):
        def build():
            return SimulatedMachine("cortex_a15", sim_cycles=400,
                                    hierarchy=MemoryHierarchy())
        machine = build()
        programs = _programs(machine, config, 6)
        keys = [noise_key(5, p.name) for p in programs]
        serial = []
        for key, program in zip(keys, programs):
            machine.reseed(key)
            serial.append(machine.run(program, duration_s=1.0,
                                      power_sample_count=3))
        replica = build()
        replica_programs = _programs(replica, config, 6)
        batched = BatchedMachine(replica).run_batch(
            replica_programs, duration_s=1.0, power_sample_count=3,
            noise_keys=keys)
        for reference, rounds in zip(serial, batched):
            _assert_run_results_equal(reference, rounds[0])
            assert rounds[0].cache is not None

    def test_ragged_steady_state_periods(self, config):
        """Mixed detected/undetected periods in one batch still match."""
        machine = SimulatedMachine("cortex_a15", sim_cycles=400)
        programs = _programs(machine, config, 16, seed=7)
        keys = [noise_key(11, p.name) for p in programs]
        batched = BatchedMachine(machine).run_batch(
            programs, duration_s=1.0, power_sample_count=3,
            noise_keys=keys)
        periods = {rounds[0].trace.period_cycles for rounds in batched}
        assert len(periods) > 1, "fixture lost its ragged-period property"
        for key, program, rounds in zip(keys, programs, batched):
            machine.reseed(key)
            _assert_run_results_equal(
                machine.run(program, duration_s=1.0, power_sample_count=3),
                rounds[0])


def _build_pipeline(config, measurement_cls=PowerMeasurement,
                    screen=False, hierarchy=False, params=None):
    machine = SimulatedMachine(
        "cortex_a15", seed=config.ga.seed or 0, sim_cycles=400,
        hierarchy=MemoryHierarchy() if hierarchy else None)
    target = SimulatedTarget(machine)
    target.connect()
    measurement = measurement_cls(
        target, dict(params or {"duration": "1", "samples": "3"}))
    return EvaluationPipeline(
        template=Template(config.template_text), measurement=measurement,
        fitness=DefaultFitness(),
        screen=StaticScreen.for_machine(machine) if screen else None,
        noise_seed=config.ga.seed or 0)


def _jobs(pipeline, config, count, seed=21, corrupt=()):
    rng = random.Random(seed)
    jobs = []
    for uid in range(count):
        individual = random_individual(config.library,
                                       config.ga.individual_size, rng,
                                       uid=uid)
        source = pipeline.render(individual)
        if uid in corrupt:
            source = source.replace("#loop_code", "", 1) \
                .replace("\n", "\nnot_an_opcode zz\n", 1)
        jobs.append((individual, source))
    return jobs


class TestBatchedBackendGoldens:
    """BatchedBackend vs SerialBackend over the full pipeline."""

    @pytest.mark.parametrize("measurement_cls",
                             [PowerMeasurement, OscilloscopeMeasurement])
    def test_equivalence_with_screen_failures(self, config,
                                              measurement_cls):
        results = {}
        for name, backend in (("serial", SerialBackend()),
                              ("batched", BatchedBackend())):
            pipeline = _build_pipeline(config, measurement_cls,
                                       screen=True)
            jobs = _jobs(pipeline, config, 12, corrupt={3, 8})
            results[name] = backend.evaluate(pipeline, jobs)
        assert len(results["serial"]) == len(results["batched"]) == 12
        for serial, batched in zip(results["serial"], results["batched"]):
            assert serial == batched or (
                serial.uid == batched.uid
                and serial.measurements == batched.measurements
                and serial.fitness == batched.fitness
                and serial.screen_failed == batched.screen_failed
                and serial.compile_failed == batched.compile_failed)
        flagged = [r.uid for r in results["batched"] if r.screen_failed]
        assert flagged == [3, 8]

    def test_repeats_and_median_aggregate(self, config):
        params = {"duration": "1", "samples": "3", "repeats": "3",
                  "aggregate": "median"}
        serial_pipeline = _build_pipeline(config, params=params)
        batched_pipeline = _build_pipeline(config, params=params)
        jobs_serial = _jobs(serial_pipeline, config, 10)
        jobs_batched = _jobs(batched_pipeline, config, 10)
        serial = SerialBackend().evaluate(serial_pipeline, jobs_serial)
        batched = BatchedBackend().evaluate(batched_pipeline, jobs_batched)
        for left, right in zip(serial, batched):
            assert left.measurements == right.measurements
            assert left.fitness == right.fitness

    def test_cache_hits_interleaved_with_misses(self, config):
        """A generation that is part cache-replay, part fresh batch."""
        def run(backend):
            from repro.evaluation.evaluator import StagedEvaluator
            pipeline = _build_pipeline(config)
            cache = EvaluationCache("golden")
            evaluator = StagedEvaluator(pipeline, backend=backend,
                                        cache=cache)
            jobs = _jobs(pipeline, config, 8)

            class _Population(list):
                number = 0
            first = _Population(ind for ind, _ in jobs[:5])
            evaluator.evaluate_population(first)
            # Individuals stay unevaluated (the engine, not the
            # evaluator, attaches results), so re-running the full
            # population re-renders the first five and replays them
            # from the cache, interleaved with three fresh misses.
            everyone = _Population(ind for ind, _ in jobs)
            outcome = evaluator.evaluate_population(everyone)
            return outcome

        serial = run(SerialBackend())
        batched = run(BatchedBackend())
        assert serial.cache_hits == batched.cache_hits == 5
        assert [r.uid for r in serial.results] \
            == [r.uid for r in batched.results]
        for left, right in zip(serial.results, batched.results):
            assert left.measurements == right.measurements
            assert left.fitness == right.fitness
            assert left.cache_hit == right.cache_hit

    def test_non_batchable_pipeline_falls_back(self, config):
        pipeline = _build_pipeline(config)

        class Custom(PowerMeasurement):
            def measure(self, source_text, individual):
                return [1.0]
        custom = Custom.__new__(Custom)
        custom.__dict__.update(pipeline.measurement.__dict__)
        Custom.measure_from_result = \
            PowerMeasurement.__mro__[1].measure_from_result
        assert not custom.supports_batching()
        pipeline.measurement = custom
        assert not supports_batching(pipeline)
        jobs = _jobs(pipeline, config, 4)
        results = BatchedBackend().evaluate(pipeline, jobs)
        assert [r.measurements for r in results] == [[1.0]] * 4

    def test_auto_select_records_choice(self, config):
        backend = AutoSelectBackend(pool_workers=1)
        pipeline = _build_pipeline(config)
        small = _jobs(pipeline, config, 3)
        backend.evaluate_generation(pipeline, small)
        assert backend.last_choice == "serial"
        assert "3 jobs" in backend.last_reason
        jobs = _jobs(pipeline, config, 12)
        for individual, _ in jobs:
            individual.uid += 100
        backend.evaluate_generation(pipeline, jobs)
        assert backend.last_choice == "batched"
        assert backend.shares_state


class TestEngineBackendStats:
    def test_stats_record_backend_choice(self, config, tmp_path):
        import copy
        run_config = copy.deepcopy(config)
        run_config.ga.population_size = 10
        run_config.ga.generations = 2
        machine = SimulatedMachine("cortex_a15",
                                   seed=run_config.ga.seed or 0,
                                   sim_cycles=400)
        target = SimulatedTarget(machine)
        target.connect()
        measurement = PowerMeasurement(target,
                                       {"duration": "1", "samples": "3"})
        engine = GeneticEngine(run_config, measurement, DefaultFitness(),
                               backend=AutoSelectBackend(pool_workers=1))
        history = engine.run(2)
        assert all(g.backend == "batched" for g in history.generations)
        assert all(g.backend_reason for g in history.generations)
