"""Unit tests for the shared assembler machinery
(repro.isa.assembler) using the ARM front-end."""

import pytest

from repro.core.errors import AssemblyError
from repro.isa import split_operands
from repro.isa.model import InstrClass


class TestSplitOperands:
    def test_simple_commas(self):
        assert split_operands("x1, x2, x3") == ["x1", "x2", "x3"]

    def test_bracketed_group_kept_intact(self):
        assert split_operands("x1, [x10, #8]") == ["x1", "[x10, #8]"]

    def test_nested_whitespace(self):
        assert split_operands(" x1 ,  x2 ") == ["x1", "x2"]

    def test_empty(self):
        assert split_operands("") == []

    def test_unbalanced_open(self):
        with pytest.raises(AssemblyError):
            split_operands("[x10, #8")

    def test_unbalanced_close(self):
        with pytest.raises(AssemblyError):
            split_operands("x10]")


class TestSections:
    def test_init_and_loop_split(self, arm_asm):
        program = arm_asm.assemble(
            "mov x1, #1\n.loop\nadd x2, x3, x4\n.endloop\n")
        assert len(program.init) == 1
        assert len(program.loop) == 1

    def test_bare_program_is_all_loop(self, arm_asm):
        program = arm_asm.assemble("add x1, x2, x3\nsub x2, x3, x4\n")
        assert program.init == []
        assert len(program.loop) == 2

    def test_duplicate_loop_rejected(self, arm_asm):
        with pytest.raises(AssemblyError, match="duplicate"):
            arm_asm.assemble(".loop\nnop\n.endloop\n.loop\nnop\n.endloop\n")

    def test_endloop_without_loop(self, arm_asm):
        with pytest.raises(AssemblyError, match="without"):
            arm_asm.assemble("nop\n.endloop\n")

    def test_unterminated_loop(self, arm_asm):
        with pytest.raises(AssemblyError, match="endloop"):
            arm_asm.assemble(".loop\nnop\n")

    def test_instruction_after_endloop_rejected(self, arm_asm):
        with pytest.raises(AssemblyError, match="after"):
            arm_asm.assemble(".loop\nnop\n.endloop\nnop\n")

    def test_other_directives_ignored(self, arm_asm):
        program = arm_asm.assemble(
            ".text\n.global main\n.loop\nnop\n.endloop\n")
        assert len(program.loop) == 1


class TestComments:
    def test_double_slash_comment(self, arm_asm):
        program = arm_asm.assemble("// whole line\nadd x1, x2, x3 // tail\n")
        assert len(program.loop) == 1

    def test_semicolon_comment(self, arm_asm):
        program = arm_asm.assemble("; only comment\nnop ; done\n")
        assert len(program.loop) == 1

    def test_blank_lines_ignored(self, arm_asm):
        program = arm_asm.assemble("\n\nnop\n\n")
        assert len(program.loop) == 1

    def test_hash_not_a_comment(self, arm_asm):
        """'#' introduces immediates, not comments."""
        program = arm_asm.assemble("mov x1, #42\n")
        assert program.loop[0].immediate == 42


class TestLabels:
    def test_named_label_backward_branch(self, arm_asm):
        program = arm_asm.assemble(
            ".loop\ntop:\nadd x1, x2, x3\nsubs x0, x0, #1\nbne top\n"
            ".endloop\n")
        branch = program.loop[-1]
        assert branch.branch_target == 0
        assert branch.backward

    def test_numeric_forward_label(self, arm_asm):
        program = arm_asm.assemble(
            ".loop\nb 1f\n1:\nadd x1, x2, x3\n.endloop\n")
        branch = program.loop[0]
        assert branch.branch_target == 1
        assert not branch.backward

    def test_repeated_numeric_labels_resolve_nearest(self, arm_asm):
        program = arm_asm.assemble(
            ".loop\nb 1f\n1:\nnop\nb 1f\n1:\nnop\n.endloop\n")
        first, second = program.loop[0], program.loop[2]
        assert first.branch_target == 1
        assert second.branch_target == 3

    def test_numeric_backward_label(self, arm_asm):
        program = arm_asm.assemble(
            ".loop\n1:\nnop\nb 1b\n.endloop\n")
        branch = program.loop[1]
        assert branch.branch_target == 0
        assert branch.backward

    def test_undefined_label(self, arm_asm):
        with pytest.raises(AssemblyError, match="undefined label"):
            arm_asm.assemble("b nowhere\n")

    def test_duplicate_named_label(self, arm_asm):
        with pytest.raises(AssemblyError, match="duplicate label"):
            arm_asm.assemble("x:\nnop\nx:\nnop\n")

    def test_loop_branch_to_init_label_maps_to_loop_start(self, arm_asm):
        """The classic decrement-and-branch pattern where the label sits
        just before .loop."""
        program = arm_asm.assemble(
            "mov x0, #10\nstart:\n.loop\nnop\nbne start\n.endloop\n")
        assert program.loop[1].branch_target == 0

    def test_missing_forward_numeric_label(self, arm_asm):
        with pytest.raises(AssemblyError, match="forward"):
            arm_asm.assemble(".loop\nb 1f\nnop\n.endloop\n")

    def test_label_and_instruction_on_one_line(self, arm_asm):
        program = arm_asm.assemble(".loop\ntop: nop\nb top\n.endloop\n")
        assert len(program.loop) == 2
        assert program.loop[1].branch_target == 0


class TestErrors:
    def test_unknown_opcode_reports_line(self, arm_asm):
        with pytest.raises(AssemblyError, match="line 2"):
            arm_asm.assemble("nop\nfrobnicate x1\n")

    def test_error_carries_opcode_name(self, arm_asm):
        with pytest.raises(AssemblyError, match="frobnicate"):
            arm_asm.assemble("frobnicate x1\n")


class TestRegisterValueExtraction:
    def test_mov_immediates_captured(self, arm_asm):
        program = arm_asm.assemble(
            "mov x1, #0xAAAAAAAAAAAAAAAA\nmov x2, #5\n"
            ".loop\nnop\n.endloop\n")
        assert program.register_values["x1"] == 0xAAAAAAAAAAAAAAAA
        assert program.register_values["x2"] == 5

    def test_fmov_immediates_captured(self, arm_asm):
        program = arm_asm.assemble(
            "fmov v3, #0x5555555555555555\n.loop\nnop\n.endloop\n")
        assert program.register_values["v3"] == 0x5555555555555555

    def test_non_immediate_moves_ignored(self, arm_asm):
        program = arm_asm.assemble(
            "mov x1, x2\n.loop\nnop\n.endloop\n")
        assert "x1" not in program.register_values


class TestProgramQueries:
    def test_class_counts(self, arm_asm):
        program = arm_asm.assemble(
            ".loop\nadd x1, x2, x3\nmul x1, x2, x3\nldr x7, [x10, #8]\n"
            "str x1, [x10, #8]\nfadd v0, v1, v2\nb 1f\n1:\nnop\n.endloop\n")
        counts = program.class_counts()
        assert counts[InstrClass.INT_SHORT] == 1
        assert counts[InstrClass.INT_LONG] == 1
        assert counts[InstrClass.MEM_LOAD] == 1
        assert counts[InstrClass.MEM_STORE] == 1
        assert counts[InstrClass.FLOAT] == 1
        assert counts[InstrClass.BRANCH] == 1
        assert counts[InstrClass.NOP] == 1

    def test_table_breakdown_groups_float_simd(self, arm_asm):
        program = arm_asm.assemble(
            ".loop\nfadd v0, v1, v2\nvmul v3, v4, v5\n.endloop\n")
        assert program.table_breakdown() == {"Float/SIMD": 2}

    def test_loop_length(self, arm_asm):
        program = arm_asm.assemble(".loop\nnop\nnop\nnop\n.endloop\n")
        assert program.loop_length == 3
