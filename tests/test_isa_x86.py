"""Unit tests for the x86-flavoured front-end (repro.isa.x86)."""

import pytest

from repro.core.errors import AssemblyError
from repro.isa.model import FLAGS_REGISTER, InstrClass


def _one(x86_asm, line):
    return x86_asm.assemble(line + "\n").loop[0]


class TestIntegerOps:
    def test_add_two_operand_reads_destination(self, x86_asm):
        """x86 destination is also a source (read-modify-write)."""
        d = _one(x86_asm, "add rax, rbx")
        assert d.iclass is InstrClass.INT_SHORT
        assert set(d.reads) == {"rax", "rbx"}
        assert "rax" in d.writes

    def test_alu_writes_flags(self, x86_asm):
        d = _one(x86_asm, "sub rcx, rdx")
        assert FLAGS_REGISTER in d.writes

    @pytest.mark.parametrize("opcode", ["add", "sub", "and", "or", "xor"])
    def test_alu_family(self, x86_asm, opcode):
        assert _one(x86_asm, f"{opcode} rsi, rdi").group == "alu"

    def test_add_immediate(self, x86_asm):
        d = _one(x86_asm, "add rax, 8")
        assert d.immediate == 8
        assert d.reads == ("rax",)

    @pytest.mark.parametrize("opcode", ["shl", "shr", "sar", "rol"])
    def test_shifts(self, x86_asm, opcode):
        d = _one(x86_asm, f"{opcode} rax, 3")
        assert d.group == "shift"

    def test_imul_long_latency(self, x86_asm):
        d = _one(x86_asm, "imul rax, rbx")
        assert d.iclass is InstrClass.INT_LONG
        assert d.group == "mul"

    def test_idiv2_pseudo(self, x86_asm):
        d = _one(x86_asm, "idiv2 rsi, rdi")
        assert d.group == "div"

    def test_inc_dec(self, x86_asm):
        d = _one(x86_asm, "dec r15")
        assert d.reads == ("r15",)
        assert "r15" in d.writes and FLAGS_REGISTER in d.writes

    def test_cmp_writes_only_flags(self, x86_asm):
        d = _one(x86_asm, "cmp rax, rbx")
        assert d.writes == (FLAGS_REGISTER,)

    def test_lea(self, x86_asm):
        d = _one(x86_asm, "lea rax, [rbp+16]")
        assert d.iclass is InstrClass.INT_SHORT
        assert d.reads == ("rbp",)

    def test_extended_registers(self, x86_asm):
        d = _one(x86_asm, "add r8, r15")
        assert set(d.reads) == {"r8", "r15"}

    def test_bad_register(self, x86_asm):
        with pytest.raises(AssemblyError):
            _one(x86_asm, "add eax, ebx")


class TestMov:
    def test_mov_register(self, x86_asm):
        d = _one(x86_asm, "mov rax, rbx")
        assert d.iclass is InstrClass.INT_SHORT

    def test_mov_immediate(self, x86_asm):
        d = _one(x86_asm, "mov rax, 0xAAAAAAAAAAAAAAAA")
        assert d.immediate == 0xAAAAAAAAAAAAAAAA

    def test_mov_load(self, x86_asm):
        d = _one(x86_asm, "mov r9, [rbp+8]")
        assert d.iclass is InstrClass.MEM_LOAD
        assert d.mem_base == "rbp"
        assert d.mem_offset == 8

    def test_mov_load_negative_offset(self, x86_asm):
        d = _one(x86_asm, "mov r9, [rbp-8]")
        assert d.mem_offset == -8

    def test_mov_store(self, x86_asm):
        d = _one(x86_asm, "mov [r8+16], rbx")
        assert d.iclass is InstrClass.MEM_STORE
        assert set(d.reads) == {"rbx", "r8"}
        assert d.writes == ()

    def test_mov_no_offset(self, x86_asm):
        d = _one(x86_asm, "mov r9, [rbp]")
        assert d.mem_offset == 0


class TestSse:
    @pytest.mark.parametrize("opcode", ["addps", "subps", "xorps", "orps"])
    def test_packed_family_is_simd(self, x86_asm, opcode):
        d = _one(x86_asm, f"{opcode} xmm1, xmm2")
        assert d.iclass is InstrClass.SIMD
        assert set(d.reads) == {"xmm1", "xmm2"}
        assert d.writes == ("xmm1",)

    def test_mulps_group(self, x86_asm):
        assert _one(x86_asm, "mulps xmm0, xmm1").group == "vmul"

    @pytest.mark.parametrize("opcode", ["addsd", "mulsd", "divsd"])
    def test_scalar_family_is_float(self, x86_asm, opcode):
        d = _one(x86_asm, f"{opcode} xmm3, xmm4")
        assert d.iclass is InstrClass.FLOAT

    def test_fma_reads_destination(self, x86_asm):
        d = _one(x86_asm, "vfmadd231ps xmm1, xmm2, xmm3")
        assert set(d.reads) == {"xmm1", "xmm2", "xmm3"}
        assert d.group == "fma"

    def test_movaps_register(self, x86_asm):
        d = _one(x86_asm, "movaps xmm1, xmm2")
        assert d.iclass is InstrClass.SIMD

    def test_movaps_load(self, x86_asm):
        d = _one(x86_asm, "movaps xmm1, [rbp+32]")
        assert d.iclass is InstrClass.MEM_LOAD
        assert d.writes == ("xmm1",)

    def test_movaps_store(self, x86_asm):
        d = _one(x86_asm, "movaps [rbp+32], xmm1")
        assert d.iclass is InstrClass.MEM_STORE

    def test_movaps_pseudo_init(self, x86_asm):
        program = x86_asm.assemble(
            "movaps xmm0, 0x5555555555555555\n.loop\nnop\n.endloop\n")
        assert program.register_values["xmm0"] == 0x5555555555555555


class TestControlFlow:
    def test_jmp_forward(self, x86_asm):
        program = x86_asm.assemble(".loop\njmp 1f\n1:\nnop\n.endloop\n")
        d = program.loop[0]
        assert d.iclass is InstrClass.BRANCH
        assert d.branch_target == 1

    @pytest.mark.parametrize("opcode", ["jnz", "jne", "jz", "je"])
    def test_conditional_jumps_read_flags(self, x86_asm, opcode):
        program = x86_asm.assemble(
            f".loop\ntop:\ndec rcx\n{opcode} top\n.endloop\n")
        d = program.loop[1]
        assert d.reads == (FLAGS_REGISTER,)
        assert d.backward

    def test_loop_idiom(self, x86_asm):
        program = x86_asm.assemble(
            "mov r15, 100\n.loop\nbody:\nadd rax, rbx\ndec r15\n"
            "jnz body\n.endloop\n")
        assert program.loop[2].branch_target == 0


class TestGaCatalogCompatibility:
    def test_every_catalog_instruction_assembles(self, x86_asm, rng):
        from repro.isa import x86_library
        lib = x86_library()
        for name in lib.names:
            spec = lib.spec(name)
            for _ in range(10):
                text = spec.render(lib.sample_values(spec, rng))
                program = x86_asm.assemble(text)
                assert program.loop_length >= 1

    def test_stock_template_assembles(self, x86_asm):
        from repro.isa import x86_template
        program = x86_asm.assemble(
            x86_template().replace("#loop_code", "nop"))
        assert program.loop_length >= 1
        assert program.register_values["rax"] == 0x5555555555555555
        assert program.register_values["rbx"] == 0xAAAAAAAAAAAAAAAA
