"""Tests for the learned surrogate layer and the ``surrogate`` strategy.

Bottom-up: the :class:`RidgeModel` regressor (closed-form fit, bucketed
residual boost, checkpointable state); the :class:`ShortProbe` batched
dynamic features and the :class:`SurrogateFeaturizer` rows; the
``surrogate`` wrapper strategy (warm-up, learned pruning, ε
exploration, memo replay, cache warm-start, stats plumbing, state
round-trip); the cache ``iter_entries()`` bulk-read protocol; and the
acceptance experiment — equal-or-better best fitness than the plain GA
on the comparison seed at ≤ 50% of its simulated evaluations with mean
post-warm-up Spearman ≥ 0.5.
"""

import json
import math

import pytest

from repro.analysis.postprocess import run_statistics
from repro.core import GAParameters, GeneticEngine, OutputRecorder, \
    RunConfig, make_rng
from repro.core.config import SearchParameters
from repro.core.errors import ConfigError
from repro.core.output import read_stats
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.cpu.microarch import microarch_for
from repro.evaluation import EvaluationCache
from repro.evaluation.cache import CachedEvaluation
from repro.evaluation.probe import PROBE_FEATURE_NAMES, ShortProbe
from repro.fitness import DefaultFitness
from repro.isa import ArmAssembler
from repro.measurement import PowerMeasurement
from repro.search import STRATEGIES, make_strategy
from repro.surrogate import RidgeModel, SurrogateFeaturizer


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _strategy_config(tiny_library, tiny_template, generations=4, seed=3,
                     params=None):
    ga = GAParameters(population_size=8, individual_size=8,
                      mutation_rate=0.1, generations=generations,
                      tournament_size=3, seed=seed)
    config = RunConfig(ga=ga, library=tiny_library,
                       template_text=tiny_template.text)
    config.search = SearchParameters(strategy="surrogate",
                                     params=dict(params or {}))
    return config


def _measurement(seed=17):
    machine = SimulatedMachine("cortex_a15", seed=seed, sim_cycles=600)
    target = SimulatedTarget(machine)
    target.connect()
    return PowerMeasurement(target, {"samples": "2"})


def _arm_program(body, name="probe.s"):
    source = ("mov x10, #0\n.loop\nstart:\n" + body
              + "subs x0, x0, #1\nbne start\n.endloop\n")
    return ArmAssembler().assemble(source, name=name), source


# ---------------------------------------------------------------------------
# RidgeModel
# ---------------------------------------------------------------------------

class TestRidgeModel:
    def test_recovers_linear_relationship(self):
        rows = [{"a": float(i), "b": float(i % 3)} for i in range(12)]
        targets = [2.0 * r["a"] - r["b"] + 5.0 for r in rows]
        model = RidgeModel(l2=1e-6)
        model.fit(rows, targets)
        for row, target in zip(rows, targets):
            assert model.predict(row) == pytest.approx(target, abs=1e-3)

    def test_missing_features_default_to_zero(self):
        rows = [{"a": 1.0}, {"a": 2.0}, {"a": 3.0, "late": 1.0},
                {"a": 4.0}]
        model = RidgeModel()
        model.fit(rows, [1.0, 2.0, 3.0, 4.0])
        # 'late' appears in one row only; the others read as 0.0 and
        # prediction accepts rows without it.
        assert math.isfinite(model.predict({"a": 2.5}))

    def test_constant_columns_are_inert(self):
        rows = [{"a": float(i), "c": 7.0} for i in range(8)]
        model = RidgeModel(l2=1e-6)
        model.fit(rows, [float(i) for i in range(8)])
        with_const = model.predict({"a": 3.0, "c": 7.0})
        without = model.predict({"a": 3.0, "c": 123.0})
        assert with_const == pytest.approx(3.0, abs=1e-3)
        # a constant column carries no weight, so its value at
        # prediction time cannot move the output
        assert with_const == pytest.approx(without)

    def test_boost_corrects_systematic_bias(self):
        # A step function a linear model cannot represent: the bucketed
        # residual boost must reduce in-sample error.
        rows = [{"a": float(i)} for i in range(16)]
        targets = [0.0 if i < 8 else 10.0 for i in range(16)]

        def in_sample_error(model):
            model.fit(rows, targets)
            return sum((model.predict(r) - t) ** 2
                       for r, t in zip(rows, targets))

        plain = in_sample_error(RidgeModel(l2=1.0))
        boosted = in_sample_error(RidgeModel(l2=1.0, boost_buckets=2))
        assert boosted < plain

    def test_state_round_trip(self):
        model = RidgeModel(l2=0.5, boost_buckets=2)
        rows = [{"a": float(i), "b": float(i * i)} for i in range(10)]
        model.fit(rows, [3.0 * i for i in range(10)])
        clone = RidgeModel()
        clone.load_state(model.state_dict())
        probe = {"a": 4.5, "b": 19.0}
        assert clone.predict(probe) == model.predict(probe)
        assert clone.training_size == model.training_size

    def test_errors(self):
        with pytest.raises(ValueError, match="l2"):
            RidgeModel(l2=0.0)
        model = RidgeModel()
        with pytest.raises(ValueError, match="empty"):
            model.fit([], [])
        with pytest.raises(ValueError, match="one target per row"):
            model.fit([{"a": 1.0}], [])
        with pytest.raises(ValueError, match="before fit"):
            model.predict({"a": 1.0})


# ---------------------------------------------------------------------------
# ShortProbe + SurrogateFeaturizer
# ---------------------------------------------------------------------------

class TestShortProbe:
    def test_features_are_pure_functions_of_source(self):
        probe = ShortProbe("cortex_a15", cycles=400)
        p1, s1 = _arm_program("add x1, x2, x3\n", name="one.s")
        p2, s2 = _arm_program("mul x1, x2, x3\nmul x4, x1, x2\n",
                              name="two.s")
        together = probe.probe_batch([p1, p2], [s1, s2])
        alone = ShortProbe("cortex_a15", cycles=400).probe_batch([p1], [s1])
        assert together[0] == alone[0]
        reversed_order = probe.probe_batch([p2, p1], [s2, s1])
        assert reversed_order[1] == together[0]
        assert set(together[0]) == set(PROBE_FEATURE_NAMES)

    def test_length_mismatch_rejected(self):
        probe = ShortProbe("cortex_a15", cycles=400)
        program, source = _arm_program("add x1, x2, x3\n")
        with pytest.raises(ValueError, match="one source per program"):
            probe.probe_batch([program], [source, source])
        assert probe.probe_batch([], []) == []


class TestSurrogateFeaturizer:
    def test_static_rows(self, tiny_config, rng):
        from repro.core.individual import random_individual
        featurizer = SurrogateFeaturizer(tiny_config.template_text,
                                         microarch_for("cortex_a15"))
        individuals = [random_individual(tiny_config.library, 6, rng,
                                         uid=i) for i in range(3)]
        rows = featurizer.featurize_batch(individuals)
        assert len(rows) == 3
        for source, row in rows:
            assert "#loop_code" not in source
            assert row is not None
            assert "loop_length" in row and "ipc_upper" in row
            assert not any(name.startswith("probe_") for name in row)

    def test_probe_rows_merge_dynamic_features(self, tiny_config, rng):
        from repro.core.individual import random_individual
        featurizer = SurrogateFeaturizer(tiny_config.template_text,
                                         microarch_for("cortex_a15"),
                                         probe_cycles=400)
        assert featurizer.probes
        individual = random_individual(tiny_config.library, 6, rng, uid=0)
        (_, row), = featurizer.featurize_batch([individual])
        for name in PROBE_FEATURE_NAMES:
            assert name in row


# ---------------------------------------------------------------------------
# cache bulk reads (warm-start protocol)
# ---------------------------------------------------------------------------

class TestCacheIterEntries:
    def test_iter_entries_bulk_reads_sorted(self):
        cache = EvaluationCache("fp")
        cache.put("source-b", CachedEvaluation((2.0,)))
        cache.put("source-a", CachedEvaluation((1.0,), compile_failed=True))
        entries = list(cache.iter_entries())
        assert len(entries) == 2
        assert [key for key, _ in entries] == sorted(k for k, _ in entries)
        assert dict(entries)[cache.key("source-a")].compile_failed
        # a snapshot is not a lookup: counters untouched
        assert cache.hits == 0 and cache.misses == 0


# ---------------------------------------------------------------------------
# the surrogate wrapper strategy
# ---------------------------------------------------------------------------

class TestSurrogateStrategy:
    def test_registered(self):
        assert "surrogate" in STRATEGIES

    def test_rejects_self_wrap(self, tiny_config):
        strategy = make_strategy("surrogate", {"base": "surrogate"})
        with pytest.raises(ConfigError, match="cannot wrap itself"):
            strategy.bind(tiny_config, make_rng(0), lambda: 0)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError, match="epsilon"):
            make_strategy("surrogate", {"epsilon": "1.5"})
        with pytest.raises(ConfigError, match="top_fraction"):
            make_strategy("surrogate", {"top_fraction": "0"})
        with pytest.raises(ConfigError, match="l2"):
            make_strategy("surrogate", {"l2": "0"})
        with pytest.raises(ConfigError, match="min_train"):
            make_strategy("surrogate", {"min_train": "0"})

    def test_platform_inferred_from_template_syntax(self, tiny_config):
        strategy = make_strategy("surrogate", None)
        strategy.bind(tiny_config, make_rng(0),
                      iter(range(10_000)).__next__)
        assert strategy._arch.name == "cortex_a15"

    def test_can_wrap_static_rank(self, tiny_config):
        strategy = make_strategy("surrogate", {"base": "static_rank"})
        strategy.bind(tiny_config, make_rng(0),
                      iter(range(10_000)).__next__)
        assert strategy._base.name == "static_rank"

    def test_warmup_then_learned_pruning(self, tiny_library,
                                         tiny_template):
        config = _strategy_config(
            tiny_library, tiny_template, generations=5,
            params={"platform": "cortex_a15", "probe": "0",
                    "min_train": "8", "top_fraction": "0.5"})
        engine = GeneticEngine(config, _measurement(), DefaultFitness())
        history = engine.run()
        gen0 = history.generations[0].surrogate
        # Warm-up: everything simulated, model untrained, no Spearman.
        assert gen0["simulated"] == 8 and gen0["pruned"] == 0
        assert gen0["spearman"] is None
        assert gen0["training_size"] == 8
        later = history.generations[1:]
        # Once trained (8 rows after generation 0) the model prunes.
        assert any(g.surrogate["pruned"] > 0 for g in later)
        sizes = [g.surrogate["training_size"] for g in history.generations]
        assert sizes == sorted(sizes)
        for stats in later:
            if stats.surrogate["pruned"]:
                assert stats.measured == stats.surrogate["simulated"]

    def test_placeholders_never_win(self, tiny_library, tiny_template):
        config = _strategy_config(
            tiny_library, tiny_template, generations=5,
            params={"top_fraction": "0.34", "epsilon": "0"})
        engine = GeneticEngine(config, _measurement(), DefaultFitness())
        history = engine.run()
        assert history.best_individual.measurements
        final = history.final_population
        pruned = [i for i in final if not i.measurements and
                  i.fitness is not None and i.fitness < 0.0]
        measured = [i for i in final if i.measurements]
        if pruned and measured:
            assert max(i.fitness for i in pruned) < \
                min(i.fitness for i in measured)

    def test_memo_replays_previously_simulated_genomes(
            self, tiny_library, tiny_template):
        config = _strategy_config(tiny_library, tiny_template,
                                  generations=5)
        engine = GeneticEngine(config, _measurement(), DefaultFitness())
        history = engine.run()
        assert any(g.surrogate["replayed"] > 0
                   for g in history.generations[1:])

    def test_epsilon_exploration_is_deterministic(self, tiny_library,
                                                  tiny_template):
        def explored_series():
            config = _strategy_config(
                tiny_library, tiny_template, generations=5,
                params={"epsilon": "0.5", "top_fraction": "0.25"})
            engine = GeneticEngine(config, _measurement(),
                                   DefaultFitness())
            history = engine.run()
            return [g.surrogate["explored"]
                    for g in history.generations]

        first, second = explored_series(), explored_series()
        assert first == second

    def test_warm_start_from_cache_trains_without_measuring(
            self, tiny_library, tiny_template):
        cache = EvaluationCache("shared")

        def run():
            # top_fraction=1.0 keeps both runs' proposals identical
            # (nothing is ever pruned), isolating the warm-start path.
            config = _strategy_config(tiny_library, tiny_template,
                                      generations=4,
                                      params={"top_fraction": "1.0"})
            engine = GeneticEngine(config, _measurement(),
                                   DefaultFitness(), cache=cache)
            return engine.run()

        first = run()
        assert len(cache) > 0
        second = run()
        # Every evaluation of the repeat run replays from the shared
        # cache: zero fresh measurements...
        assert sum(g.measured for g in second.generations) == 0
        # ...yet the model still trains from the replayed fitnesses,
        # and offspring found in the warm snapshot are reported.
        assert second.generations[-1].surrogate["training_size"] > 0
        assert any(g.surrogate["warm_hits"] > 0
                   for g in second.generations[1:])
        # the learned search trajectory is identical either way
        assert [g.best_fitness for g in first.generations] == \
            [g.best_fitness for g in second.generations]

    def test_state_round_trip(self, tiny_config):
        strategy = make_strategy("surrogate", None)
        strategy.bind(tiny_config, make_rng(0),
                      iter(range(10_000)).__next__)
        key = (("ADD", ("x1", "x2", "x3")),)
        strategy._memo[key] = ((1.0,), 1.0, False, False)
        strategy._feature_memo[key] = {"loop_length": 3.0}
        strategy._train_rows = [{"loop_length": float(i), "chain": 1.0}
                                for i in range(9)]
        strategy._train_targets = [float(i) for i in range(9)]
        strategy._trained_keys = {key}
        strategy._floor = -0.5
        strategy._model.fit(strategy._train_rows,
                            strategy._train_targets)
        state = strategy.state_dict()

        fresh = make_strategy("surrogate", None)
        fresh.bind(tiny_config, make_rng(0),
                   iter(range(10_000)).__next__)
        fresh.load_state(state)
        assert fresh._memo == strategy._memo
        assert fresh._feature_memo == strategy._feature_memo
        assert fresh._trained_keys == {key}
        assert fresh._floor == -0.5
        assert fresh._model.fitted
        probe_row = {"loop_length": 4.0, "chain": 1.0}
        assert fresh._model.predict(probe_row) == \
            strategy._model.predict(probe_row)

    def test_stats_jsonl_round_trips_tolerant_readers(
            self, tiny_library, tiny_template, tmp_path):
        config = _strategy_config(tiny_library, tiny_template,
                                  generations=4)
        engine = GeneticEngine(config, _measurement(), DefaultFitness(),
                               recorder=OutputRecorder(tmp_path / "run"))
        engine.run()
        stats_path = tmp_path / "run" / "stats.jsonl"
        rows = list(read_stats(stats_path))
        assert len(rows) == 4
        for row in rows:
            surrogate = row["surrogate"]
            assert surrogate["base"] == "genetic"
            assert {"simulated", "pruned", "replayed", "warm_hits",
                    "explored", "training_size",
                    "spearman"} <= set(surrogate)
        # a torn trailing line must not break the readers (S3)
        with open(stats_path, "a") as handle:
            handle.write('{"schema": 2, "truncat')
        with pytest.warns(RuntimeWarning, match="unparseable"):
            tolerant = list(read_stats(stats_path))
        assert [r["number"] for r in tolerant] == \
            [r["number"] for r in rows]
        statistics = run_statistics(tmp_path / "run")
        assert [r.get("surrogate") for r in statistics.stats_records] == \
            [r["surrogate"] for r in rows]


# ---------------------------------------------------------------------------
# acceptance: learned surrogate halves the simulation bill
# ---------------------------------------------------------------------------

class TestSurrogateAcceptance:
    def test_matches_genetic_at_half_the_simulations(self):
        from repro.experiments.search_comparison import search_comparison
        result = search_comparison(
            platform="cortex_a15", metric="power",
            strategies=("genetic", "surrogate(genetic)"))
        plain = result.best_fitness("genetic")
        learned = result.best_fitness("surrogate(genetic)")
        assert learned >= plain - 1e-9
        full = result.simulated_evaluations("genetic")
        pruned = result.simulated_evaluations("surrogate(genetic)")
        assert pruned <= 0.5 * full
        history = result.histories["surrogate(genetic)"]
        rhos = [g.surrogate["spearman"] for g in history.generations
                if g.surrogate["spearman"] is not None]
        assert rhos and sum(rhos) / len(rhos) >= 0.5
