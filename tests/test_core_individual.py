"""Unit tests for individuals (repro.core.individual)."""

import pytest

from repro.core.individual import Individual, random_individual
from repro.core.rng import make_rng


class TestIndividual:
    def test_length(self, arm_individual):
        assert len(arm_individual) == 20

    def test_render_body_one_logical_instruction_per_line(self, tiny_library,
                                                          rng):
        ind = random_individual(tiny_library, 5, rng)
        body = ind.render_body()
        # Branch-free tiny library: exactly one line per instruction.
        assert len(body.splitlines()) == 5

    def test_opcode_sequence(self, tiny_library, rng):
        ind = random_individual(tiny_library, 10, rng)
        seq = ind.opcode_sequence()
        assert len(seq) == 10
        assert set(seq) <= {"ADD", "LDR", "NOP"}

    def test_unique_instruction_count(self, tiny_library, rng):
        ind = random_individual(tiny_library, 30, rng)
        assert 1 <= ind.unique_instruction_count() <= 3

    def test_instruction_mix_sums_to_length(self, arm_individual):
        mix = arm_individual.instruction_mix()
        assert sum(mix.values()) == len(arm_individual)

    def test_genome_key_equal_for_same_genome(self, tiny_library):
        a = random_individual(tiny_library, 8, make_rng(42))
        b = random_individual(tiny_library, 8, make_rng(42))
        assert a.genome_key() == b.genome_key()

    def test_genome_key_differs_for_different_seeds(self, tiny_library):
        a = random_individual(tiny_library, 8, make_rng(42))
        b = random_individual(tiny_library, 8, make_rng(43))
        assert a.genome_key() != b.genome_key()

    def test_clone_resets_evaluation(self, arm_individual):
        arm_individual.record_evaluation([1.5], 1.5)
        clone = arm_individual.clone(uid=77, parent_ids=(0,))
        assert clone.uid == 77
        assert clone.parent_ids == (0,)
        assert not clone.evaluated
        assert clone.genome_key() == arm_individual.genome_key()

    def test_record_evaluation(self, arm_individual):
        arm_individual.record_evaluation([2.0, 2.5], 2.0)
        assert arm_individual.evaluated
        assert arm_individual.fitness == 2.0
        assert arm_individual.measurements == [2.0, 2.5]
        assert not arm_individual.compile_failed

    def test_record_compile_failure(self, arm_individual):
        arm_individual.record_evaluation([0.0], 0.0, compile_failed=True)
        assert arm_individual.compile_failed
        assert arm_individual.fitness == 0.0

    def test_unevaluated_fitness_is_none(self, arm_individual):
        assert arm_individual.fitness is None
        assert not arm_individual.evaluated

    def test_instructions_are_immutable_tuple(self, arm_individual):
        assert isinstance(arm_individual.instructions, tuple)

    def test_default_ids(self, tiny_library, rng):
        ind = random_individual(tiny_library, 4, rng)
        assert ind.uid == -1
        assert ind.parent_ids == ()
        assert ind.generation == -1


class TestRandomIndividual:
    def test_requested_size(self, tiny_library, rng):
        for size in (1, 5, 50):
            assert len(random_individual(tiny_library, size, rng)) == size

    def test_deterministic_for_seed(self, tiny_library):
        a = random_individual(tiny_library, 12, make_rng(9))
        b = random_individual(tiny_library, 12, make_rng(9))
        assert a.genome_key() == b.genome_key()

    def test_uses_whole_library_eventually(self, tiny_library):
        rng = make_rng(1)
        names = set()
        for _ in range(20):
            names.update(random_individual(tiny_library, 10, rng)
                         .opcode_sequence())
        assert names == {"ADD", "LDR", "NOP"}

    def test_uid_passthrough(self, tiny_library, rng):
        assert random_individual(tiny_library, 3, rng, uid=5).uid == 5
