"""Unit tests for measurement procedures (repro.measurement)."""

import pytest

from repro.core.errors import AssemblyError, MeasurementError
from repro.core.individual import random_individual
from repro.core.rng import make_rng
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.measurement import (IPCMeasurement, Measurement,
                               OscilloscopeMeasurement, PowerMeasurement,
                               TemperatureMeasurement)

ARM_SRC = (".loop\nadd x1, x2, x3\nvmul v0, v8, v9\n"
           "ldr x7, [x10, #8]\n.endloop\n")
X86_SRC = (".loop\naddps xmm0, xmm1\nmov r9, [rbp+8]\n.endloop\n")


def _target(arch="cortex_a15", **kwargs):
    machine = SimulatedMachine(arch, seed=3, sim_cycles=600, **kwargs)
    t = SimulatedTarget(machine)
    t.connect()
    return t


class TestBaseMeasurement:
    def test_default_parameters(self, target):
        meas = PowerMeasurement(target)
        assert meas.duration_s == 5.0
        assert meas.sample_count == 10
        assert meas.cores == 1

    def test_parameters_parsed_from_strings(self, target):
        meas = PowerMeasurement(target, {"duration": "2.5",
                                         "samples": "4", "cores": "2",
                                         "source_name": "virus.s"})
        assert meas.duration_s == 2.5
        assert meas.sample_count == 4
        assert meas.cores == 2
        assert meas.source_name == "virus.s"

    def test_bad_parameter_value(self, target):
        with pytest.raises(MeasurementError):
            PowerMeasurement(target, {"duration": "soon"})

    def test_nonpositive_duration(self, target):
        with pytest.raises(MeasurementError):
            PowerMeasurement(target, {"duration": "0"})

    def test_connects_disconnected_target(self, a15_machine):
        t = SimulatedTarget(a15_machine)
        assert not t.connected
        PowerMeasurement(t)
        assert t.connected

    def test_cleanup_after_measure(self, target):
        meas = PowerMeasurement(target, {"samples": "2"})
        meas.measure(ARM_SRC, None)
        assert target.list_files() == ()

    def test_cleanup_after_compile_failure(self, target):
        meas = PowerMeasurement(target, {"samples": "2"})
        with pytest.raises(AssemblyError):
            meas.measure("bogus instruction\n", None)
        assert target.list_files() == ()

    def test_is_abstract(self, target):
        with pytest.raises(TypeError):
            Measurement(target)


class TestPowerMeasurement:
    def test_returns_avg_then_peak(self, target):
        values = PowerMeasurement(target, {"samples": "6"}).measure(
            ARM_SRC, None)
        assert len(values) == 2
        assert values[1] >= values[0] > 0

    def test_sample_count_respected(self, target):
        meas = PowerMeasurement(target, {"samples": "3"})
        assert meas.sample_count == 3
        assert meas.measure(ARM_SRC, None)[0] > 0

    def test_hotter_code_measures_higher(self, target):
        meas = PowerMeasurement(target, {"samples": "5"})
        hot = meas.measure(ARM_SRC, None)[0]
        cold = meas.measure(".loop\nnop\nnop\nnop\n.endloop\n", None)[0]
        assert hot > cold


class TestTemperatureMeasurement:
    def test_returns_temp_power_ipc(self):
        target = _target("xgene2", environment="os")
        values = TemperatureMeasurement(target, {"samples": "4"}).measure(
            ARM_SRC, None)
        assert len(values) == 3
        temperature, power, ipc = values
        assert temperature > 30.0
        assert power > 0
        assert ipc > 0


class TestIPCMeasurement:
    def test_returns_ipc_first(self):
        target = _target("xgene2", environment="os")
        values = IPCMeasurement(target, {"samples": "4"}).measure(
            ARM_SRC, None)
        assert 0 < values[0] <= 4.2

    def test_ilp_rich_code_scores_higher(self):
        target = _target("cortex_a15")
        meas = IPCMeasurement(target, {"samples": "2"})
        wide = meas.measure(
            ".loop\nadd x1, x7, x8\nadd x2, x7, x8\n"
            "ldr x9, [x10, #8]\n.endloop\n", None)[0]
        serial = meas.measure(
            ".loop\nsdiv x1, x1, x2\n.endloop\n", None)[0]
        assert wide > serial * 3


class TestOscilloscopeMeasurement:
    def test_returns_five_scope_statistics(self):
        target = _target("athlon_x4")
        values = OscilloscopeMeasurement(target, {"samples": "2"}).measure(
            X86_SRC, None)
        pkpk, droop, v_min, v_max, power = values
        assert pkpk == pytest.approx(v_max - v_min, rel=1e-6)
        assert droop > 0
        assert power > 0

    def test_oscillating_code_noisier_than_flat(self):
        target = _target("athlon_x4")
        meas = OscilloscopeMeasurement(target, {"samples": "2"})
        # Alternating heavy FMA bursts and a serialising divide swing
        # the current; pure NOPs keep it flat.
        burst = (".loop\n" + "vfmadd231ps xmm0, xmm1, xmm2\n" * 8
                 + "idiv2 rsi, rdi\n" * 2 + ".endloop\n")
        flat = ".loop\n" + "nop\n" * 10 + ".endloop\n"
        assert meas.measure(burst, None)[0] > \
            meas.measure(flat, None)[0] * 2


class TestGaIndividualFlow:
    def test_measure_accepts_rendered_individual(self, arm_lib,
                                                 arm_tmpl_text):
        from repro.core import Template
        target = _target()
        meas = PowerMeasurement(target, {"samples": "2"})
        individual = random_individual(arm_lib, 20, make_rng(0))
        source = Template(arm_tmpl_text).instantiate(
            individual.render_body())
        values = meas.measure(source, individual)
        assert values[0] > 0
