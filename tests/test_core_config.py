"""Unit tests for configuration parsing (repro.core.config)."""

import pytest

from repro.core.config import (GAParameters, RunConfig, config_to_xml,
                               parse_config_file, parse_config_text,
                               parse_measurement_config)
from repro.core.errors import ConfigError
from repro.isa.catalogs import write_stock_config


def _minimal_xml(tmp_path, extra="", ga_attrs=""):
    (tmp_path / "template.s").write_text(".loop\n#loop_code\n.endloop\n")
    return f"""
<gest_config>
  <ga {ga_attrs}/>
  <paths results_dir="results" template="template.s"/>
  {extra}
  <operands>
    <operand id="dst" type="register" values="x1 x2"/>
    <operand id="imm" type="immediate" min="0" max="16" stride="8"/>
  </operands>
  <instructions>
    <instruction name="ADD" num_of_operands="2" operand1="dst"
                 operand2="dst" format="add op1, op1, op2"
                 type="int_short"/>
    <instruction name="MOVI" num_of_operands="2" operand1="dst"
                 operand2="imm" format="mov op1, #op2" type="int_short"/>
  </instructions>
</gest_config>
"""


class TestGAParameters:
    def test_paper_table1_defaults(self):
        """Table I: population 50, one-point crossover, elitism on,
        tournament selection of size 5, mutation within 0.02-0.08."""
        ga = GAParameters()
        assert ga.population_size == 50
        assert ga.crossover_operator == "one_point"
        assert ga.elitism is True
        assert ga.parent_selection_method == "tournament"
        assert ga.tournament_size == 5
        assert 0.02 <= ga.mutation_rate <= 0.08
        assert 15 <= ga.individual_size <= 50

    def test_expected_mutations_rule_of_thumb(self):
        """2% at 50 instructions and 8% at ~15 both target ≈1 mutation
        per individual."""
        at_50 = GAParameters(individual_size=50, mutation_rate=0.02)
        at_15 = GAParameters(individual_size=15, mutation_rate=0.08)
        assert at_50.expected_mutations_per_individual() == \
            pytest.approx(1.0)
        assert at_15.expected_mutations_per_individual() == \
            pytest.approx(1.2)

    @pytest.mark.parametrize("field,value", [
        ("population_size", 1),
        ("individual_size", 0),
        ("mutation_rate", -0.1),
        ("mutation_rate", 1.1),
        ("tournament_size", 0),
        ("generations", 0),
        ("operand_mutation_share", 2.0),
    ])
    def test_invalid_values_rejected(self, field, value):
        ga = GAParameters(**{field: value})
        with pytest.raises(ConfigError):
            ga.validate()

    def test_unknown_crossover_rejected(self):
        with pytest.raises(ConfigError, match="one_point"):
            GAParameters(crossover_operator="two_point").validate()

    def test_unknown_selection_rejected(self):
        # The error lists the registry's valid choices (single source
        # of truth with repro.search).
        with pytest.raises(ConfigError, match="tournament"):
            GAParameters(parent_selection_method="lottery").validate()

    def test_registry_backed_selection_methods_accepted(self):
        for method in ("tournament", "roulette", "rank"):
            GAParameters(parent_selection_method=method).validate()


class TestParseConfigText:
    def test_minimal_document(self, tmp_path):
        config = parse_config_text(_minimal_xml(tmp_path),
                                   base_dir=tmp_path)
        assert len(config.library) == 2
        assert config.ga.population_size == 50   # default applies
        assert config.results_dir == tmp_path / "results"

    def test_ga_attributes_parsed(self, tmp_path):
        xml = _minimal_xml(
            tmp_path,
            ga_attrs='population_size="12" individual_size="15" '
                     'mutation_rate="0.08" crossover_operator="uniform" '
                     'elitism="false" tournament_size="3" '
                     'generations="7" seed="123"')
        config = parse_config_text(xml, base_dir=tmp_path)
        ga = config.ga
        assert (ga.population_size, ga.individual_size) == (12, 15)
        assert ga.mutation_rate == pytest.approx(0.08)
        assert ga.crossover_operator == "uniform"
        assert ga.elitism is False
        assert ga.tournament_size == 3
        assert ga.generations == 7
        assert ga.seed == 123

    def test_measurement_and_fitness_classes(self, tmp_path):
        xml = _minimal_xml(
            tmp_path,
            extra='<measurement class="repro.measurement.ipc.'
                  'IPCMeasurement"/>'
                  '<fitness class="repro.fitness.default_fitness.'
                  'DefaultFitness"/>')
        config = parse_config_text(xml, base_dir=tmp_path)
        assert config.measurement_class.endswith("IPCMeasurement")
        assert config.fitness_class.endswith("DefaultFitness")

    def test_operand_pools_parsed(self, tmp_path):
        config = parse_config_text(_minimal_xml(tmp_path),
                                   base_dir=tmp_path)
        dst = config.library.operand("dst")
        imm = config.library.operand("imm")
        assert list(dst.choices()) == ["x1", "x2"]
        assert list(imm.choices()) == ["0", "8", "16"]

    def test_instruction_formats_parsed(self, tmp_path):
        config = parse_config_text(_minimal_xml(tmp_path),
                                   base_dir=tmp_path)
        spec = config.library.spec("ADD")
        assert spec.render(["x1", "x2"]) == "add x1, x1, x2"

    def test_template_loaded_from_path(self, tmp_path):
        config = parse_config_text(_minimal_xml(tmp_path),
                                   base_dir=tmp_path)
        assert "#loop_code" in config.template_text

    def test_missing_template_file(self, tmp_path):
        xml = _minimal_xml(tmp_path).replace("template.s", "nope.s")
        with pytest.raises(ConfigError, match="template"):
            parse_config_text(xml, base_dir=tmp_path)

    def test_undefined_operand_reference_terminates(self, tmp_path):
        xml = _minimal_xml(tmp_path).replace('operand1="dst"',
                                             'operand1="ghost"')
        with pytest.raises(ConfigError, match="undefined|unknown"):
            parse_config_text(xml, base_dir=tmp_path)

    def test_bad_root_element(self, tmp_path):
        with pytest.raises(ConfigError, match="gest_config"):
            parse_config_text("<wrong/>", base_dir=tmp_path)

    def test_invalid_xml(self, tmp_path):
        with pytest.raises(ConfigError, match="invalid XML"):
            parse_config_text("<gest_config>", base_dir=tmp_path)

    def test_missing_instructions_element(self, tmp_path):
        (tmp_path / "template.s").write_text("#loop_code\n")
        xml = ("<gest_config><paths template='template.s'/>"
               "</gest_config>").replace("'", '"')
        with pytest.raises(ConfigError, match="instructions"):
            parse_config_text(xml, base_dir=tmp_path)

    def test_missing_paths_element(self, tmp_path):
        with pytest.raises(ConfigError, match="paths"):
            parse_config_text("<gest_config></gest_config>",
                              base_dir=tmp_path)

    def test_unknown_operand_type(self, tmp_path):
        xml = _minimal_xml(tmp_path).replace('type="immediate"',
                                             'type="weird"')
        with pytest.raises(ConfigError, match="unknown type"):
            parse_config_text(xml, base_dir=tmp_path)

    def test_non_integer_immediate_bound(self, tmp_path):
        xml = _minimal_xml(tmp_path).replace('min="0"', 'min="zero"')
        with pytest.raises(ConfigError):
            parse_config_text(xml, base_dir=tmp_path)

    def test_bad_boolean(self, tmp_path):
        xml = _minimal_xml(tmp_path, ga_attrs='elitism="maybe"')
        with pytest.raises(ConfigError, match="boolean"):
            parse_config_text(xml, base_dir=tmp_path)

    def test_seed_population_reference(self, tmp_path):
        xml = _minimal_xml(
            tmp_path, extra='<seed_population file="prev/pop.bin"/>')
        config = parse_config_text(xml, base_dir=tmp_path)
        assert config.seed_population_file == tmp_path / "prev/pop.bin"


class TestParseConfigFile:
    def test_relative_paths_resolve_against_config_dir(self, tmp_path):
        xml = _minimal_xml(tmp_path)
        config_path = tmp_path / "config.xml"
        config_path.write_text(xml)
        config = parse_config_file(config_path)
        assert "#loop_code" in config.template_text

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            parse_config_file(tmp_path / "none.xml")


class TestMeasurementConfig:
    def test_params_parsed(self, tmp_path):
        path = tmp_path / "m.xml"
        path.write_text('<measurement_config>'
                        '<param name="cores" value="8"/>'
                        '<param name="samples" value="20"/>'
                        '</measurement_config>')
        assert parse_measurement_config(path) == {"cores": "8",
                                                  "samples": "20"}

    def test_bad_root(self, tmp_path):
        path = tmp_path / "m.xml"
        path.write_text("<nope/>")
        with pytest.raises(ConfigError):
            parse_measurement_config(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            parse_measurement_config(tmp_path / "m.xml")


class TestRoundTrip:
    def test_config_to_xml_round_trips(self, tmp_path):
        original = parse_config_text(_minimal_xml(tmp_path),
                                     base_dir=tmp_path)
        xml = config_to_xml(original, template_filename="template.s")
        # Re-parse the serialised document from the same base dir.
        reparsed = parse_config_text(xml, base_dir=tmp_path)
        assert reparsed.ga == original.ga
        assert set(reparsed.library.names) == set(original.library.names)
        for name in original.library.names:
            assert reparsed.library.variant_count(name) == \
                original.library.variant_count(name)

    def test_stock_config_round_trips(self, tmp_path):
        config_path = write_stock_config(tmp_path, "x86", "didt")
        config = parse_config_file(config_path)
        assert config.measurement_class.endswith("OscilloscopeMeasurement")
        assert config.measurement_params["cores"] == "1"
        assert len(config.library) > 10
