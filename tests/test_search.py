"""Tests for the pluggable search layer (repro.search).

The acceptance property of the refactor: the default ``genetic``
strategy is bit-identical to the pre-refactor engine (pinned by the
golden shipped-config tests at the bottom), and every strategy —
genetic, random, hill_climb, simulated_annealing — completes smoke runs
through both executor backends with identical results, survives a
mid-run checkpoint/resume with its state intact, and is name-resolvable
from the config, the CLI and the lint, all against the same registries.
"""

import json
import pickle
from pathlib import Path

import pytest

from repro.cli import main
from repro.core import (GAParameters, GeneticEngine, OutputRecorder,
                        RunConfig, make_rng)
from repro.core.config import (SearchParameters, config_to_xml,
                               parse_config_text)
from repro.core.errors import ConfigError
from repro.core.individual import Individual
from repro.core.population import load_population
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.evaluation import ProcessPoolBackend, SerialBackend
from repro.fitness import DefaultFitness
from repro.measurement import PowerMeasurement
from repro.search import (CROSSOVER_OPERATORS, MUTATION_OPERATORS,
                          REPLACEMENT_POLICIES, SELECTION_OPERATORS,
                          STRATEGIES, SearchStrategy, make_strategy)
from repro.search.operators import rank_select, roulette_select
from repro.search.registry import Registry, suggest
from repro.staticcheck import lint_config, lint_config_file, lint_search

REPO_ROOT = Path(__file__).resolve().parents[1]

ALL_STRATEGIES = ("genetic", "random", "hill_climb",
                  "simulated_annealing", "static_rank", "surrogate")


def _power_measurement(seed=99):
    machine = SimulatedMachine("cortex_a15", seed=seed, sim_cycles=600)
    target = SimulatedTarget(machine)
    target.connect()
    return PowerMeasurement(target, {"samples": "2"})


def _config(tiny_library, tiny_template, generations=3, seed=99,
            strategy=None, params=None):
    ga = GAParameters(population_size=6, individual_size=8,
                      mutation_rate=0.1, generations=generations,
                      tournament_size=3, seed=seed)
    config = RunConfig(ga=ga, library=tiny_library,
                       template_text=tiny_template.text)
    if strategy is not None:
        config.search = SearchParameters(strategy=strategy,
                                         params=dict(params or {}))
    return config


def _population_signature(path):
    """Everything a population binary records, minus pickle framing.

    Split-vs-full runs produce semantically identical populations, but
    a resumed run breeds from *unpickled* parents, so the shared-object
    topology inside later pickles differs; comparing the recorded fields
    instead of raw bytes pins the actual contract.
    """
    return [(i.uid, i.parent_ids, i.genome_key(), i.fitness,
             tuple(i.measurements), i.generation, i.compile_failed,
             i.screen_failed) for i in load_population(path)]


def _scored(fitnesses):
    """Evaluated genome-less individuals with the given fitness values."""
    individuals = []
    for uid, fitness in enumerate(fitnesses):
        individual = Individual([], uid=uid)
        if fitness is not None:
            individual.record_evaluation([fitness], fitness)
        individuals.append(individual)
    return individuals


# ---------------------------------------------------------------------------
# registries
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_duplicate_registration_rejected(self):
        registry = Registry("widget")
        registry.register("a", object())
        with pytest.raises(ValueError, match="duplicate widget"):
            registry.register("a", object())

    def test_decorator_registration(self):
        registry = Registry("widget")

        @registry.register("spin")
        def spin():
            return 1

        assert registry.get("spin") is spin
        assert "spin" in registry
        assert registry.names() == ("spin",)

    def test_unknown_name_lists_choices_and_suggestion(self):
        registry = Registry("parent_selection_method")
        registry.register("tournament", object())
        registry.register("roulette", object())
        with pytest.raises(ConfigError) as excinfo:
            registry.get("tournement")
        message = str(excinfo.value)
        assert "valid choices: tournament, roulette" in message
        assert "did you mean 'tournament'?" in message

    def test_no_suggestion_when_nothing_is_near(self):
        assert suggest("zzzzzz", ["tournament", "roulette"]) is None
        registry = Registry("thing")
        registry.register("tournament", object())
        assert "did you mean" not in registry.unknown_message("zzzzzz")

    def test_builtin_registry_contents(self):
        assert SELECTION_OPERATORS.names() == ("tournament", "roulette",
                                               "rank")
        assert CROSSOVER_OPERATORS.names() == ("one_point", "uniform")
        assert MUTATION_OPERATORS.names() == ("default", "operand_only",
                                              "instruction_only")
        assert REPLACEMENT_POLICIES.names() == ("elitist", "generational")
        assert STRATEGIES.names() == ALL_STRATEGIES


# ---------------------------------------------------------------------------
# selection operators
# ---------------------------------------------------------------------------

class TestRouletteSelection:
    def test_prefers_high_fitness(self):
        individuals = _scored([1.0, 1.0, 18.0])
        rng = make_rng(3)
        picks = [roulette_select(individuals, rng) for _ in range(300)]
        share = sum(1 for p in picks if p.uid == 2) / len(picks)
        assert share > 0.75

    def test_zero_total_degrades_to_uniform(self):
        individuals = _scored([0.0, 0.0, 0.0])
        rng = make_rng(5)
        picks = {roulette_select(individuals, rng).uid
                 for _ in range(200)}
        assert picks == {0, 1, 2}

    def test_negative_fitness_rejected(self):
        individuals = _scored([1.0, -0.5])
        with pytest.raises(ConfigError, match="non-negative"):
            roulette_select(individuals, make_rng(1))

    def test_unevaluated_individual_rejected(self):
        individuals = _scored([1.0, None])
        with pytest.raises(ConfigError, match="has not been evaluated"):
            roulette_select(individuals, make_rng(1))

    def test_empty_population_rejected(self):
        with pytest.raises(ConfigError, match="empty population"):
            roulette_select([], make_rng(1))


class TestRankSelection:
    def test_prefers_high_rank(self):
        # Rank weights are 1:2:3 regardless of the (huge) fitness gap,
        # so the best is picked ~50% of the time, not ~100%.
        individuals = _scored([1.0, 2.0, 1000.0])
        rng = make_rng(9)
        picks = [rank_select(individuals, rng) for _ in range(600)]
        best_share = sum(1 for p in picks if p.uid == 2) / len(picks)
        worst_share = sum(1 for p in picks if p.uid == 0) / len(picks)
        assert 0.42 < best_share < 0.58
        assert 0.10 < worst_share < 0.24

    def test_deterministic_under_seed(self):
        individuals = _scored([3.0, 1.0, 2.0, 2.0])
        first = [rank_select(individuals, make_rng(11)).uid
                 for _ in range(1)]
        second = [rank_select(individuals, make_rng(11)).uid
                  for _ in range(1)]
        assert first == second

    def test_unevaluated_individual_rejected(self):
        individuals = _scored([None])
        with pytest.raises(ConfigError, match="has not been evaluated"):
            rank_select(individuals, make_rng(1))

    def test_empty_population_rejected(self):
        with pytest.raises(ConfigError, match="empty population"):
            rank_select([], make_rng(1))


# ---------------------------------------------------------------------------
# strategy construction and parameters
# ---------------------------------------------------------------------------

class TestStrategyParams:
    def test_unknown_strategy_suggests_nearest(self):
        with pytest.raises(ConfigError) as excinfo:
            make_strategy("genetik")
        message = str(excinfo.value)
        assert "unknown search strategy 'genetik'" in message
        assert "did you mean 'genetic'?" in message

    def test_unknown_parameter_lists_valid_names(self):
        with pytest.raises(ConfigError, match="valid parameters: "
                                              "mutation"):
            make_strategy("hill_climb", {"bogus": "1"})

    def test_parameterless_strategy_says_none(self):
        with pytest.raises(ConfigError, match=r"valid parameters: "
                                              r"\(none\)"):
            make_strategy("random", {"anything": "1"})

    @pytest.mark.parametrize("params", [
        {"cooling": "1.5"},
        {"cooling": "0"},
        {"initial_temperature": "-1"},
        {"initial_temperature": "warm"},
        {"min_temperature": "0"},
    ])
    def test_bad_annealing_values_rejected(self, params):
        with pytest.raises(ConfigError, match="invalid value"):
            make_strategy("simulated_annealing", params)

    def test_annealing_defaults(self):
        strategy = make_strategy("simulated_annealing")
        assert strategy.params["initial_temperature"] == 1.0
        assert strategy.params["cooling"] == pytest.approx(0.95)
        assert strategy.params["mutation"] == "default"

    def test_string_params_are_parsed(self):
        strategy = make_strategy("simulated_annealing",
                                 {"initial_temperature": "2.5"})
        assert strategy.params["initial_temperature"] == 2.5

    def test_genetic_operator_params_resolved_at_bind(self, tiny_config):
        strategy = make_strategy("genetic", {"selection": "bogus"})
        with pytest.raises(ConfigError, match="tournament, roulette, "
                                              "rank"):
            strategy.bind(tiny_config, make_rng(1), lambda: 0)

    def test_unbound_strategy_cannot_allocate_uids(self):
        with pytest.raises(ConfigError, match="not bound"):
            make_strategy("random").take_uid()

    def test_stateless_strategy_rejects_foreign_state(self):
        with pytest.raises(ConfigError, match="stateless"):
            make_strategy("random").load_state({"temperature": 2.0})


class TestEngineStrategySelection:
    def test_default_is_genetic(self, tiny_config):
        engine = GeneticEngine(tiny_config, _power_measurement(),
                               DefaultFitness())
        assert engine.strategy.name == "genetic"
        engine.evaluator.close()

    def test_config_search_block_selects_strategy(self, tiny_library,
                                                  tiny_template):
        config = _config(tiny_library, tiny_template,
                         strategy="simulated_annealing",
                         params={"initial_temperature": "2.5"})
        engine = GeneticEngine(config, _power_measurement(),
                               DefaultFitness())
        assert engine.strategy.name == "simulated_annealing"
        assert engine.strategy.params["initial_temperature"] == 2.5
        engine.evaluator.close()

    def test_explicit_name_overrides_config(self, tiny_library,
                                            tiny_template):
        # A different explicit name runs with that strategy's own
        # defaults; the config's annealer parameters must not leak.
        config = _config(tiny_library, tiny_template,
                         strategy="simulated_annealing",
                         params={"initial_temperature": "2.5"})
        engine = GeneticEngine(config, _power_measurement(),
                               DefaultFitness(), strategy="hill_climb")
        assert engine.strategy.name == "hill_climb"
        engine.evaluator.close()

    def test_strategy_instance_used_verbatim(self, tiny_config):
        strategy = make_strategy("random")
        engine = GeneticEngine(tiny_config, _power_measurement(),
                               DefaultFitness(), strategy=strategy)
        assert engine.strategy is strategy
        engine.evaluator.close()


# ---------------------------------------------------------------------------
# strategy x backend smoke + equivalence
# ---------------------------------------------------------------------------

class TestStrategyBackendEquivalence:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_serial_and_pool_identical(self, tiny_library, tiny_template,
                                       name):
        def run(backend):
            config = _config(tiny_library, tiny_template, strategy=name)
            engine = GeneticEngine(config, _power_measurement(),
                                   DefaultFitness(), backend=backend)
            return engine.run()

        serial = run(SerialBackend())
        pooled = run(ProcessPoolBackend(2))
        assert serial.generations == pooled.generations
        assert len(serial.generations) == 3
        assert all(g.strategy == name for g in serial.generations)
        assert serial.best_individual is not None
        assert serial.best_individual.genome_key() == \
            pooled.best_individual.genome_key()
        assert [i.genome_key() for i in serial.final_population] == \
            [i.genome_key() for i in pooled.final_population]

    def test_strategies_actually_diverge(self, tiny_library,
                                         tiny_template):
        # Same seed, different strategies: generation 0 is identical,
        # later populations are not (the strategy is the only variable).
        def final_genomes(name):
            config = _config(tiny_library, tiny_template, strategy=name)
            engine = GeneticEngine(config, _power_measurement(),
                                   DefaultFitness(),
                                   backend=SerialBackend())
            history = engine.run()
            return [i.genome_key() for i in history.final_population]

        assert final_genomes("genetic") != final_genomes("random")


# ---------------------------------------------------------------------------
# checkpoint round-trips
# ---------------------------------------------------------------------------

class TestCheckpointRoundTrip:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    @pytest.mark.parametrize("workers", [1, 2])
    def test_split_run_matches_full_run(self, tiny_library, tiny_template,
                                        tmp_path, name, workers):
        def engine(results, checkpoint=None):
            config = _config(tiny_library, tiny_template, generations=6,
                             strategy=name)
            return GeneticEngine(config, _power_measurement(),
                                 DefaultFitness(),
                                 recorder=OutputRecorder(tmp_path / results),
                                 checkpoint_path=checkpoint,
                                 workers=workers)

        full_history = engine("full").run()

        checkpoint = tmp_path / "run.ckpt"
        first = engine("split", checkpoint)
        first_history = first.run(generations=3)
        config = _config(tiny_library, tiny_template, generations=6,
                         strategy=name)
        resumed = GeneticEngine.resume(
            config, _power_measurement(), DefaultFitness(), checkpoint,
            recorder=OutputRecorder(tmp_path / "split"), workers=workers)
        resumed_history = resumed.run(generations=6)

        assert resumed.strategy.name == name
        assert [g.number for g in resumed_history.generations] == [3, 4, 5]
        assert full_history.generations == \
            first_history.generations + resumed_history.generations

        full_files = OutputRecorder(tmp_path / "full").population_files()
        split_files = OutputRecorder(tmp_path / "split").population_files()
        assert [p.name for p in full_files] == \
            [p.name for p in split_files]
        assert len(full_files) == 6
        for a, b in zip(full_files, split_files):
            assert _population_signature(a) == _population_signature(b)
        # Up to the checkpointed generation both engines ran from
        # scratch, so those binaries are bit-identical too.
        for a, b in zip(full_files[:3], split_files[:3]):
            assert a.read_bytes() == b.read_bytes()

        # stats.jsonl matches line for line once the observability
        # fields (wall-clock timings, cache counters) are dropped.
        observability = {"timings", "cache_hits", "measured", "screened",
                         "compile_cache_hits", "compile_cache_misses"}

        def stats_rows(run):
            lines = (tmp_path / run / "stats.jsonl").read_text() \
                .strip().splitlines()
            return [{key: value
                     for key, value in json.loads(line).items()
                     if key not in observability} for line in lines]

        assert stats_rows("full") == stats_rows("split")

    def test_stats_jsonl_carries_strategy_and_matches_split(
            self, tiny_library, tiny_template, tmp_path):
        config = _config(tiny_library, tiny_template, generations=4,
                         strategy="random")
        GeneticEngine(config, _power_measurement(), DefaultFitness(),
                      recorder=OutputRecorder(tmp_path / "run"),
                      backend=SerialBackend()).run()
        lines = (tmp_path / "run" / "stats.jsonl").read_text() \
            .strip().splitlines()
        rows = [json.loads(line) for line in lines]
        assert [row["number"] for row in rows] == [0, 1, 2, 3]
        assert all(row["strategy"] == "random" for row in rows)


class TestStrategyStateResume:
    def test_annealer_temperature_survives_resume(self, tiny_library,
                                                  tiny_template,
                                                  tmp_path):
        checkpoint = tmp_path / "sa.ckpt"
        config = _config(tiny_library, tiny_template, generations=6,
                         strategy="simulated_annealing",
                         params={"initial_temperature": "2.0",
                                 "cooling": "0.5"})
        first = GeneticEngine(config, _power_measurement(),
                              DefaultFitness(),
                              checkpoint_path=checkpoint)
        first.run(generations=3)
        # Three generations of cooling: 2.0 -> 1.0 -> 0.5 -> 0.25.
        assert first.strategy._temperature == pytest.approx(0.25)

        resumed = GeneticEngine.resume(config, _power_measurement(),
                                       DefaultFitness(), checkpoint)
        assert resumed.strategy._temperature == pytest.approx(0.25)
        assert resumed.strategy._current is not None
        assert resumed.strategy._current.genome_key() == \
            first.strategy._current.genome_key()

    def test_hill_climb_incumbent_survives_resume(self, tiny_library,
                                                  tiny_template,
                                                  tmp_path):
        checkpoint = tmp_path / "hc.ckpt"
        config = _config(tiny_library, tiny_template, generations=6,
                         strategy="hill_climb")
        first = GeneticEngine(config, _power_measurement(),
                              DefaultFitness(),
                              checkpoint_path=checkpoint)
        first.run(generations=3)
        incumbent = first.strategy._current
        assert incumbent is not None

        resumed = GeneticEngine.resume(config, _power_measurement(),
                                       DefaultFitness(), checkpoint)
        assert resumed.strategy._current.uid == incumbent.uid
        assert resumed.strategy._current.genome_key() == \
            incumbent.genome_key()

    def test_annealer_rejects_corrupt_state(self):
        strategy = make_strategy("simulated_annealing")
        with pytest.raises(ConfigError, match="unexpected key"):
            strategy.load_state({"pressure": 3.0})
        with pytest.raises(ConfigError, match="non-positive temperature"):
            strategy.load_state({"temperature": -1.0})
        with pytest.raises(ConfigError, match="not an Individual"):
            strategy.load_state({"current": "nope"})

    def test_hill_climb_rejects_corrupt_state(self):
        strategy = make_strategy("hill_climb")
        with pytest.raises(ConfigError, match="unexpected key"):
            strategy.load_state({"temperature": 1.0})
        with pytest.raises(ConfigError, match="not an Individual"):
            strategy.load_state({"current": 42})


# ---------------------------------------------------------------------------
# checkpoint versioning and migration
# ---------------------------------------------------------------------------

def _rewrite_checkpoint(path, **changes):
    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    removals = [key for key, value in changes.items() if value is None]
    for key in removals:
        payload.pop(key, None)
        changes.pop(key)
    payload.update(changes)
    with open(path, "wb") as handle:
        pickle.dump(payload, handle, protocol=4)
    return payload


class TestCheckpointMigration:
    def _checkpointed_run(self, tiny_library, tiny_template, tmp_path,
                          strategy="genetic"):
        checkpoint = tmp_path / "run.ckpt"
        config = _config(tiny_library, tiny_template, generations=6,
                         strategy=strategy)
        GeneticEngine(config, _power_measurement(), DefaultFitness(),
                      checkpoint_path=checkpoint).run(generations=3)
        return config, checkpoint

    def test_v1_checkpoint_migrates_to_genetic(self, tiny_library,
                                               tiny_template, tmp_path):
        config, checkpoint = self._checkpointed_run(
            tiny_library, tiny_template, tmp_path)
        full_history = GeneticEngine(
            _config(tiny_library, tiny_template, generations=6),
            _power_measurement(), DefaultFitness()).run()

        _rewrite_checkpoint(checkpoint, version=1, strategy=None,
                            strategy_state=None)
        resumed = GeneticEngine.resume(config, _power_measurement(),
                                       DefaultFitness(), checkpoint)
        assert resumed.strategy.name == "genetic"
        history = resumed.run(generations=6)
        assert history.generations == full_history.generations[3:]

    def test_v1_checkpoint_refuses_other_strategies(self, tiny_library,
                                                    tiny_template,
                                                    tmp_path):
        _, checkpoint = self._checkpointed_run(tiny_library,
                                               tiny_template, tmp_path)
        _rewrite_checkpoint(checkpoint, version=1, strategy=None,
                            strategy_state=None)
        config = _config(tiny_library, tiny_template, generations=6)
        with pytest.raises(ConfigError) as excinfo:
            GeneticEngine.resume(config, _power_measurement(),
                                 DefaultFitness(), checkpoint,
                                 strategy="random")
        message = str(excinfo.value)
        assert "'genetic'" in message and "'random'" in message

    def test_v2_strategy_mismatch_names_both(self, tiny_library,
                                             tiny_template, tmp_path):
        _, checkpoint = self._checkpointed_run(
            tiny_library, tiny_template, tmp_path, strategy="random")
        config = _config(tiny_library, tiny_template, generations=6)
        with pytest.raises(ConfigError) as excinfo:
            GeneticEngine.resume(config, _power_measurement(),
                                 DefaultFitness(), checkpoint)
        message = str(excinfo.value)
        assert "written by search strategy 'random'" in message
        assert "--strategy random" in message

    def test_unsupported_version_rejected(self, tiny_library,
                                          tiny_template, tmp_path):
        config, checkpoint = self._checkpointed_run(
            tiny_library, tiny_template, tmp_path)
        _rewrite_checkpoint(checkpoint, version=3)
        with pytest.raises(ConfigError, match="unsupported version 3"):
            GeneticEngine.resume(config, _power_measurement(),
                                 DefaultFitness(), checkpoint)

    def test_foreign_state_in_checkpoint_rejected(self, tiny_library,
                                                  tiny_template,
                                                  tmp_path):
        config, checkpoint = self._checkpointed_run(
            tiny_library, tiny_template, tmp_path, strategy="random")
        _rewrite_checkpoint(checkpoint,
                            strategy_state={"temperature": 1.0})
        with pytest.raises(ConfigError, match="stateless"):
            GeneticEngine.resume(config, _power_measurement(),
                                 DefaultFitness(), checkpoint,
                                 strategy="random")

    def test_non_checkpoint_file_rejected(self, tiny_library,
                                          tiny_template, tmp_path):
        bogus = tmp_path / "bogus.ckpt"
        bogus.write_bytes(pickle.dumps({"hello": "world"}))
        config = _config(tiny_library, tiny_template)
        with pytest.raises(ConfigError, match="not a checkpoint"):
            GeneticEngine.resume(config, _power_measurement(),
                                 DefaultFitness(), bogus)


# ---------------------------------------------------------------------------
# <search> configuration block
# ---------------------------------------------------------------------------

def _minimal_xml(tmp_path, extra=""):
    (tmp_path / "template.s").write_text(".loop\n#loop_code\n.endloop\n")
    return f"""
<gest_config>
  <ga population_size="6" individual_size="8" generations="3" seed="1"/>
  <paths results_dir="results" template="template.s"/>
  {extra}
  <operands>
    <operand id="dst" type="register" values="x1 x2"/>
  </operands>
  <instructions>
    <instruction name="ADD" num_of_operands="2" operand1="dst"
                 operand2="dst" format="add op1, op1, op2"
                 type="int_short"/>
  </instructions>
</gest_config>
"""


class TestSearchConfigBlock:
    def test_absent_block_defaults_to_genetic(self, tmp_path):
        config = parse_config_text(_minimal_xml(tmp_path),
                                   base_dir=tmp_path)
        assert config.search.strategy == "genetic"
        assert config.search.params == {}

    def test_strategy_and_params_parsed(self, tmp_path):
        xml = _minimal_xml(
            tmp_path,
            extra='<search strategy="simulated_annealing" '
                  'initial_temperature="2.0" cooling="0.9"/>')
        config = parse_config_text(xml, base_dir=tmp_path)
        assert config.search.strategy == "simulated_annealing"
        assert config.search.params == {"initial_temperature": "2.0",
                                        "cooling": "0.9"}

    def test_unknown_strategy_rejected_with_suggestion(self, tmp_path):
        xml = _minimal_xml(
            tmp_path, extra='<search strategy="simulated_anealing"/>')
        with pytest.raises(ConfigError,
                           match="did you mean 'simulated_annealing'"):
            parse_config_text(xml, base_dir=tmp_path)

    def test_bad_param_value_rejected(self, tmp_path):
        xml = _minimal_xml(
            tmp_path,
            extra='<search strategy="simulated_annealing" cooling="2"/>')
        with pytest.raises(ConfigError, match="invalid value '2'"):
            parse_config_text(xml, base_dir=tmp_path)

    def test_round_trip_through_xml(self, tmp_path, tiny_library,
                                    tiny_template):
        config = _config(tiny_library, tiny_template,
                         strategy="hill_climb",
                         params={"mutation": "operand_only"})
        xml = config_to_xml(config, template_filename="template.s",
                            results_dir="results")
        (tmp_path / "template.s").write_text(config.template_text)
        reparsed = parse_config_text(xml, base_dir=tmp_path)
        assert reparsed.search.strategy == "hill_climb"
        assert reparsed.search.params == {"mutation": "operand_only"}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCliStrategy:
    def test_strategy_flag_selects_and_reports(self, tmp_path, capsys):
        from repro.isa.catalogs import write_stock_config
        config = write_stock_config(tmp_path, "arm", "power",
                                    population_size=4, generations=2,
                                    individual_size=8)
        rc = main(["run", str(config), "--platform", "cortex_a7",
                   "--strategy", "random",
                   "--results", str(tmp_path / "results")])
        assert rc == 0
        assert "search strategy: random" in capsys.readouterr().out
        lines = (tmp_path / "results" / "stats.jsonl").read_text() \
            .strip().splitlines()
        assert all(json.loads(line)["strategy"] == "random"
                   for line in lines)

    def test_unknown_strategy_flag_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["run", "config.xml", "--strategy", "tabu"])


# ---------------------------------------------------------------------------
# lint (SC209 / SC210)
# ---------------------------------------------------------------------------

class TestLintSearch:
    def test_clean_config_has_no_findings(self, tiny_library,
                                          tiny_template):
        config = _config(tiny_library, tiny_template,
                         strategy="simulated_annealing",
                         params={"cooling": "0.9"})
        assert lint_search(config) == []

    def test_unknown_selection_is_sc209(self, tiny_library,
                                        tiny_template):
        config = _config(tiny_library, tiny_template)
        config.ga.parent_selection_method = "lottery"
        diagnostics = lint_search(config)
        assert [d.code for d in diagnostics] == ["SC209"]
        assert "tournament" in diagnostics[0].message

    def test_unknown_crossover_is_sc209(self, tiny_library,
                                        tiny_template):
        config = _config(tiny_library, tiny_template)
        config.ga.crossover_operator = "two_point"
        diagnostics = lint_search(config)
        assert [d.code for d in diagnostics] == ["SC209"]
        assert "one_point" in diagnostics[0].message

    def test_unknown_strategy_is_sc210_with_suggestion(self, tiny_library,
                                                       tiny_template):
        config = _config(tiny_library, tiny_template)
        config.search = SearchParameters(strategy="simulated_anealing")
        diagnostics = lint_search(config)
        assert [d.code for d in diagnostics] == ["SC210"]
        assert "did you mean 'simulated_annealing'?" in \
            diagnostics[0].message

    def test_unknown_param_operator_is_sc209(self, tiny_library,
                                             tiny_template):
        config = _config(tiny_library, tiny_template)
        config.search = SearchParameters(
            strategy="hill_climb", params={"mutation": "operand_onl"})
        codes = [d.code for d in lint_search(config)]
        assert "SC209" in codes

    def test_invalid_param_value_is_sc210(self, tiny_library,
                                          tiny_template):
        config = _config(tiny_library, tiny_template)
        config.search = SearchParameters(
            strategy="simulated_annealing", params={"cooling": "7"})
        diagnostics = lint_search(config)
        assert [d.code for d in diagnostics] == ["SC210"]

    def test_lint_config_includes_search_findings(self, tiny_library,
                                                  tiny_template):
        config = _config(tiny_library, tiny_template)
        config.search = SearchParameters(strategy="tabu")
        codes = [d.code for d in lint_config(config)]
        assert "SC210" in codes

    # Search-layer names are also rejected at *parse* time (the config
    # refuses to construct), so the file-level lint never reaches
    # lint_search for them — the ConfigError's diagnostic_code must
    # carry the dedicated code through instead of the generic SC201.
    def test_file_lint_keeps_sc210_for_parse_rejected_strategy(
            self, tmp_path):
        xml = _minimal_xml(
            tmp_path, extra='<search strategy="simulated_anealing"/>')
        (tmp_path / "config.xml").write_text(xml)
        diagnostics = lint_config_file(tmp_path / "config.xml")
        assert [d.code for d in diagnostics] == ["SC210"]
        assert "did you mean 'simulated_annealing'?" in \
            diagnostics[0].message

    def test_file_lint_keeps_sc209_for_parse_rejected_operator(
            self, tmp_path):
        xml = _minimal_xml(tmp_path).replace(
            '<ga ', '<ga crossover_operator="two_point" ', 1)
        (tmp_path / "config.xml").write_text(xml)
        diagnostics = lint_config_file(tmp_path / "config.xml")
        assert [d.code for d in diagnostics] == ["SC209"]
        assert "one_point" in diagnostics[0].message

    def test_file_lint_keeps_sc210_for_parse_rejected_param(
            self, tmp_path):
        xml = _minimal_xml(
            tmp_path,
            extra='<search strategy="simulated_annealing" cooling="7"/>')
        (tmp_path / "config.xml").write_text(xml)
        diagnostics = lint_config_file(tmp_path / "config.xml")
        assert [d.code for d in diagnostics] == ["SC210"]


# ---------------------------------------------------------------------------
# ablation: the paper's GA-vs-random argument (Section III.A)
# ---------------------------------------------------------------------------

class TestSearchComparison:
    def test_genetic_beats_random_on_ipc(self):
        from repro.experiments import search_comparison
        result = search_comparison(strategies=("genetic", "random"))
        assert len(result.histories["genetic"].generations) == 8
        assert all(g.strategy == "random"
                   for g in result.histories["random"].generations)
        assert result.best_fitness("genetic") > \
            result.best_fitness("random")
        assert result.ranking()[0] == "genetic"
        assert "genetic" in result.render()


# ---------------------------------------------------------------------------
# golden gate: shipped configs are bit-identical under the new engine
# ---------------------------------------------------------------------------

SHIPPED_CONFIGS = [
    ("arm_power", "cortex_a15"),
    ("arm_ipc", "xgene2"),
    ("arm_temperature", "xgene2"),
    ("x86_didt", "athlon_x4"),
]


class TestShippedConfigGolden:
    @pytest.mark.parametrize("name,platform", SHIPPED_CONFIGS)
    def test_generation0_bit_identical(self, name, platform, tmp_path):
        shipped = REPO_ROOT / "configs" / name
        rc = main(["run", str(shipped / "config.xml"),
                   "--platform", platform, "--generations", "1",
                   "--results", str(tmp_path / "results"), "--quiet"])
        assert rc == 0
        produced = (tmp_path / "results" / "populations" /
                    "population_0.bin").read_bytes()
        golden = (shipped / "results" / "populations" /
                  "population_0.bin").read_bytes()
        assert produced == golden
