"""Unit tests for the analysis package (repro.analysis)."""

import math

import pytest

from repro.analysis import (RELATED_WORK, TABLE_CATEGORIES, VMIN_STEP_V,
                            area_under_curve, bar_chart, best_fitness_series,
                            breakdown_table, characterize_vmin,
                            dominant_category, figure_rows,
                            final_improvement, generations_to_exceed,
                            is_monotonic, mix_of_individual, mix_of_program,
                            normalize, related_work_table, vmin_table)
from repro.core.engine import GenerationStats, RunHistory
from repro.core.errors import ConfigError
from repro.core.individual import random_individual
from repro.core.rng import make_rng
from repro.isa import ArmAssembler


class TestInstructionMix:
    def test_mix_of_individual_categories(self, arm_lib):
        ind = random_individual(arm_lib, 50, make_rng(1))
        mix = mix_of_individual(ind)
        assert sum(mix.values()) == 50
        assert set(TABLE_CATEGORIES) <= set(mix)

    def test_mix_of_program(self):
        program = ArmAssembler().assemble(
            ".loop\nadd x1, x2, x3\nmul x4, x5, x6\nfadd v0, v1, v2\n"
            "vmul v3, v4, v5\nldr x7, [x10, #8]\nb 1f\n1:\n.endloop\n")
        mix = mix_of_program(program)
        assert mix["ShortInt"] == 1
        assert mix["LongInt"] == 1
        assert mix["Float/SIMD"] == 2
        assert mix["Mem"] == 1
        assert mix["Branch"] == 1

    def test_dominant_category(self):
        assert dominant_category(
            {"ShortInt": 3, "Float/SIMD": 20, "Mem": 10}) == "Float/SIMD"

    def test_dominant_category_tie_prefers_column_order(self):
        assert dominant_category({"ShortInt": 5, "Mem": 5}) == "ShortInt"

    def test_breakdown_table_renders_rows(self):
        text = breakdown_table(
            [("Cortex-A15", {"ShortInt": 4, "LongInt": 5,
                             "Float/SIMD": 22, "Mem": 18, "Branch": 1})])
        assert "Cortex-A15" in text
        assert "22" in text
        assert "Total" in text

    def test_breakdown_table_extra_columns(self):
        text = breakdown_table(
            [("v", {"ShortInt": 1})],
            extra_columns=[("Relative IPC", {"v": 1.12})])
        assert "Relative IPC" in text
        assert "1.12" in text

    def test_unknown_itype_preserved(self):
        from repro.core.individual import Individual
        from repro.core.instruction import (ConcreteInstruction,
                                            InstructionSpec)
        spec = InstructionSpec("CRYPT", [], "nop", "crypto")
        ind = Individual([ConcreteInstruction(spec, ())])
        assert mix_of_individual(ind)["crypto"] == 1


def _history(series):
    history = RunHistory()
    for number, value in enumerate(series):
        history.generations.append(GenerationStats(
            number=number, best_fitness=value, mean_fitness=value * 0.8,
            best_uid=number, compile_failures=0))
    return history


class TestConvergence:
    def test_best_fitness_series(self):
        assert best_fitness_series(_history([1, 2, 3])) == [1, 2, 3]

    def test_generations_to_exceed(self):
        history = _history([1.0, 1.5, 2.5, 3.0])
        assert generations_to_exceed(history, 2.0) == 2
        assert generations_to_exceed(history, 99.0) is None

    def test_final_improvement(self):
        assert final_improvement(_history([2.0, 3.0])) == pytest.approx(0.5)

    def test_final_improvement_from_zero(self):
        assert final_improvement(_history([0.0, 1.0])) == float("inf")

    def test_area_under_curve(self):
        assert area_under_curve([1.0, 2.0, 3.0]) == 6.0

    def test_is_monotonic(self):
        assert is_monotonic([1, 2, 2, 3])
        assert not is_monotonic([1, 2, 1.5])
        assert is_monotonic([1, 2, 1.95], tolerance=0.1)


class TestReports:
    def test_normalize(self):
        out = normalize({"a": 2.0, "b": 4.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}

    def test_normalize_missing_reference(self):
        with pytest.raises(ConfigError):
            normalize({"a": 1.0}, "zz")

    def test_normalize_zero_reference(self):
        with pytest.raises(ConfigError):
            normalize({"a": 0.0}, "a")

    def test_figure_rows_sorted(self):
        rows = figure_rows({"x": 1.0, "y": 3.0, "z": 2.0})
        assert [name for name, _ in rows] == ["y", "z", "x"]

    def test_figure_rows_normalised(self):
        rows = figure_rows({"x": 2.0, "ref": 4.0}, reference="ref")
        assert dict(rows)["x"] == pytest.approx(0.5)

    def test_bar_chart_contains_all_rows(self):
        chart = bar_chart([("abc", 2.0), ("de", 1.0)], title="T")
        assert "T" in chart and "abc" in chart and "de" in chart
        assert "#" in chart

    def test_bar_chart_rejects_empty(self):
        with pytest.raises(ConfigError):
            bar_chart([])

    def test_bar_chart_rejects_nonpositive_peak(self):
        with pytest.raises(ConfigError):
            bar_chart([("a", 0.0)])


class TestVmin:
    def test_step_matches_paper(self):
        assert VMIN_STEP_V == pytest.approx(0.0125)

    def test_quiet_workload_has_low_vmin(self, athlon_machine):
        program = athlon_machine.compile(
            ".loop\nnop\nnop\nadd rax, rbx\n.endloop\n", name="quiet")
        result = characterize_vmin(athlon_machine, program, cores=1)
        assert result.vmin_v < athlon_machine.arch.vdd_nominal - 0.05
        assert result.guardband_v > 0.05
        # Sweep starts at nominal and every recorded setting above
        # V_MIN passed.
        assert result.sweep[0][0] == athlon_machine.arch.vdd_nominal
        for supply, passed in result.sweep:
            if supply > result.vmin_v:
                assert passed

    def test_noisy_beats_quiet(self, athlon_machine):
        quiet = athlon_machine.compile(
            ".loop\nnop\nnop\nadd rax, rbx\n.endloop\n", name="quiet")
        noisy = athlon_machine.compile(
            ".loop\n" + "vfmadd231ps xmm0, xmm1, xmm2\n" * 8
            + "idiv2 rsi, rdi\n" * 2 + ".endloop\n", name="noisy")
        v_quiet = characterize_vmin(athlon_machine, quiet, cores=4)
        v_noisy = characterize_vmin(athlon_machine, noisy, cores=4)
        assert v_noisy.vmin_v > v_quiet.vmin_v

    def test_vmin_table_sorted(self, athlon_machine):
        program = athlon_machine.compile(".loop\nnop\n.endloop\n")
        r1 = characterize_vmin(athlon_machine, program, cores=1,
                               name="one")
        text = vmin_table([r1])
        assert "one" in text and "V_MIN" in text

    def test_bad_step_rejected(self, athlon_machine):
        program = athlon_machine.compile(".loop\nnop\n.endloop\n")
        from repro.core.errors import SimulationError
        with pytest.raises(SimulationError):
            characterize_vmin(athlon_machine, program, step_v=0.0)


class TestRelatedWork:
    def test_five_frameworks(self):
        assert len(RELATED_WORK) == 5
        assert {e.framework for e in RELATED_WORK} == {
            "AUDIT", "MAMPO", "Joshi et al.", "Powermark", "GeST"}

    def test_gest_row_claims(self):
        gest = next(e for e in RELATED_WORK if e.framework == "GeST")
        assert gest.optimization_type == "Instruction-Level"
        assert gest.evaluated_on == "Real-Hardware"
        assert set(gest.metrics_evaluated) == {"dI/dt", "power"}

    def test_gest_uniquely_combines_properties(self):
        """The paper's positioning: no other framework is
        instruction-level on real hardware with both metrics."""
        others = [e for e in RELATED_WORK if e.framework != "GeST"]
        assert not any(
            e.optimization_type == "Instruction-Level"
            and e.evaluated_on == "Real-Hardware"
            and len(e.metrics_evaluated) > 1
            for e in others)

    def test_table_renders_all_rows(self):
        text = related_work_table()
        for entry in RELATED_WORK:
            assert entry.framework in text


class TestLineage:
    @pytest.fixture
    def recorded_dir(self, tiny_config, tmp_path):
        from repro.core.engine import GeneticEngine
        from repro.core.output import OutputRecorder
        from repro.fitness import DefaultFitness

        class LdrCounter:
            def measure(self, source_text, individual):
                return [float(sum(1 for i in individual.instructions
                                  if i.name == "LDR"))]

            def measure_repeated(self, source_text, individual):
                return self.measure(source_text, individual)

        tiny_config.ga.generations = 6
        recorder = OutputRecorder(tmp_path / "run")
        GeneticEngine(tiny_config, LdrCounter(), DefaultFitness(),
                      recorder=recorder).run()
        return recorder.results_dir

    def test_lineage_of_final_winner_reaches_seed_population(
            self, recorded_dir):
        from repro.analysis import trace_lineage
        from repro.analysis.postprocess import load_run
        populations = load_run(recorded_dir)
        lineage = trace_lineage(populations,
                                populations[-1].fittest())
        assert lineage.depth >= 2
        assert lineage.steps[0].generation == 0
        # Generations along the chain never decrease.
        generations = [s.generation for s in lineage.steps]
        assert generations == sorted(generations)

    def test_lineage_of_best_never_empty(self, recorded_dir):
        from repro.analysis import lineage_of_best
        lineage = lineage_of_best(recorded_dir)
        assert lineage.depth >= 1
        assert lineage.steps[-1].uid == lineage.target_uid

    def test_primary_line_fitness_trends_up(self, recorded_dir):
        from repro.analysis import trace_lineage
        from repro.analysis.postprocess import load_run
        populations = load_run(recorded_dir)
        lineage = trace_lineage(populations, populations[-1].fittest())
        series = lineage.fitness_series()
        assert series[-1] >= series[0]

    def test_final_step_shares_all_genes_with_itself(self, recorded_dir):
        from repro.analysis import trace_lineage
        from repro.analysis.postprocess import load_run
        populations = load_run(recorded_dir)
        lineage = trace_lineage(populations, populations[-1].fittest())
        assert lineage.steps[-1].genes_in_common == 8   # individual size

    def test_render_mentions_generations(self, recorded_dir):
        from repro.analysis import lineage_of_best
        text = lineage_of_best(recorded_dir).render()
        assert "lineage of uid" in text and "gen " in text

    def test_unknown_individual_rejected(self, recorded_dir):
        from repro.analysis import trace_lineage
        from repro.analysis.postprocess import load_run
        from repro.core.individual import Individual
        populations = load_run(recorded_dir)
        ghost = Individual([], uid=999_999)
        with pytest.raises(ConfigError):
            trace_lineage(populations, ghost)


class TestDiversity:
    @pytest.fixture
    def recorded_dir(self, tiny_config, tmp_path):
        from repro.core.engine import GeneticEngine
        from repro.core.output import OutputRecorder
        from repro.fitness import DefaultFitness

        class LdrCounter:
            def measure(self, source_text, individual):
                return [float(sum(1 for i in individual.instructions
                                  if i.name == "LDR"))]

            def measure_repeated(self, source_text, individual):
                return self.measure(source_text, individual)

        tiny_config.ga.generations = 10
        tiny_config.ga.population_size = 10
        recorder = OutputRecorder(tmp_path / "run")
        GeneticEngine(tiny_config, LdrCounter(), DefaultFitness(),
                      recorder=recorder).run()
        return recorder.results_dir

    def test_metrics_bounded(self, recorded_dir):
        from repro.analysis import diversity_series
        series = diversity_series(recorded_dir)
        assert len(series) == 10
        for stats in series:
            assert 0 < stats.unique_fraction <= 1.0
            assert 0.0 <= stats.mean_slot_entropy_bits <= \
                math.log2(3) + 1e-9   # 3 opcodes in the tiny library
            assert 0.0 < stats.dominant_opcode_share <= 1.0

    def test_selection_reduces_diversity(self, recorded_dir):
        """Converging on the LDR-only optimum must collapse entropy."""
        from repro.analysis import diversity_series
        series = diversity_series(recorded_dir)
        assert series[-1].mean_slot_entropy_bits < \
            series[0].mean_slot_entropy_bits
        assert series[-1].dominant_opcode == "LDR"
        assert series[-1].dominant_opcode_share > \
            series[0].dominant_opcode_share

    def test_empty_population_rejected(self):
        from repro.analysis import population_diversity
        from repro.core.population import Population
        with pytest.raises(ConfigError):
            population_diversity(Population([]))
