"""Tests for the static cost model and the surrogate search built on it.

Four layers, bottom-up: the :class:`DependenceSummary` condensation the
assembler warms on every program; the ``analyze_cost`` pass with its
SC3xx golden diagnostics (per microarchitecture preset) and the
soundness ordering ``simulated steady IPC ≤ exact ipc_upper ≤
static_score``; the ``gest analyze`` CLI and the screen's static-rank
mode; and the ``static_rank`` wrapper strategy, up to the acceptance
experiment — equal-or-better best fitness than the plain GA on the
comparison seed with ≥30% fewer simulated evaluations.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core import GAParameters, GeneticEngine, OutputRecorder, \
    RunConfig, make_rng
from repro.core.config import SearchParameters
from repro.core.errors import ConfigError
from repro.core.individual import random_individual
from repro.core.template import Template
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.cpu.microarch import microarch_for, preset_names
from repro.cpu.pipeline import PipelineSimulator
from repro.fitness import DefaultFitness
from repro.isa import ArmAssembler, X86Assembler, arm_library, arm_template
from repro.measurement import PowerMeasurement
from repro.search import STRATEGIES, make_strategy
from repro.staticcheck import (StaticScreen, analyze_cost,
                               render_cost_table, sort_diagnostics,
                               spearman, static_score)
from repro.staticcheck.costmodel import INTENT_PORTS

ARM_PRESETS = [name for name in preset_names()
               if microarch_for(name).isa == "arm"]
X86_PRESETS = [name for name in preset_names()
               if microarch_for(name).isa == "x86"]


def arm_program(body, init="mov x10, #0", name="cost.s"):
    return ArmAssembler().assemble(
        f"{init}\n.loop\n{body}\n.endloop\n", name=name)


def x86_program(body, init="mov rbp, 0", name="cost.s"):
    return X86Assembler().assemble(
        f"{init}\n.loop\n{body}\n.endloop\n", name=name)


def program_for(preset, serial_body=False):
    """A loop body in the preset's syntax: a serialising multiply chain
    or a wide independent mix."""
    arch = microarch_for(preset)
    if arch.isa == "arm":
        body = "mul x1, x1, x2\nmul x1, x1, x3" if serial_body \
            else "add x1, x2, x3\nadd x4, x5, x6\nfadd v0, v1, v2"
        return arm_program(body)
    # x86 two-operand ops read their destination, so a "parallel" body
    # must use moves (the write kills the cross-iteration read).
    body = "mulsd xmm1, xmm2\nmulsd xmm1, xmm3" if serial_body \
        else "mov rax, rbx\nmov rcx, rdx\nmov rsi, rdi"
    return x86_program(body)


def codes_of(diagnostics):
    return [d.code for d in diagnostics]


# ---------------------------------------------------------------------------
# DependenceSummary (the assembler-warmed condensation)
# ---------------------------------------------------------------------------

class TestDependenceSummary:
    def test_assembler_warms_the_summary(self):
        program = arm_program("add x1, x1, x2")
        assert program._dependence_summary is not None
        assert program.dependence_summary() is program._dependence_summary

    def test_vocabulary_counts_cover_the_loop(self):
        program = arm_program("add x1, x2, x3\nadd x4, x5, x6\n"
                              "mul x7, x8, x9")
        summary = program.dependence_summary()
        assert summary.loop_length == 3
        assert sum(summary.group_counts) == 3
        groups = dict(zip([key[0] for key in summary.group_keys],
                          summary.group_counts))
        assert groups["alu"] == 2
        assert groups["mul"] == 1

    def test_simple_recurrence_is_a_unit_cycle(self):
        # x1 feeds itself across the iteration boundary: one cycle, one
        # iteration long, one alu instruction on it.
        program = arm_program("add x1, x1, x2")
        summary = program.dependence_summary()
        assert summary.cycle_lengths == (1,)
        assert sum(summary.cycle_counts[0]) == 1

    def test_two_iteration_swap_cycle(self):
        # x1 and x2 exchange roles each iteration: one cycle spanning
        # two boundary registers.
        program = arm_program("add x5, x1, x10\nadd x1, x2, x10\n"
                              "add x2, x5, x10")
        summary = program.dependence_summary()
        assert 2 in summary.cycle_lengths

    def test_dead_write_kills_the_chain(self):
        # The immediate mov restarts x1 every iteration, so the read
        # below it never crosses the boundary: no cycle through x1.
        killed = arm_program("mov x1, #5\nadd x1, x1, x2")
        live = arm_program("add x1, x1, x2")
        assert killed.dependence_summary().cycle_lengths == ()
        assert live.dependence_summary().cycle_lengths == (1,)

    def test_independent_body_has_no_cycles(self):
        program = arm_program("add x1, x2, x3\nadd x4, x5, x6")
        assert program.dependence_summary().cycle_lengths == ()


# ---------------------------------------------------------------------------
# analyze_cost: bounds and the SC3xx golden diagnostics
# ---------------------------------------------------------------------------

class TestAnalyzeCost:
    def test_issue_bound_binds_wide_parallel_body(self):
        arch = microarch_for("cortex_a15")
        program = arm_program("add x1, x2, x3\nadd x4, x5, x6\n"
                              "add x7, x8, x9\nadd x11, x12, x13")
        cost = analyze_cost(program, arch).cost
        assert cost.issue_cycles == pytest.approx(4 / arch.issue_width)
        assert cost.ipc_upper <= arch.issue_width + 1e-9
        assert 0.0 < cost.ipc_lower <= cost.ipc_upper

    def test_chain_bound_binds_serial_body(self):
        arch = microarch_for("cortex_a15")
        program = arm_program("mul x1, x1, x2\nmul x1, x1, x3")
        cost = analyze_cost(program, arch).cost
        latency = arch.latency_of("mul", None)
        assert cost.chain_cycles == pytest.approx(2 * latency)
        assert cost.bound_cycles == pytest.approx(cost.chain_cycles)

    def test_power_band_ordered(self):
        arch = microarch_for("cortex_a15")
        program = arm_program("fmul v0, v1, v2\nadd x1, x2, x3")
        cost = analyze_cost(program, arch).cost
        assert cost.energy_pj_lower <= cost.energy_pj_upper
        assert cost.power_proxy_w_lower <= cost.power_proxy_w_upper
        assert cost.predicted_metric("power") == cost.power_proxy_w_upper
        assert cost.predicted_metric("ipc") == cost.ipc_upper

    def test_report_round_trips_to_dict(self):
        arch = microarch_for("xgene2")
        program = arm_program("add x1, x1, x2")
        cost = analyze_cost(program, arch).cost
        payload = json.dumps(cost.to_dict())
        assert json.loads(payload)["arch"] == "xgene2"

    def test_render_cost_table_mentions_bounds(self):
        arch = microarch_for("cortex_a15")
        report = analyze_cost(arm_program("mul x1, x1, x2"), arch)
        table = render_cost_table(report)
        assert "cycles/iteration bounds" in table
        assert "static IPC" in table

    @pytest.mark.parametrize("preset", preset_names())
    def test_sc301_serial_chain_flagged(self, preset):
        report = analyze_cost(program_for(preset, serial_body=True),
                              microarch_for(preset))
        assert "SC301" in codes_of(report.diagnostics)

    @pytest.mark.parametrize("preset", preset_names())
    def test_sc301_absent_for_parallel_body(self, preset):
        report = analyze_cost(program_for(preset), microarch_for(preset))
        assert "SC301" not in codes_of(report.diagnostics)

    @pytest.mark.parametrize("preset", preset_names())
    def test_sc302_idle_fp_contradicts_power_intent(self, preset):
        arch = microarch_for(preset)
        program = arm_program("add x1, x2, x3") if arch.isa == "arm" \
            else x86_program("add rax, rbx")
        report = analyze_cost(program, arch, intent="power")
        assert "SC302" in codes_of(report.diagnostics)

    @pytest.mark.parametrize("preset", preset_names())
    def test_sc302_absent_when_fp_is_stressed(self, preset):
        arch = microarch_for(preset)
        program = arm_program("fmul v0, v1, v2") if arch.isa == "arm" \
            else x86_program("mulsd xmm0, xmm1")
        report = analyze_cost(program, arch, intent="power")
        assert "SC302" not in codes_of(report.diagnostics)

    @pytest.mark.parametrize("preset", preset_names())
    def test_sc303_unreachable_ipc_target(self, preset):
        arch = microarch_for(preset)
        program = program_for(preset, serial_body=True)
        report = analyze_cost(program, arch, intent="ipc",
                              fitness_target=float(arch.issue_width))
        assert "SC303" in codes_of(report.diagnostics)
        reachable = analyze_cost(program, arch, intent="ipc",
                                 fitness_target=0.01)
        assert "SC303" not in codes_of(reachable.diagnostics)

    def test_sc30x_need_intent(self):
        arch = microarch_for("cortex_a15")
        report = analyze_cost(arm_program("add x1, x2, x3"), arch)
        codes = codes_of(report.diagnostics)
        assert "SC302" not in codes and "SC303" not in codes

    def test_intent_ports_cover_all_metrics(self):
        for metric in ("power", "energy", "temperature", "didt", "ipc"):
            assert INTENT_PORTS[metric]


# ---------------------------------------------------------------------------
# soundness ordering: simulator ≤ exact bound ≤ ranking score
# ---------------------------------------------------------------------------

def _random_arm_program(seed, size=16):
    library = arm_library()
    rng = make_rng(seed)
    individual = random_individual(library, size, rng, uid=seed)
    source = Template(arm_template()).instantiate(individual.render_body())
    return ArmAssembler().assemble(source, name=f"rand{seed}.s")


class TestSoundness:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           preset=st.sampled_from(ARM_PRESETS))
    def test_simulator_never_beats_static_ipc_bound(self, seed, preset):
        arch = microarch_for(preset)
        program = _random_arm_program(seed)
        ipc_upper = analyze_cost(program, arch).cost.ipc_upper
        score = static_score(program, arch, "ipc")
        # The ranking score relaxes the exact bound, never tightens it.
        assert score >= ipc_upper - 1e-9
        trace = PipelineSimulator(arch).execute(program, max_cycles=20_000)
        if not trace.period_cycles:
            return  # no steady kernel detected within the horizon
        offsets = trace.issue_offsets
        pre, per = trace.prefix_cycles, trace.period_cycles
        # The kernel-exact steady rate (instructions issued across one
        # detected period, over its length) is what the asymptotic
        # bound covers — finite-horizon trace.ipc can exceed it during
        # warm-up.  issue_offsets is CSR: offsets[c] counts issues
        # before cycle c.
        steady_ipc = float(offsets[pre + per] - offsets[pre]) / per
        assert steady_ipc <= ipc_upper + 1e-9
        assert steady_ipc <= score + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_score_relaxes_exact_bound_for_power_too(self, seed):
        arch = microarch_for("cortex_a15")
        program = _random_arm_program(seed)
        exact = analyze_cost(program, arch).cost.power_proxy_w_upper
        assert static_score(program, arch, "power") >= exact - 1e-9


# ---------------------------------------------------------------------------
# deterministic diagnostic ordering
# ---------------------------------------------------------------------------

class TestDeterministicOutput:
    def test_sort_is_stable_by_file_code_location(self):
        from repro.staticcheck import make_diagnostic
        diagnostics = [
            make_diagnostic("SC302", "b", file="z.s"),
            make_diagnostic("SC301", "a", file="z.s", line=9),
            make_diagnostic("SC301", "a", file="a.s", line=2),
            make_diagnostic("SC301", "a", file="z.s", line=1),
        ]
        ordered = sort_diagnostics(diagnostics)
        keys = [(d.location.file, d.code, d.location.line)
                for d in ordered]
        assert keys == sorted(keys, key=lambda k: (k[0], k[1], k[2] or 0))

    def test_analyze_json_is_deterministic(self, tmp_path, capsys):
        source = tmp_path / "virus.s"
        source.write_text("mov x10, #0\n.loop\nmul x1, x1, x2\n"
                          "mul x1, x1, x3\n.endloop\n")
        outputs = []
        for _ in range(2):
            main(["analyze", str(source), "--platform", "cortex_a15",
                  "--intent", "ipc", "--fitness-target", "3.0", "--json"])
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        payload = json.loads(outputs[0])
        assert [d["code"] for d in payload["diagnostics"]] == \
            sorted(d["code"] for d in payload["diagnostics"])


# ---------------------------------------------------------------------------
# CLI: gest analyze
# ---------------------------------------------------------------------------

class TestCliAnalyze:
    def test_human_readable_pressure_table(self, tmp_path, capsys):
        source = tmp_path / "virus.s"
        source.write_text("mov x10, #0\n.loop\nfmul v0, v1, v2\n"
                          "add x1, x2, x3\n.endloop\n")
        code = main(["analyze", str(source), "--platform", "cortex_a15"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cycles/iteration bounds" in out
        assert "fmul" in out

    def test_json_carries_cost_and_diagnostics(self, tmp_path, capsys):
        source = tmp_path / "virus.s"
        source.write_text("mov x10, #0\n.loop\nmul x1, x1, x2\n"
                          "mul x1, x1, x3\n.endloop\n")
        code = main(["analyze", str(source), "--platform", "cortex_a15",
                     "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0  # SC301 is a warning, not an error
        assert payload["cost"]["arch"] == "cortex_a15"
        assert payload["cost"]["bound_cycles"] > 0
        assert "SC301" in [d["code"] for d in payload["diagnostics"]]

    def test_unassemblable_source(self, tmp_path, capsys):
        source = tmp_path / "bad.s"
        source.write_text(".loop\nbogus x1\n.endloop\n")
        code = main(["analyze", str(source), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["assembly_error"]

    def test_missing_file(self, tmp_path, capsys):
        code = main(["analyze", str(tmp_path / "none.s")])
        assert code == 1


# ---------------------------------------------------------------------------
# screen: static-rank mode and configured cache geometry
# ---------------------------------------------------------------------------

class TestScreenStaticRankMode:
    def test_cost_attached_in_static_rank_mode(self):
        screen = StaticScreen(ArmAssembler(),
                              arch=microarch_for("cortex_a15"),
                              intent="power")
        report = screen.screen("mov x10, #0\n.loop\nadd x1, x2, x3\n"
                               ".endloop\n")
        assert report.passed
        assert report.cost is not None
        assert report.cost.arch == "cortex_a15"
        assert "SC302" in codes_of(report.diagnostics)

    def test_cost_absent_without_arch(self):
        screen = StaticScreen(ArmAssembler())
        report = screen.screen("mov x10, #0\n.loop\nadd x1, x2, x3\n"
                               ".endloop\n")
        assert report.passed and report.cost is None

    def test_for_machine_threads_configured_geometry(self):
        from repro.cpu.cache import CacheConfig, MemoryHierarchy
        hierarchy = MemoryHierarchy(
            l1_config=CacheConfig("L1", size_bytes=1024, line_bytes=64,
                                  ways=2, hit_latency=2,
                                  hit_energy_pj=0.0),
            l2_config=CacheConfig("L2", size_bytes=4096, line_bytes=64,
                                  ways=4, hit_latency=8,
                                  hit_energy_pj=120.0))
        machine = SimulatedMachine("cortex_a15", hierarchy=hierarchy)
        screen = StaticScreen.for_machine(machine)
        assert screen.l1_bytes == 1024
        assert screen.l2_bytes == 4096
        assert screen.line_bytes == 64
        # A footprint that fits the stock 32 KiB L1 but not this 1 KiB
        # one: SC104 must fire against the *configured* geometry.
        body = "\n".join(f"ldr x1, [x10, #{offset * 64}]"
                         for offset in range(32))
        report = screen.screen(f"mov x10, #0\n.loop\n{body}\n.endloop\n")
        assert "SC104" in codes_of(report.diagnostics)

    def test_for_machine_defaults_without_hierarchy(self):
        machine = SimulatedMachine("cortex_a15")
        screen = StaticScreen.for_machine(machine)
        assert screen.l1_bytes is None and screen.l2_bytes is None


# ---------------------------------------------------------------------------
# the static_rank wrapper strategy
# ---------------------------------------------------------------------------

def _strategy_config(tiny_library, tiny_template, generations=4, seed=3,
                     params=None):
    ga = GAParameters(population_size=8, individual_size=8,
                      mutation_rate=0.1, generations=generations,
                      tournament_size=3, seed=seed)
    config = RunConfig(ga=ga, library=tiny_library,
                       template_text=tiny_template.text)
    config.search = SearchParameters(strategy="static_rank",
                                     params=dict(params or {}))
    return config


def _measurement(seed=17):
    machine = SimulatedMachine("cortex_a15", seed=seed, sim_cycles=600)
    target = SimulatedTarget(machine)
    target.connect()
    return PowerMeasurement(target, {"samples": "2"})


class TestStaticRankStrategy:
    def test_registered(self):
        assert "static_rank" in STRATEGIES

    def test_rejects_self_wrap(self, tiny_config):
        strategy = make_strategy("static_rank", {"base": "static_rank"})
        with pytest.raises(ConfigError, match="cannot wrap itself"):
            strategy.bind(tiny_config, make_rng(0), lambda: 0)

    def test_rejects_bad_top_fraction(self):
        with pytest.raises(ConfigError, match="top_fraction"):
            make_strategy("static_rank", {"top_fraction": "0"})
        with pytest.raises(ConfigError, match="top_fraction"):
            make_strategy("static_rank", {"top_fraction": "1.5"})

    def test_platform_inferred_from_template_syntax(self, tiny_config):
        strategy = make_strategy("static_rank", None)
        strategy.bind(tiny_config, make_rng(0), iter(range(10_000)).__next__)
        assert strategy._arch.name == "cortex_a15"

    def test_prunes_and_records_surrogate(self, tiny_library,
                                          tiny_template):
        config = _strategy_config(tiny_library, tiny_template,
                                  params={"top_fraction": "0.5",
                                          "platform": "cortex_a15",
                                          "metric": "power"})
        engine = GeneticEngine(config, _measurement(), DefaultFitness())
        history = engine.run()
        gen0 = history.generations[0].surrogate
        assert gen0["simulated"] == 8 and gen0["pruned"] == 0
        later = history.generations[1:]
        assert all(g.surrogate["pruned"] > 0 for g in later)
        for g in later:
            fresh = g.surrogate["simulated"] + g.surrogate["pruned"]
            assert g.surrogate["simulated"] <= max(1, -(-fresh // 2))
        # measured counters shrink accordingly
        assert history.generations[1].measured == \
            history.generations[1].surrogate["simulated"]

    def test_placeholders_never_win(self, tiny_library, tiny_template):
        config = _strategy_config(tiny_library, tiny_template,
                                  params={"top_fraction": "0.34"})
        engine = GeneticEngine(config, _measurement(), DefaultFitness())
        history = engine.run()
        # The run's best individual always comes from a real simulation.
        assert history.best_individual.measurements
        for population_stats in history.generations:
            assert population_stats.best_fitness >= 0.0
        final = history.final_population
        pruned = [i for i in final if not i.measurements and
                  i.fitness is not None and i.fitness < 0.0]
        measured = [i for i in final if i.measurements]
        if pruned and measured:
            assert max(i.fitness for i in pruned) < \
                min(i.fitness for i in measured)

    def test_memo_replays_previously_simulated_genomes(
            self, tiny_library, tiny_template):
        config = _strategy_config(tiny_library, tiny_template,
                                  generations=5)
        engine = GeneticEngine(config, _measurement(), DefaultFitness())
        history = engine.run()
        # Elitist replacement re-proposes the incumbent every
        # generation; the memo must satisfy it without re-measuring.
        assert any(g.surrogate["replayed"] > 0
                   for g in history.generations[1:])

    def test_stats_jsonl_carries_spearman(self, tiny_library,
                                          tiny_template, tmp_path):
        config = _strategy_config(tiny_library, tiny_template)
        engine = GeneticEngine(config, _measurement(), DefaultFitness(),
                               recorder=OutputRecorder(tmp_path / "run"))
        engine.run()
        rows = [json.loads(line) for line in
                (tmp_path / "run" / "stats.jsonl").read_text()
                .strip().splitlines()]
        assert all("surrogate" in row for row in rows)
        assert all("spearman" in row["surrogate"] for row in rows)
        assert rows[0]["surrogate"]["spearman"] is not None

    def test_score_memoised_per_genome(self, tiny_library, tiny_template,
                                       monkeypatch):
        # Regression: replayed genomes (elitism clones) used to re-price
        # every generation; the score memo must hold each genome's
        # static_score to exactly one computation — including in the
        # no-prune top_fraction=1.0 case, which also skips the ranking.
        import repro.search.static_rank as static_rank_module
        calls = []
        real = static_rank_module.static_score

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(static_rank_module, "static_score", counting)
        config = _strategy_config(tiny_library, tiny_template,
                                  generations=5,
                                  params={"top_fraction": "1.0"})
        engine = GeneticEngine(config, _measurement(), DefaultFitness())
        history = engine.run()
        # the memo was actually exercised: clones were replayed
        assert any(g.surrogate["replayed"] > 0
                   for g in history.generations[1:])
        # nothing pruned in the no-prune case
        assert all(g.surrogate["pruned"] == 0
                   for g in history.generations)
        # one static_score call per distinct assemblable genome, ever
        strategy = engine.strategy
        priced = [s for s in strategy._score_memo.values()
                  if s != float("-inf")]
        assert len(calls) == len(priced)

    def test_state_round_trip(self, tiny_config):
        strategy = make_strategy("static_rank", None)
        strategy.bind(tiny_config, make_rng(0), iter(range(10_000)).__next__)
        strategy._memo[(("ADD", ("x1", "x2", "x3")),)] = ((1.0,), 1.0,
                                                          False, False)
        strategy._floor = -0.25
        state = strategy.state_dict()
        fresh = make_strategy("static_rank", None)
        fresh.bind(tiny_config, make_rng(0), iter(range(10_000)).__next__)
        fresh.load_state(state)
        assert fresh._memo == strategy._memo
        assert fresh._floor == -0.25


# ---------------------------------------------------------------------------
# acceptance: the surrogate matches the GA with far fewer simulations
# ---------------------------------------------------------------------------

class TestSearchComparisonAcceptance:
    def test_static_rank_matches_genetic_with_fewer_simulations(self):
        from repro.experiments.search_comparison import search_comparison
        result = search_comparison(
            platform="cortex_a15", metric="power",
            strategies=("genetic", "static_rank(genetic)"))
        plain = result.best_fitness("genetic")
        wrapped = result.best_fitness("static_rank(genetic)")
        assert wrapped >= plain - 1e-9
        full = result.simulated_evaluations("genetic")
        pruned = result.simulated_evaluations("static_rank(genetic)")
        assert pruned <= 0.7 * full
        history = result.histories["static_rank(genetic)"]
        assert all(g.surrogate is not None for g in history.generations)
        rhos = [g.surrogate["spearman"] for g in history.generations]
        assert all(rho is not None for rho in rhos)
        assert "simulated" in result.render()


# ---------------------------------------------------------------------------
# spearman helper
# ---------------------------------------------------------------------------

class TestSpearman:
    def test_perfect_and_inverse(self):
        assert spearman([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)
        assert spearman([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    def test_ties_average(self):
        assert spearman([1, 1, 2], [1, 1, 2]) == pytest.approx(1.0)
        # Tied ranks take their average position; a tie on one side only
        # still yields a defined, sub-perfect correlation.
        rho = spearman([1, 1, 2, 3], [4, 3, 2, 1])
        assert rho is not None and -1.0 < rho < 0.0

    def test_undefined_cases(self):
        assert spearman([], []) is None
        assert spearman([1.0], [2.0]) is None
        # n == 2 is uninformative: two distinct points always correlate
        # at exactly +/-1, so the figure carries no signal.
        assert spearman([1, 2], [2, 1]) is None
        assert spearman([1, 1, 1], [1, 2, 3]) is None
        assert spearman([1, 2, 3], [7, 7, 7]) is None
        assert spearman([1, 2], [1, 2, 3]) is None
