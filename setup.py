"""Setup shim for environments without the `wheel` package (offline).

`pip install -e .` falls back to this via --no-use-pep517; all real
metadata lives in pyproject.toml.
"""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["gest=repro.cli:main"]},
)
