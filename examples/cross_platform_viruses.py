#!/usr/bin/env python3
"""Cross-platform virus evaluation (paper Figures 5/6's second story).

Evolves power viruses for the big out-of-order Cortex-A15 and the
little in-order Cortex-A7, then cross-evaluates each virus on the other
CPU alongside the conventional workloads — demonstrating the paper's
finding that "Different CPU designs require different stress-tests to
maximize their CPU power consumption", visible both in the power
numbers and in the diverging instruction mixes (Table III).

Run with::

    python examples/cross_platform_viruses.py
"""

from repro.analysis.instruction_mix import (breakdown_table,
                                            mix_of_individual)
from repro.analysis.reports import bar_chart, figure_rows
from repro.experiments import GAScale, evolve_virus, make_machine
from repro.workloads import workload

#: Demo-sized search (the benchmarks run the full-scale version).
SCALE = GAScale(population_size=16, generations=18)


def main() -> None:
    print("evolving Cortex-A15 power virus...")
    a15_virus = evolve_virus("cortex_a15", "power", seed=7, scale=SCALE)
    print("evolving Cortex-A7 power virus...")
    a7_virus = evolve_virus("cortex_a7", "power", seed=9, scale=SCALE)

    for platform, native, cross in (
            ("cortex_a15", a15_virus, a7_virus),
            ("cortex_a7", a7_virus, a15_virus)):
        machine = make_machine(platform, seed=100)
        cores = machine.arch.core_count
        power = {
            f"GA_virus_{native.platform}": machine.run_source(
                native.source, cores=cores).avg_power_w,
            f"GA_virus_{cross.platform}": machine.run_source(
                cross.source, cores=cores).avg_power_w,
        }
        for name in ("coremark", "imdct", "fdct",
                     f"{platform.split('_')[1]}_manual_stress"):
            power[name] = machine.run_source(
                workload(name, "arm").source, cores=cores).avg_power_w

        rows = figure_rows(power, reference="coremark")
        print("\n" + bar_chart(
            rows, title=f"{platform}: power normalised to coremark",
            unit="x"))

    print("\n" + breakdown_table([
        ("Cortex-A15 virus", mix_of_individual(a15_virus.individual)),
        ("Cortex-A7 virus", mix_of_individual(a7_virus.individual)),
    ]))
    a15_mix = mix_of_individual(a15_virus.individual)
    a7_mix = mix_of_individual(a7_virus.individual)
    print(f"\nbranch usage: A7 virus {a7_mix['Branch']} vs "
          f"A15 virus {a15_mix['Branch']} — the little in-order core "
          "is stressed through its branch unit (paper Table III).")


if __name__ == "__main__":
    main()
