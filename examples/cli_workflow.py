#!/usr/bin/env python3
"""The file-driven GeST workflow: author the XML inputs, run the CLI,
post-process the recorded outputs (paper Sections III.B and III.D).

This example:

1. writes the three input files a GeST user authors by hand —
   ``config.xml`` (GA parameters + Figure-4 instruction/operand
   definitions), ``template.s`` (with the ``#loop_code`` marker) and
   ``measurement.xml``;
2. runs the search exactly as the command line would
   (``gest run config.xml --platform cortex_a7``);
3. replays the released post-processing on the recorded run: fittest
   fitness per generation and the fittest individual's instruction mix;
4. seeds a *second* search from the first run's final population.

Run with::

    python examples/cli_workflow.py
"""

import tempfile
from pathlib import Path

from repro.analysis.postprocess import run_statistics
from repro.cli import main as gest_main
from repro.core.config import parse_config_file
from repro.core.engine import GeneticEngine
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.fitness import DefaultFitness
from repro.isa import write_stock_config
from repro.measurement import PowerMeasurement


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="gest-cli-"))
    results = workdir / "results"

    # 1. Author the input files (the stock writer emits exactly what a
    #    user would hand-write; open them to see the Figure-4 format).
    config_path = write_stock_config(workdir, isa="arm", metric="power",
                                     population_size=12, generations=6,
                                     individual_size=30, seed=7)
    print(f"inputs written under {workdir}:")
    for name in ("config.xml", "template.s", "measurement.xml"):
        print(f"  {name}")
    print("\nfirst lines of config.xml:")
    for line in (workdir / "config.xml").read_text().splitlines()[:1]:
        print(f"  {line[:100]}...")

    # 2. Run the CLI against the simulated Cortex-A7.
    print("\n$ gest run config.xml --platform cortex_a7 --results ...")
    rc = gest_main(["run", str(config_path), "--platform", "cortex_a7",
                    "--results", str(results), "--quiet"])
    assert rc == 0, "CLI run failed"
    print(f"run recorded under {results}")

    # 3. Post-process the recorded populations (paper III.D).
    stats = run_statistics(results)
    print("\nfittest individual per generation:")
    for generation, fitness in enumerate(
            stats.best_fitness_per_generation):
        print(f"  gen {generation}: {fitness:.4f} W")
    print(f"overall best: {stats.overall_best_fitness:.4f} W "
          f"(generation {stats.overall_best_generation})")
    final_mix = {k: v for k, v in
                 stats.best_mix_per_generation[-1].items() if v}
    print(f"final fittest mix: {final_mix}")

    # 4. Seed a new search from the recorded final population.
    config = parse_config_file(config_path)
    config.seed_population_file = \
        results / "populations" / f"population_{stats.generations - 1}.bin"
    machine = SimulatedMachine("cortex_a7", seed=8)
    target = SimulatedTarget(machine)
    target.connect()
    engine = GeneticEngine(
        config, PowerMeasurement(target, config.measurement_params),
        DefaultFitness())
    seeded = engine.run(generations=4)
    print(f"\nseeded continuation: started at "
          f"{seeded.generations[0].best_fitness:.4f} W "
          f"(vs {stats.best_fitness_per_generation[0]:.4f} W from a "
          "random population), "
          f"finished at {seeded.generations[-1].best_fitness:.4f} W")


if __name__ == "__main__":
    main()
