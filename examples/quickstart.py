#!/usr/bin/env python3
"""Quickstart: evolve a small power virus for the simulated Cortex-A15.

Shows the full GeST workflow end to end with the public API:

1. pick a simulated platform and open an (ssh-like) target session;
2. describe the GA search — instruction catalog, template, parameters;
3. plug in a measurement procedure and fitness function;
4. run the search, record outputs, inspect the winner.

Run with::

    python examples/quickstart.py
"""

from repro.core import GAParameters, GeneticEngine, OutputRecorder, RunConfig
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.fitness import DefaultFitness
from repro.isa import arm_library, arm_template
from repro.measurement import PowerMeasurement


def main() -> None:
    # 1. The platform: a 2-core Cortex-A15-like chip on a bare-metal
    #    board (Table II row 1), driven through an ssh-like target.
    machine = SimulatedMachine("cortex_a15", seed=42)
    target = SimulatedTarget(machine, hostname="versatile-express")
    target.connect()

    # 2. The search: the stock ARM instruction catalog (Figure 4 style
    #    definitions for ~20 instructions) inside the stock template
    #    (checkerboard register init + #loop_code marker), with a small
    #    Table I parameterisation so this demo finishes in ~10 s.
    ga = GAParameters(population_size=16, individual_size=50,
                      mutation_rate=0.02, generations=12, seed=42)
    config = RunConfig(ga=ga, library=arm_library(),
                       template_text=arm_template())

    # 3. Measurement (energy-probe style average/peak power samples)
    #    and fitness (first measurement = average power).
    measurement = PowerMeasurement(target, {"duration": "5",
                                            "samples": "5", "cores": "1"})
    fitness = DefaultFitness()

    # 4. Run, recording outputs per the paper's conventions.
    recorder = OutputRecorder("results/quickstart")
    engine = GeneticEngine(config, measurement, fitness, recorder=recorder)
    history = engine.run()

    print("best average power per generation (W, single core):")
    for stats in history.generations:
        bar = "#" * int(stats.best_fitness * 30)
        print(f"  gen {stats.number:2d}  {stats.best_fitness:6.3f}  {bar}")

    best = history.best_individual
    print(f"\nwinner: uid={best.uid}, "
          f"avg power {best.measurements[0]:.3f} W, "
          f"peak {best.measurements[1]:.3f} W")
    print(f"instruction mix: {best.instruction_mix()}")
    print(f"unique opcodes: {best.unique_instruction_count()}")

    # Score the virus the way the paper reports results: one instance
    # per core.
    run = machine.run_source(engine.render_source(best),
                             cores=machine.arch.core_count)
    print(f"\nall-core ({machine.arch.core_count} instances) chip power: "
          f"{run.avg_power_w:.3f} W at IPC {run.ipc:.2f}")
    print(f"outputs recorded under {recorder.results_dir}/")
    print("\nevolved loop body:\n")
    print(best.render_body())


if __name__ == "__main__":
    main()
