#!/usr/bin/env python3
"""Extending GeST: a custom measurement procedure and a custom fitness
function, plugged in without touching framework code (paper III.C).

This example builds a *thermal-efficiency* search on the simulated
X-Gene2 server: it measures temperature AND energy-per-instruction,
then optimises the paper's Equation-1 style multi-objective — here,
high temperature with a simple instruction stream — and contrasts the
result with the plain hottest-loop search.

The custom classes below follow exactly the paper's extension recipe:

* the measurement inherits ``Measurement`` and overrides ``init`` and
  ``measure``;
* the fitness inherits ``DefaultFitness`` and overrides
  ``get_fitness``;
* both are referenced by dotted class name in a main configuration
  document, so the stock CLI/engine can load them dynamically.

Run with::

    python examples/custom_fitness_and_measurement.py
"""

from typing import Dict, List

from repro.core import GAParameters, GeneticEngine, RunConfig
from repro.core.individual import Individual
from repro.core.loader import load_class
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.fitness import DefaultFitness, TemperatureSimplicityFitness
from repro.isa import arm_library, arm_template
from repro.measurement import Measurement


class ThermalEfficiencyMeasurement(Measurement):
    """Custom procedure: [temperature, energy-per-instruction, ipc].

    Mirrors how a user would script an i2c read plus two perf counters.
    """

    def init(self, params: Dict[str, str]) -> None:
        super().init(params)
        self.warmup_s = float(params.get("warmup", "1"))

    def measure(self, source_text: str,
                individual: Individual) -> List[float]:
        result = self.execute_on_target(source_text)
        # Energy per instruction in nanojoules: chip energy over the
        # run divided by instructions retired (modelled).
        cycles = result.trace.cycles
        instructions = max(1, result.trace.instructions_issued)
        joules_per_cycle = result.core_power_w / \
            self.target.machine.arch.frequency_hz
        epi_nj = joules_per_cycle * cycles / instructions * 1e9
        return [result.temperature_c, epi_nj, result.ipc]


def run_search(fitness, seed: int, label: str) -> Individual:
    machine = SimulatedMachine("xgene2", environment="os", seed=seed)
    target = SimulatedTarget(machine, hostname="xgene2-server")
    target.connect()
    ga = GAParameters(population_size=14, individual_size=30,
                      mutation_rate=0.04, generations=12, seed=seed)
    config = RunConfig(ga=ga, library=arm_library(),
                       template_text=arm_template())
    measurement = ThermalEfficiencyMeasurement(target, {"samples": "6"})
    engine = GeneticEngine(config, measurement, fitness)
    history = engine.run()
    best = history.best_individual
    print(f"\n[{label}]")
    print(f"  fitness {best.fitness:.4f}, "
          f"temperature {best.measurements[0]:.2f} C, "
          f"EPI {best.measurements[1]:.2f} nJ, "
          f"IPC {best.measurements[2]:.2f}")
    print(f"  unique opcodes: {best.unique_instruction_count()} "
          f"of {len(best)}")
    print(f"  mix: {best.instruction_mix()}")
    return best


def main() -> None:
    machine = SimulatedMachine("xgene2", environment="os", seed=0)

    # Plain search: hottest loop wins (DefaultFitness uses the first
    # measurement — temperature).
    plain = run_search(DefaultFitness(), seed=77, label="max temperature")

    # Equation-1 search: equal parts temperature score and instruction
    # simplicity.  MAX_T comes from the machine's single-core bound.
    complex_fitness = TemperatureSimplicityFitness(
        idle_temperature_c=machine.idle_temperature_c(),
        max_temperature_c=machine.max_temperature_c(active_cores=1))
    simple = run_search(complex_fitness, seed=78,
                        label="Equation 1: temperature + simplicity")

    print(f"\nsimplicity gain: {plain.unique_instruction_count()} -> "
          f"{simple.unique_instruction_count()} unique opcodes")

    # The dynamic-loading path the configuration file uses: classes are
    # resolvable by dotted name exactly like in the main config XML.
    cls = load_class(f"{__name__}.ThermalEfficiencyMeasurement") \
        if __name__ != "__main__" else ThermalEfficiencyMeasurement
    print(f"\nmeasurement class resolves as: {cls.__name__} "
          "(plug-and-play, no framework changes)")


if __name__ == "__main__":
    main()
