#!/usr/bin/env python3
"""Voltage-noise virus generation and V_MIN characterisation
(paper Section VI) on the simulated AMD Athlon X4.

Demonstrates:

* the dI/dt loop-length rule of thumb
  (``IPC x f_clk / f_resonance``, with IPC = max theoretical / 2);
* the oscilloscope measurement plugin (peak-to-peak die voltage);
* comparing the evolved virus against Prime95 and the AMD stability
  test proxies;
* sweeping V_MIN in 12.5 mV steps to show the virus is the strictest
  stability test.

Run with::

    python examples/didt_stability_test.py
"""

from repro.analysis.vmin import characterize_vmin, vmin_table
from repro.core import GAParameters, GeneticEngine, RunConfig
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.fitness import DefaultFitness
from repro.isa import x86_library, x86_template
from repro.measurement import OscilloscopeMeasurement
from repro.workloads import workload


def main() -> None:
    machine = SimulatedMachine("athlon_x4", environment="os", seed=31)

    # The rule of thumb: one loop iteration per PDN resonance period.
    f_res = machine.pdn.resonance_hz
    loop_length = machine.pdn.resonant_loop_length(
        machine.arch.max_ipc / 2)
    print(f"PDN resonance: {f_res / 1e6:.1f} MHz "
          f"(Q = {machine.arch.pdn.q_factor:.1f}) -> "
          f"loop length {loop_length} instructions")

    target = SimulatedTarget(machine, hostname="athlon-bench")
    target.connect()
    ga = GAParameters(population_size=16, individual_size=loop_length,
                      mutation_rate=max(0.02, round(1.0 / loop_length, 4)),
                      generations=15, seed=31)
    config = RunConfig(ga=ga, library=x86_library(),
                       template_text=x86_template())
    engine = GeneticEngine(
        config, OscilloscopeMeasurement(target, {"samples": "3"}),
        DefaultFitness())
    history = engine.run()
    virus_source = engine.render_source(history.best_individual)
    print(f"\nevolved dI/dt virus: "
          f"{history.best_individual.fitness * 1000:.1f} mV pk-pk "
          f"(single core)")

    # Figure 8 style comparison, one instance per core.
    contenders = {"didt_virus": virus_source}
    for name in ("prime95", "amd_stability_test", "linpack", "coremark"):
        contenders[name] = workload(name, "x86").source

    print("\nmax-min voltage noise, 4 cores (Figure 8 style):")
    programs = {}
    for name, source in contenders.items():
        programs[name] = machine.compile(source, name=name)
        run = machine.run(programs[name], cores=4)
        print(f"  {name:20s} {run.peak_to_peak_v * 1000:7.1f} mV   "
              f"(avg power {run.avg_power_w:6.1f} W)")

    # Figure 9 style V_MIN sweep: 12.5mV steps at the nominal 3.1 GHz.
    print("\nV_MIN characterisation (Figure 9 style):")
    results = [characterize_vmin(machine, program, cores=4, name=name)
               for name, program in programs.items()]
    print(vmin_table(results))
    strictest = max(results, key=lambda r: r.vmin_v)
    print(f"\nstrictest stability test: {strictest.workload} "
          f"(V_MIN = {strictest.vmin_v:.4f} V)")


if __name__ == "__main__":
    main()
