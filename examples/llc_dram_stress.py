#!/usr/bin/env python3
"""LLC/DRAM stress generation — the paper's Section VII extension.

"with GeST is possible to stress LLC or DRAM by instructing the
framework to optimize towards cache-misses and providing in the input
file load/store instruction definitions with various strides, base
memory registers and various min-max immediate values."

This example attaches a two-level cache hierarchy to the simulated
server, gives the GA strided load/store definitions (including a
base-advance "stride" instruction), optimises LLC misses per
kilo-instruction, and compares the evolved walker against a cache
resident loop and a hand-written streaming loop.

Run with::

    python examples/llc_dram_stress.py
"""

from collections import Counter

from repro.cpu import MemoryHierarchy
from repro.experiments import GAScale, llc_stress_experiment


def main() -> None:
    hierarchy = MemoryHierarchy()
    print("memory hierarchy under stress:")
    print(f"  L1D {hierarchy.l1_config.size_bytes // 1024} KiB "
          f"{hierarchy.l1_config.ways}-way, "
          f"{hierarchy.l1_config.hit_latency}-cycle hits")
    print(f"  L2  {hierarchy.l2_config.size_bytes // 1024} KiB "
          f"{hierarchy.l2_config.ways}-way, "
          f"+{hierarchy.l2_config.hit_latency} cycles, "
          f"{hierarchy.l2_config.hit_energy_pj:.0f} pJ per hit")
    print(f"  DRAM +{hierarchy.dram_latency} cycles, "
          f"{hierarchy.dram_energy_pj:.0f} pJ per access")

    print("\nevolving an LLC/DRAM stress virus "
          "(fitness = LLC misses per kilo-instruction)...")
    result = llc_stress_experiment(
        scale=GAScale(population_size=16, generations=20,
                      individual_size=30))

    print("\n" + result.render())

    opcodes = Counter(result.virus.opcode_sequence())
    print(f"\nevolved loop opcodes: {dict(opcodes)}")
    strides = [int(i.values[1]) for i in result.virus.instructions
               if i.name == "ADVANCE"]
    if strides:
        print(f"base-advance strides the GA chose: {sorted(strides)} "
              "bytes per iteration")
        print("(>= 64-byte strides defeat every cache line; large "
              "strides sweep the 16 MiB region past the LLC)")

    virus_run = result.runs["llcVirus"]
    print(f"\nvirus cache behaviour: "
          f"L1 miss rate {virus_run.cache['l1_miss_rate'] * 100:.1f}%, "
          f"L2 miss rate {virus_run.cache['l2_miss_rate'] * 100:.1f}%, "
          f"{virus_run.cache['llc_misses']:.0f} DRAM accesses in the "
          "simulated window")


if __name__ == "__main__":
    main()
