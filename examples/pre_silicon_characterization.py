#!/usr/bin/env python3
"""Pre-silicon stress-test generation (paper Section VIII).

"While this paper demonstrates GeST on real hardware, there is no
fundamental restriction that prevents the framework from being used for
pre-silicon stress-test generation in conjunction with accurate power,
temperature, performance and voltage-noise models/simulators."

This example plays design-house: a *hypothetical* next-generation core
is described as a custom :class:`MicroArch` (wider issue, faster clock,
beefier SIMD than the Cortex-A15 it derives from), and the framework
characterises it before "tape-out":

1. evolve a power virus against the model → worst-case power estimate;
2. evolve a dI/dt virus tuned to the planned package's PDN resonance;
3. sweep a frequency/voltage shmoo with both viruses to size the
   voltage guardband the part will need.

Run with::

    python examples/pre_silicon_characterization.py
"""

from repro.analysis import (current_spectrum, frequency_shmoo,
                            resonance_band_ratio, shmoo_table)
from repro.core import GAParameters, GeneticEngine, RunConfig
from repro.cpu import PDNParams, SimulatedMachine, SimulatedTarget
from repro.cpu.microarch import microarch_for
from repro.fitness import DefaultFitness
from repro.isa import arm_library, arm_template
from repro.measurement import OscilloscopeMeasurement, PowerMeasurement


def next_gen_core():
    """The hypothetical design: an A15 derivative, 4-wide at 1.8 GHz
    with a hotter SIMD unit and a board whose PDN resonates at ~90 MHz."""
    a15 = microarch_for("cortex_a15")
    epi = dict(a15.epi_pj)
    epi.update(vadd=210.0, vmul=230.0, fma=280.0)   # wider vectors
    return a15.with_overrides(
        name="nextgen_a1x",
        frequency_hz=1.8e9,
        issue_width=4,
        window_size=56,
        ports={"int": 2, "fp": 2, "mem": 2, "br": 1},
        epi_pj=epi,
        static_power_w=0.45,
        vdd_nominal=0.95,
        max_ipc=4.0,
        pdn=PDNParams(r_ohm=2.2e-3, l_h=8e-12, c_f=3.9e-7),
    )


def evolve(machine, measurement_cls, individual_size, seed, generations=14):
    target = SimulatedTarget(machine, hostname="rtl-power-model")
    target.connect()
    ga = GAParameters(population_size=14, individual_size=individual_size,
                      mutation_rate=max(0.02, round(1.0 / individual_size, 4)),
                      generations=generations, seed=seed)
    config = RunConfig(ga=ga, library=arm_library(),
                       template_text=arm_template())
    engine = GeneticEngine(config,
                           measurement_cls(target, {"samples": "3"}),
                           DefaultFitness())
    history = engine.run()
    return engine, history.best_individual


def main() -> None:
    arch = next_gen_core()
    machine = SimulatedMachine(arch, seed=17)
    print(f"pre-silicon model: {arch.name}, "
          f"{arch.issue_width}-wide OOO at "
          f"{arch.frequency_hz / 1e9:.1f} GHz, "
          f"PDN resonance {machine.pdn.resonance_hz / 1e6:.0f} MHz")

    # 1. Worst-case power for the thermal/power-delivery budget.
    print("\n[1] evolving the power virus against the model...")
    power_engine, power_virus = evolve(machine, PowerMeasurement, 50,
                                       seed=17)
    run = machine.run_source(power_engine.render_source(power_virus),
                             cores=arch.core_count)
    print(f"    worst-case chip power estimate: {run.avg_power_w:.2f} W "
          f"at IPC {run.ipc:.2f}")
    print(f"    virus mix: {power_virus.instruction_mix()}")

    # 2. dI/dt virus tuned to the planned package.
    loop_length = machine.pdn.resonant_loop_length(arch.max_ipc / 2)
    print(f"\n[2] evolving the dI/dt virus "
          f"(rule-of-thumb loop: {loop_length} instructions)...")
    didt_engine, didt_virus = evolve(machine, OscilloscopeMeasurement,
                                     loop_length, seed=18,
                                     generations=22)
    didt_source = didt_engine.render_source(didt_virus)
    program = machine.compile(didt_source, name="didt")
    trace = machine.pipeline.execute(program, max_cycles=machine.sim_cycles)
    spectrum = current_spectrum(
        machine.power.current_trace_a(program, trace), arch.frequency_hz)
    band, fraction = resonance_band_ratio(spectrum,
                                          machine.pdn.resonance_hz)
    noise = machine.run(program, cores=arch.core_count)
    print(f"    worst-case noise: {noise.peak_to_peak_v * 1000:.1f} mV "
          f"pk-pk; {fraction * 100:.0f}% of AC current energy at the "
          "resonance")

    # 3. Guardband sizing via shmoo.
    print("\n[3] frequency/voltage shmoo with both viruses:")
    rows = [
        frequency_shmoo(machine, didt_source, "didtVirus",
                        frequency_fractions=(0.9, 1.0, 1.1)),
        frequency_shmoo(machine,
                        power_engine.render_source(power_virus),
                        "powerVirus", frequency_fractions=(0.9, 1.0, 1.1)),
    ]
    print(shmoo_table(rows))
    worst = rows[0].vmin_at(machine.nominal_frequency_hz)
    print(f"\n    recommended minimum operating voltage at "
          f"{arch.frequency_hz / 1e9:.1f} GHz: {worst:.3f} V "
          f"({(arch.vdd_nominal - worst) * 1000:.0f} mV guardband under "
          f"the {arch.vdd_nominal:.2f} V nominal)")


if __name__ == "__main__":
    main()
