#!/usr/bin/env python3
"""Instruction-level vs abstract-workload GA (paper Section VII).

The paper's related-work argument in one runnable script: both
framework styles search for a Cortex-A15 power virus with the same
measurement, fitness and evaluation budget.

* The **abstract model** (MAMPO/SYMPO family) evolves a parameter
  vector — instruction-mix weights, register-dependency distance, FMA
  fraction, memory stride — and *generates* code stochastically from
  it.  Small design space, fast convergence, but opcodes, operand
  values and instruction order stay out of the GA's control.
* The **instruction-level** search (GeST's choice) evolves the source
  code directly.

Run with::

    python examples/abstract_vs_instruction_level.py
"""

from repro.abstractmodel import AbstractEngine
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.experiments import GAScale, evolve_virus
from repro.fitness import DefaultFitness
from repro.isa import arm_template
from repro.measurement import PowerMeasurement

SCALE = GAScale(population_size=16, generations=18)


def main() -> None:
    print(f"budget: {SCALE.population_size} x {SCALE.generations} "
          "evaluations for each framework style\n")

    print("[instruction-level] evolving source code directly...")
    instruction_level = evolve_virus("cortex_a15", "power", seed=61,
                                     scale=SCALE, use_cache=False)
    print(f"  best: {instruction_level.fitness:.3f} W (single core)")
    print(f"  mix:  {instruction_level.individual.instruction_mix()}")

    print("\n[abstract model] evolving a workload-parameter vector...")
    machine = SimulatedMachine("cortex_a15", seed=61)
    target = SimulatedTarget(machine)
    target.connect()
    abstract = AbstractEngine(
        PowerMeasurement(target, {"samples": str(SCALE.samples)}),
        DefaultFitness(), arm_template(),
        loop_size=SCALE.individual_size,
        population_size=SCALE.population_size,
        generations=SCALE.generations, seed=61)
    best = abstract.run()
    print(f"  best: {best.fitness:.3f} W (single core)")
    print(f"  winning profile: {best.profile.describe()}")

    series = abstract.best_fitness_series()
    print(f"\nabstract convergence: first generation already at "
          f"{series[0] / series[-1] * 100:.0f}% of its final value "
          "(the reduced design space the paper concedes as its "
          "advantage)")

    advantage = instruction_level.fitness / best.fitness
    print(f"\ninstruction-level advantage at equal budget: "
          f"x{advantage:.3f}")
    print("the paper's Section VII argument: opcodes, operand values "
          "and instruction order\nare out of the abstract GA's "
          "control — and they are exactly where the last\nfew percent "
          "of stress live.")


if __name__ == "__main__":
    main()
