"""Pre-measurement static screening (the engine's correctness gate).

Measurement is the expensive part of a GeST search — the paper's runs
spend hours driving real hardware, and this reproduction's cycle-level
:mod:`repro.cpu` model is the analogous hot path.  The screen runs the
cheap static passes on each rendered individual *before* it enters that
path:

1. assemble the source (the toolchain front-end, no pipeline);
2. run the dataflow pass (:mod:`repro.staticcheck.dataflow`);
3. fail the individual when assembly fails or any diagnostic reaches
   ``fail_severity`` (default: error).

Failed individuals take the same zero-fitness route as
:class:`~repro.core.errors.AssemblyError` compile failures, but without
ever paying for pipeline simulation; the engine records them as screen
failures in :class:`~repro.core.engine.GenerationStats`.

Determinism note: the staged evaluation layer
(:mod:`repro.evaluation`) pins a per-source noise substream before
every measurement, so a screened individual skipping its measurement
can never shift the noise another individual observes — screening is
order-free by construction, under any executor backend and with the
evaluation cache on or off.  (Historically the machine drew noise from
one sequential stream, and only the default error-only policy kept
screened and unscreened runs bit-identical; that equivalence no longer
depends on the policy, so raising ``fail_severity`` to ``WARNING`` is
now purely a strictness choice.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.errors import AssemblyError
from ..isa.assembler import BaseAssembler
from .costmodel import StaticCostReport, analyze_cost
from .dataflow import (DEFAULT_LINE_BYTES, StaticProfile, analyze_program)
from .diagnostics import Diagnostic, Severity, make_diagnostic

__all__ = ["ScreenReport", "ScreenStats", "StaticScreen"]


@dataclass
class ScreenReport:
    """Verdict of one screening."""

    passed: bool
    #: True when the source failed to assemble (the classic compile
    #: failure); False for dataflow-diagnostic rejections.
    assembly_failed: bool
    diagnostics: List[Diagnostic] = field(default_factory=list)
    profile: Optional[StaticProfile] = None
    #: Steady-state kernel of the loop, when the screen was built with
    #: a period probe and the program assembled: warm-up cycles before
    #: the kernel and the kernel length in cycles.  None when probing
    #: is off, assembly failed, or no recurrence was found.
    detected_prefix: Optional[int] = None
    detected_period: Optional[int] = None
    #: Static cost report, when the screen runs in static-rank mode
    #: (built with ``arch=...``) and the program assembled.  The
    #: ``static_rank`` strategy reads ``cost.predicted_metric(...)``
    #: to order candidates before simulation.
    cost: Optional[StaticCostReport] = None


@dataclass
class ScreenStats:
    """Cumulative counters, reported per generation by the engine."""

    screened: int = 0
    passed: int = 0
    assembly_failures: int = 0
    dataflow_failures: int = 0

    @property
    def failures(self) -> int:
        return self.assembly_failures + self.dataflow_failures


class StaticScreen:
    """The engine-facing screening object.

    Parameters
    ----------
    assembler:
        The SimISA front-end matching the target platform — screening
        with the wrong syntax would reject every individual.
    fail_severity:
        Minimum dataflow-diagnostic severity that fails an individual.
    l1_bytes / l2_bytes:
        Cache geometry for the footprint bound; None disables the
        corresponding check.
    period_probe:
        Optional object with a ``detect_period(program, max_cycles)``
        method (duck-typed to
        :meth:`repro.cpu.pipeline.PipelineSimulator.detect_period`).
        When given, programs that pass the static checks are also
        probed for their steady-state kernel — cheap, because the probe
        stops at the first scheduler-state recurrence — and the result
        is reported on :class:`ScreenReport` for analysis tooling.
    probe_cycles:
        Cycle budget handed to the probe (default 1600, the stock
        ``sim_cycles``).
    arch:
        Optional :class:`~repro.cpu.microarch.MicroArch`.  When given,
        the screen runs in *static-rank mode*: programs that assemble
        also get the static cost model pass and the report lands on
        :attr:`ScreenReport.cost` — the strategy-facing fitness proxy.
    intent:
        Fitness metric name forwarded to the cost model so SC302/SC303
        can fire during screening (static-rank mode only).
    """

    def __init__(self, assembler: BaseAssembler,
                 fail_severity: Severity = Severity.ERROR,
                 l1_bytes: Optional[int] = None,
                 l2_bytes: Optional[int] = None,
                 line_bytes: int = DEFAULT_LINE_BYTES,
                 period_probe=None,
                 probe_cycles: int = 1600,
                 arch=None,
                 intent: Optional[str] = None) -> None:
        self.assembler = assembler
        self.fail_severity = fail_severity
        self.l1_bytes = l1_bytes
        self.l2_bytes = l2_bytes
        self.line_bytes = line_bytes
        self.period_probe = period_probe
        self.probe_cycles = probe_cycles
        self.arch = arch
        self.intent = intent
        self.stats = ScreenStats()

    @classmethod
    def for_machine(cls, machine, **kwargs) -> "StaticScreen":
        """A screen whose syntax *and* cache geometry match ``machine``.

        Threads the machine's configured hierarchy through to the
        footprint bound, so SC104 compares against the cache sizes the
        simulation actually uses instead of the stock defaults.
        Additional keyword arguments pass through to the constructor.
        """
        hierarchy = getattr(machine, "hierarchy", None)
        if hierarchy is not None:
            kwargs.setdefault("l1_bytes", hierarchy.l1_config.size_bytes)
            kwargs.setdefault("l2_bytes", hierarchy.l2_config.size_bytes)
            kwargs.setdefault("line_bytes", hierarchy.l1_config.line_bytes)
        return cls(machine.assembler, **kwargs)

    def screen(self, source_text: str, individual=None) -> ScreenReport:
        """Screen one rendered source; never raises on bad programs."""
        self.stats.screened += 1
        name = f"uid{individual.uid}.s" if individual is not None \
            else "screened.s"
        try:
            program = self.assembler.assemble(source_text, name=name)
        except AssemblyError as exc:
            self.stats.assembly_failures += 1
            diagnostic = make_diagnostic(
                "SC201", f"source does not assemble: {exc}",
                severity=Severity.ERROR, file=name)
            return ScreenReport(passed=False, assembly_failed=True,
                                diagnostics=[diagnostic])

        if self.arch is not None:
            cost_report = analyze_cost(
                program, self.arch, l1_bytes=self.l1_bytes,
                l2_bytes=self.l2_bytes, line_bytes=self.line_bytes,
                source_file=name, intent=self.intent)
            diagnostics = cost_report.diagnostics
            profile: StaticProfile = cost_report.cost
            cost: Optional[StaticCostReport] = cost_report.cost
        else:
            report = analyze_program(program, l1_bytes=self.l1_bytes,
                                     l2_bytes=self.l2_bytes,
                                     line_bytes=self.line_bytes,
                                     source_file=name)
            diagnostics = report.diagnostics
            profile = report.profile
            cost = None
        failing = [d for d in diagnostics
                   if d.severity >= self.fail_severity]
        if failing:
            self.stats.dataflow_failures += 1
            return ScreenReport(passed=False, assembly_failed=False,
                                diagnostics=diagnostics,
                                profile=profile, cost=cost)
        self.stats.passed += 1
        prefix = period = None
        if self.period_probe is not None:
            kernel = self.period_probe.detect_period(
                program, max_cycles=self.probe_cycles)
            if kernel is not None:
                prefix, period = kernel
        return ScreenReport(passed=True, assembly_failed=False,
                            diagnostics=diagnostics,
                            profile=profile,
                            detected_prefix=prefix,
                            detected_period=period,
                            cost=cost)
