"""Static analysis: diagnostics before (and instead of) measurement.

Five passes share one :class:`~repro.staticcheck.diagnostics.Diagnostic`
model:

* :mod:`~repro.staticcheck.dataflow` — def-use analysis over the
  assembled :class:`~repro.isa.model.Program` IR, producing a
  :class:`~repro.staticcheck.dataflow.StaticProfile` of derived
  features (dependency-chain depth, instruction-mix vector, static
  memory-footprint bounds) plus ``SC1xx`` diagnostics;
* :mod:`~repro.staticcheck.configlint` — eager validation of main
  configurations and instruction libraries (``SC2xx``), so a malformed
  operand range fails at load time instead of wasting a search;
* :mod:`~repro.staticcheck.costmodel` — an llvm-mca-style static cost
  model pricing the loop body against a microarchitecture's latency,
  port and energy tables (``SC3xx``), yielding sound IPC bounds and
  the static fitness proxy the ``static_rank`` search strategy uses;
* :mod:`~repro.staticcheck.screen` — the engine's pre-measurement
  gate: statically invalid individuals never enter the pipeline model;
* :mod:`~repro.staticcheck.selflint` — an AST determinism lint over
  the framework's own sources (``SC4xx``), guarding the
  checkpoint/resume bit-identical-replay promise.

CLI entry points: ``gest lint <config>``, ``gest check <source.s>``,
``gest selfcheck`` — each with ``--json`` for CI.
"""

from .configlint import (detect_syntax, lint_config, lint_config_file,
                         lint_library, lint_search, lint_template)
from .costmodel import (CostModelReport, InstructionCost, INTENT_PORTS,
                        StaticCostReport, analyze_cost, render_cost_table,
                        spearman, static_score)
from .dataflow import (DataflowReport, StaticProfile, analyze_program,
                       DEFAULT_L1_BYTES, DEFAULT_L2_BYTES,
                       DEFAULT_LINE_BYTES)
from .diagnostics import (CODES, Diagnostic, Location, Severity,
                          diagnostics_to_json, format_diagnostics,
                          has_errors, make_diagnostic, sort_diagnostics,
                          summarise, worst_severity)
from .screen import ScreenReport, ScreenStats, StaticScreen
from .selflint import (lint_file, lint_source, lint_tree,
                       repro_package_root)

__all__ = [
    "detect_syntax", "lint_config", "lint_config_file", "lint_library",
    "lint_search", "lint_template",
    "CostModelReport", "InstructionCost", "INTENT_PORTS",
    "StaticCostReport", "analyze_cost", "render_cost_table", "spearman",
    "static_score",
    "DataflowReport", "StaticProfile", "analyze_program",
    "DEFAULT_L1_BYTES", "DEFAULT_L2_BYTES", "DEFAULT_LINE_BYTES",
    "CODES", "Diagnostic", "Location", "Severity",
    "diagnostics_to_json", "format_diagnostics", "has_errors",
    "make_diagnostic", "sort_diagnostics", "summarise", "worst_severity",
    "ScreenReport", "ScreenStats", "StaticScreen",
    "lint_file", "lint_source", "lint_tree", "repro_package_root",
]
