"""Config & instruction-library lint (paper Section III.B.1 inputs).

A malformed operand range in the instruction library is the worst kind
of configuration bug: the GA happily samples it, every rendered
individual fails to compile, and the search spends generations in a
zero-fitness black hole before anyone notices.  This pass catches that
class of problem *before* a search starts, by assembling every
instruction definition's forms against the same assembler the simulated
target uses:

* ``SC202`` — an operand slot none of whose values assemble (the
  "impossible operand range");
* ``SC203`` — an operand slot where only some values assemble (part of
  the search space is a guaranteed compile failure);
* ``SC204`` — an instruction definition with no assemblable form at
  all (unreachable by the generator in any useful sense);
* ``SC205`` — an operand definition no instruction references;
* ``SC206``/``SC207``/``SC208`` — template problems: a missing,
  duplicated or misplaced ``#loop_code`` marker, a template that does
  not assemble, a template without a measured ``.loop`` section;
* ``SC209``/``SC210`` — GA operator / search-strategy names that do
  not resolve against the :mod:`repro.search` registries, with a
  nearest-match suggestion (these mostly matter for programmatically
  built configs — file parsing validates eagerly and reports SC201);
* ``SC201`` — the configuration file does not parse at all (unknown
  operand classes and undefined operand references surface here with
  the parser's own actionable message).

The lint is assembler-ground-truth driven: a value "can assemble" iff
the SimISA front-end accepts the rendered line, so the pass can never
disagree with the measurement path.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..core.config import RunConfig, parse_config_file
from ..core.errors import AssemblyError, ConfigError, GestError
from ..core.instruction import InstructionLibrary, InstructionSpec
from ..core.template import LOOP_MARKER
from ..isa import assembler_for
from ..isa.assembler import BaseAssembler
from .diagnostics import Diagnostic, make_diagnostic

__all__ = ["lint_config", "lint_config_file", "lint_library",
           "lint_template", "lint_search", "detect_syntax"]

#: Cap on per-slot value enumeration; beyond this the slot is sampled
#: (ends + evenly spaced interior points) and the diagnostic says so.
MAX_VALUES_PER_SLOT = 64

_SYNTAXES = ("arm", "x86")


def _assembles(assembler: BaseAssembler, text: str) -> Optional[str]:
    """None when ``text`` assembles as a bare program, else the error."""
    try:
        assembler.assemble(text)
    except AssemblyError as exc:
        return str(exc)
    return None


def detect_syntax(template_text: str) -> Optional[str]:
    """Which SimISA syntax the template assembles under, if any.

    Tries each front-end on the template with a ``nop`` loop body
    (``nop`` is valid in both syntaxes).  Returns ``"arm"``, ``"x86"``
    or None when neither accepts the template.
    """
    probe_lines = [("nop" if line.strip() == LOOP_MARKER else line)
                   for line in template_text.splitlines()]
    probe = "\n".join(probe_lines) + "\n"
    for syntax in _SYNTAXES:
        if _assembles(assembler_for(syntax), probe) is None:
            return syntax
    return None


def lint_template(template_text: str,
                  file: Optional[str] = None) -> List[Diagnostic]:
    """Template checks: marker count and placement, assemblability."""
    diagnostics: List[Diagnostic] = []
    marker_lines = [number for number, line
                    in enumerate(template_text.splitlines(), start=1)
                    if line.strip() == LOOP_MARKER]
    if not marker_lines:
        diagnostics.append(make_diagnostic(
            "SC206", f"template has no {LOOP_MARKER!r} marker line; "
            "generated loop bodies have nowhere to go", file=file))
    elif len(marker_lines) > 1:
        diagnostics.append(make_diagnostic(
            "SC206", f"template contains {len(marker_lines)} "
            f"{LOOP_MARKER!r} markers (lines "
            f"{', '.join(map(str, marker_lines))}); exactly one is "
            "required", file=file))

    # Marker must sit inside the measured .loop/.endloop section —
    # otherwise the generated body runs once, outside the measurement.
    has_loop_directive = any(
        line.strip().split()[0].lower() == ".loop"
        for line in template_text.splitlines() if line.strip())
    if not has_loop_directive:
        diagnostics.append(make_diagnostic(
            "SC208", "template declares no .loop/.endloop section; the "
            "whole program is treated as the measured loop", file=file))
    elif marker_lines:
        section = "init"
        for number, line in enumerate(template_text.splitlines(), start=1):
            stripped = line.strip()
            if not stripped:
                continue
            directive = stripped.split()[0].lower()
            if directive == ".loop":
                section = "loop"
            elif directive == ".endloop":
                section = "done"
            elif stripped == LOOP_MARKER and section != "loop":
                where = ("before the .loop directive" if section == "init"
                         else "after .endloop")
                diagnostics.append(make_diagnostic(
                    "SC206", f"{LOOP_MARKER!r} marker on line {number} is "
                    f"{where}: generated instructions would execute "
                    "outside the measured loop", file=file, line=number))

    if detect_syntax(template_text) is None and len(marker_lines) == 1:
        diagnostics.append(make_diagnostic(
            "SC207", "template does not assemble under any supported "
            "SimISA syntax (tried: " + ", ".join(_SYNTAXES) + ")",
            file=file))
    return diagnostics


def _slot_values(library: InstructionLibrary, operand_id: str
                 ) -> Tuple[List[str], bool]:
    """(values to test, sampled?) for one operand slot."""
    values = list(library.operand(operand_id).choices())
    if len(values) <= MAX_VALUES_PER_SLOT:
        return values, False
    step = max(1, len(values) // (MAX_VALUES_PER_SLOT - 2))
    sampled = [values[0], values[-1]] + values[1:-1:step]
    return sampled[:MAX_VALUES_PER_SLOT], True


def _error_names_value(error: str, value: str) -> bool:
    """True when the assembler's message quotes ``value`` itself.

    SimISA front-ends report the offending token as ``{token!r}``; the
    quoted check avoids matching the full-line echo (``(in 'add x1,
    x99')``) or a longer register name (``x1`` inside ``'x10'``).
    """
    return f"'{value.strip().lower()}'" in error.lower()


def _lint_instruction(library: InstructionLibrary, spec: InstructionSpec,
                      assembler: BaseAssembler,
                      file: Optional[str]) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    baseline = [library.operand(oid).choices()[0]
                for oid in spec.operand_ids]
    baseline_error = _assembles(assembler, spec.render(baseline))

    # Per slot: vary that slot's value with the other slots at baseline.
    # A failure counts against the slot only when the assembler's error
    # names the varied value — otherwise a *different* bad slot in the
    # baseline is to blame and attributing here would mislead.
    any_pass = baseline_error is None
    slot_results = []  # (operand_id, blamed, tested, sampled, example)
    for slot, operand_id in enumerate(spec.operand_ids):
        values, sampled = _slot_values(library, operand_id)
        blamed = 0
        example: Optional[Tuple[str, str]] = None
        for value in values:
            trial = list(baseline)
            trial[slot] = value
            error = _assembles(assembler, spec.render(trial))
            if error is None:
                any_pass = True
            elif _error_names_value(error, value):
                blamed += 1
                if example is None:
                    example = (value, error)
        slot_results.append((operand_id, blamed, len(values), sampled,
                             example))

    for operand_id, blamed, tested, sampled, example in slot_results:
        if blamed == 0:
            continue
        value, error = example
        qualifier = " (sampled)" if sampled else ""
        if blamed == tested:
            diagnostics.append(make_diagnostic(
                "SC202", f"no value of operand {operand_id!r} assembles "
                f"in this slot{qualifier}: e.g. value {value!r} gives "
                f"{error!r}", file=file, instruction=spec.name,
                operand=operand_id))
        else:
            diagnostics.append(make_diagnostic(
                "SC203", f"{blamed} of {tested} values of operand "
                f"{operand_id!r} fail to assemble{qualifier} (e.g. "
                f"{value!r}: {error!r}); that share of the search space "
                "is a guaranteed compile failure", file=file,
                instruction=spec.name, operand=operand_id))

    if not any_pass and not diagnostics:
        diagnostics.append(make_diagnostic(
            "SC204", f"no form of this instruction assembles "
            f"(e.g. {spec.render(baseline)!r}: {baseline_error}); the "
            "generator can only produce compile failures from it",
            file=file, instruction=spec.name))
    return diagnostics


def lint_library(library: InstructionLibrary,
                 assembler: Optional[BaseAssembler],
                 file: Optional[str] = None) -> List[Diagnostic]:
    """Lint every instruction/operand definition of ``library``.

    When ``assembler`` is None (template syntax undetectable) only the
    assembler-independent checks run.
    """
    diagnostics: List[Diagnostic] = []

    referenced = {oid for spec in library.instructions.values()
                  for oid in spec.operand_ids}
    for operand_id in library.operands:
        if operand_id not in referenced:
            diagnostics.append(make_diagnostic(
                "SC205", "no instruction references this operand "
                "definition; it is dead configuration", file=file,
                operand=operand_id))

    if assembler is not None:
        for spec in library.instructions.values():
            diagnostics.extend(
                _lint_instruction(library, spec, assembler, file))
    return diagnostics


def lint_search(config: RunConfig,
                file: Optional[str] = None) -> List[Diagnostic]:
    """Check operator and strategy names against the search registries.

    The registries are the single source of truth — the same tables
    ``GAParameters.validate`` and the CLI ``--strategy`` choices read —
    and every diagnostic carries the registry's full choice list plus a
    nearest-match suggestion (``did you mean 'tournament'?``).
    """
    # Lazy imports: repro.search imports core submodules, and this
    # module is reachable from repro.core.config's validators.
    from ..search import STRATEGIES, make_strategy
    from ..search.operators import (CROSSOVER_OPERATORS,
                                    MUTATION_OPERATORS,
                                    REPLACEMENT_POLICIES,
                                    SELECTION_OPERATORS)

    diagnostics: List[Diagnostic] = []
    ga = config.ga
    if ga.parent_selection_method not in SELECTION_OPERATORS:
        diagnostics.append(make_diagnostic(
            "SC209",
            SELECTION_OPERATORS.unknown_message(ga.parent_selection_method),
            file=file))
    if ga.crossover_operator not in CROSSOVER_OPERATORS:
        diagnostics.append(make_diagnostic(
            "SC209",
            CROSSOVER_OPERATORS.unknown_message(ga.crossover_operator),
            file=file))

    search = config.search
    if search.strategy not in STRATEGIES:
        diagnostics.append(make_diagnostic(
            "SC210", STRATEGIES.unknown_message(search.strategy),
            file=file))
        return diagnostics

    # Strategy parameters that name an operator resolve against the
    # operator registries; everything else (unknown parameter names,
    # unparsable values) is caught by instantiating the strategy.
    operator_params = {
        "selection": SELECTION_OPERATORS,
        "crossover": CROSSOVER_OPERATORS,
        "mutation": MUTATION_OPERATORS,
        "replacement": REPLACEMENT_POLICIES,
    }
    for key, value in search.params.items():
        registry = operator_params.get(key)
        if registry is not None and value is not None and \
                str(value).strip() and str(value).strip() not in registry:
            diagnostics.append(make_diagnostic(
                "SC209",
                registry.unknown_message(str(value).strip(),
                                         label=f"{key} operator"),
                file=file))
    try:
        make_strategy(search.strategy, search.params)
    except ConfigError as exc:
        diagnostics.append(make_diagnostic("SC210", str(exc), file=file))
    return diagnostics


def lint_config(config: RunConfig,
                file: Optional[str] = None) -> List[Diagnostic]:
    """Lint a parsed configuration: template, instruction library, and
    search-layer names."""
    diagnostics = lint_template(config.template_text, file=file)
    syntax = detect_syntax(config.template_text)
    assembler = assembler_for(syntax) if syntax is not None else None
    diagnostics.extend(lint_library(config.library, assembler, file=file))
    diagnostics.extend(lint_search(config, file=file))
    return diagnostics


def lint_config_file(path: Union[str, Path]) -> List[Diagnostic]:
    """Parse and lint a main-configuration file.

    Parse failures become ``SC201`` diagnostics instead of exceptions,
    so the CLI reports them uniformly.  An error that carries its own
    ``diagnostic_code`` (an unknown search strategy rejected at parse
    time is ``SC210``, an unknown GA operator ``SC209``) keeps that
    code.
    """
    path = Path(path)
    try:
        config = parse_config_file(path)
    except (ConfigError, GestError) as exc:
        code = getattr(exc, "diagnostic_code", None) or "SC201"
        return [make_diagnostic(code, str(exc), file=str(path))]
    except OSError as exc:
        # e.g. the path is a directory, or unreadable
        return [make_diagnostic("SC201", f"cannot read configuration: "
                                f"{exc}", file=str(path))]
    return lint_config(config, file=str(path))
