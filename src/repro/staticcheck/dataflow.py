"""Program dataflow analysis over the assembled :class:`Program` IR.

The pass walks an assembled program once and derives, without touching
the pipeline model:

* register def-use facts — reads of never-initialised registers
  (``SC101``) and dead writes (``SC102``);
* the critical dependency-chain depth of one loop iteration;
* the per-class instruction-mix vector;
* static memory-footprint bounds, checked against the configured cache
  geometry (``SC104``).

The derived features are exposed as a :class:`StaticProfile` so the
analysis layer and fitness predictors can consume them; the engine's
pre-measurement screen (:mod:`repro.staticcheck.screen`) uses the
diagnostics as its gate.

The footprint bound is *static*: it assumes base registers keep their
init-section values.  Loops that advance a base register (the cache
stress catalog's ``ADVANCE``) touch at least this much memory, so the
bound is a lower bound — the diagnostic message says so.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..isa.model import DecodedInstruction, InstrClass, Program
from .diagnostics import Diagnostic, make_diagnostic

__all__ = ["StaticProfile", "DataflowReport", "analyze_program",
           "DEFAULT_LINE_BYTES", "DEFAULT_L1_BYTES", "DEFAULT_L2_BYTES"]

#: Geometry defaults matching :mod:`repro.cpu.cache`'s stock hierarchy.
DEFAULT_LINE_BYTES = 64
DEFAULT_L1_BYTES = 32 * 1024
DEFAULT_L2_BYTES = 256 * 1024


@dataclass(frozen=True)
class StaticProfile:
    """Derived static features of one program.

    ``mix_vector`` maps :class:`InstrClass` values (``"int_short"``,
    ``"mem_load"``, ...) to the fraction of the loop body in that class
    — every class appears, absent ones at 0.0, so vectors from
    different programs align for distance computations and predictors.
    """

    loop_length: int
    #: Longest register-dependency chain within one loop iteration, in
    #: instructions.  1 for fully parallel bodies, ``loop_length`` for
    #: fully serialised ones.
    chain_depth: int
    mix_vector: Dict[str, float]
    #: Distinct cache lines statically reachable by the loop's memory
    #: instructions (lower bound; see module docstring).
    footprint_bytes: int
    distinct_lines: int
    uninitialised_reads: int
    dead_writes: int
    memory_instructions: int

    def as_features(self) -> Dict[str, float]:
        """A flat name → float mapping for fitness predictors."""
        features = {f"mix_{name}": value
                    for name, value in sorted(self.mix_vector.items())}
        features.update({
            "loop_length": float(self.loop_length),
            "chain_depth": float(self.chain_depth),
            "chain_depth_ratio": (self.chain_depth / self.loop_length
                                  if self.loop_length else 0.0),
            "footprint_bytes": float(self.footprint_bytes),
            "dead_write_ratio": (self.dead_writes / self.loop_length
                                 if self.loop_length else 0.0),
        })
        return features


@dataclass
class DataflowReport:
    """The output of one dataflow pass: features plus findings."""

    program_name: str
    profile: StaticProfile
    diagnostics: List[Diagnostic] = field(default_factory=list)


def _initialised_registers(program: Program) -> Set[str]:
    """Registers holding a defined value when the loop first runs."""
    defined = set(program.register_values)
    for instr in program.init:
        defined.update(instr.writes)
    return defined


def _chain_depth(loop: List[DecodedInstruction]) -> int:
    """Critical path length of one iteration's register-dependency DAG."""
    depth_of_writer: Dict[str, int] = {}
    deepest = 0
    for instr in loop:
        depth = 1 + max((depth_of_writer.get(reg, 0)
                         for reg in instr.reads), default=0)
        # A load's base register dependency is a real dataflow edge.
        if instr.mem_base is not None:
            depth = max(depth, 1 + depth_of_writer.get(instr.mem_base, 0))
        for reg in instr.writes:
            depth_of_writer[reg] = depth
        deepest = max(deepest, depth)
    return deepest


def _dead_writes(loop: List[DecodedInstruction]) -> List[int]:
    """Indices of loop instructions whose register writes are all dead.

    A write at position ``i`` is dead when, scanning forward cyclically
    (the loop repeats, so position wraps), a write to the same register
    is reached before any read of it.  Instructions read their sources
    before writing their destination, so reads at each position are
    checked first.
    """
    length = len(loop)
    dead: List[int] = []
    for i, instr in enumerate(loop):
        if not instr.writes:
            continue
        live = False
        for reg in instr.writes:
            for step in range(1, length + 1):
                other = loop[(i + step) % length]
                reads = set(other.reads)
                if other.mem_base is not None:
                    reads.add(other.mem_base)
                if reg in reads:
                    live = True
                    break
                if reg in other.writes:
                    break
            if live:
                break
        if not live:
            dead.append(i)
    return dead


def _mix_vector(program: Program) -> Dict[str, float]:
    counts = program.class_counts()
    total = len(program.loop)
    return {cls.value: (counts.get(cls, 0) / total if total else 0.0)
            for cls in InstrClass}


def _footprint(program: Program,
               line_bytes: int) -> Tuple[int, int, int]:
    """(distinct lines, footprint bytes, memory instruction count)."""
    lines: Set[Tuple[str, int]] = set()
    mem_count = 0
    for instr in program.loop:
        if not instr.iclass.is_memory:
            continue
        mem_count += 1
        if instr.mem_base is None:
            continue
        base_value = program.register_values.get(instr.mem_base)
        if base_value is None:
            # Base register value unknown statically: bucket per base
            # register so distinct offsets still count distinct lines.
            key, address = instr.mem_base, instr.mem_offset
        else:
            key, address = "", base_value + instr.mem_offset
        lines.add((key, address // line_bytes))
    return len(lines), len(lines) * line_bytes, mem_count


def analyze_program(program: Program,
                    l1_bytes: Optional[int] = DEFAULT_L1_BYTES,
                    l2_bytes: Optional[int] = DEFAULT_L2_BYTES,
                    line_bytes: int = DEFAULT_LINE_BYTES,
                    source_file: Optional[str] = None) -> DataflowReport:
    """Run the dataflow pass; never raises on program content."""
    diagnostics: List[Diagnostic] = []
    loop = program.loop

    if not loop:
        diagnostics.append(make_diagnostic(
            "SC103", "the measured loop body contains no instructions — "
            "every measurement of this program is meaningless",
            file=source_file))

    # -- uninitialised reads ---------------------------------------------
    defined = _initialised_registers(program)
    written_in_loop: Set[str] = set()
    for instr in loop:
        written_in_loop.update(instr.writes)
    seen_so_far = set(defined)
    uninitialised = 0
    reported: Set[str] = set()
    for index, instr in enumerate(loop):
        reads = list(instr.reads)
        if instr.mem_base is not None:
            reads.append(instr.mem_base)
        for reg in reads:
            if reg in seen_so_far or reg in reported:
                continue
            uninitialised += 1
            reported.add(reg)
            carried = (" (defined later in the loop, so only the first "
                       "iteration reads an undefined value)"
                       if reg in written_in_loop else "")
            diagnostics.append(make_diagnostic(
                "SC101",
                f"register {reg!r} is read before any initialisation"
                f"{carried}",
                file=source_file, index=index, line=instr.source_line))
        seen_so_far.update(instr.writes)

    # -- dead writes ------------------------------------------------------
    dead = _dead_writes(loop)
    for index in dead:
        instr = loop[index]
        diagnostics.append(make_diagnostic(
            "SC102",
            f"{instr.opcode!r} writes {', '.join(instr.writes)} but the "
            "value is overwritten before any read",
            file=source_file, index=index, line=instr.source_line))

    # -- chain depth / serialisation --------------------------------------
    chain_depth = _chain_depth(loop)
    if loop and len(loop) > 1 and chain_depth == len(loop):
        diagnostics.append(make_diagnostic(
            "SC105",
            f"all {len(loop)} loop instructions form one serial "
            "dependency chain; the program cannot exploit any "
            "instruction-level parallelism",
            file=source_file))

    # -- footprint vs cache geometry --------------------------------------
    distinct_lines, footprint_bytes, mem_count = _footprint(program,
                                                           line_bytes)
    if l1_bytes is not None and footprint_bytes > l1_bytes:
        level = "L1"
        limit = l1_bytes
        if l2_bytes is not None and footprint_bytes > l2_bytes:
            level = "L2"
            limit = l2_bytes
        diagnostics.append(make_diagnostic(
            "SC104",
            f"static memory footprint is at least {footprint_bytes} bytes "
            f"({distinct_lines} lines), exceeding the {limit}-byte {level} "
            "— memory instructions will miss, which suits cache-stress "
            "searches but caps power/IPC viruses",
            file=source_file))

    profile = StaticProfile(
        loop_length=len(loop),
        chain_depth=chain_depth,
        mix_vector=_mix_vector(program),
        footprint_bytes=footprint_bytes,
        distinct_lines=distinct_lines,
        uninitialised_reads=uninitialised,
        dead_writes=len(dead),
        memory_instructions=mem_count,
    )
    return DataflowReport(program_name=program.name, profile=profile,
                          diagnostics=diagnostics)
