"""Static cost model: llvm-mca-style throughput bounds over a Program.

Where :mod:`~repro.staticcheck.dataflow` counts instructions, this pass
prices them.  Using the *real* per-group latencies, port widths and
energies of a :class:`~repro.cpu.microarch.MicroArch`, it derives — per
loop iteration and without running the pipeline model — three classic
lower bounds on cycles per iteration:

* the **issue bound** ``loop_length / issue_width``;
* per-**port pressure** bounds ``sum(initiation intervals routed to the
  port) / port count``;
* the **loop-carried dependency chain** rate ``λ``: the maximum cycle
  ratio of the register-dependence graph, i.e. the cycles one iteration
  must take once the recurrence with the highest latency-per-iteration
  dominates.

The largest of the three is a *sound* lower bound on steady-state
cycles per iteration under the pipeline model of
:mod:`repro.cpu.pipeline` (resources and the issue width only ever slow
the dependence-feasible schedule down), so ``ipc_upper = loop_length /
bound`` is a sound static IPC upper bound — the property tests assert
the simulator never beats it.  An energy/power proxy band follows from
the per-group EPIs and the toggle-activity envelope of
:mod:`repro.cpu.power`.

``λ`` is the maximum cycle ratio of the register-dependence graph,
computed exactly in two cheap steps: one sequential pass over the body
condenses all intra-iteration paths into a max-plus transfer matrix
between the *loop-carried* registers (those read before their first
in-body write), and Karp's maximum-cycle-mean algorithm on that small
matrix yields the ratio.  Cycle quantities stay exact rationals of the
integer latency tables; the whole pass costs microseconds — the
``static_rank`` strategy budget (and the BENCH_staticrank gate) demand
it stay ≥100x under one simulated evaluation.

Findings surface as ``SC3xx`` diagnostics: SC301 (a serialising
loop-carried chain dominates the machine's width), SC302 (a unit class
the config's stress intent needs is statically idle) and SC303 (the
static bound already rules out the configured fitness target).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cpu.microarch import MicroArch
from ..cpu.power import _EPI_FLOOR, _EPI_SPAN
from ..isa.model import Program
from .dataflow import (DEFAULT_L1_BYTES, DEFAULT_L2_BYTES,
                       DEFAULT_LINE_BYTES, StaticProfile, analyze_program)
from .diagnostics import Diagnostic, make_diagnostic

__all__ = ["InstructionCost", "StaticCostReport", "CostModelReport",
           "analyze_cost", "static_score", "render_cost_table",
           "spearman", "INTENT_PORTS"]

#: Stress intent → port groups the virus is expected to hammer.  Used
#: by SC302: a config hunting a power virus on a machine whose FP ports
#: never see an instruction is structurally unable to reach its goal.
INTENT_PORTS: Dict[str, Tuple[str, ...]] = {
    "power": ("fp",),
    "energy": ("fp",),
    "temperature": ("fp",),
    "didt": ("fp",),
    "ipc": ("int", "fp", "mem"),
}

_NEG = float("-inf")


@dataclass(frozen=True)
class InstructionCost:
    """Per-loop-slot pricing facts, one row of the pressure table."""

    index: int
    opcode: str
    group: str
    port: str
    latency: int
    interval: int
    energy_pj: float
    #: On the longest latency-weighted dependence path of one iteration.
    critical: bool


@dataclass(frozen=True)
class StaticCostReport(StaticProfile):
    """A :class:`StaticProfile` priced against one microarchitecture.

    All cycle quantities are per loop iteration.  ``bound_cycles`` is
    the max of the issue, port and chain bounds — a sound lower bound
    on steady-state cycles per iteration — and ``ipc_upper`` its dual.
    ``ipc_lower`` and the energy/power band are estimates for ranking,
    not verified bounds.
    """

    arch: str
    issue_width: int
    #: Loop-carried dependence rate λ (cycles/iteration), exact.
    chain_cycles: float
    issue_cycles: float
    port_cycles: Dict[str, float]
    bound_cycles: float
    #: Fully-serialised worst case: the sum of all latencies.
    serial_cycles: float
    ipc_upper: float
    ipc_lower: float
    energy_pj_lower: float
    energy_pj_upper: float
    power_proxy_w_lower: float
    power_proxy_w_upper: float
    instruction_costs: Tuple[InstructionCost, ...]

    def predicted_metric(self, metric: str) -> float:
        """The static stand-in for one simulated fitness metric.

        Used by the ``static_rank`` strategy to order candidates; only
        the ordering matters, so proxies need the right monotony, not
        the right units.
        """
        if metric == "ipc":
            return self.ipc_upper
        return self.power_proxy_w_upper

    def as_features(self) -> Dict[str, float]:
        features = super().as_features()
        features.update({
            "chain_cycles": self.chain_cycles,
            "issue_cycles": self.issue_cycles,
            "bound_cycles": self.bound_cycles,
            "ipc_upper": self.ipc_upper,
            "ipc_lower": self.ipc_lower,
            "energy_pj_upper": self.energy_pj_upper,
            "power_proxy_w_upper": self.power_proxy_w_upper,
        })
        features.update({f"port_{name}_cycles": value
                         for name, value in sorted(self.port_cycles.items())})
        return features

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form for ``gest analyze --json``."""
        return {
            "arch": self.arch,
            "loop_length": self.loop_length,
            "issue_width": self.issue_width,
            "chain_cycles": self.chain_cycles,
            "issue_cycles": self.issue_cycles,
            "port_cycles": dict(sorted(self.port_cycles.items())),
            "bound_cycles": self.bound_cycles,
            "serial_cycles": self.serial_cycles,
            "ipc_upper": self.ipc_upper,
            "ipc_lower": self.ipc_lower,
            "energy_pj_lower": self.energy_pj_lower,
            "energy_pj_upper": self.energy_pj_upper,
            "power_proxy_w_lower": self.power_proxy_w_lower,
            "power_proxy_w_upper": self.power_proxy_w_upper,
            "footprint_bytes": self.footprint_bytes,
            "mix_vector": dict(sorted(self.mix_vector.items())),
            "instructions": [
                {"index": c.index, "opcode": c.opcode, "group": c.group,
                 "port": c.port, "latency": c.latency,
                 "interval": c.interval, "energy_pj": c.energy_pj,
                 "critical": c.critical}
                for c in self.instruction_costs],
        }


@dataclass
class CostModelReport:
    """Output of one cost-model pass: priced profile plus findings.

    ``diagnostics`` merges the dataflow pass's ``SC1xx`` findings with
    the cost model's own ``SC3xx`` ones, in stable sorted order.
    """

    program_name: str
    cost: StaticCostReport
    diagnostics: List[Diagnostic] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Loop-carried chain rate (maximum cycle ratio of the dependence graph)
# ---------------------------------------------------------------------------

def _slot_facts(program: Program, arch: MicroArch
                ) -> List[Tuple[Tuple[str, ...], Tuple[str, ...], int, str,
                                int, float]]:
    """(reads, writes, latency, port, interval, epi) per loop slot.

    Dependence edges come from ``instr.reads`` only, mirroring the
    scheduler: the pipeline resolves RAW hazards through its
    ``last_writer`` map over ``slot.reads`` and treats the memory base
    register as an address input, not an issue-time dependence.
    """
    facts = []
    pricing: Dict[tuple, tuple] = {}
    for instr in program.loop:
        group = instr.group or instr.iclass.value
        iclass = instr.iclass
        key = (group, iclass)
        priced = pricing.get(key)
        if priced is None:
            priced = (arch.latency_of(group, iclass),
                      arch.port_group_of(group, iclass),
                      arch.initiation_interval(group, iclass),
                      arch.epi_of(group, iclass))
            pricing[key] = priced
        facts.append((instr.reads, instr.writes) + priced)
    return facts


def _chain_rate(deps: Sequence[Tuple[Tuple[str, ...], Tuple[str, ...],
                                     int]]) -> float:
    """λ: asymptotic cycles per iteration forced by loop-carried
    register dependences alone — the maximum cycle ratio of the
    dependence graph, exactly.  ``deps`` is one ``(reads, writes,
    latency)`` triple per loop slot, in body order.

    One sequential body pass condenses every intra-iteration
    dependence path into a sparse max-plus transfer matrix between the
    *boundary* registers (those read before their first in-body write,
    consuming the previous iteration's value): a register read with no
    prior write is seeded lazily; writes shadow the seed exactly as
    the scheduler's last-writer map would.  Dependence edges come from
    ``instr.reads`` only, mirroring the scheduler (a memory base
    register is an address input, not an issue-time dependence).

    Every loop-carried cycle crosses the iteration boundary only
    through boundary registers, so cycles of the transfer matrix (one
    matrix edge = one iteration) are exactly the dependence cycles and
    λ is the matrix's maximum cycle *mean*: Karp's algorithm, run per
    strongly connected component — GA bodies leave a handful of short
    recurrences, so the components are tiny and the whole pass stays
    microseconds-cheap.
    """
    # Body pass.  A row maps seed index → worst completion delay from
    # that boundary read (absent entry = unreachable, max-plus -inf);
    # rows stay tiny because a register's value descends from very few
    # boundary values.  A dead write leaves the shared empty row,
    # which must *not* re-seed on a later read (the value no longer
    # crosses the boundary) — hence the None/empty distinction.
    rows: Dict[str, Dict[int, int]] = {}
    seeded: List[str] = []
    empty: Dict[int, int] = {}
    for reads, writes, latency in deps:
        acc: Optional[Dict[int, int]] = None
        for reg in reads:
            row = rows.get(reg)
            if row is None:
                row = {len(seeded): 0}
                seeded.append(reg)
                rows[reg] = row
            elif not row:
                continue
            if acc is None:
                acc = row
            elif acc is not row:
                merged = dict(acc)
                for seed, value in row.items():
                    if value > merged.get(seed, -1):
                        merged[seed] = value
                acc = merged
        if not writes:
            continue
        out = empty if acc is None \
            else {seed: value + latency for seed, value in acc.items()}
        for reg in writes:
            rows[reg] = out
    if not seeded:
        return 0.0

    # Sparse edges src-seed → dst-seed: boundary read of seed src to
    # the final (loop-carried) write of dst.  A seed never written in
    # the body keeps its identity row — a weight-0 self-edge that can
    # never dominate a cycle mean (real latencies are ≥ 1) — dropped
    # here so it cannot inflate a component.
    adjacency: Dict[int, List[Tuple[int, int]]] = {}
    for dst, reg in enumerate(seeded):
        for src, weight in rows[reg].items():
            if weight or src != dst:
                adjacency.setdefault(src, []).append((dst, weight))
    if not adjacency:
        return 0.0
    return _max_cycle_mean(adjacency)


def _max_cycle_mean(adjacency: Dict[int, List[Tuple[int, int]]]) -> float:
    """Maximum cycle mean of a sparse weighted digraph: Tarjan SCC
    decomposition, then Karp per non-trivial component."""
    order: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack = set()
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0
    for root in adjacency:
        if root in order:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, edge_pos = work[-1]
            if edge_pos == 0:
                order[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            targets = adjacency.get(node, ())
            descended = False
            while edge_pos < len(targets):
                succ = targets[edge_pos][0]
                edge_pos += 1
                if succ not in order:
                    work[-1] = (node, edge_pos)
                    work.append((succ, 0))
                    descended = True
                    break
                if succ in on_stack and order[succ] < low[node]:
                    low[node] = order[succ]
            if descended:
                continue
            work.pop()
            if low[node] == order[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                # Only components that can hold a cycle matter: two or
                # more nodes, or a single node with a self-loop.
                if len(component) > 1 or any(
                        dst == node for dst, _w in adjacency.get(node, ())):
                    components.append(component)
            elif work and low[node] < low[work[-1][0]]:
                low[work[-1][0]] = low[node]

    rate = 0.0
    for component in components:
        if len(component) == 1:
            node = component[0]
            weight = max(w for dst, w in adjacency[node] if dst == node)
            if weight > rate:
                rate = weight
            continue
        remap = {node: slot for slot, node in enumerate(component)}
        count = len(component)
        edges = [(slot, remap[dst], weight)
                 for node, slot in remap.items()
                 for dst, weight in adjacency.get(node, ())
                 if dst in remap]
        # Karp: D[k][v] = best k-edge path ending at v (super-source).
        best: List[float] = [0.0] * count
        history = [best]
        for _step in range(count):
            step_best = [_NEG] * count
            for src, dst, weight in edges:
                source = best[src]
                if source > _NEG:
                    candidate = source + weight
                    if candidate > step_best[dst]:
                        step_best[dst] = candidate
            best = step_best
            history.append(best)
        final = history[count]
        for node in range(count):
            top = final[node]
            if top <= _NEG:
                continue
            node_rate = None
            for k in range(count):
                down = history[k][node]
                if down > _NEG:
                    mean = (top - down) / (count - k)
                    if node_rate is None or mean < node_rate:
                        node_rate = mean
            if node_rate is not None and node_rate > rate:
                rate = node_rate
    return float(rate)


def _critical_slots(facts: Sequence[tuple]) -> List[bool]:
    """Membership of the longest latency-weighted path of one iteration
    (display aid for the pressure table, not a bound)."""
    count = len(facts)
    depth = [0] * count
    previous = [-1] * count
    writer_depth: Dict[str, Tuple[int, int]] = {}  # reg → (depth, slot)
    for index, (reads, writes, latency, _port, _ii, _epi) in enumerate(facts):
        best, best_src = 0, -1
        for reg in reads:
            entry = writer_depth.get(reg)
            if entry is not None and entry[0] > best:
                best, best_src = entry
        depth[index] = best + latency
        previous[index] = best_src
        for reg in writes:
            writer_depth[reg] = (depth[index], index)
    critical = [False] * count
    if count:
        cursor = max(range(count), key=lambda i: depth[i])
        while cursor >= 0:
            critical[cursor] = True
            cursor = previous[cursor]
    return critical


# ---------------------------------------------------------------------------
# The pass
# ---------------------------------------------------------------------------

def analyze_cost(program: Program, arch: MicroArch, *,
                 l1_bytes: Optional[int] = DEFAULT_L1_BYTES,
                 l2_bytes: Optional[int] = DEFAULT_L2_BYTES,
                 line_bytes: int = DEFAULT_LINE_BYTES,
                 source_file: Optional[str] = None,
                 intent: Optional[str] = None,
                 fitness_target: Optional[float] = None
                 ) -> CostModelReport:
    """Run dataflow + cost model; never raises on program content.

    ``intent`` is the config's fitness metric name (``power``, ``ipc``,
    ...) and arms SC302/SC303; without it only SC301 can fire.
    """
    base = analyze_program(program, l1_bytes=l1_bytes, l2_bytes=l2_bytes,
                           line_bytes=line_bytes, source_file=source_file)
    diagnostics = list(base.diagnostics)
    facts = _slot_facts(program, arch)
    loop_len = len(facts)

    chain_cycles = _chain_rate([(f[0], f[1], f[2]) for f in facts])
    issue_cycles = loop_len / arch.issue_width if loop_len else 0.0
    port_cycles: Dict[str, float] = {port: 0.0 for port in arch.ports}
    epi_total = 0.0
    serial_cycles = 0.0
    costs: List[InstructionCost] = []
    critical = _critical_slots(facts)
    for index, instr in enumerate(program.loop):
        group = instr.group or instr.iclass.value
        latency = arch.latency_of(group, instr.iclass)
        interval = arch.initiation_interval(group, instr.iclass)
        port = arch.port_group_of(group, instr.iclass)
        epi = arch.epi_of(group, instr.iclass)
        port_cycles[port] += interval / arch.ports[port]
        epi_total += epi
        serial_cycles += latency
        costs.append(InstructionCost(
            index=index, opcode=instr.opcode, group=group, port=port,
            latency=latency, interval=interval, energy_pj=epi,
            critical=critical[index]))

    bound_cycles = max([issue_cycles, chain_cycles]
                       + list(port_cycles.values()))
    ipc_upper = loop_len / bound_cycles if bound_cycles else 0.0
    ipc_lower = loop_len / serial_cycles if serial_cycles else 0.0

    floor, ceil = _EPI_FLOOR, _EPI_FLOOR + _EPI_SPAN
    energy_lower = floor * epi_total + arch.base_cycle_pj * bound_cycles
    energy_upper = ceil * epi_total + arch.base_cycle_pj * serial_cycles
    overhead_w = arch.static_power_w + arch.uncore_power_w
    frequency = arch.frequency_hz
    power_upper = overhead_w + 1e-12 * frequency * (
        ceil * epi_total / bound_cycles + arch.base_cycle_pj) \
        if bound_cycles else overhead_w
    power_lower = overhead_w + 1e-12 * frequency * (
        floor * epi_total / serial_cycles + arch.base_cycle_pj) \
        if serial_cycles else overhead_w

    cost = StaticCostReport(
        loop_length=base.profile.loop_length,
        chain_depth=base.profile.chain_depth,
        mix_vector=base.profile.mix_vector,
        footprint_bytes=base.profile.footprint_bytes,
        distinct_lines=base.profile.distinct_lines,
        uninitialised_reads=base.profile.uninitialised_reads,
        dead_writes=base.profile.dead_writes,
        memory_instructions=base.profile.memory_instructions,
        arch=arch.name,
        issue_width=arch.issue_width,
        chain_cycles=chain_cycles,
        issue_cycles=issue_cycles,
        port_cycles=port_cycles,
        bound_cycles=bound_cycles,
        serial_cycles=serial_cycles,
        ipc_upper=ipc_upper,
        ipc_lower=ipc_lower,
        energy_pj_lower=energy_lower,
        energy_pj_upper=energy_upper,
        power_proxy_w_lower=power_lower,
        power_proxy_w_upper=power_upper,
        instruction_costs=tuple(costs),
    )

    # -- SC301: the chain dominates the machine's width -------------------
    resource_cycles = max([issue_cycles] + list(port_cycles.values())) \
        if loop_len else 0.0
    if loop_len > 1 and chain_cycles > resource_cycles + 1e-9:
        diagnostics.append(make_diagnostic(
            "SC301",
            f"the loop-carried dependency chain forces "
            f"{chain_cycles:.2f} cycles/iteration against a resource "
            f"bound of {resource_cycles:.2f} — the {arch.issue_width}"
            f"-wide machine idles on serial latency (static IPC ≤ "
            f"{ipc_upper:.2f})",
            file=source_file))

    # -- SC302: intent needs a unit class the body never touches -----------
    if intent is not None:
        for port in INTENT_PORTS.get(intent, ()):
            if port in port_cycles and port_cycles[port] == 0.0 and loop_len:
                diagnostics.append(make_diagnostic(
                    "SC302",
                    f"stress intent {intent!r} expects pressure on the "
                    f"{port!r} ports but no loop instruction is routed "
                    f"there — the unit class is structurally idle",
                    file=source_file))

    # -- SC303: the target is statically unreachable ------------------------
    if intent == "ipc" and fitness_target is not None \
            and fitness_target > ipc_upper + 1e-9:
        diagnostics.append(make_diagnostic(
            "SC303",
            f"fitness target {fitness_target:g} IPC exceeds the static "
            f"steady-state upper bound {ipc_upper:.2f} for this body on "
            f"{arch.name} — only a warm-up transient could ever measure "
            f"above it",
            file=source_file))

    return CostModelReport(program_name=program.name, cost=cost,
                           diagnostics=diagnostics)


def static_score(program: Program, arch: MicroArch, metric: str) -> float:
    """The candidate-ranking fast path: one static fitness proxy.

    Prices the program's cached
    :meth:`~repro.isa.model.Program.dependence_summary` — the group
    vocabulary and the loop-carried cycle family the assembler
    condensed out of the body — so scoring touches a handful of table
    entries instead of the instruction list.  This is the per-candidate
    cost the ``static_rank`` strategy pays for every pruned simulation,
    and the quantity BENCH_staticrank gates at ≥100x under one
    simulated evaluation.

    Ordering guarantee: the summary's cycle family is a *subset* of
    the real dependence cycles (single-predecessor condensation), so
    the chain bound here never exceeds :func:`analyze_cost`'s exact λ.
    For ``metric == "ipc"`` the score is therefore a sound static IPC
    upper bound at least as large as the exact ``ipc_upper``; for the
    power-family metrics it is likewise at least the exact
    ``power_proxy_w_upper``.  Only the ordering matters for ranking,
    so the relaxation trades a little tightness for ~100x less work.
    """
    summary = program.dependence_summary()
    loop_len = summary.loop_length
    if not loop_len:
        return 0.0
    ports = arch.ports
    port_intervals: Dict[str, int] = {}
    epi_total = 0.0
    latencies: List[int] = []
    for key, count in zip(summary.group_keys, summary.group_counts):
        group, iclass = key
        latencies.append(arch.latency_of(group, iclass))
        port = arch.port_group_of(group, iclass)
        interval = arch.initiation_interval(group, iclass)
        port_intervals[port] = port_intervals.get(port, 0) \
            + interval * count
        epi_total += arch.epi_of(group, iclass) * count
    bound_cycles = loop_len / arch.issue_width
    for port, total in port_intervals.items():
        pressure = total / ports[port]
        if pressure > bound_cycles:
            bound_cycles = pressure
    for vector, length in zip(summary.cycle_counts,
                              summary.cycle_lengths):
        weight = 0
        for gid, multiplicity in enumerate(vector):
            if multiplicity:
                weight += multiplicity * latencies[gid]
        mean = weight / length
        if mean > bound_cycles:
            bound_cycles = mean
    if metric == "ipc":
        return loop_len / bound_cycles
    ceil = _EPI_FLOOR + _EPI_SPAN
    return (arch.static_power_w + arch.uncore_power_w
            + 1e-12 * arch.frequency_hz
            * (ceil * epi_total / bound_cycles + arch.base_cycle_pj))


def render_cost_table(report: CostModelReport) -> str:
    """The human-readable per-instruction pressure table for the CLI."""
    cost = report.cost
    header = (f"{cost.arch}: {cost.loop_length} instructions, "
              f"issue width {cost.issue_width}")
    lines = [header, ""]
    lines.append(f"{'idx':>3}  {'opcode':<10} {'group':<10} {'port':<4} "
                 f"{'lat':>3} {'ii':>3} {'pJ':>7}  chain")
    for row in cost.instruction_costs:
        marker = "*" if row.critical else ""
        lines.append(f"{row.index:>3}  {row.opcode:<10} {row.group:<10} "
                     f"{row.port:<4} {row.latency:>3} {row.interval:>3} "
                     f"{row.energy_pj:>7.1f}  {marker}")
    lines.append("")
    bounds = ", ".join(
        [f"issue {cost.issue_cycles:.2f}"]
        + [f"{port} {value:.2f}"
           for port, value in sorted(cost.port_cycles.items())]
        + [f"chain {cost.chain_cycles:.2f}"])
    lines.append(f"cycles/iteration bounds: {bounds}")
    lines.append(f"binding bound: {cost.bound_cycles:.2f} cycles/iteration "
                 f"→ static IPC ≤ {cost.ipc_upper:.2f} "
                 f"(≥ {cost.ipc_lower:.2f} serialised)")
    lines.append(f"energy/iteration: {cost.energy_pj_lower:.0f}–"
                 f"{cost.energy_pj_upper:.0f} pJ; core power proxy: "
                 f"{cost.power_proxy_w_lower:.2f}–"
                 f"{cost.power_proxy_w_upper:.2f} W")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Rank statistics (static score vs simulated fitness)
# ---------------------------------------------------------------------------

def _average_ranks(values: Sequence[float]) -> List[float]:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    start = 0
    while start < len(order):
        stop = start
        while stop + 1 < len(order) \
                and values[order[stop + 1]] == values[order[start]]:
            stop += 1
        shared = (start + stop) / 2.0 + 1.0
        for position in range(start, stop + 1):
            ranks[order[position]] = shared
        start = stop + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> Optional[float]:
    """Spearman rank correlation; None when uninformative (n < 3 or a
    constant sequence — two points always correlate at exactly ±1, so
    a pair carries no rank information worth reporting)."""
    if len(xs) != len(ys) or len(xs) < 3:
        return None
    rx, ry = _average_ranks(xs), _average_ranks(ys)
    mean_x = sum(rx) / len(rx)
    mean_y = sum(ry) / len(ry)
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(rx, ry))
    var_x = sum((a - mean_x) ** 2 for a in rx)
    var_y = sum((b - mean_y) ** 2 for b in ry)
    if var_x <= 0.0 or var_y <= 0.0:
        return None
    return cov / math.sqrt(var_x * var_y)
