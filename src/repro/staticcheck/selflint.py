"""Framework determinism self-lint (``python -m repro selfcheck``).

Checkpoint/resume promises bit-identical replay: an interrupted search,
resumed from its last checkpoint, must reproduce exactly what the
uninterrupted run would have produced.  That promise is only as strong
as the framework's discipline about hidden nondeterminism, so this
AST-based pass (stdlib :mod:`ast`, no third-party linter) checks
``src/repro`` itself for the hazards that would quietly break it:

* ``SC401`` — module-level ``random.*`` calls (``random.random()``,
  ``random.seed()``...).  All stochastic components must draw from an
  explicitly seeded :class:`random.Random` instance
  (:mod:`repro.core.rng`); the module-global stream is shared, hidden
  state.  ``random.Random(seed)`` construction is of course allowed.
* ``SC402`` — iterating a ``set``/``frozenset`` in a ``for`` loop or
  comprehension.  Set iteration order depends on insertion history and
  hash seeds; feeding it to anything RNG- or order-dependent makes
  replay diverge.  ``sorted(the_set)`` is the deterministic spelling.
* ``SC403`` — argument-less ``.popitem()``.  Which item leaves the dict
  depends on insertion order alone in modern Python but was arbitrary
  historically, and on ``OrderedDict`` the direction should be spelled
  out; ``popitem(last=False)`` (explicit FIFO/LIFO) is accepted.
* ``SC404`` — wall-clock reads (``time.time()``, ``perf_counter()``,
  ``datetime.now()``...).  Wall-clock values recorded into run state
  can never replay identically.

A finding can be acknowledged in place with a trailing
``# staticcheck: disable=SC404`` comment (codes comma-separated; no
codes disables every check on that line).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import List, Optional, Sequence, Union

from .diagnostics import Diagnostic, make_diagnostic

__all__ = ["lint_source", "lint_file", "lint_tree", "repro_package_root"]

#: ``random`` module attributes whose module-level call is the hazard.
#: ``Random`` / ``SystemRandom`` are class constructions, not draws from
#: the global stream, so they stay legal.
_RANDOM_CALLS = frozenset({
    "random", "seed", "randint", "randrange", "randbytes", "choice",
    "choices", "shuffle", "sample", "uniform", "triangular", "gauss",
    "getrandbits", "betavariate", "expovariate", "gammavariate",
    "lognormvariate", "normalvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "binomialvariate", "getstate",
    "setstate",
})

#: (module name, attribute) pairs that read the wall clock.
_WALL_CLOCK = {
    "time": frozenset({"time", "time_ns", "monotonic", "monotonic_ns",
                       "perf_counter", "perf_counter_ns", "clock",
                       "process_time", "process_time_ns"}),
    "datetime": frozenset({"now", "today", "utcnow"}),
    "date": frozenset({"today"}),
}

_DISABLE_RE = re.compile(
    r"#\s*staticcheck:\s*disable(?:\s*=\s*(?P<codes>[A-Z0-9, ]+))?")


def _disabled_codes(line: str) -> Optional[frozenset]:
    """Codes suppressed on ``line``; empty frozenset = all codes."""
    match = _DISABLE_RE.search(line)
    if match is None:
        return None
    codes = match.group("codes")
    if not codes:
        return frozenset()
    return frozenset(code.strip() for code in codes.split(","))


class _HazardVisitor(ast.NodeVisitor):
    def __init__(self, filename: str, lines: Sequence[str]) -> None:
        self.filename = filename
        self.lines = lines
        self.diagnostics: List[Diagnostic] = []

    # -- helpers ---------------------------------------------------------

    def _emit(self, code: str, message: str, node: ast.AST) -> None:
        line_number = getattr(node, "lineno", None)
        if line_number is not None and 1 <= line_number <= len(self.lines):
            disabled = _disabled_codes(self.lines[line_number - 1])
            if disabled is not None and (not disabled or code in disabled):
                return
        self.diagnostics.append(make_diagnostic(
            code, message, file=self.filename, line=line_number))

    @staticmethod
    def _module_attr(node: ast.AST) -> Optional[tuple]:
        """``module.attr`` with a bare-Name module, else None."""
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name):
            return node.value.id, node.attr
        return None

    def _is_set_expression(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))

    def _check_iteration(self, iter_node: ast.AST, node: ast.AST) -> None:
        if self._is_set_expression(iter_node):
            self._emit("SC402",
                       "iteration over a set: the order depends on hash "
                       "seeds and insertion history; iterate "
                       "sorted(...) instead", node)

    # -- visitors --------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        target = self._module_attr(node.func)
        if target is not None:
            module, attr = target
            if module == "random" and attr in _RANDOM_CALLS:
                self._emit("SC401",
                           f"module-level random.{attr}() draws from the "
                           "hidden global stream; use a seeded "
                           "random.Random (repro.core.rng.make_rng)",
                           node)
            wall = _WALL_CLOCK.get(module)
            if wall is not None and attr in wall:
                self._emit("SC404",
                           f"{module}.{attr}() reads the wall clock; "
                           "values derived from it can never replay "
                           "bit-identically", node)
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "popitem" \
                and not node.args and not node.keywords:
            self._emit("SC403",
                       ".popitem() with no direction argument removes an "
                       "order-dependent item; spell the direction out "
                       "(popitem(last=...)) or pop a sorted key", node)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter, node.iter)
        self.generic_visit(node)


def lint_source(source: str, filename: str = "<source>") -> List[Diagnostic]:
    """Lint one module's source text."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [make_diagnostic("SC400", f"does not parse: {exc.msg}",
                                file=filename, line=exc.lineno)]
    visitor = _HazardVisitor(filename, source.splitlines())
    visitor.visit(tree)
    return visitor.diagnostics


def lint_file(path: Union[str, Path]) -> List[Diagnostic]:
    path = Path(path)
    return lint_source(path.read_text(), filename=str(path))


def lint_tree(root: Union[str, Path]) -> List[Diagnostic]:
    """Lint every ``*.py`` file under ``root``, in a stable order."""
    root = Path(root)
    diagnostics: List[Diagnostic] = []
    for path in sorted(root.rglob("*.py")):
        diagnostics.extend(lint_file(path))
    return diagnostics


def repro_package_root() -> Path:
    """The installed ``repro`` package directory (the self-lint target)."""
    import repro
    return Path(repro.__file__).resolve().parent
