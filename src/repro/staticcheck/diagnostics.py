"""The shared diagnostic model of the static-analysis subsystem.

Every pass — program dataflow, config/library lint, pre-measurement
screening and the framework determinism self-lint — reports findings as
:class:`Diagnostic` values: a stable code (``SC101``), a severity, a
location and a human-readable message.  Diagnostics are plain data and
JSON-serialisable, so the CLI can emit them for CI consumption and the
engine can attach them to screen failures without dragging in any pass
internals.

Code ranges:

=========  =======================================================
``SC1xx``  program dataflow analysis (:mod:`repro.staticcheck.dataflow`)
``SC2xx``  config & instruction-library lint (:mod:`~.configlint`)
``SC3xx``  static cost model (:mod:`~.costmodel`)
``SC4xx``  framework determinism self-lint (:mod:`~.selflint`)
=========  =======================================================

The full table lives in :data:`CODES`; ``docs/API.md`` documents each
code with a triggering example.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["Severity", "Location", "Diagnostic", "CODES",
           "make_diagnostic", "has_errors", "worst_severity",
           "sort_diagnostics", "diagnostics_to_json",
           "format_diagnostics", "summarise"]


class Severity(enum.IntEnum):
    """Ordered severities: comparisons follow the integer values."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        try:
            return cls[name.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown severity {name!r}; expected one of "
                             f"{[s.label for s in cls]}") from None


#: code → (default severity, short title).  The title is the stable
#: one-line description shown by ``gest lint`` summaries and the docs.
CODES: Dict[str, tuple] = {
    # -- program dataflow ------------------------------------------------
    "SC101": (Severity.WARNING, "read of a never-initialised register"),
    "SC102": (Severity.INFO, "dead register write"),
    "SC103": (Severity.ERROR, "empty measured loop body"),
    "SC104": (Severity.INFO, "static memory footprint exceeds a cache level"),
    "SC105": (Severity.INFO, "fully serialised dependency chain"),
    # -- config & instruction-library lint -------------------------------
    "SC201": (Severity.ERROR, "configuration does not parse"),
    "SC202": (Severity.ERROR, "operand range can never assemble"),
    "SC203": (Severity.WARNING, "operand range partially assembles"),
    "SC204": (Severity.ERROR, "instruction unreachable by the generator "
                              "(no form assembles)"),
    "SC205": (Severity.WARNING, "operand definition unused by any "
                                "instruction"),
    "SC206": (Severity.ERROR, "#loop_code marker missing, duplicated or "
                              "outside the .loop section"),
    "SC207": (Severity.ERROR, "template does not assemble"),
    "SC208": (Severity.WARNING, "template has no .loop/.endloop section"),
    "SC209": (Severity.ERROR, "unknown GA operator name"),
    "SC210": (Severity.ERROR, "unknown search strategy or invalid "
                              "strategy parameter"),
    # -- static cost model -----------------------------------------------
    "SC301": (Severity.WARNING, "serializing loop-carried chain dominates "
                                "issue width"),
    "SC302": (Severity.INFO, "structurally idle unit class contradicts "
                             "the stress intent"),
    "SC303": (Severity.WARNING, "static bound incompatible with the "
                                "fitness target"),
    # -- framework determinism self-lint ---------------------------------
    "SC400": (Severity.ERROR, "framework source does not parse"),
    "SC401": (Severity.ERROR, "unseeded module-level random.* call"),
    "SC402": (Severity.WARNING, "iteration over a set"),
    "SC403": (Severity.ERROR, "order-sensitive dict.popitem()"),
    "SC404": (Severity.WARNING, "wall-clock read"),
}


@dataclass(frozen=True)
class Location:
    """Where a diagnostic points.

    All fields are optional; each pass fills what it knows — a config
    lint names the instruction and operand, the dataflow pass names the
    loop-body index, the self-lint names file and line.
    """

    file: Optional[str] = None
    line: Optional[int] = None
    instruction: Optional[str] = None     # library instruction name
    operand: Optional[str] = None         # operand definition id
    index: Optional[int] = None           # loop-body instruction index

    def describe(self) -> str:
        parts: List[str] = []
        if self.file:
            parts.append(self.file if self.line is None
                         else f"{self.file}:{self.line}")
        elif self.line is not None:
            parts.append(f"line {self.line}")
        if self.index is not None:
            parts.append(f"loop[{self.index}]")
        if self.instruction:
            parts.append(f"instruction {self.instruction!r}")
        if self.operand:
            parts.append(f"operand {self.operand!r}")
        return " ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        return {k: v for k, v in (("file", self.file), ("line", self.line),
                                  ("instruction", self.instruction),
                                  ("operand", self.operand),
                                  ("index", self.index)) if v is not None}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass."""

    code: str
    severity: Severity
    message: str
    location: Location = field(default_factory=Location)

    @property
    def title(self) -> str:
        entry = CODES.get(self.code)
        return entry[1] if entry else self.code

    def format(self) -> str:
        where = self.location.describe()
        prefix = f"{self.code} {self.severity.label:7s}"
        return f"{prefix} {where}: {self.message}" if where \
            else f"{prefix} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity.label,
            "title": self.title,
            "message": self.message,
            "location": self.location.to_dict(),
        }


def make_diagnostic(code: str, message: str,
                    severity: Optional[Severity] = None,
                    **location_fields) -> Diagnostic:
    """Build a diagnostic, defaulting the severity from :data:`CODES`."""
    if code not in CODES:
        raise ValueError(f"unknown diagnostic code {code!r}")
    if severity is None:
        severity = CODES[code][0]
    return Diagnostic(code=code, severity=severity, message=message,
                      location=Location(**location_fields))


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.severity >= Severity.ERROR for d in diagnostics)


def worst_severity(diagnostics: Iterable[Diagnostic]) -> Optional[Severity]:
    worst: Optional[Severity] = None
    for diag in diagnostics:
        if worst is None or diag.severity > worst:
            worst = diag.severity
    return worst


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Stable order by (file, code, location) for CI-diffable output.

    Passes emit diagnostics in discovery order, which can depend on
    dict iteration internals or pass sequencing; golden tests and
    ``--json`` consumers want one canonical order instead.
    """
    def key(diag: Diagnostic):
        loc = diag.location
        return (loc.file or "", diag.code,
                loc.line if loc.line is not None else -1,
                loc.index if loc.index is not None else -1,
                loc.instruction or "", loc.operand or "", diag.message)
    return sorted(diagnostics, key=key)


def summarise(diagnostics: Sequence[Diagnostic]) -> str:
    """``"2 errors, 1 warning, 3 notes"`` — the lint footer line."""
    counts = {Severity.ERROR: 0, Severity.WARNING: 0, Severity.INFO: 0}
    for diag in diagnostics:
        counts[diag.severity] += 1
    noun = {Severity.ERROR: "error", Severity.WARNING: "warning",
            Severity.INFO: "note"}
    parts = [f"{count} {noun[sev]}{'s' if count != 1 else ''}"
             for sev, count in counts.items()]
    return ", ".join(parts)


def diagnostics_to_json(diagnostics: Sequence[Diagnostic],
                        **extra) -> str:
    """A stable JSON document for ``--json`` / CI consumption."""
    payload = {
        "diagnostics": [d.to_dict() for d in diagnostics],
        "errors": sum(1 for d in diagnostics
                      if d.severity >= Severity.ERROR),
        "warnings": sum(1 for d in diagnostics
                        if d.severity == Severity.WARNING),
    }
    payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True)


def format_diagnostics(diagnostics: Sequence[Diagnostic]) -> str:
    lines = [d.format() for d in diagnostics]
    lines.append(summarise(diagnostics))
    return "\n".join(lines)
