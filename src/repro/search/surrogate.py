"""Surrogate-assisted search: an online-learned fitness model in front
of any strategy.

``static_rank`` (PR 5) prunes offspring with a *fixed* analytical
proxy; this wrapper learns the proxy instead, the NeuroScalar way: a
ridge regression (:class:`~repro.surrogate.model.RidgeModel`) over
static cost-model features plus an optional short-probe vector
(:class:`~repro.surrogate.features.SurrogateFeaturizer`), refit every
generation from the fitnesses the run has actually observed.  The
model keeps improving as the search runs — MicroGrad's metric-driven
feedback loop applied to the search's own evaluation budget.

Per generation:

1. the base strategy proposes offspring as usual (same RNG stream,
   same uid allocation);
2. offspring whose genome was already simulated replay their recorded
   measurements (exact, per the per-source noise contract);
3. offspring whose rendered source sits in the evaluation cache pass
   straight through — the evaluator replays them for free and the
   observed fitness becomes training data (the cache-to-training-set
   export, snapshot once via ``iter_entries()`` at warm-start);
4. the rest are featurized in one batch and, once the model has seen
   ``min_train`` rows, ranked by predicted fitness: the top
   ``top_fraction`` are simulated, an ε-draw promotes a few pruned
   candidates for unbiased training data, and the remainder get
   placeholder fitnesses strictly below every simulated fitness
   (the ``static_rank`` placeholder scheme);
5. ``observe`` feeds the new (features, fitness) pairs back into the
   model and records prediction quality (Spearman over this
   generation's predicted-vs-simulated pairs) for stats.jsonl.

Until the model is trained every candidate is simulated — the warm-up
generations anchor the search and the training set.
"""

from __future__ import annotations

import math
from random import Random
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import ConfigError
from ..core.individual import Individual
from ..core.population import Population
from ..cpu.microarch import microarch_for
from ..staticcheck.configlint import detect_syntax
from ..staticcheck.costmodel import spearman
from ..surrogate import RidgeModel, SurrogateFeaturizer
from .base import STRATEGIES, SearchStrategy
from .static_rank import _DEFAULT_PLATFORM, _fraction, _optional_text

__all__ = ["SurrogateStrategy"]

#: Golden-ratio mixing constant decorrelating the exploration stream
#: from the GA seed (same constant as the evaluation noise keying).
_EXPLORE_MIX = 0x9E3779B97F4A7C15


def _probability(value) -> float:
    probability = float(value)
    if not 0.0 <= probability <= 1.0:
        raise ValueError("epsilon must be in [0, 1]")
    return probability


def _non_negative_int(value) -> int:
    count = int(value)
    if count < 0:
        raise ValueError("must be >= 0")
    return count


def _positive_int(value) -> int:
    count = int(value)
    if count < 1:
        raise ValueError("must be >= 1")
    return count


def _positive_float(value) -> float:
    number = float(value)
    if not number > 0.0:
        raise ValueError("must be > 0")
    return number


@STRATEGIES.register("surrogate")
class SurrogateStrategy(SearchStrategy):
    """Learned-model pruning wrapped around a base strategy.

    Parameters
    ----------
    base:
        Registered name of the wrapped strategy (default ``genetic``).
    platform:
        Microarchitecture preset whose tables price the static features
        (and whose preset the probe runs); defaults per the template's
        syntax, like ``static_rank``.
    top_fraction:
        Fraction of each generation's fresh offspring sent to full
        simulation once the model is trained (default 0.4).
    epsilon:
        Per-candidate probability that a pruned offspring is promoted
        to simulation anyway (default 0.1) — exploration keeps the
        training set unbiased at the cheap end of the ranking.  Drawn
        from a dedicated generation-keyed stream so the base strategy's
        RNG draws stay untouched.
    probe:
        Short-probe cycle budget per fresh candidate (0 = static
        features only).  The default 400 keeps the probe a quarter of
        the default full-measurement budget while roughly tripling the
        rank correlation over static-only features; whole generations
        probe in one batched pass either way.
    l2:
        Ridge penalty of the model (default 1.0).
    boost:
        Bucketed-residual boost bucket count (0 = plain ridge).
    min_train:
        Observed rows required before the model starts pruning
        (default 8); until then every candidate is simulated.
    """

    name = "surrogate"
    PARAMS = {
        "base": (str, "genetic"),
        "platform": (_optional_text, None),
        "top_fraction": (_fraction, 0.4),
        "epsilon": (_probability, 0.1),
        "probe": (_non_negative_int, 400),
        "l2": (_positive_float, 1.0),
        "boost": (_non_negative_int, 0),
        "min_train": (_positive_int, 8),
    }

    def _bound(self) -> None:
        base_name = self.params["base"]
        if base_name == self.name:
            raise ConfigError(
                "search strategy 'surrogate' cannot wrap itself; "
                "pick a concrete base strategy (e.g. base=\"genetic\")",
                diagnostic_code="SC210")
        base_cls = STRATEGIES.get(base_name)
        self._base: SearchStrategy = base_cls(None)
        self._base.bind(self.config, self.rng, self._take_uid)

        platform = self.params["platform"]
        if platform is None:
            syntax = detect_syntax(self.config.template_text)
            if syntax is None:
                raise ConfigError(
                    "search strategy 'surrogate' cannot infer the "
                    "target platform: the template assembles under "
                    "neither SimISA syntax; set the 'platform' "
                    "parameter explicitly", diagnostic_code="SC210")
            platform = _DEFAULT_PLATFORM[syntax]
        self._arch = microarch_for(platform)
        self._featurizer = SurrogateFeaturizer(
            self.config.template_text, self._arch,
            probe_cycles=self.params["probe"])
        self._model = RidgeModel(l2=self.params["l2"],
                                 boost_buckets=self.params["boost"])

        # Evaluation-cache snapshot (populated by warm_start):
        self._cache = None
        self._warm_entries: Dict[str, Any] = {}

        # Surrogate state (all checkpointed via state_dict):
        #: genome key -> (measurements, fitness, compile_failed,
        #: screen_failed) of every simulated individual seen so far.
        self._memo: Dict[Tuple, Tuple] = {}
        #: genome key -> feature row, so replayed clones never
        #: re-featurize.
        self._feature_memo: Dict[Tuple, Dict[str, float]] = {}
        #: The observed training set; rows deduplicate on genome key.
        self._train_rows: List[Dict[str, float]] = []
        self._train_targets: List[float] = []
        self._trained_keys: set = set()
        #: Lowest simulated fitness observed; placeholder fitnesses of
        #: pruned candidates live strictly below it.
        self._floor = 0.0
        #: uid -> feature row / predicted fitness for candidates that
        #: will carry a real fitness this generation.
        self._pending_features: Dict[int, Dict[str, float]] = {}
        self._pending_predictions: Dict[int, float] = {}
        self._pruned_uids: set = set()
        self._replayed = 0
        self._selected = 0
        self._explored = 0
        self._warm_hits = 0
        self._last_metrics: Optional[Dict[str, Any]] = None

    # -- engine wiring ------------------------------------------------------

    def warm_start(self, evaluator) -> None:
        """Snapshot the evaluator's cache for the warm-start path.

        Called by the engine once the evaluator exists.  The snapshot
        is one bulk ``iter_entries()`` read — never a per-genome
        lookup — so a sqlite-backed
        :class:`~repro.store.sharedcache.SharedEvaluationCache` costs
        one SELECT, not one per offspring.
        """
        cache = getattr(evaluator, "cache", None)
        self._cache = cache
        self._warm_entries = {}
        if cache is None:
            return
        iterator = getattr(cache, "iter_entries", None)
        if callable(iterator):
            self._warm_entries = dict(iterator())

    # -- featurization ------------------------------------------------------

    def _featurize(self, individuals: List[Individual]
                   ) -> Dict[int, Tuple[str, Optional[Dict[str, float]]]]:
        """uid -> (source, features), reusing the genome-keyed memo and
        batching the rest (one probe pass for the whole pool)."""
        out: Dict[int, Tuple[str, Optional[Dict[str, float]]]] = {}
        fresh: List[Individual] = []
        for individual in individuals:
            row = self._feature_memo.get(individual.genome_key())
            if row is not None:
                out[individual.uid] = (None, row)
            else:
                fresh.append(individual)
        for individual, (source, row) in zip(
                fresh, self._featurizer.featurize_batch(fresh)):
            out[individual.uid] = (source, row)
            if row is not None:
                self._feature_memo[individual.genome_key()] = row
        return out

    def _predict(self, row: Optional[Dict[str, float]]) -> float:
        """Predicted fitness; -inf for unassemblable genomes (they
        compile-fail to fitness 0, so they rank last and prune first)."""
        if row is None:
            return float("-inf")
        return self._model.predict(row)

    # -- the search contract ------------------------------------------------

    def initial_population(self) -> Population:
        population = self._base.initial_population()
        # Generation 0 is always fully simulated: it anchors the search
        # and contributes the first training rows.
        featurized = self._featurize(
            [i for i in population if not i.evaluated])
        self._pending_features = {
            uid: row for uid, (_, row) in featurized.items()
            if row is not None}
        self._pending_predictions = {}
        self._pruned_uids = set()
        self._replayed = 0
        self._explored = 0
        self._warm_hits = 0
        self._selected = len(featurized)
        return population

    def next_population(self, population: Population,
                        next_number: int) -> Population:
        children = self._base.next_population(population, next_number)
        pending: List[Individual] = []
        replayed: List[Individual] = []
        self._replayed = 0
        for child in children:
            if child.evaluated:
                continue
            hit = self._memo.get(child.genome_key())
            if hit is not None:
                measurements, fitness, compile_failed, screen_failed = hit
                child.record_evaluation(list(measurements), fitness,
                                        compile_failed=compile_failed,
                                        screen_failed=screen_failed)
                replayed.append(child)
                self._replayed += 1
            else:
                pending.append(child)

        featurized = self._featurize(pending)
        self._pending_features = {}
        self._pending_predictions = {}

        # Cache warm hits pass straight through: the evaluator replays
        # them for free, and their observed fitness trains the model.
        fresh: List[Individual] = []
        warm: List[Individual] = []
        for child in pending:
            source, row = featurized[child.uid]
            if row is not None:
                self._pending_features[child.uid] = row
            if self._warm_entries and source is not None \
                    and self._cache is not None \
                    and self._cache.key(source) in self._warm_entries:
                warm.append(child)
            else:
                fresh.append(child)
        self._warm_hits = len(warm)

        if not self._model.fitted:
            # Warm-up: simulate everything, learn from all of it.
            self._pruned_uids = set()
            self._explored = 0
            self._selected = len(fresh)
            for child in replayed:
                self._register_prediction(child)
            return children

        predictions = {
            child.uid: self._predict(featurized[child.uid][1])
            for child in fresh}
        ranked = sorted(fresh,
                        key=lambda c: (-predictions[c.uid], c.uid))
        keep = max(1, math.ceil(
            self.params["top_fraction"] * len(ranked))) if ranked else 0
        selected, rest = ranked[:keep], ranked[keep:]

        # ε-exploration: each pruned candidate may be promoted anyway.
        # The draws come from a generation-keyed stream — deterministic,
        # resume-exact, and invisible to the base strategy's RNG.
        seed = self.config.ga.seed or 0
        explore_rng = Random(
            (seed * _EXPLORE_MIX + next_number) & (2 ** 64 - 1))
        epsilon = self.params["epsilon"]
        pruned: List[Individual] = []
        explored: List[Individual] = []
        for child in rest:
            if epsilon and explore_rng.random() < epsilon:
                explored.append(child)
            else:
                pruned.append(child)

        # Placeholder fitnesses: strictly inside (floor - 1, floor),
        # ordered by predicted rank, so pruned candidates keep a useful
        # ordering under tournament selection yet never outrank any
        # measured individual (simulated fitnesses are >= floor).
        span = len(pruned) + 1
        for position, child in enumerate(pruned):
            placeholder = self._floor - 1.0 + (len(pruned) - position) / span
            child.record_evaluation([], placeholder)

        for child in selected + explored:
            self._pending_predictions[child.uid] = predictions[child.uid]
        for child in warm:
            row = self._pending_features.get(child.uid)
            if row is not None:
                self._pending_predictions[child.uid] = self._predict(row)
        for child in replayed:
            self._register_prediction(child)
        self._pruned_uids = {c.uid for c in pruned}
        self._selected = len(selected) + len(explored)
        self._explored = len(explored)
        return children

    def _register_prediction(self, child: Individual) -> None:
        """Replayed children carry a real simulated fitness, so a
        memoised prediction widens the Spearman sample for free."""
        if not self._model.fitted:
            return
        row = self._feature_memo.get(child.genome_key())
        if row is not None:
            self._pending_predictions[child.uid] = self._predict(row)

    def observe(self, population: Population) -> None:
        self._base.observe(population)
        pairs: List[Tuple[float, float]] = []
        new_floor = self._floor
        for individual in population:
            if individual.uid in self._pruned_uids:
                continue
            if individual.fitness is None:
                continue
            key = individual.genome_key()
            self._memo.setdefault(
                key,
                (tuple(individual.measurements), individual.fitness,
                 individual.compile_failed, individual.screen_failed))
            new_floor = min(new_floor, individual.fitness)
            row = self._pending_features.get(individual.uid)
            if row is not None and key not in self._trained_keys:
                self._trained_keys.add(key)
                self._train_rows.append(row)
                self._train_targets.append(individual.fitness)
            prediction = self._pending_predictions.get(individual.uid)
            if prediction is not None and math.isfinite(prediction):
                pairs.append((prediction, individual.fitness))
        self._floor = new_floor
        if len(self._train_rows) >= self.params["min_train"]:
            self._model.fit(self._train_rows, self._train_targets)
        rho = spearman([p[0] for p in pairs], [p[1] for p in pairs])
        self._last_metrics = {
            "base": self._base.name,
            "platform": self._arch.name,
            "simulated": self._selected,
            "pruned": len(self._pruned_uids),
            "replayed": self._replayed,
            "warm_hits": self._warm_hits,
            "explored": self._explored,
            "training_size": len(self._train_rows),
            "spearman": rho,
            "probe": self.params["probe"],
        }

    def generation_metrics(self, number: int) -> Optional[Dict[str, Any]]:
        """The surrogate record the engine attaches to
        :class:`~repro.core.engine.GenerationStats` (and stats.jsonl)."""
        return self._last_metrics

    # -- checkpoint support -------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "base_state": self._base.state_dict(),
            "memo": dict(self._memo),
            "feature_memo": dict(self._feature_memo),
            "train_rows": list(self._train_rows),
            "train_targets": list(self._train_targets),
            "trained_keys": sorted(self._trained_keys),
            "floor": self._floor,
            "pending_features": dict(self._pending_features),
            "pending_predictions": dict(self._pending_predictions),
            "pruned_uids": sorted(self._pruned_uids),
            "replayed": self._replayed,
            "selected": self._selected,
            "explored": self._explored,
            "warm_hits": self._warm_hits,
            "last_metrics": self._last_metrics,
            "model": self._model.state_dict(),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        if not state:
            return
        self._base.load_state(state.get("base_state") or {})
        self._memo = dict(state.get("memo") or {})
        self._feature_memo = dict(state.get("feature_memo") or {})
        self._train_rows = list(state.get("train_rows") or [])
        self._train_targets = list(state.get("train_targets") or [])
        self._trained_keys = set(
            tuple(key) if isinstance(key, list) else key
            for key in state.get("trained_keys") or ())
        self._floor = state.get("floor", 0.0)
        self._pending_features = dict(state.get("pending_features") or {})
        self._pending_predictions = dict(
            state.get("pending_predictions") or {})
        self._pruned_uids = set(state.get("pruned_uids") or ())
        self._replayed = state.get("replayed", 0)
        self._selected = state.get("selected", 0)
        self._explored = state.get("explored", 0)
        self._warm_hits = state.get("warm_hits", 0)
        self._last_metrics = state.get("last_metrics")
        self._model.load_state(state.get("model"))
