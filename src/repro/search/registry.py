"""Named registries for search components.

The search layer resolves every pluggable piece — strategies, selection
operators, crossover operators, mutation operators, replacement
policies — *by name* from the run configuration.  A :class:`Registry`
is the single source of truth for what names exist: configuration
validation, the static config lint and the CLI ``--strategy`` choices
all read the same tables, so a name can never be "valid" in one layer
and unknown in another.

Unknown names fail loudly with the full list of valid choices plus a
nearest-match suggestion (``did you mean 'tournament'?``) — the
difference between a typo costing seconds and costing a search.
"""

from __future__ import annotations

from difflib import get_close_matches
from typing import Dict, Optional, Sequence, Tuple

from ..core.errors import ConfigError

__all__ = ["Registry", "suggest"]


def suggest(name: str, choices: Sequence[str]) -> Optional[str]:
    """The closest valid choice to ``name``, or None when nothing is
    plausibly near (difflib ratio below 0.5)."""
    matches = get_close_matches(name, list(choices), n=1, cutoff=0.5)
    return matches[0] if matches else None


class Registry:
    """An ordered name → component table.

    ``kind`` is the human label used in error messages (and doubles as
    the configuration attribute name where the two coincide, e.g.
    ``crossover_operator``), so a failed lookup reads like
    ``unknown crossover_operator 'two_point'; valid choices: one_point,
    uniform``.  ``diagnostic_code`` tags the :class:`ConfigError` a
    failed lookup raises with the matching static-analysis code, so the
    config-file lint reports it under that code rather than a generic
    parse failure.
    """

    def __init__(self, kind: str,
                 diagnostic_code: Optional[str] = None) -> None:
        self.kind = kind
        self.diagnostic_code = diagnostic_code
        self._entries: Dict[str, object] = {}

    # -- registration -------------------------------------------------------

    def register(self, name: str, obj: object = None):
        """Register ``obj`` under ``name``; usable as a decorator."""
        if obj is None:
            def decorator(target):
                self._add(name, target)
                return target
            return decorator
        self._add(name, obj)
        return obj

    def _add(self, name: str, obj: object) -> None:
        if name in self._entries:
            raise ValueError(
                f"duplicate {self.kind} registration {name!r}")
        self._entries[name] = obj

    # -- lookup -------------------------------------------------------------

    def names(self) -> Tuple[str, ...]:
        """Valid names, in registration order."""
        return tuple(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self):
        return iter(self._entries)

    def get(self, name: str, label: Optional[str] = None):
        """Resolve ``name`` or raise :class:`ConfigError` with the valid
        choices and a nearest-match suggestion."""
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigError(self.unknown_message(name, label),
                              diagnostic_code=self.diagnostic_code) from None

    def unknown_message(self, name: str,
                        label: Optional[str] = None) -> str:
        """The diagnostic text for an unknown name (shared by
        :class:`ConfigError` raises and the ``SC209``/``SC210`` lint)."""
        message = (f"unknown {label or self.kind} {name!r}; valid "
                   f"choices: {', '.join(self.names())}")
        near = suggest(str(name), self.names())
        if near is not None:
            message += f" (did you mean {near!r}?)"
        return message
