"""The paper's genetic algorithm as a pluggable strategy.

This is the same breeding loop ``GeneticEngine`` always ran (paper
Figure 3: elitism, tournament selection, one-point crossover,
mutation) — extracted behind the :class:`SearchStrategy` contract with
each operator resolved by name from the registries.  Under the default
operator set the RNG draw order and uid allocation order are identical
to the pre-refactor engine, so existing configs, checkpoints and
recorded populations reproduce bit-for-bit.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.individual import Individual
from ..core.population import Population
from .base import STRATEGIES, SearchStrategy
from .operators import (CROSSOVER_OPERATORS, MUTATION_OPERATORS,
                        REPLACEMENT_POLICIES, SELECTION_OPERATORS)

__all__ = ["GeneticStrategy"]


def _optional_name(value) -> Optional[str]:
    """``None``/empty → inherit from the GA parameters; else the name."""
    if value is None:
        return None
    text = str(value).strip()
    return text or None


@STRATEGIES.register("genetic")
class GeneticStrategy(SearchStrategy):
    """Generational GA: elitism + selection + crossover + mutation.

    Parameters (all optional; defaults derive from the ``<ga>``
    block so a bare ``<search strategy="genetic"/>`` changes nothing):

    * ``selection`` — parent selection operator; defaults to
      ``parent_selection_method``.
    * ``crossover`` — crossover operator; defaults to
      ``crossover_operator``.
    * ``mutation`` — mutation operator; defaults to ``default``.
    * ``replacement`` — replacement policy; defaults to ``elitist``
      when ``elitism`` is set, ``generational`` otherwise.
    """

    name = "genetic"
    PARAMS = {
        "selection": (_optional_name, None),
        "crossover": (_optional_name, None),
        "mutation": (_optional_name, None),
        "replacement": (_optional_name, None),
    }

    def _bound(self) -> None:
        ga = self.config.ga
        selection = self.params["selection"] or ga.parent_selection_method
        crossover = self.params["crossover"] or ga.crossover_operator
        mutation = self.params["mutation"] or "default"
        replacement = self.params["replacement"] or \
            ("elitist" if ga.elitism else "generational")
        self._select = SELECTION_OPERATORS.get(selection)
        self._crossover = CROSSOVER_OPERATORS.get(crossover)
        self._mutate = MUTATION_OPERATORS.get(mutation)
        self._replace = REPLACEMENT_POLICIES.get(replacement)

    def next_population(self, population: Population,
                        next_number: int) -> Population:
        """Create the next generation (paper Figure 3)."""
        ga = self.config.ga
        children: List[Individual] = list(
            self._replace(population, self.take_uid))

        while len(children) < ga.population_size:
            parent1 = self._select(population.individuals, self.rng, ga)
            parent2 = self._select(population.individuals, self.rng, ga)
            genome1, genome2 = self._crossover(parent1, parent2, self.rng)
            for genome in (genome1, genome2):
                if len(children) >= ga.population_size:
                    break
                mutated = self._mutate(genome, self.config.library,
                                       self.rng, ga)
                children.append(Individual(
                    mutated, uid=self.take_uid(),
                    parent_ids=(parent1.uid, parent2.uid)))

        return Population(children, number=next_number)
