"""The abstract search strategy and the strategy registry.

The paper's framework is a GA, but its evaluation machinery — render a
candidate into the template, assemble, measure, score — is search-
agnostic, and the paper itself argues the GA's worth *by comparison
with random search* (Section III.A).  This module defines the contract
that lets the engine drive any population-based search over the same
evaluation pipeline:

1. :meth:`SearchStrategy.initial_population` proposes generation 0;
2. the engine evaluates it (staged pipeline, any backend, any cache);
3. :meth:`SearchStrategy.observe` lets the strategy update internal
   state from the evaluated population (e.g. the annealer's accept/
   reject walk);
4. :meth:`SearchStrategy.next_population` proposes the next
   generation;
5. repeat.

A strategy is a *pure proposal mechanism*: it owns no evaluation code
and performs no I/O.  Everything it needs beyond the evaluated
populations arrives through :meth:`bind` — the run configuration, the
run's single RNG stream, and the engine's uid allocator.  All
randomness must come from that bound RNG; this is what makes runs
reproducible and checkpoints exact (the engine snapshots the RNG state,
so a resumed strategy replays the identical draw sequence).

Strategy-specific state that is *not* recoverable from the population
(the annealer's temperature, the hill-climber's incumbent) is carried
by :meth:`state_dict` / :meth:`load_state`, which the engine embeds in
every checkpoint.
"""

from __future__ import annotations

from random import Random
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.errors import ConfigError
from ..core.individual import Individual, random_individual
from ..core.population import Population, load_population
from .registry import Registry

__all__ = ["STRATEGIES", "SearchStrategy"]

#: The strategy registry.  ``config.validate()``, the CLI ``--strategy``
#: choices and the SC210 config lint all read this table.
STRATEGIES = Registry("search strategy", diagnostic_code="SC210")


class SearchStrategy:
    """Base class for search strategies.

    Subclasses set :attr:`name` (the registry key) and :attr:`PARAMS` —
    an ordered mapping ``param name → (parser, default)`` declaring the
    strategy's tunables.  Parameters arrive as strings from the XML
    ``<search>`` block or as already-typed values from code; the parser
    callable normalises either.  Unknown parameter names are rejected
    here with the valid names listed, mirroring the operator
    registries' behaviour.
    """

    #: Registry key; subclasses override.
    name: str = ""

    #: ``param name → (parser, default)``.  Subclasses override.
    PARAMS: Dict[str, Tuple[Callable[[Any], Any], Any]] = {}

    def __init__(self, params: Optional[Dict[str, Any]] = None) -> None:
        supplied = dict(params) if params else {}
        unknown = [key for key in supplied if key not in self.PARAMS]
        if unknown:
            valid = ", ".join(self.PARAMS) if self.PARAMS else "(none)"
            raise ConfigError(
                f"search strategy {self.name!r} does not accept "
                f"parameter(s) {', '.join(sorted(unknown))}; valid "
                f"parameters: {valid}", diagnostic_code="SC210")
        self.params: Dict[str, Any] = {}
        for key, (parser, default) in self.PARAMS.items():
            if key in supplied:
                try:
                    self.params[key] = parser(supplied[key])
                except (TypeError, ValueError) as exc:
                    raise ConfigError(
                        f"search strategy {self.name!r}: invalid value "
                        f"{supplied[key]!r} for parameter {key!r}: {exc}",
                        diagnostic_code="SC210") from None
            else:
                self.params[key] = default
        # Populated by bind().
        self.config = None
        self.rng: Optional[Random] = None
        self._take_uid: Optional[Callable[[], int]] = None

    # -- engine wiring ------------------------------------------------------

    def bind(self, config, rng: Random,
             take_uid: Callable[[], int]) -> None:
        """Attach the run context.  Called once by the engine before
        any population is proposed."""
        config.validate()
        self.config = config
        self.rng = rng
        self._take_uid = take_uid
        self._bound()

    def _bound(self) -> None:
        """Hook for subclasses to resolve operators / validate params
        against the now-available configuration."""

    def take_uid(self) -> int:
        if self._take_uid is None:
            raise ConfigError(
                f"search strategy {self.name!r} is not bound to an "
                "engine; call bind() first")
        return self._take_uid()

    # -- the search contract ------------------------------------------------

    def initial_population(self) -> Population:
        """Propose generation 0.

        The default replicates the engine's historical seeding exactly:
        clone a seed-population file when configured (paper III.D), else
        draw ``population_size`` random individuals from the bound RNG.
        """
        ga = self.config.ga
        if self.config.seed_population_file is not None:
            loaded = load_population(self.config.seed_population_file,
                                     expected_size=ga.population_size)
            individuals = []
            for individual in loaded:
                clone = individual.clone(uid=self.take_uid())
                individuals.append(clone)
            return Population(individuals, number=0)
        individuals = [
            random_individual(self.config.library, ga.individual_size,
                              self.rng, uid=self.take_uid())
            for _ in range(ga.population_size)
        ]
        return Population(individuals, number=0)

    def observe(self, population: Population) -> None:
        """Receive the just-evaluated population.  Called once per
        generation, after evaluation and before the engine checkpoints.
        Strategies that keep state beyond the population (incumbents,
        temperatures) update it here."""

    def next_population(self, population: Population,
                        next_number: int) -> Population:
        """Propose generation ``next_number`` from the evaluated
        ``population``."""
        raise NotImplementedError

    # -- checkpoint support -------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Strategy state for checkpoints — everything :meth:`observe`
        accumulates that the population/RNG snapshot does not already
        capture.  Must be picklable and round-trip through
        :meth:`load_state`.  Stateless strategies return ``{}``."""
        return {}

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output on resume."""
        if state:
            raise ConfigError(
                f"search strategy {self.name!r} is stateless but the "
                f"checkpoint carries state keys "
                f"{', '.join(sorted(state))}; the checkpoint was "
                "written by a different strategy or version")

    # -- shared helpers -----------------------------------------------------

    def random_population(self, number: int) -> Population:
        """``population_size`` fresh random individuals (the paper's
        random baseline; also the annealer/climber restart move)."""
        ga = self.config.ga
        individuals = [
            random_individual(self.config.library, ga.individual_size,
                              self.rng, uid=self.take_uid())
            for _ in range(ga.population_size)
        ]
        return Population(individuals, number=number)
