"""Random search — the paper's baseline (Section III.A, Figure 5).

Every generation is ``population_size`` fresh random individuals; no
information flows between generations.  The engine still tracks the
best individual seen across the whole run, so a random-search
:class:`~repro.core.engine.RunHistory` is directly comparable to a GA
one — exactly the comparison the paper uses to justify the GA.
"""

from __future__ import annotations

from ..core.population import Population
from .base import STRATEGIES, SearchStrategy

__all__ = ["RandomStrategy"]


@STRATEGIES.register("random")
class RandomStrategy(SearchStrategy):
    """Independent random sampling each generation.

    Stateless beyond the RNG stream (which the engine checkpoints), so
    ``state_dict`` is empty.  Generation 0 honours a configured
    seed-population file like every strategy — the baseline comparison
    stays apples-to-apples when both searches start from the same
    seeds.
    """

    name = "random"
    PARAMS = {}

    def next_population(self, population: Population,
                        next_number: int) -> Population:
        return self.random_population(next_number)
