"""Operator registries: selection, crossover, mutation, replacement.

The paper fixes one operator set (tournament selection, one-point
crossover, whole-instruction/operand mutation, elitism — Table I) but
motivates each choice by comparison, so the reproduction makes every
slot pluggable and name-addressable:

* **selection** — how breeding parents are picked from an evaluated
  population.  ``tournament`` is the paper's default; ``roulette``
  (fitness-proportional) and ``rank`` (linear ranking) are the classic
  alternatives the GA literature ablates against.
* **crossover** — ``one_point`` (paper default) and ``uniform``,
  re-exported from :mod:`repro.core.operators` where the primitive
  implementations live.
* **mutation** — the paper's mixed whole-instruction/operand mutation
  (``default``) plus single-kind variants for ablations.
* **replacement** — how the next generation starts before children are
  bred into it: ``elitist`` copies the fittest individual unchanged
  (paper default), ``generational`` starts empty.

Uniform call signatures keep strategies operator-agnostic:

* selection: ``op(individuals, rng, ga) -> Individual``
* crossover: ``op(parent1, parent2, rng) -> (genome, genome)``
* mutation:  ``op(genome, library, rng, ga) -> genome``
* replacement: ``op(population, take_uid) -> List[Individual]``

where ``ga`` is the run's :class:`~repro.core.config.GAParameters`.
The registered ``tournament``/``one_point``/``default``/``elitist``
entries delegate to the exact pre-refactor code paths with the exact
pre-refactor RNG draw order — the default-strategy equivalence gate
depends on it.
"""

from __future__ import annotations

import warnings
from random import Random
from typing import Callable, List, Sequence, Set, Tuple

from ..core.errors import ConfigError
from ..core.individual import Individual
from ..core.operators import (mutate, one_point_crossover,
                              tournament_select, uniform_crossover)
from .registry import Registry

__all__ = [
    "SELECTION_OPERATORS", "CROSSOVER_OPERATORS", "MUTATION_OPERATORS",
    "REPLACEMENT_POLICIES",
    "roulette_select", "rank_select",
]

SELECTION_OPERATORS = Registry("parent_selection_method",
                               diagnostic_code="SC209")
CROSSOVER_OPERATORS = Registry("crossover_operator",
                               diagnostic_code="SC209")
MUTATION_OPERATORS = Registry("mutation_operator",
                              diagnostic_code="SC209")
REPLACEMENT_POLICIES = Registry("replacement_policy",
                                diagnostic_code="SC209")


def _fitness(individual: Individual) -> float:
    if individual.fitness is None:
        raise ConfigError(
            f"individual uid={individual.uid} has not been evaluated; "
            "selection requires fitness values")
    return individual.fitness


# -- selection --------------------------------------------------------------

@SELECTION_OPERATORS.register("tournament")
def _tournament(individuals: Sequence[Individual], rng: Random,
                ga) -> Individual:
    return tournament_select(individuals, rng, ga.tournament_size)


@SELECTION_OPERATORS.register("roulette")
def roulette_select(individuals: Sequence[Individual], rng: Random,
                    ga=None) -> Individual:
    """Fitness-proportional selection (one spin of the wheel).

    Fitness values in this framework are non-negative (compile and
    screen failures score exactly 0), so the wheel is the plain fitness
    sum.  A population whose total fitness is 0 — every individual
    failed — degrades to a uniform pick so the search can still move.
    """
    if not individuals:
        raise ConfigError("cannot select from an empty population")
    total = 0.0
    for individual in individuals:
        value = _fitness(individual)
        if value < 0:
            raise ConfigError(
                f"roulette selection requires non-negative fitness; "
                f"individual uid={individual.uid} has {value}")
        total += value
    if total <= 0.0:
        return individuals[rng.randrange(len(individuals))]
    pick = rng.random() * total
    accumulated = 0.0
    for individual in individuals:
        accumulated += individual.fitness
        if pick < accumulated:
            return individual
    return individuals[-1]


@SELECTION_OPERATORS.register("rank")
def rank_select(individuals: Sequence[Individual], rng: Random,
                ga=None) -> Individual:
    """Linear-rank selection: weight ∝ rank (worst 1 … best n).

    Rank selection keeps selection pressure constant regardless of the
    fitness scale — useful when the measured metric spans a narrow band
    (e.g. IPC between 1.2 and 1.5) and roulette would be near-uniform.
    Ties keep population order (stable sort), so the draw is fully
    deterministic under a seeded RNG.
    """
    if not individuals:
        raise ConfigError("cannot select from an empty population")
    n = len(individuals)
    ascending = sorted(individuals, key=_fitness)
    pick = rng.random() * (n * (n + 1) / 2.0)
    accumulated = 0.0
    for rank, individual in enumerate(ascending, start=1):
        accumulated += rank
        if pick < accumulated:
            return individual
    return ascending[-1]


# -- crossover --------------------------------------------------------------

CROSSOVER_OPERATORS.register("one_point", one_point_crossover)
CROSSOVER_OPERATORS.register("uniform", uniform_crossover)


# -- mutation ---------------------------------------------------------------

@MUTATION_OPERATORS.register("default")
def _mutate_default(genome: List, library, rng: Random, ga) -> List:
    """The paper's mixed mutation: whole-instruction or single-operand
    per ``operand_mutation_share``."""
    return mutate(genome, library, rng, ga.mutation_rate,
                  ga.operand_mutation_share)


@MUTATION_OPERATORS.register("operand_only")
def _mutate_operand_only(genome: List, library, rng: Random, ga) -> List:
    """Only operand resampling (operand-less instructions still replace
    wholesale — they have no operand to resample)."""
    return mutate(genome, library, rng, ga.mutation_rate, 1.0)


@MUTATION_OPERATORS.register("instruction_only")
def _mutate_instruction_only(genome: List, library, rng: Random,
                             ga) -> List:
    """Only whole-instruction replacement."""
    return mutate(genome, library, rng, ga.mutation_rate, 0.0)


# -- replacement ------------------------------------------------------------

@REPLACEMENT_POLICIES.register("elitist")
def _elitist(population, take_uid: Callable[[], int]) -> List[Individual]:
    """Seed the next generation with an unchanged copy of the fittest
    individual (paper Figure 3's elitism arrow)."""
    elite = population.fittest()
    return [elite.clone(uid=take_uid(), parent_ids=(elite.uid,))]


@REPLACEMENT_POLICIES.register("generational")
def _generational(population, take_uid: Callable[[], int]
                  ) -> List[Individual]:
    """Full generational replacement: nothing survives unmutated."""
    return []
