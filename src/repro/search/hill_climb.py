"""Parallel hill climbing over the instruction-sequence space.

A single incumbent is tracked; every generation proposes
``population_size`` mutated neighbours of it (evaluated as one batch —
the framework's population machinery doubles as a parallel neighbour
sweep), and the incumbent moves only to a strictly better neighbour.
This is the natural "local search" baseline between the paper's random
baseline and the full GA: it exploits locality (good stress kernels are
usually one instruction swap away from good stress kernels) but cannot
cross fitness valleys — exactly the failure mode simulated annealing
(:mod:`repro.search.annealing`) addresses.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..core.errors import ConfigError
from ..core.individual import Individual
from ..core.population import Population
from .base import STRATEGIES, SearchStrategy
from .operators import MUTATION_OPERATORS

__all__ = ["HillClimbStrategy"]


@STRATEGIES.register("hill_climb")
class HillClimbStrategy(SearchStrategy):
    """Steepest-ascent hill climbing with a batched neighbourhood.

    Parameters:

    * ``mutation`` — the neighbour move, any registered mutation
      operator (default ``default``: the paper's mixed instruction/
      operand mutation, giving small steps at the configured
      ``mutation_rate``).

    The incumbent is strategy state: it survives checkpoints via
    ``state_dict`` so a resumed climb continues from the same point in
    the landscape.
    """

    name = "hill_climb"
    PARAMS = {
        "mutation": (str, "default"),
    }

    def __init__(self, params: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(params)
        self._current: Optional[Individual] = None

    def _bound(self) -> None:
        self._mutate = MUTATION_OPERATORS.get(self.params["mutation"])

    def observe(self, population: Population) -> None:
        fittest = population.fittest()
        if fittest.fitness is None:
            return
        if self._current is None or self._current.fitness is None or \
                fittest.fitness > self._current.fitness:
            self._current = fittest

    def next_population(self, population: Population,
                        next_number: int) -> Population:
        if self._current is None:
            # Every individual failed to evaluate; restart randomly
            # rather than climbing from nothing.
            return self.random_population(next_number)
        ga = self.config.ga
        current = self._current
        children = []
        if ga.elitism:
            children.append(current.clone(uid=self.take_uid(),
                                          parent_ids=(current.uid,)))
        while len(children) < ga.population_size:
            mutated = self._mutate(list(current.instructions),
                                   self.config.library, self.rng, ga)
            children.append(Individual(mutated, uid=self.take_uid(),
                                       parent_ids=(current.uid,)))
        return Population(children, number=next_number)

    # -- checkpoint support -------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {"current": self._current}

    def load_state(self, state: Dict[str, Any]) -> None:
        unexpected = set(state) - {"current"}
        if unexpected:
            raise ConfigError(
                f"hill_climb checkpoint state has unexpected key(s) "
                f"{', '.join(sorted(unexpected))}; the checkpoint was "
                "written by a different strategy or version")
        current = state.get("current")
        if current is not None and not isinstance(current, Individual):
            raise ConfigError(
                "hill_climb checkpoint state 'current' is not an "
                "Individual")
        self._current = current
