"""Pluggable search strategies over the fixed evaluation core.

The paper's framework evolves stress-tests with a GA, but everything
below the search — template rendering, assembly, measurement, scoring —
is search-agnostic (and since PR 2 lives in :mod:`repro.evaluation`).
This package makes the search itself a swappable module, the way
MicroGrad centralises tuning mechanisms over a fixed evaluation core:

* :mod:`repro.search.registry` — named registries with
  list-the-choices / nearest-match error messages;
* :mod:`repro.search.operators` — selection, crossover, mutation and
  replacement operator registries (the GA's moving parts);
* :mod:`repro.search.base` — the :class:`SearchStrategy` contract and
  the strategy registry;
* strategies: ``genetic`` (the paper's GA, bit-identical to the
  pre-refactor engine), ``random`` (the paper's baseline),
  ``hill_climb``, ``simulated_annealing``, ``static_rank`` (a wrapper
  pruning any base strategy's offspring by static predicted fitness)
  and ``surrogate`` (a wrapper pruning by an online-learned ridge
  model, see :mod:`repro.surrogate`).

Importing this package registers every built-in operator and strategy.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .base import STRATEGIES, SearchStrategy
from .genetic import GeneticStrategy  # isort:skip — registration order
from .random_search import RandomStrategy  # isort:skip
from .hill_climb import HillClimbStrategy  # isort:skip
from .annealing import SimulatedAnnealingStrategy  # isort:skip
from .static_rank import StaticRankStrategy  # isort:skip
from .surrogate import SurrogateStrategy  # isort:skip
from .operators import (CROSSOVER_OPERATORS, MUTATION_OPERATORS,
                        REPLACEMENT_POLICIES, SELECTION_OPERATORS)
from .registry import Registry, suggest

__all__ = [
    "Registry", "suggest",
    "SELECTION_OPERATORS", "CROSSOVER_OPERATORS", "MUTATION_OPERATORS",
    "REPLACEMENT_POLICIES", "STRATEGIES",
    "SearchStrategy", "GeneticStrategy", "RandomStrategy",
    "HillClimbStrategy", "SimulatedAnnealingStrategy",
    "StaticRankStrategy", "SurrogateStrategy",
    "make_strategy",
]


def make_strategy(name: str,
                  params: Optional[Dict[str, Any]] = None
                  ) -> SearchStrategy:
    """Instantiate a registered strategy by name.

    ``params`` are the strategy's own parameters (the ``<search>``
    block attributes / ``<param>`` children); unknown names and bad
    values raise :class:`~repro.core.errors.ConfigError` with the valid
    choices listed.
    """
    cls = STRATEGIES.get(name)
    return cls(params)
