"""Simulated annealing over the instruction-sequence space.

Like the hill climber, one incumbent proposes ``population_size``
mutated neighbours per generation (a batched random walk — the
evaluation layer measures them all in one pass).  Unlike the climber,
acceptance is the Metropolis criterion: a worse candidate is accepted
with probability ``exp(Δfitness / T)``, and the temperature ``T``
decays geometrically each generation.  Early generations explore across
fitness valleys; late generations behave like hill climbing.

The temperature is genuine strategy state — it cannot be recovered from
the population or the RNG stream — so it rides in every checkpoint via
``state_dict`` and a resumed run cools from exactly where it stopped.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from ..core.errors import ConfigError
from ..core.individual import Individual
from ..core.population import Population
from .base import STRATEGIES, SearchStrategy
from .operators import MUTATION_OPERATORS

__all__ = ["SimulatedAnnealingStrategy"]


def _positive_float(value) -> float:
    number = float(value)
    if number <= 0.0:
        raise ValueError("must be > 0")
    return number


def _cooling_factor(value) -> float:
    number = float(value)
    if not 0.0 < number <= 1.0:
        raise ValueError("must be within (0, 1]")
    return number


@STRATEGIES.register("simulated_annealing")
class SimulatedAnnealingStrategy(SearchStrategy):
    """Metropolis walk with geometric cooling.

    Parameters:

    * ``initial_temperature`` (default 1.0) — the starting ``T``; set
      it near the typical fitness delta between neighbours so early
      acceptance of worse moves is likely but not certain.
    * ``cooling`` (default 0.95) — per-generation decay factor,
      ``T ← max(min_temperature, T × cooling)``.
    * ``min_temperature`` (default 1e-3) — cooling floor; keeps the
      acceptance probability well-defined and leaves a trickle of
      exploration even in long runs.
    * ``mutation`` (default ``default``) — the neighbour move, any
      registered mutation operator.
    """

    name = "simulated_annealing"
    PARAMS = {
        "initial_temperature": (_positive_float, 1.0),
        "cooling": (_cooling_factor, 0.95),
        "min_temperature": (_positive_float, 1e-3),
        "mutation": (str, "default"),
    }

    def __init__(self, params: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(params)
        self._current: Optional[Individual] = None
        self._temperature: float = self.params["initial_temperature"]

    def _bound(self) -> None:
        self._mutate = MUTATION_OPERATORS.get(self.params["mutation"])

    def observe(self, population: Population) -> None:
        """Metropolis-walk the evaluated candidates in population order,
        then cool once for the generation."""
        for candidate in population:
            if candidate.fitness is None:
                continue
            if self._current is None or self._current.fitness is None:
                self._current = candidate
                continue
            delta = candidate.fitness - self._current.fitness
            if delta >= 0.0:
                self._current = candidate
            elif self.rng.random() < math.exp(delta / self._temperature):
                self._current = candidate
        self._temperature = max(self.params["min_temperature"],
                                self._temperature * self.params["cooling"])

    def next_population(self, population: Population,
                        next_number: int) -> Population:
        if self._current is None:
            return self.random_population(next_number)
        ga = self.config.ga
        current = self._current
        children = []
        if ga.elitism:
            children.append(current.clone(uid=self.take_uid(),
                                          parent_ids=(current.uid,)))
        while len(children) < ga.population_size:
            mutated = self._mutate(list(current.instructions),
                                   self.config.library, self.rng, ga)
            children.append(Individual(mutated, uid=self.take_uid(),
                                       parent_ids=(current.uid,)))
        return Population(children, number=next_number)

    # -- checkpoint support -------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {"current": self._current,
                "temperature": self._temperature}

    def load_state(self, state: Dict[str, Any]) -> None:
        unexpected = set(state) - {"current", "temperature"}
        if unexpected:
            raise ConfigError(
                f"simulated_annealing checkpoint state has unexpected "
                f"key(s) {', '.join(sorted(unexpected))}; the "
                "checkpoint was written by a different strategy or "
                "version")
        if "temperature" in state:
            try:
                self._temperature = _positive_float(state["temperature"])
            except (TypeError, ValueError):
                raise ConfigError(
                    "simulated_annealing checkpoint state has a "
                    f"non-positive temperature "
                    f"{state.get('temperature')!r}") from None
        current = state.get("current")
        if current is not None and not isinstance(current, Individual):
            raise ConfigError(
                "simulated_annealing checkpoint state 'current' is not "
                "an Individual")
        self._current = current
