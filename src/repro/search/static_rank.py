"""Surrogate-assisted search: static ranking in front of any strategy.

The ROADMAP's surrogate item asks for exactly what the static cost
model provides: a per-candidate fitness proxy cheap enough to price a
whole generation for less than one simulated measurement.  This module
packages it as a *wrapper* strategy — ``static_rank`` composes with any
registered base strategy (default: the paper's GA) and interposes on
its proposals:

1. the base strategy proposes the next generation as usual (same RNG
   stream, same uid allocation — the wrapper draws no randomness);
2. offspring whose exact genome was already simulated replay their
   recorded measurements (the per-source noise substream makes a
   re-measurement bit-identical, so the replay is exact, not an
   approximation);
3. the remaining fresh offspring are assembled and priced with
   :func:`repro.staticcheck.costmodel.static_score`; only the top
   ``top_fraction`` enter the simulated measurement path;
4. pruned offspring are pre-marked with a placeholder fitness strictly
   below every simulated fitness, rank-ordered by their static score —
   they stay comparable to each other under tournament selection but
   can never beat a measured individual or surface as the run's best.

Per generation the wrapper records how well the static ordering
predicted the simulated one (Spearman rank correlation over the
individuals that were actually measured); the engine attaches the
record to :class:`~repro.core.engine.GenerationStats` and it lands in
``stats.jsonl`` for analysis.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import AssemblyError, ConfigError
from ..core.individual import Individual
from ..core.population import Population
from ..core.template import Template
from ..cpu.microarch import microarch_for
from ..isa import assembler_for
from ..staticcheck.configlint import detect_syntax
from ..staticcheck.costmodel import spearman, static_score
from .base import STRATEGIES, SearchStrategy

__all__ = ["StaticRankStrategy"]

#: Default microarchitecture per SimISA syntax when the ``platform``
#: parameter is omitted: the stock CLI platform for ARM templates, the
#: only x86 preset otherwise.  Ranking survives a latency-table
#: mismatch (only the ordering matters), but configs searching a
#: specific platform should name it.
_DEFAULT_PLATFORM = {"arm": "cortex_a15", "x86": "athlon_x4"}


def _fraction(value) -> float:
    fraction = float(value)
    if not 0.0 < fraction <= 1.0:
        raise ValueError("top_fraction must be in (0, 1]")
    return fraction


def _optional_text(value) -> Optional[str]:
    if value is None:
        return None
    text = str(value).strip()
    return text or None


@STRATEGIES.register("static_rank")
class StaticRankStrategy(SearchStrategy):
    """Static-cost-model pruning wrapped around a base strategy.

    Parameters
    ----------
    base:
        Registered name of the wrapped strategy (default ``genetic``).
    platform:
        Microarchitecture preset whose latency/port/energy tables price
        the candidates; defaults per the template's syntax
        (:data:`_DEFAULT_PLATFORM`).
    metric:
        What :func:`static_score` predicts — ``ipc`` or one of the
        power-family metrics (``power``/``energy``/``temperature``/
        ``didt``).  Default ``ipc``.
    top_fraction:
        Fraction of each generation's fresh offspring sent to full
        simulation (default 0.5); the rest are pruned with placeholder
        fitnesses.  Generation 0 is always fully measured — it anchors
        the search and the first Spearman record.
    """

    name = "static_rank"
    PARAMS = {
        "base": (str, "genetic"),
        "platform": (_optional_text, None),
        "metric": (str, "ipc"),
        "top_fraction": (_fraction, 0.5),
    }

    def _bound(self) -> None:
        base_name = self.params["base"]
        if base_name == self.name:
            raise ConfigError(
                "search strategy 'static_rank' cannot wrap itself; "
                "pick a concrete base strategy (e.g. base=\"genetic\")",
                diagnostic_code="SC210")
        base_cls = STRATEGIES.get(base_name)
        self._base: SearchStrategy = base_cls(None)
        self._base.bind(self.config, self.rng, self._take_uid)

        platform = self.params["platform"]
        if platform is None:
            syntax = detect_syntax(self.config.template_text)
            if syntax is None:
                raise ConfigError(
                    "search strategy 'static_rank' cannot infer the "
                    "target platform: the template assembles under "
                    "neither SimISA syntax; set the 'platform' "
                    "parameter explicitly", diagnostic_code="SC210")
            platform = _DEFAULT_PLATFORM[syntax]
        self._arch = microarch_for(platform)
        self._assembler = assembler_for(self._arch.isa)
        self._template = Template(self.config.template_text)
        self._metric = self.params["metric"]

        # Surrogate state (all checkpointed via state_dict):
        #: genome key -> (measurements, fitness, compile_failed,
        #: screen_failed) of every simulated individual seen so far.
        self._memo: Dict[Tuple, Tuple] = {}
        #: genome key -> static score; elitism clones and replayed
        #: genomes recur every generation, and their static score is a
        #: pure function of the genome, so it is never recomputed.
        self._score_memo: Dict[Tuple, float] = {}
        #: Lowest simulated fitness observed; placeholder fitnesses of
        #: pruned candidates live strictly below it.
        self._floor = 0.0
        #: uid -> static score for candidates sent to simulation this
        #: generation (feeds the Spearman record in observe()).
        self._pending_scores: Dict[int, float] = {}
        self._pruned_uids: set = set()
        self._replayed = 0
        self._selected = 0
        self._last_metrics: Optional[Dict[str, Any]] = None

    # -- scoring ------------------------------------------------------------

    def _score(self, individual: Individual) -> float:
        """Static predicted fitness; -inf for unassemblable genomes
        (they would compile-fail to fitness 0 anyway, so they rank
        last and are the first pruned).  Memoised per genome."""
        key = individual.genome_key()
        cached = self._score_memo.get(key)
        if cached is not None:
            return cached
        source = self._template.instantiate(individual.render_body())
        try:
            program = self._assembler.assemble(
                source, name=f"uid{individual.uid}.s")
        except AssemblyError:
            score = float("-inf")
        else:
            score = static_score(program, self._arch, self._metric)
        self._score_memo[key] = score
        return score

    # -- the search contract ------------------------------------------------

    def initial_population(self) -> Population:
        population = self._base.initial_population()
        # Generation 0 is fully measured; score it anyway so the first
        # stats.jsonl record already carries a Spearman figure.
        self._pending_scores = {
            individual.uid: self._score(individual)
            for individual in population if not individual.evaluated}
        self._pruned_uids = set()
        self._replayed = 0
        self._selected = len(self._pending_scores)
        return population

    def next_population(self, population: Population,
                        next_number: int) -> Population:
        children = self._base.next_population(population, next_number)
        pending: List[Individual] = []
        replayed: List[Individual] = []
        self._replayed = 0
        for child in children:
            if child.evaluated:
                continue
            hit = self._memo.get(child.genome_key())
            if hit is not None:
                measurements, fitness, compile_failed, screen_failed = hit
                child.record_evaluation(list(measurements), fitness,
                                        compile_failed=compile_failed,
                                        screen_failed=screen_failed)
                replayed.append(child)
                self._replayed += 1
            else:
                pending.append(child)

        scores = {child.uid: self._score(child) for child in pending}
        if self.params["top_fraction"] >= 1.0:
            # No-prune short-circuit: everything is simulated, so the
            # ranking sort and the placeholder machinery are dead work.
            selected: List[Individual] = pending
            pruned: List[Individual] = []
        else:
            ranked = sorted(pending, key=lambda c: (-scores[c.uid], c.uid))
            keep = max(1, math.ceil(self.params["top_fraction"]
                                    * len(ranked))) if ranked else 0
            selected, pruned = ranked[:keep], ranked[keep:]

        # Placeholder fitnesses: strictly inside (floor - 1, floor),
        # ordered by static rank, so pruned candidates keep a useful
        # ordering under tournament selection yet never outrank any
        # measured individual (simulated fitnesses are >= floor).
        span = len(pruned) + 1
        for position, child in enumerate(pruned):
            placeholder = self._floor - 1.0 + (len(pruned) - position) / span
            child.record_evaluation([], placeholder)
        self._pending_scores = {c.uid: scores[c.uid] for c in selected}
        # Replayed children carry a real simulated fitness, so their
        # static scores widen the Spearman sample at negligible cost.
        for child in replayed:
            self._pending_scores[child.uid] = self._score(child)
        self._pruned_uids = {c.uid for c in pruned}
        self._selected = len(selected)
        return children

    def observe(self, population: Population) -> None:
        self._base.observe(population)
        pairs: List[Tuple[float, float]] = []
        new_floor = self._floor
        for individual in population:
            if individual.uid in self._pruned_uids:
                continue
            if individual.fitness is None:
                continue
            self._memo.setdefault(
                individual.genome_key(),
                (tuple(individual.measurements), individual.fitness,
                 individual.compile_failed, individual.screen_failed))
            new_floor = min(new_floor, individual.fitness)
            score = self._pending_scores.get(individual.uid)
            if score is not None:
                pairs.append((score, individual.fitness))
        self._floor = new_floor
        rho = spearman([p[0] for p in pairs], [p[1] for p in pairs]) \
            if len(pairs) >= 2 else None
        self._last_metrics = {
            "base": self._base.name,
            "platform": self._arch.name,
            "metric": self._metric,
            "simulated": self._selected,
            "pruned": len(self._pruned_uids),
            "replayed": self._replayed,
            "spearman": rho,
        }

    def generation_metrics(self, number: int) -> Optional[Dict[str, Any]]:
        """The surrogate record the engine attaches to
        :class:`~repro.core.engine.GenerationStats` (and stats.jsonl)."""
        return self._last_metrics

    # -- checkpoint support -------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "base_state": self._base.state_dict(),
            "memo": dict(self._memo),
            "score_memo": dict(self._score_memo),
            "floor": self._floor,
            "pending_scores": dict(self._pending_scores),
            "pruned_uids": sorted(self._pruned_uids),
            "replayed": self._replayed,
            "selected": self._selected,
            "last_metrics": self._last_metrics,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        if not state:
            return
        self._base.load_state(state.get("base_state") or {})
        self._memo = dict(state.get("memo") or {})
        self._score_memo = dict(state.get("score_memo") or {})
        self._floor = state.get("floor", 0.0)
        self._pending_scores = dict(state.get("pending_scores") or {})
        self._pruned_uids = set(state.get("pruned_uids") or ())
        self._replayed = state.get("replayed", 0)
        self._selected = state.get("selected", 0)
        self._last_metrics = state.get("last_metrics")
