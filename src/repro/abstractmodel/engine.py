"""GA over abstract workload profiles (paper Section VII).

The MAMPO/SYMPO-style search loop: the genome is a
:class:`WorkloadProfile` vector, GA operators act on the vector, and
each evaluation stochastically *generates* assembly from the profile
before measuring it.  The measurement/fitness plug-ins are exactly the
ones the instruction-level engine uses, so comparisons between the two
framework styles hold everything else constant.

Each individual carries a ``generation_seed`` gene: the code generated
for a profile is deterministic per individual (so fitness is
repeatable) but resamples under mutation — giving the abstract search
its characteristic semi-random relationship between genome and code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.engine import FitnessProtocol, MeasurementProtocol
from ..core.errors import AssemblyError, ConfigError
from ..core.individual import Individual as _CodeIndividual
from ..core.rng import make_rng
from ..core.template import Template
from .generator import generate_loop
from .profile import WorkloadProfile

__all__ = ["AbstractIndividual", "AbstractGenerationStats",
           "AbstractEngine"]


@dataclass
class AbstractIndividual:
    """One abstract genome plus its realisation and evaluation."""

    profile: WorkloadProfile
    generation_seed: int
    uid: int = -1
    loop_body: str = ""
    measurements: List[float] = field(default_factory=list)
    fitness: Optional[float] = None

    @property
    def evaluated(self) -> bool:
        return self.fitness is not None


@dataclass
class AbstractGenerationStats:
    number: int
    best_fitness: float
    mean_fitness: float


class AbstractEngine:
    """Tournament GA over workload-profile vectors."""

    def __init__(self, measurement: MeasurementProtocol,
                 fitness: FitnessProtocol,
                 template_text: str,
                 loop_size: int = 50,
                 population_size: int = 24,
                 generations: int = 30,
                 tournament_size: int = 5,
                 elitism: bool = True,
                 seed: Optional[int] = None) -> None:
        if population_size < 2 or generations < 1 or loop_size < 1:
            raise ConfigError("invalid abstract GA parameters")
        self.measurement = measurement
        self.fitness = fitness
        self.template = Template(template_text)
        self.loop_size = loop_size
        self.population_size = population_size
        self.generations = generations
        self.tournament_size = tournament_size
        self.elitism = elitism
        self.rng = make_rng(seed)
        self._next_uid = 0
        self.history: List[AbstractGenerationStats] = []
        self.best: Optional[AbstractIndividual] = None

    # -- evaluation --------------------------------------------------------

    def _realise(self, individual: AbstractIndividual) -> str:
        body = generate_loop(individual.profile, self.loop_size,
                             make_rng(individual.generation_seed))
        individual.loop_body = body
        return self.template.instantiate(body)

    def _evaluate(self, individual: AbstractIndividual) -> None:
        if individual.evaluated:
            return
        source = self._realise(individual)
        # The fitness plug-ins inspect the individual's instruction
        # stream for e.g. simplicity scores; hand them a code-level
        # view so the same classes serve both engines.
        try:
            measurements = self.measurement.measure(source, None)
        except AssemblyError:
            individual.measurements = [0.0]
            individual.fitness = 0.0
            return
        individual.measurements = list(measurements)
        individual.fitness = self.fitness.get_fitness(
            measurements, _CodeIndividual([]))
        if self.best is None or individual.fitness > self.best.fitness:
            self.best = individual

    # -- GA loop --------------------------------------------------------------

    def _spawn(self, profile: WorkloadProfile) -> AbstractIndividual:
        uid = self._next_uid
        self._next_uid += 1
        return AbstractIndividual(profile=profile,
                                  generation_seed=self.rng.getrandbits(32),
                                  uid=uid)

    def _select(self, population: List[AbstractIndividual]
                ) -> AbstractIndividual:
        best = population[self.rng.randrange(len(population))]
        for _ in range(self.tournament_size - 1):
            contender = population[self.rng.randrange(len(population))]
            if contender.fitness > best.fitness:
                best = contender
        return best

    def run(self) -> AbstractIndividual:
        population = [self._spawn(WorkloadProfile.random(self.rng))
                      for _ in range(self.population_size)]
        for number in range(self.generations):
            for individual in population:
                self._evaluate(individual)
            ranked = sorted(population, key=lambda i: i.fitness,
                            reverse=True)
            self.history.append(AbstractGenerationStats(
                number=number,
                best_fitness=ranked[0].fitness,
                mean_fitness=sum(i.fitness for i in population)
                / len(population)))
            if number == self.generations - 1:
                break
            children: List[AbstractIndividual] = []
            if self.elitism:
                elite = AbstractIndividual(
                    profile=ranked[0].profile,
                    generation_seed=ranked[0].generation_seed,
                    uid=self._next_uid)
                self._next_uid += 1
                elite.measurements = list(ranked[0].measurements)
                elite.fitness = ranked[0].fitness
                elite.loop_body = ranked[0].loop_body
                children.append(elite)
            while len(children) < self.population_size:
                parent1 = self._select(population)
                parent2 = self._select(population)
                profile = parent1.profile.crossover(parent2.profile,
                                                    self.rng)
                profile = profile.mutate(self.rng)
                children.append(self._spawn(profile))
            population = children
        return self.best

    def best_fitness_series(self) -> List[float]:
        return [g.best_fitness for g in self.history]
