"""Abstract-workload-model GA — the competing framework style of the
paper's Table V (MAMPO / SYMPO / Joshi et al.), implemented so the
instruction-level-vs-abstract comparison can be run head to head."""

from .engine import (AbstractEngine, AbstractGenerationStats,
                     AbstractIndividual)
from .generator import generate_loop
from .profile import CATEGORIES, WorkloadProfile

__all__ = [
    "AbstractEngine", "AbstractGenerationStats", "AbstractIndividual",
    "generate_loop",
    "CATEGORIES", "WorkloadProfile",
]
