"""Abstract workload profiles (paper Section VII).

The competing GA-framework design the paper compares against (MAMPO,
SYMPO, Joshi et al.): "the individual is a vector of workload related
parameters such as instruction-mix, register-dependency distance,
memory-stride profile, branch transition rates etc.  The GA operators
are performed on this abstract workload profile.  A workload generator
stochastically generates the assembly ... code based on the values of
the abstract model parameters."

:class:`WorkloadProfile` is that parameter vector.  It deliberately
lacks what the paper identifies as the abstract model's blind spots:
it cannot pin individual opcodes, operand values or instruction order —
only distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from random import Random
from typing import Dict, Tuple

from ..core.errors import ConfigError

__all__ = ["CATEGORIES", "WorkloadProfile"]

#: The mix categories an abstract profile controls.
CATEGORIES: Tuple[str, ...] = ("int_short", "int_long", "float", "simd",
                               "mem_load", "mem_store", "branch")

#: Gene bounds.
_MIN_DEP, _MAX_DEP = 1, 12
_STRIDES = (8, 16, 32, 64, 128)


@dataclass(frozen=True)
class WorkloadProfile:
    """One abstract individual: mix weights + scalar knobs."""

    #: Relative weights per category (normalised at generation time).
    mix: Dict[str, float] = field(
        default_factory=lambda: {c: 1.0 for c in CATEGORIES})
    #: Register-reuse distance: how many distinct destination registers
    #: rotate before reuse (small = tight dependency chains).
    dependency_distance: int = 6
    #: Fraction of float/SIMD slots emitted as fused multiply-adds.
    fma_fraction: float = 0.5
    #: Memory offset stride in bytes.
    mem_stride: int = 16

    def validate(self) -> None:
        if set(self.mix) != set(CATEGORIES):
            raise ConfigError(
                f"profile mix must cover exactly {CATEGORIES}")
        if any(w < 0 for w in self.mix.values()):
            raise ConfigError("mix weights must be non-negative")
        if sum(self.mix.values()) <= 0:
            raise ConfigError("at least one mix weight must be positive")
        if not _MIN_DEP <= self.dependency_distance <= _MAX_DEP:
            raise ConfigError(
                f"dependency distance outside [{_MIN_DEP}, {_MAX_DEP}]")
        if not 0.0 <= self.fma_fraction <= 1.0:
            raise ConfigError("fma fraction outside [0, 1]")
        if self.mem_stride not in _STRIDES:
            raise ConfigError(f"mem stride must be one of {_STRIDES}")

    # -- derived ------------------------------------------------------------

    def normalized_mix(self) -> Dict[str, float]:
        total = sum(self.mix.values())
        return {c: w / total for c, w in self.mix.items()}

    # -- GA operators over the vector genome ----------------------------------

    @classmethod
    def random(cls, rng: Random) -> "WorkloadProfile":
        profile = cls(
            mix={c: rng.random() for c in CATEGORIES},
            dependency_distance=rng.randint(_MIN_DEP, _MAX_DEP),
            fma_fraction=rng.random(),
            mem_stride=_STRIDES[rng.randrange(len(_STRIDES))],
        )
        # Guard against the (vanishingly unlikely) all-zero draw.
        if sum(profile.mix.values()) == 0:
            profile = replace(profile, mix={c: 1.0 for c in CATEGORIES})
        profile.validate()
        return profile

    def mutate(self, rng: Random, sigma: float = 0.15) -> "WorkloadProfile":
        """Gaussian perturbation of one or two genes."""
        mix = dict(self.mix)
        dep = self.dependency_distance
        fma = self.fma_fraction
        stride = self.mem_stride
        for _ in range(rng.randint(1, 2)):
            gene = rng.randrange(4)
            if gene == 0:
                category = CATEGORIES[rng.randrange(len(CATEGORIES))]
                mix[category] = max(0.0,
                                    mix[category] + rng.gauss(0.0, sigma))
            elif gene == 1:
                dep = min(_MAX_DEP, max(_MIN_DEP,
                                        dep + rng.choice((-2, -1, 1, 2))))
            elif gene == 2:
                fma = min(1.0, max(0.0, fma + rng.gauss(0.0, sigma)))
            else:
                stride = _STRIDES[rng.randrange(len(_STRIDES))]
        if sum(mix.values()) == 0:
            mix = {c: 1.0 for c in CATEGORIES}
        child = WorkloadProfile(mix=mix, dependency_distance=dep,
                                fma_fraction=fma, mem_stride=stride)
        child.validate()
        return child

    def crossover(self, other: "WorkloadProfile",
                  rng: Random) -> "WorkloadProfile":
        """Arithmetic blend of the two parents' vectors."""
        alpha = rng.random()
        mix = {c: alpha * self.mix[c] + (1 - alpha) * other.mix[c]
               for c in CATEGORIES}
        dep = round(alpha * self.dependency_distance
                    + (1 - alpha) * other.dependency_distance)
        child = WorkloadProfile(
            mix=mix,
            dependency_distance=min(_MAX_DEP, max(_MIN_DEP, dep)),
            fma_fraction=alpha * self.fma_fraction
            + (1 - alpha) * other.fma_fraction,
            mem_stride=self.mem_stride if rng.random() < 0.5
            else other.mem_stride,
        )
        child.validate()
        return child

    def describe(self) -> str:
        mix = self.normalized_mix()
        parts = ", ".join(f"{c}={mix[c]:.2f}" for c in CATEGORIES
                          if mix[c] >= 0.01)
        return (f"mix[{parts}], dep={self.dependency_distance}, "
                f"fma={self.fma_fraction:.2f}, stride={self.mem_stride}")
