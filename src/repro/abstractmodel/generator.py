"""Stochastic code generator for abstract workload profiles.

"A workload generator stochastically generates the assembly ... code
based on the values of the abstract model parameters" (paper §VII).
Given a :class:`~repro.abstractmodel.profile.WorkloadProfile`, emits an
ARM-flavoured SimISA loop body whose *statistics* follow the profile —
but whose exact opcodes, operand values and instruction order are out
of the profile's control, which is precisely the disadvantage the
paper attributes to this framework family.
"""

from __future__ import annotations

from random import Random
from typing import List

from ..core.errors import ConfigError
from .profile import WorkloadProfile

__all__ = ["generate_loop"]

_INT_SHORT_OPS = ("add", "sub", "eor", "orr")
_INT_LONG_OPS = ("mul", "mla", "sdiv")
_FLOAT_OPS = ("fadd", "fmul")
_SIMD_OPS = ("vadd", "vmul", "veor")

#: Register pools matching the stock templates' conventions.
_INT_POOL = tuple(f"x{i}" for i in range(1, 7))
_MEM_DST = ("x7", "x8", "x9")
_VEC_POOL = tuple(f"v{i}" for i in range(16))
_BASES = ("x10", "x11")


def generate_loop(profile: WorkloadProfile, size: int,
                  rng: Random) -> str:
    """Emit ``size`` instructions drawn from the profile's mix."""
    profile.validate()
    if size < 1:
        raise ConfigError("loop size must be >= 1")

    mix = profile.normalized_mix()
    categories = list(mix)
    weights = [mix[c] for c in categories]
    dep = profile.dependency_distance

    lines: List[str] = []
    int_window = min(dep + 1, len(_INT_POOL))
    vec_window = min(dep + 1, len(_VEC_POOL))
    for slot in range(size):
        category = rng.choices(categories, weights=weights)[0]
        # Destinations rotate over a window of dep+1 registers, so the
        # value written at slot s is consumed ~dep slots later: a small
        # distance creates tight RAW chains, a large one exposes dep
        # parallel chains (high ILP) — the knob's textbook meaning.
        int_dst = _INT_POOL[slot % int_window]
        int_src1 = _INT_POOL[(slot - dep) % int_window]
        int_src2 = _INT_POOL[(slot - max(1, dep // 2)) % int_window]
        vec_dst = _VEC_POOL[slot % vec_window]
        vec_src1 = _VEC_POOL[(slot - dep) % vec_window]
        vec_src2 = _VEC_POOL[(slot - max(1, dep // 2)) % vec_window]

        if category == "int_short":
            op = _INT_SHORT_OPS[rng.randrange(len(_INT_SHORT_OPS))]
            lines.append(f"{op} {int_dst}, {int_src1}, {int_src2}")
        elif category == "int_long":
            op = _INT_LONG_OPS[rng.randrange(len(_INT_LONG_OPS))]
            if op == "mla":
                lines.append(f"mla {int_dst}, {int_src1}, {int_src2}, "
                             f"{_INT_POOL[slot % len(_INT_POOL)]}")
            else:
                lines.append(f"{op} {int_dst}, {int_src1}, {int_src2}")
        elif category == "float":
            if rng.random() < profile.fma_fraction:
                lines.append(f"fmla {vec_dst}, {vec_src1}, {vec_src2}")
            else:
                op = _FLOAT_OPS[rng.randrange(len(_FLOAT_OPS))]
                lines.append(f"{op} {vec_dst}, {vec_src1}, {vec_src2}")
        elif category == "simd":
            if rng.random() < profile.fma_fraction:
                lines.append(f"vfma {vec_dst}, {vec_src1}, {vec_src2}")
            else:
                op = _SIMD_OPS[rng.randrange(len(_SIMD_OPS))]
                lines.append(f"{op} {vec_dst}, {vec_src1}, {vec_src2}")
        elif category == "mem_load":
            offset = (slot * profile.mem_stride) % 256
            dst = _MEM_DST[slot % len(_MEM_DST)]
            base = _BASES[slot % len(_BASES)]
            lines.append(f"ldr {dst}, [{base}, #{offset}]")
        elif category == "mem_store":
            offset = (slot * profile.mem_stride) % 256
            base = _BASES[slot % len(_BASES)]
            lines.append(f"str {int_src1}, [{base}, #{offset}]")
        else:   # branch
            lines.append("b 1f\n1:")
    return "\n".join(lines)
