"""Shared-memory multi-core stress extension (paper Section IV).

The paper compares against MAMPO's finding that, on simulated
multi-cores, power viruses accessing shared memory draw significantly
more total power because the network-on-chip is heavily engaged — and
notes that adding this to GeST only needs a shared-memory template plus
shared-access instruction definitions ("This important extension is
beyond the scope of this work").  This driver implements it:

* the *private* search runs the stock template (both base registers in
  core-private memory);
* the *shared* search runs :func:`~repro.isa.catalogs.
  arm_shared_template`, whose second base register points into the
  shared segment, letting the GA route memory traffic over the NoC.

Both viruses are scored with one instance per core on the 8-core
server, where interconnect traffic scales with the instance count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.config import GAParameters, RunConfig
from ..core.engine import GeneticEngine
from ..core.individual import Individual
from ..cpu.machine import RunResult, SimulatedMachine
from ..cpu.target import SimulatedTarget
from ..fitness.default_fitness import DefaultFitness
from ..isa.catalogs import arm_library, arm_shared_template, arm_template
from ..measurement.power import PowerMeasurement
from .common import GAScale

__all__ = ["SHARED_SEED", "SharedMemoryResult", "shared_memory_experiment"]

SHARED_SEED = 51


@dataclass
class SharedMemoryResult:
    """Private-template vs shared-template power viruses."""

    private_virus: Individual
    shared_virus: Individual
    runs: Dict[str, RunResult] = field(default_factory=dict)
    shared_fraction: float = 0.0

    def chip_power_w(self) -> Dict[str, float]:
        return {name: run.avg_power_w for name, run in self.runs.items()}

    def noc_power_w(self) -> Dict[str, float]:
        return {name: run.noc_power_w for name, run in self.runs.items()}

    def render(self) -> str:
        lines = ["shared-memory extension on the 8-core server "
                 "(paper Section IV):"]
        for name, run in sorted(self.runs.items(),
                                key=lambda kv: -kv[1].avg_power_w):
            lines.append(
                f"  {name:16s} chip {run.avg_power_w:6.1f} W "
                f"(NoC {run.noc_power_w:5.1f} W, ipc {run.ipc:.2f})")
        lines.append(f"  shared virus routes "
                     f"{self.shared_fraction * 100:.0f}% of its memory "
                     "instructions through the shared segment")
        return "\n".join(lines)


def _evolve(template_text: str, seed: int,
            scale: GAScale) -> tuple:
    machine = SimulatedMachine("xgene2", environment="os", seed=seed)
    target = SimulatedTarget(machine)
    target.connect()
    ga = GAParameters(population_size=scale.population_size,
                      individual_size=scale.individual_size,
                      mutation_rate=scale.effective_mutation_rate(),
                      generations=scale.generations, seed=seed)
    config = RunConfig(ga=ga, library=arm_library(),
                       template_text=template_text)
    # Power measured with all 8 instances so the GA can feel the NoC
    # contribution (single-core shared traffic barely engages it).
    engine = GeneticEngine(
        config,
        PowerMeasurement(target, {"samples": str(scale.samples),
                                  "cores": "8"}),
        DefaultFitness())
    history = engine.run()
    return engine, history.best_individual


def shared_memory_experiment(seed: int = SHARED_SEED,
                             scale: Optional[GAScale] = None
                             ) -> SharedMemoryResult:
    """Evolve and compare private vs shared-memory power viruses."""
    scale = scale or GAScale(population_size=20, generations=25)
    private_engine, private_virus = _evolve(arm_template(), seed, scale)
    shared_engine, shared_virus = _evolve(arm_shared_template(), seed,
                                          scale)

    scorer = SimulatedMachine("xgene2", environment="os",
                              seed=seed + 10_000)
    result = SharedMemoryResult(private_virus=private_virus,
                                shared_virus=shared_virus)
    sources = {
        "privateVirus": private_engine.render_source(private_virus),
        "sharedVirus": shared_engine.render_source(shared_virus),
    }
    for name, source in sources.items():
        program = scorer.compile(source, name=name)
        result.runs[name] = scorer.run(program,
                                       cores=scorer.arch.core_count)
        if name == "sharedVirus":
            result.shared_fraction = \
                scorer.shared_access_fraction(program)
    return result
