"""Figure 8: dI/dt voltage-noise virus on the AMD Athlon X4.

The GA maximises the oscilloscope's peak-to-peak die voltage.  The
individual size follows the paper's rule of thumb::

    loop_length = IPC × f_clk / f_resonance,  IPC ≈ MAX_THEORETICAL_IPC / 2

so that one loop iteration spans one PDN resonance period — the GA then
fine-tunes the instruction order to shape low/high current phases at
that frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.reports import bar_chart, figure_rows
from ..cpu.machine import SimulatedMachine
from ..workloads.library import FIGURE_BASELINES
from .common import GAScale, VirusResult, evolve_virus, make_machine, \
    score_baselines

__all__ = ["didt_loop_length", "DIDT_SEED", "didt_scale",
           "VoltageNoiseFigureResult", "figure8"]

DIDT_SEED = 31


def didt_loop_length(machine: SimulatedMachine,
                     ipc: Optional[float] = None) -> int:
    """The paper's loop-length rule of thumb for dI/dt searches."""
    if ipc is None:
        ipc = machine.arch.max_ipc / 2.0
    return machine.pdn.resonant_loop_length(ipc)


def didt_scale(machine: Optional[SimulatedMachine] = None,
               population_size: int = 24,
               generations: int = 30) -> GAScale:
    """A GAScale with the resonance-derived individual size and the
    matching ~1-mutation-per-individual rate (paper Table I discussion:
    2% at 50 instructions, 8% at 15)."""
    machine = machine or make_machine("athlon_x4")
    size = didt_loop_length(machine)
    return GAScale(population_size=population_size,
                   generations=generations,
                   individual_size=size,
                   mutation_rate=max(0.02, round(1.0 / size, 4)))


@dataclass
class VoltageNoiseFigureResult:
    """Figure 8: max−min die voltage per workload (volts)."""

    virus: VirusResult
    peak_to_peak_v: Dict[str, float] = field(default_factory=dict)
    #: Average power per workload — evidence for the paper's argument
    #: that high-power workloads are not high-noise workloads.
    avg_power_w: Dict[str, float] = field(default_factory=dict)

    def rows(self) -> List[Tuple[str, float]]:
        return figure_rows(self.peak_to_peak_v)

    def render(self) -> str:
        rows = [(name, value * 1000.0) for name, value in self.rows()]
        return bar_chart(
            rows,
            title="AMD Athlon max-min voltage noise (paper Figure 8)",
            unit="mV")

    def virus_margin(self) -> float:
        """Virus peak-to-peak over the best non-virus workload."""
        others = [v for k, v in self.peak_to_peak_v.items()
                  if k != self.virus.name]
        return self.peak_to_peak_v[self.virus.name] / max(others)


def figure8(scale: Optional[GAScale] = None,
            seed: int = DIDT_SEED) -> VoltageNoiseFigureResult:
    """AMD Athlon voltage-noise results (paper Figure 8)."""
    machine = make_machine("athlon_x4", seed=seed + 20_000)
    scale = scale or didt_scale(machine)
    virus = evolve_virus("athlon_x4", "didt", seed, scale=scale,
                         name="didtVirus")

    cores = machine.arch.core_count
    run = machine.run_source(virus.source, cores=cores)
    result = VoltageNoiseFigureResult(virus=virus)
    result.peak_to_peak_v[virus.name] = run.peak_to_peak_v
    result.avg_power_w[virus.name] = run.avg_power_w
    for name, baseline in score_baselines(
            "athlon_x4", FIGURE_BASELINES["fig8_voltage_noise"],
            seed=seed).items():
        result.peak_to_peak_v[name] = baseline.peak_to_peak_v
        result.avg_power_w[name] = baseline.avg_power_w
    return result
