"""Figure 9: V_MIN characterisation on the AMD Athlon X4.

Each workload (the dI/dt virus, Prime95, the AMD stability test, ...)
is re-run at supply settings descending from nominal in 12.5 mV steps
at the fixed 3.1 GHz clock; its V_MIN is the lowest passing setting.
The dI/dt virus — deepest droop — must have the highest V_MIN, i.e. be
the strictest stability test (the paper's headline Section VI claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.vmin import VminResult, characterize_vmin, vmin_table
from ..workloads.library import FIGURE_BASELINES, workload
from .common import GAScale, VirusResult, evolve_virus, make_machine
from .didt_virus import DIDT_SEED, didt_scale

__all__ = ["VminFigureResult", "figure9"]


@dataclass
class VminFigureResult:
    """Figure 9: per-workload V_MIN."""

    virus: VirusResult
    results: Dict[str, VminResult] = field(default_factory=dict)

    @property
    def vmin_v(self) -> Dict[str, float]:
        return {name: r.vmin_v for name, r in self.results.items()}

    def ranked(self) -> List[VminResult]:
        return sorted(self.results.values(), key=lambda r: r.vmin_v,
                      reverse=True)

    def render(self) -> str:
        return ("AMD Athlon V_MIN at nominal 3.1 GHz "
                "(paper Figure 9)\n" + vmin_table(list(self.results.values())))

    def virus_is_strictest(self) -> bool:
        ranked = self.ranked()
        return bool(ranked) and ranked[0].workload == self.virus.name


def figure9(scale: Optional[GAScale] = None,
            seed: int = DIDT_SEED) -> VminFigureResult:
    """AMD Athlon V_MIN results (paper Figure 9).

    Reuses the Figure 8 virus (same seed/scale memoisation) so the two
    benchmarks stay consistent.
    """
    machine = make_machine("athlon_x4", seed=seed + 30_000)
    scale = scale or didt_scale(machine)
    virus = evolve_virus("athlon_x4", "didt", seed, scale=scale,
                         name="didtVirus")

    result = VminFigureResult(virus=virus)
    cores = machine.arch.core_count

    program = machine.compile(virus.source, name=virus.name)
    result.results[virus.name] = characterize_vmin(
        machine, program, cores=cores, name=virus.name)

    for name in FIGURE_BASELINES["fig9_vmin"]:
        w = workload(name, machine.arch.isa)
        program = machine.compile(w.source, name=name)
        result.results[name] = characterize_vmin(
            machine, program, cores=cores, name=name)
    return result
