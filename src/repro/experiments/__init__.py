"""Per-figure/table experiment drivers (see DESIGN.md's index)."""

from .common import (GAScale, MEASUREMENTS, VirusResult, clear_virus_cache,
                     evolve_virus, make_engine, make_machine,
                     score_baselines)
from .abstract_comparison import (AbstractComparisonResult,
                                  abstract_comparison)
from .epi_profile import (DEFAULT_OPCODES, EpiEntry, EpiProfile,
                          characterize_epi)
from .instruction_order import (OrderSensitivityResult,
                                instruction_order_experiment)
from .shared_memory import (SHARED_SEED, SharedMemoryResult,
                            shared_memory_experiment)
from .llc_stress import (CACHE_SEED, LlcStressResult, cache_machine,
                         evolve_llc_virus, llc_stress_experiment)
from .didt_virus import (DIDT_SEED, VoltageNoiseFigureResult,
                         didt_loop_length, didt_scale, figure8)
from .power_virus import (A15_SEED, A7_SEED, PowerFigureResult, figure5,
                          figure6, run_power_figure)
from .runtime import RuntimeEstimate, estimate_runtime
from .search_comparison import (COMPARISON_SEED, SearchComparisonResult,
                                search_comparison)
from .simple_virus import (Table4Result, XGENE_SIMPLE_SEED,
                           evolve_simple_virus, table4)
from .table3 import Table3Result, table3
from .temperature_virus import (TemperatureFigureResult, XGENE_IPC_SEED,
                                XGENE_SCALE, XGENE_TEMP_SEED, figure7)
from .vmin_experiment import VminFigureResult, figure9

__all__ = [
    "GAScale", "MEASUREMENTS", "VirusResult", "clear_virus_cache",
    "evolve_virus", "make_engine", "make_machine", "score_baselines",
    "AbstractComparisonResult", "abstract_comparison",
    "DEFAULT_OPCODES", "EpiEntry", "EpiProfile", "characterize_epi",
    "OrderSensitivityResult", "instruction_order_experiment",
    "SHARED_SEED", "SharedMemoryResult", "shared_memory_experiment",
    "CACHE_SEED", "LlcStressResult", "cache_machine", "evolve_llc_virus",
    "llc_stress_experiment",
    "DIDT_SEED", "VoltageNoiseFigureResult", "didt_loop_length",
    "didt_scale", "figure8",
    "A15_SEED", "A7_SEED", "PowerFigureResult", "figure5", "figure6",
    "run_power_figure",
    "RuntimeEstimate", "estimate_runtime",
    "COMPARISON_SEED", "SearchComparisonResult", "search_comparison",
    "Table4Result", "XGENE_SIMPLE_SEED", "evolve_simple_virus", "table4",
    "Table3Result", "table3",
    "TemperatureFigureResult", "XGENE_IPC_SEED", "XGENE_SCALE",
    "XGENE_TEMP_SEED", "figure7",
    "VminFigureResult", "figure9",
]
