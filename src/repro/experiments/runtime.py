"""Section IV's framework-runtime model.

"the GeST runtime is defined by: a) time to measure each individual,
b) for how many generations the optimization is performed, and c) how
many individuals are measured per generation ... Given 50 individuals
per population and 5 seconds per measurement (which is typical for
power optimization) the runtime is approximately 7 hours."

Note 50 × 100 × 5 s = 6.9 h of pure measurement; the remaining runtime
is per-individual overhead (file transfer, compile, process startup),
modelled here as a constant per measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigError

__all__ = ["RuntimeEstimate", "estimate_runtime"]

#: Default per-individual overhead (scp + compile + launch) in seconds.
DEFAULT_OVERHEAD_S = 0.35


@dataclass(frozen=True)
class RuntimeEstimate:
    """Breakdown of a GA run's wall-clock time."""

    population_size: int
    generations: int
    measurement_s: float
    overhead_s: float

    @property
    def measurements(self) -> int:
        return self.population_size * self.generations

    @property
    def total_s(self) -> float:
        return self.measurements * (self.measurement_s + self.overhead_s)

    @property
    def total_hours(self) -> float:
        return self.total_s / 3600.0


def estimate_runtime(population_size: int = 50, generations: int = 100,
                     measurement_s: float = 5.0,
                     overhead_s: float = DEFAULT_OVERHEAD_S
                     ) -> RuntimeEstimate:
    """Estimate a GA run's wall time (defaults = the paper's example)."""
    if population_size < 1 or generations < 1:
        raise ConfigError("population size and generations must be >= 1")
    if measurement_s <= 0 or overhead_s < 0:
        raise ConfigError("times must be positive")
    return RuntimeEstimate(population_size=population_size,
                           generations=generations,
                           measurement_s=measurement_s,
                           overhead_s=overhead_s)
