"""LLC/DRAM stress extension (paper Section VII).

The paper sketches this as the natural next target for the framework:
give the GA strided load/store definitions and optimise toward cache
misses.  This driver evolves an LLC-miss virus on a simulated X-Gene2
with the two-level hierarchy attached, then compares its miss traffic
(and the extra power those misses burn) against:

* an L1-resident loop (the character of the paper's power viruses), and
* a hand-written streaming loop (line-strided walker — the obvious
  manual attempt at a DRAM stressor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.config import GAParameters, RunConfig
from ..core.engine import GeneticEngine, RunHistory
from ..core.individual import Individual
from ..cpu.cache import MemoryHierarchy
from ..cpu.machine import RunResult, SimulatedMachine
from ..cpu.target import SimulatedTarget
from ..fitness.default_fitness import DefaultFitness
from ..isa.catalogs import arm_cache_stress_library, arm_template
from ..measurement.cache_misses import CacheMissMeasurement
from ..workloads.builder import LoopBuilder, build_workload_source
from .common import GAScale

__all__ = ["CACHE_SEED", "LlcStressResult", "cache_machine",
           "evolve_llc_virus", "llc_stress_experiment"]

CACHE_SEED = 41


def cache_machine(seed: int = CACHE_SEED,
                  platform: str = "xgene2") -> SimulatedMachine:
    """An X-Gene2-like machine with the cache hierarchy attached."""
    return SimulatedMachine(platform, environment="os", seed=seed,
                            hierarchy=MemoryHierarchy())


def evolve_llc_virus(seed: int = CACHE_SEED,
                     scale: Optional[GAScale] = None):
    """Evolve a loop maximising LLC misses per kilo-instruction."""
    scale = scale or GAScale(population_size=20, generations=25,
                             individual_size=30)
    machine = cache_machine(seed)
    target = SimulatedTarget(machine)
    target.connect()
    ga = GAParameters(population_size=scale.population_size,
                      individual_size=scale.individual_size,
                      mutation_rate=scale.effective_mutation_rate(),
                      generations=scale.generations, seed=seed)
    config = RunConfig(ga=ga, library=arm_cache_stress_library(),
                       template_text=arm_template())
    engine = GeneticEngine(
        config,
        CacheMissMeasurement(target, {"samples": str(scale.samples)}),
        DefaultFitness())
    history = engine.run()
    return engine, history


def _l1_resident_source() -> str:
    body = (LoopBuilder("arm")
            .load_block(8, stride=16).int_block(6).simd_block(6)
            .store_block(4, stride=16).int_block(6)
            .body())
    return build_workload_source("arm", body)


def _streaming_source() -> str:
    body = (LoopBuilder("arm")
            .stream_block(12, advance=64).int_block(4)
            .stream_block(8, advance=64).int_block(2)
            .body())
    return build_workload_source("arm", body)


@dataclass
class LlcStressResult:
    """Virus vs the two hand-written memory behaviours."""

    virus: Individual
    history: RunHistory
    runs: Dict[str, RunResult] = field(default_factory=dict)

    def llc_misses_per_kinstr(self) -> Dict[str, float]:
        out = {}
        for name, run in self.runs.items():
            instructions = max(1, run.trace.instructions_issued)
            out[name] = run.cache["llc_misses"] / instructions * 1000.0
        return out

    def avg_power_w(self) -> Dict[str, float]:
        return {name: run.avg_power_w for name, run in self.runs.items()}

    def render(self) -> str:
        misses = self.llc_misses_per_kinstr()
        power = self.avg_power_w()
        width = max(len(n) for n in misses)
        lines = [f"{'workload'.ljust(width)}  LLC misses/kinstr  "
                 "L1 miss rate  chip W"]
        for name in sorted(misses, key=lambda n: -misses[n]):
            run = self.runs[name]
            lines.append(
                f"{name.ljust(width)}  {misses[name]:17.2f}  "
                f"{run.cache['l1_miss_rate']:12.3f}  "
                f"{power[name]:6.1f}")
        return "\n".join(lines)


def llc_stress_experiment(seed: int = CACHE_SEED,
                          scale: Optional[GAScale] = None
                          ) -> LlcStressResult:
    """Run the full extension experiment."""
    engine, history = evolve_llc_virus(seed, scale)
    virus = history.best_individual
    result = LlcStressResult(virus=virus, history=history)

    scorer = cache_machine(seed + 10_000)
    cores = 1   # miss counters are per-instance; one core is the clean read
    sources = {
        "llcVirus": engine.render_source(virus),
        "l1_resident": _l1_resident_source(),
        "streaming": _streaming_source(),
    }
    for name, source in sources.items():
        result.runs[name] = scorer.run_source(source, name=name,
                                              cores=cores)
    return result
