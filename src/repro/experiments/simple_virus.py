"""Table IV: power virus vs simple power virus vs IPC virus.

The simple power virus is evolved with the paper's Equation 1 fitness —
equal parts temperature score and instruction-stream simplicity — and
should match the plain power virus's temperature/power while using far
fewer unique opcodes (paper: 13 vs 21).

The comparison table reports instruction mixes plus IPC, power and
temperature relative to the power virus, exactly like Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..analysis.instruction_mix import breakdown_table, mix_of_individual
from ..fitness.complex_fitness import TemperatureSimplicityFitness
from .common import GAScale, VirusResult, make_engine, make_machine, \
    evolve_virus
from .temperature_virus import XGENE_IPC_SEED, XGENE_SCALE, XGENE_TEMP_SEED

__all__ = ["Table4Result", "evolve_simple_virus", "table4",
           "XGENE_SIMPLE_SEED"]

XGENE_SIMPLE_SEED = 25


def evolve_simple_virus(seed: int = XGENE_SIMPLE_SEED,
                        scale: Optional[GAScale] = None,
                        platform: str = "xgene2",
                        max_temperature_c: Optional[float] = None
                        ) -> VirusResult:
    """Evolve the Equation-1 virus ("powerVirusSimple").

    Runs "for the same number of populations as the GA that generated
    the power virus" (paper Section V.A).  ``max_temperature_c`` is the
    MAX_T normaliser; the paper obtains it "either from a previous GA
    run or from specifications" — :func:`table4` passes the power
    virus's achieved single-core temperature, the fallback is the
    machine's single-core specification bound.
    """
    scale = scale or XGENE_SCALE
    machine = make_machine(platform, seed=seed)
    if max_temperature_c is None:
        max_temperature_c = machine.max_temperature_c(active_cores=1)
    fitness = TemperatureSimplicityFitness(
        idle_temperature_c=machine.idle_temperature_c(),
        max_temperature_c=max_temperature_c)
    engine = make_engine(machine, "temperature", seed, scale,
                         fitness=fitness)
    history = engine.run()
    best = history.best_individual
    source = engine.render_source(best)
    scorer = make_machine(platform, seed=seed + 10_000)
    run = scorer.run_source(source, cores=scorer.arch.core_count)
    return VirusResult(name="powerVirusSimple", platform=platform,
                       metric="temperature+simplicity", individual=best,
                       source=source, history=history, all_cores_run=run)


@dataclass
class Table4Result:
    """The three viruses and their relative metrics."""

    power_virus: VirusResult
    simple_virus: VirusResult
    ipc_virus: VirusResult
    relative_ipc: Dict[str, float] = field(default_factory=dict)
    relative_power: Dict[str, float] = field(default_factory=dict)
    relative_temperature: Dict[str, float] = field(default_factory=dict)
    unique_instructions: Dict[str, int] = field(default_factory=dict)

    def viruses(self):
        return (self.power_virus, self.simple_virus, self.ipc_virus)

    def render(self) -> str:
        rows = [(v.name, mix_of_individual(v.individual))
                for v in self.viruses()]
        extra = [
            ("Relative IPC", self.relative_ipc),
            ("Relative Power", self.relative_power),
            ("Relative Temp.", self.relative_temperature),
            ("# Unique Instr.", self.unique_instructions),
        ]
        return breakdown_table(rows, extra_columns=extra)


def table4(scale: Optional[GAScale] = None,
           temp_seed: int = XGENE_TEMP_SEED,
           simple_seed: int = XGENE_SIMPLE_SEED,
           ipc_seed: int = XGENE_IPC_SEED) -> Table4Result:
    """Reproduce Table IV on the simulated X-Gene2."""
    scale = scale or XGENE_SCALE
    power_virus = evolve_virus("xgene2", "temperature", temp_seed,
                               scale=scale, name="powerVirus")
    ipc_virus = evolve_virus("xgene2", "ipc", ipc_seed, scale=scale,
                             name="IPCvirus")
    # MAX_T from the previous GA run, as the paper does: the power
    # virus's best single-core temperature measurement.
    max_t = power_virus.individual.measurements[0]
    simple_virus = evolve_simple_virus(simple_seed, scale=scale,
                                       max_temperature_c=max_t)

    reference = power_virus.all_cores_run
    result = Table4Result(power_virus=power_virus,
                          simple_virus=simple_virus,
                          ipc_virus=ipc_virus)
    for virus in result.viruses():
        run = virus.all_cores_run
        result.relative_ipc[virus.name] = run.ipc / reference.ipc
        result.relative_power[virus.name] = \
            run.avg_power_w / reference.avg_power_w
        result.relative_temperature[virus.name] = \
            run.temperature_c / reference.temperature_c
        result.unique_instructions[virus.name] = \
            virus.individual.unique_instruction_count()
    return result
