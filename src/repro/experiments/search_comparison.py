"""Search-strategy comparison (paper Section III.A's motivation).

The paper justifies the GA by comparison: evolved stress-tests beat
random and hand-crafted sequences (Figure 5's viruses vs baselines).
With the search layer pluggable, that comparison becomes a first-class
experiment — every registered strategy runs the *same* configuration,
seed and measurement path, so the only variable is how the next
population is proposed.

The expected ordering on the simulated substrate mirrors the paper:
``genetic`` ≥ ``simulated_annealing``/``hill_climb`` ≥ ``random``,
with the GA's margin growing with generations (random search's best is
a max over i.i.d. samples and improves only logarithmically).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..core.engine import RunHistory
from ..search import SearchStrategy, make_strategy
from .common import GAScale, make_engine, make_machine

__all__ = ["SearchComparisonResult", "search_comparison",
           "COMPARISON_SEED"]

#: ``static_rank(<base>)`` / ``surrogate(<base>)`` pseudo-names select
#: a pruning wrapper around a base strategy, priced against the
#: experiment's own platform (and, for static_rank, metric).
_WRAPPER_PATTERN = re.compile(r"(static_rank|surrogate)\((\w+)\)")

#: One fixed seed for the whole comparison: every strategy starts from
#: the identical generation-0 population.  With the default scale this
#: seed reproduces the paper's full ordering (GA first, random last).
COMPARISON_SEED = 7


@dataclass
class SearchComparisonResult:
    """Best-fitness trajectories of several strategies on one search."""

    platform: str
    metric: str
    seed: int
    histories: Dict[str, RunHistory] = field(default_factory=dict)

    def best_fitness(self, strategy: str) -> float:
        history = self.histories[strategy]
        best = history.best_individual
        return best.fitness if best is not None and \
            best.fitness is not None else 0.0

    def simulated_evaluations(self, strategy: str) -> int:
        """Full simulated measurements the strategy paid for — what the
        ``static_rank`` wrapper economises on."""
        return sum(g.measured
                   for g in self.histories[strategy].generations)

    def ranking(self) -> List[str]:
        """Strategy names, best final fitness first."""
        return sorted(self.histories, key=self.best_fitness, reverse=True)

    def render(self) -> str:
        lines = [f"{self.platform}/{self.metric} seed={self.seed}: "
                 f"best fitness by search strategy"]
        for name in self.ranking():
            series = self.histories[name].best_fitness_series()
            lines.append(f"  {name:20s} {self.best_fitness(name):8.4f}  "
                         f"({self.simulated_evaluations(name)} simulated; "
                         f"per generation: "
                         + " ".join(f"{v:.3f}" for v in series) + ")")
        return "\n".join(lines)


def _resolve_strategy(name: str, platform: str,
                      metric: str) -> Union[str, SearchStrategy]:
    """Map a strategy label to what the engine accepts.

    Plain registered names pass through; a ``static_rank(<base>)`` or
    ``surrogate(<base>)`` pseudo-name builds the wrapper over
    ``<base>``, pricing candidates against the experiment's platform
    (the learned surrogate predicts the configured fitness directly,
    so only static_rank needs the metric name).
    """
    match = _WRAPPER_PATTERN.fullmatch(name)
    if match is None:
        return name
    wrapper, base = match.group(1), match.group(2)
    params = {"base": base, "platform": platform}
    if wrapper == "static_rank":
        params["metric"] = metric
    return make_strategy(wrapper, params)


def search_comparison(platform: str = "xgene2", metric: str = "ipc",
                      seed: int = COMPARISON_SEED,
                      strategies: Sequence[str] = ("genetic",
                                                   "static_rank(genetic)",
                                                   "surrogate(genetic)",
                                                   "random", "hill_climb",
                                                   "simulated_annealing"),
                      scale: Optional[GAScale] = None
                      ) -> SearchComparisonResult:
    """Run every strategy on one (platform, metric, seed) search.

    Each strategy gets a fresh machine and engine built from the same
    seed, so generation 0 and the measurement noise stream are
    identical across strategies; the trajectories diverge only through
    the strategies' proposals.  Besides registered names, a
    ``static_rank(<base>)`` pseudo-name runs the surrogate wrapper
    around ``<base>`` — same configuration and seed, but only the
    statically top-ranked fraction of each generation is simulated
    (compare with :meth:`SearchComparisonResult.simulated_evaluations`).
    """
    scale = scale or GAScale(population_size=10, generations=8,
                             individual_size=20, samples=2)
    result = SearchComparisonResult(platform=platform, metric=metric,
                                    seed=seed)
    for name in strategies:
        machine = make_machine(platform, seed=seed)
        engine = make_engine(machine, metric, seed, scale,
                             strategy=_resolve_strategy(name, platform,
                                                        metric))
        result.histories[name] = engine.run()
    return result
