"""Instruction-level vs abstract-workload GA (paper Section VII).

The paper's Table V discussion argues that instruction-level
optimisation (GeST's choice) beats abstract-workload models because
the abstract model "fails in optimizing the instruction order and the
instruction opcodes simply because these parameters are out of GA
control".  This experiment runs both framework styles against the same
platform, measurement, fitness and evaluation budget and compares the
best power each finds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..abstractmodel.engine import AbstractEngine, AbstractIndividual
from ..cpu.machine import SimulatedMachine
from ..cpu.target import SimulatedTarget
from ..fitness.default_fitness import DefaultFitness
from ..isa.catalogs import arm_template
from ..measurement.power import PowerMeasurement
from .common import GAScale, VirusResult, evolve_virus

__all__ = ["AbstractComparisonResult", "abstract_comparison"]

ABSTRACT_SEED = 61


@dataclass
class AbstractComparisonResult:
    """Same budget, two framework styles."""

    instruction_level: VirusResult
    abstract_best: AbstractIndividual
    abstract_series: List[float]

    @property
    def instruction_level_power_w(self) -> float:
        return self.instruction_level.fitness

    @property
    def abstract_power_w(self) -> float:
        return self.abstract_best.fitness

    @property
    def advantage(self) -> float:
        """Instruction-level over abstract (>1 supports the paper)."""
        return self.instruction_level_power_w / self.abstract_power_w

    def render(self) -> str:
        return (
            "instruction-level vs abstract-workload GA "
            "(same platform, budget, measurement):\n"
            f"  instruction-level best: "
            f"{self.instruction_level_power_w:.3f} W (single core)\n"
            f"  abstract-model best:    "
            f"{self.abstract_power_w:.3f} W\n"
            f"  advantage:              x{self.advantage:.3f}\n"
            f"  winning abstract profile: "
            f"{self.abstract_best.profile.describe()}")


def abstract_comparison(platform: str = "cortex_a15",
                        seed: int = ABSTRACT_SEED,
                        scale: Optional[GAScale] = None
                        ) -> AbstractComparisonResult:
    """Run both searches with identical evaluation budgets."""
    scale = scale or GAScale(population_size=20, generations=25)

    instruction_level = evolve_virus(platform, "power", seed, scale=scale)

    machine = SimulatedMachine(platform, seed=seed)
    target = SimulatedTarget(machine)
    target.connect()
    abstract = AbstractEngine(
        PowerMeasurement(target, {"samples": str(scale.samples)}),
        DefaultFitness(),
        template_text=arm_template(),
        loop_size=scale.individual_size,
        population_size=scale.population_size,
        generations=scale.generations,
        seed=seed)
    best = abstract.run()
    return AbstractComparisonResult(
        instruction_level=instruction_level,
        abstract_best=best,
        abstract_series=abstract.best_fitness_series())
