"""Shared experiment harness.

Every paper experiment follows the same recipe: configure a GA search
for a (platform, metric) pair, evolve a virus, then score the virus and
the relevant baseline workloads with one instance per core (Section IV
methodology: "GA searches are performed on a single core ... a virus is
tested by running it on all cores").

GA runs are memoised per (platform, metric, seed, scale) so a virus
evolved for Figure 5 is reused by Table III without re-running the
search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from ..core.config import GAParameters, RunConfig
from ..core.engine import GeneticEngine, RunHistory
from ..core.individual import Individual
from ..cpu.machine import RunResult, SimulatedMachine
from ..cpu.target import SimulatedTarget
from ..fitness.default_fitness import DefaultFitness
from ..isa.catalogs import library_for, template_for
from ..measurement.base import Measurement
from ..measurement.ipc import IPCMeasurement
from ..measurement.oscilloscope import OscilloscopeMeasurement
from ..measurement.power import PowerMeasurement
from ..measurement.temperature import TemperatureMeasurement
from ..search import SearchStrategy
from ..workloads.library import workload

__all__ = ["GAScale", "VirusResult", "make_machine", "make_engine",
           "evolve_virus", "score_baselines", "clear_virus_cache",
           "MEASUREMENTS"]

MEASUREMENTS: Dict[str, type] = {
    "power": PowerMeasurement,
    "temperature": TemperatureMeasurement,
    "ipc": IPCMeasurement,
    "didt": OscilloscopeMeasurement,
}

#: Environments per platform, matching Table II.
_PLATFORM_ENV = {
    "cortex_a15": "bare_metal",
    "cortex_a7": "bare_metal",
    "cortex_a57": "bare_metal",
    "xgene2": "os",
    "athlon_x4": "os",
}


@dataclass(frozen=True)
class GAScale:
    """Search effort.  The paper uses population 50 for 70–100
    generations (hours of wall time on hardware); the default here is a
    scaled-down search that converges on the simulated targets in tens
    of seconds while preserving every qualitative outcome."""

    population_size: int = 24
    generations: int = 30
    individual_size: int = 50
    mutation_rate: Optional[float] = None   # default: ~1 mutation/indiv
    samples: int = 8

    def effective_mutation_rate(self) -> float:
        if self.mutation_rate is not None:
            return self.mutation_rate
        return max(0.02, round(1.0 / self.individual_size, 4))


@dataclass
class VirusResult:
    """An evolved virus plus its provenance."""

    name: str
    platform: str
    metric: str
    individual: Individual
    source: str
    history: RunHistory
    all_cores_run: RunResult = field(repr=False, default=None)

    @property
    def fitness(self) -> float:
        return self.individual.fitness or 0.0


def make_machine(platform: str, seed: int = 0,
                 environment: Optional[str] = None) -> SimulatedMachine:
    """A simulated platform with its Table II execution environment."""
    env = environment or _PLATFORM_ENV.get(platform, "bare_metal")
    return SimulatedMachine(platform, environment=env, seed=seed)


def make_engine(machine: SimulatedMachine, metric: str, seed: int,
                scale: GAScale,
                fitness=None,
                measurement: Optional[Measurement] = None,
                recorder=None,
                strategy: Optional[Union[str, SearchStrategy]] = None
                ) -> GeneticEngine:
    """Wire a search engine for one (platform, metric) search.

    ``strategy`` selects the search (default ``genetic`` — the paper's
    GA); passing ``"random"`` gives the paper's baseline search over
    the identical configuration and seed, and a ready
    :class:`~repro.search.SearchStrategy` instance runs as-is (how the
    comparison experiment wires the ``static_rank`` wrapper).
    """
    if metric not in MEASUREMENTS:
        raise ValueError(
            f"unknown metric {metric!r}; expected one of "
            f"{sorted(MEASUREMENTS)}")
    isa = machine.arch.isa
    ga = GAParameters(
        population_size=scale.population_size,
        individual_size=scale.individual_size,
        mutation_rate=scale.effective_mutation_rate(),
        generations=scale.generations,
        seed=seed,
    )
    config = RunConfig(ga=ga, library=library_for(isa),
                       template_text=template_for(isa))
    if measurement is None:
        target = SimulatedTarget(machine)
        target.connect()
        measurement = MEASUREMENTS[metric](
            target, {"samples": str(scale.samples)})
    if fitness is None:
        fitness = DefaultFitness()
    return GeneticEngine(config, measurement, fitness, recorder=recorder,
                         strategy=strategy)


# -- memoised virus evolution --------------------------------------------------

_VIRUS_CACHE: Dict[Tuple, VirusResult] = {}


def clear_virus_cache() -> None:
    _VIRUS_CACHE.clear()


def evolve_virus(platform: str, metric: str, seed: int,
                 scale: Optional[GAScale] = None,
                 name: Optional[str] = None,
                 use_cache: bool = True,
                 strategy: Optional[str] = None) -> VirusResult:
    """Evolve (or fetch the memoised) virus for a platform/metric pair,
    then score it with one instance per core.

    ``strategy`` selects the search strategy (default ``genetic``);
    the memo key includes it, so a GA virus and a random-search
    baseline for the same (platform, metric, seed, scale) coexist in
    the cache.
    """
    scale = scale or GAScale()
    key = (platform, metric, seed, scale.population_size,
           scale.generations, scale.individual_size,
           scale.effective_mutation_rate(), scale.samples,
           strategy or "genetic")
    if use_cache and key in _VIRUS_CACHE:
        return _VIRUS_CACHE[key]

    machine = make_machine(platform, seed=seed)
    engine = make_engine(machine, metric, seed, scale, strategy=strategy)
    history = engine.run()
    best = history.best_individual
    source = engine.render_source(best)
    # Score on a fresh machine so GA-measurement noise draws don't leak
    # into the reported figure values.
    scorer = make_machine(platform, seed=seed + 10_000)
    run = scorer.run_source(source, cores=scorer.arch.core_count)
    result = VirusResult(
        name=name or f"{metric}Virus",
        platform=platform,
        metric=metric,
        individual=best,
        source=source,
        history=history,
        all_cores_run=run,
    )
    if use_cache:
        _VIRUS_CACHE[key] = result
    return result


def score_baselines(platform: str, names, seed: int = 0,
                    isa: Optional[str] = None) -> Dict[str, RunResult]:
    """Run each baseline workload with one instance per core."""
    machine = make_machine(platform, seed=seed + 10_000)
    isa = isa or machine.arch.isa
    results: Dict[str, RunResult] = {}
    for workload_name in names:
        w = workload(workload_name, isa)
        results[workload_name] = machine.run_source(
            w.source, name=workload_name,
            cores=machine.arch.core_count)
    return results
