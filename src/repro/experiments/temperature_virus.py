"""Figure 7: X-Gene2 chip temperature.

The power virus is evolved by maximising the i2c chip-temperature
reading; the IPC virus by maximising ``perf`` IPC.  Both run on all 8
cores alongside the Parsec/NAS baselines, and the figure normalises
temperature to bodytrack.

The paper normalises raw sensor readings; ambient offset means relative
differences look small (a 12 °C gap over a 70 °C reading is ~1.17x).
``rise_over_ambient`` is also provided because it is the physically
meaningful comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.reports import bar_chart, figure_rows, normalize
from ..workloads.library import FIGURE_BASELINES
from .common import GAScale, VirusResult, evolve_virus, make_machine, \
    score_baselines

__all__ = ["TemperatureFigureResult", "figure7", "XGENE_TEMP_SEED",
           "XGENE_IPC_SEED", "XGENE_SCALE"]

XGENE_TEMP_SEED = 21
XGENE_IPC_SEED = 22

#: The temperature landscape is noisier (OS environment, quantised
#: sensor), so the stock scale runs more generations there.
XGENE_SCALE = GAScale(population_size=26, generations=45)


@dataclass
class TemperatureFigureResult:
    """Figure 7: chip temperatures with one instance per core."""

    power_virus: VirusResult
    ipc_virus: VirusResult
    temperature_c: Dict[str, float] = field(default_factory=dict)
    ambient_c: float = 30.0
    reference: str = "bodytrack"

    @property
    def normalized(self) -> Dict[str, float]:
        return normalize(self.temperature_c, self.reference)

    @property
    def rise_over_ambient(self) -> Dict[str, float]:
        return {name: temp - self.ambient_c
                for name, temp in self.temperature_c.items()}

    def rows(self) -> List[Tuple[str, float]]:
        return figure_rows(self.temperature_c, reference=self.reference)

    def render(self) -> str:
        return bar_chart(
            self.rows(),
            title="X-Gene2 chip temperature, normalised to bodytrack "
                  "(paper Figure 7)",
            unit="x")


def figure7(scale: Optional[GAScale] = None,
            temp_seed: int = XGENE_TEMP_SEED,
            ipc_seed: int = XGENE_IPC_SEED) -> TemperatureFigureResult:
    """X-Gene2 chip temperature results (paper Figure 7)."""
    scale = scale or XGENE_SCALE
    power_virus = evolve_virus("xgene2", "temperature", temp_seed,
                               scale=scale, name="powerVirus")
    ipc_virus = evolve_virus("xgene2", "ipc", ipc_seed,
                             scale=scale, name="IPCvirus")

    machine = make_machine("xgene2", seed=temp_seed + 20_000)
    cores = machine.arch.core_count
    temps: Dict[str, float] = {
        "powerVirus": machine.run_source(power_virus.source,
                                         cores=cores).temperature_c,
        "IPCvirus": machine.run_source(ipc_virus.source,
                                       cores=cores).temperature_c,
    }
    baselines = score_baselines(
        "xgene2", FIGURE_BASELINES["fig7_xgene2_temperature"],
        seed=temp_seed)
    for name, run in baselines.items():
        temps[name] = run.temperature_c

    return TemperatureFigureResult(
        power_virus=power_virus,
        ipc_virus=ipc_virus,
        temperature_c=temps,
        ambient_c=machine.arch.thermal.t_ambient_c)
