"""Instruction-order sensitivity (paper Section VII).

The paper's argument for instruction-level optimisation over
abstract-workload models leans on a measurement from prior work [8]:
"instruction-order can make up to 17% difference in power for the same
activity factor and instruction-mix".  Abstract models cannot control
order; GeST optimises it directly.

This experiment quantifies that sensitivity on the simulated substrate:
the *same multiset* of instructions (identical mix and operand values,
therefore identical activity factors) is measured under many random
orderings, and the best-over-worst power spread is reported.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.rng import make_rng
from ..core.template import Template
from ..cpu.machine import SimulatedMachine
from ..isa.catalogs import arm_template
from ..workloads.builder import LoopBuilder

__all__ = ["OrderSensitivityResult", "instruction_order_experiment"]


@dataclass
class OrderSensitivityResult:
    """Power of one instruction multiset under many orderings."""

    platform: str
    orderings: int
    powers_w: List[float] = field(default_factory=list)

    @property
    def min_w(self) -> float:
        return min(self.powers_w)

    @property
    def max_w(self) -> float:
        return max(self.powers_w)

    @property
    def spread(self) -> float:
        """Best-over-worst ratio minus one (the paper's "% difference
        in power")."""
        return self.max_w / self.min_w - 1.0

    @property
    def stdev_w(self) -> float:
        return statistics.pstdev(self.powers_w)

    def render(self) -> str:
        return (f"{self.platform}: {self.orderings} random orderings of "
                f"one instruction multiset -> power "
                f"{self.min_w:.3f}..{self.max_w:.3f} W "
                f"(spread {self.spread * 100:.1f}%, "
                f"stdev {self.stdev_w * 1000:.1f} mW)")


def _mixed_multiset() -> List[str]:
    """A dependency-rich mix of all five instruction categories whose
    scheduling is genuinely order-sensitive."""
    builder = LoopBuilder("arm")
    builder.simd_block(10, fma=True).load_block(6).int_block(6)
    builder.mul_block(4).float_block(6)
    lines: List[str] = []
    for entry in builder.lines:
        lines.extend(entry.splitlines())
    return lines


def instruction_order_experiment(platform: str = "cortex_a15",
                                 orderings: int = 30,
                                 seed: int = 7,
                                 machine: Optional[SimulatedMachine] = None
                                 ) -> OrderSensitivityResult:
    """Measure single-core power across random orderings of one loop.

    Every permutation preserves the instruction multiset exactly —
    identical mix, opcodes and operand values — so any power difference
    is pure instruction-order effect.
    """
    machine = machine or SimulatedMachine(platform, seed=seed)
    template = Template(arm_template())
    rng = make_rng(seed)
    lines = _mixed_multiset()

    result = OrderSensitivityResult(platform=machine.arch.name,
                                    orderings=orderings)
    for _ in range(orderings):
        permuted = list(lines)
        rng.shuffle(permuted)
        source = template.instantiate("\n".join(permuted))
        result.powers_w.append(machine.run_source(source).core_power_w)
    return result
