"""Energy-per-instruction profiling (paper Section II).

The paper lists "generat[ing] power-models and an energy-per-instruction
(EPI) profile" among the established uses of targeted stress-tests,
citing Bertran et al.'s automated micro-benchmark methodology [8].
This experiment implements that methodology on the simulated targets:

for each instruction definition in a catalog, build a homogeneous
micro-benchmark (a loop of just that instruction, operands rotated for
maximum independence), measure its power, subtract an empty-pipeline
baseline and divide by the measured issue rate:

``EPI ≈ (P_instr − P_baseline) / (IPC · f_clk)``

On the simulated platforms the derived profile can be checked against
the microarchitecture's configured EPI table — a closed-loop validation
of the whole measure-and-divide methodology (the ranking must match;
absolute values differ by the data-toggle factor and port contention).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.errors import ConfigError
from ..core.template import Template
from ..cpu.machine import SimulatedMachine
from ..isa.catalogs import arm_template
from ..isa.model import InstrClass

__all__ = ["EpiEntry", "EpiProfile", "characterize_epi",
           "DEFAULT_OPCODES"]

#: Homogeneous loop bodies per opcode: operands rotate registers so the
#: loop is dependency-light and the unit's throughput binds.
_KERNELS: Dict[str, List[str]] = {
    "add": [f"add x{1 + i % 4}, x{1 + (i + 1) % 4 + 4 // 4}, x6"
            for i in range(8)],
    "mul": [f"mul x{1 + i % 4}, x5, x6" for i in range(8)],
    "sdiv": [f"sdiv x{1 + i % 4}, x5, x6" for i in range(8)],
    "fadd": [f"fadd v{i % 8}, v{8 + i % 8}, v{8 + (i + 3) % 8}"
             for i in range(8)],
    "fmul": [f"fmul v{i % 8}, v{8 + i % 8}, v{8 + (i + 3) % 8}"
             for i in range(8)],
    "vadd": [f"vadd v{i % 8}, v{8 + i % 8}, v{8 + (i + 3) % 8}"
             for i in range(8)],
    "vmul": [f"vmul v{i % 8}, v{8 + i % 8}, v{8 + (i + 3) % 8}"
             for i in range(8)],
    "ldr": [f"ldr x{7 + i % 3}, [x10, #{(i * 16) % 128}]"
            for i in range(8)],
    "str": [f"str x{1 + i % 4}, [x11, #{(i * 16) % 128}]"
            for i in range(8)],
    "nop": ["nop"] * 8,
}

DEFAULT_OPCODES = tuple(_KERNELS)

#: Group name the derived figure is compared against in the preset's
#: EPI table.
_GROUP_OF = {"add": "alu", "mul": "mul", "sdiv": "div", "fadd": "fadd",
             "fmul": "fmul", "vadd": "vadd", "vmul": "vmul",
             "ldr": "load", "str": "store", "nop": "nop"}


@dataclass
class EpiEntry:
    """One opcode's measured profile."""

    opcode: str
    measured_epi_pj: float
    configured_epi_pj: float
    ipc: float
    power_w: float


@dataclass
class EpiProfile:
    """The derived energy-per-instruction profile of one platform."""

    platform: str
    baseline_power_w: float
    entries: Dict[str, EpiEntry] = field(default_factory=dict)

    def ranked(self) -> List[EpiEntry]:
        return sorted(self.entries.values(),
                      key=lambda e: e.measured_epi_pj, reverse=True)

    def rank_agreement(self) -> float:
        """Kendall-style pairwise agreement between the measured and
        configured EPI orderings (1.0 = identical order)."""
        entries = list(self.entries.values())
        agree = total = 0
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                a, b = entries[i], entries[j]
                measured = a.measured_epi_pj - b.measured_epi_pj
                configured = a.configured_epi_pj - b.configured_epi_pj
                if configured == 0:
                    continue
                total += 1
                if measured * configured > 0:
                    agree += 1
        return agree / total if total else 1.0

    def render(self) -> str:
        lines = [f"EPI profile of {self.platform} "
                 f"(baseline {self.baseline_power_w:.3f} W):",
                 f"{'opcode':8s} {'measured pJ':>12s} "
                 f"{'configured pJ':>14s} {'IPC':>6s}"]
        for entry in self.ranked():
            lines.append(f"{entry.opcode:8s} "
                         f"{entry.measured_epi_pj:12.1f} "
                         f"{entry.configured_epi_pj:14.1f} "
                         f"{entry.ipc:6.2f}")
        return "\n".join(lines)


def characterize_epi(platform: str = "cortex_a15",
                     opcodes: Optional[List[str]] = None,
                     seed: int = 13) -> EpiProfile:
    """Derive an EPI profile via homogeneous micro-benchmarks."""
    opcodes = list(opcodes) if opcodes is not None \
        else list(DEFAULT_OPCODES)
    unknown = [o for o in opcodes if o not in _KERNELS]
    if unknown:
        raise ConfigError(f"no micro-benchmark kernels for {unknown}")

    machine = SimulatedMachine(platform, seed=seed)
    template = Template(arm_template())
    frequency = machine.arch.frequency_hz

    # Baseline: pure NOPs approximate the empty pipeline's per-cycle
    # power (clock tree, window, static) at full issue rate.
    baseline = machine.run_source(
        template.instantiate("\n".join(["nop"] * 8))).core_power_w

    profile = EpiProfile(platform=machine.arch.name,
                         baseline_power_w=baseline)
    for opcode in opcodes:
        source = template.instantiate("\n".join(_KERNELS[opcode]))
        result = machine.run_source(source)
        issue_rate = result.trace.ipc * frequency
        measured = (result.core_power_w - baseline) / issue_rate * 1e12 \
            if issue_rate > 0 else 0.0
        group = _GROUP_OF[opcode]
        iclass = (InstrClass.NOP if opcode == "nop"
                  else InstrClass.INT_SHORT)   # class only for fallback
        configured = machine.arch.epi_pj.get(
            group, machine.arch.epi_of(group, iclass))
        profile.entries[opcode] = EpiEntry(
            opcode=opcode,
            measured_epi_pj=max(0.0, measured),
            configured_epi_pj=configured,
            ipc=result.trace.ipc,
            power_w=result.core_power_w)
    return profile
