"""Table III: instruction breakdown of the Cortex-A15 and Cortex-A7
power viruses.

Reuses the Figure 5/6 viruses (memoised by seed/scale) and classifies
their 50-instruction loops into the paper's five categories.  The
paper's qualitative observations asserted by the benchmark:

* float/SIMD instructions are prominent in both viruses;
* the Cortex-A7 virus uses (many) more branches than the Cortex-A15
  virus — stressing the little in-order core needs branch-unit power;
* both loops total exactly the configured 50 instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..analysis.instruction_mix import breakdown_table, mix_of_individual
from .common import GAScale, VirusResult, evolve_virus
from .power_virus import A15_SEED, A7_SEED

__all__ = ["Table3Result", "table3"]


@dataclass
class Table3Result:
    """The two power viruses and their instruction mixes."""

    a15_virus: VirusResult
    a7_virus: VirusResult

    @property
    def a15_mix(self) -> Dict[str, int]:
        return mix_of_individual(self.a15_virus.individual)

    @property
    def a7_mix(self) -> Dict[str, int]:
        return mix_of_individual(self.a7_virus.individual)

    def render(self) -> str:
        rows = [("Cortex-A15", self.a15_mix), ("Cortex-A7", self.a7_mix)]
        return ("Instruction breakdown of power viruses "
                "(paper Table III)\n" + breakdown_table(rows))


def table3(scale: Optional[GAScale] = None,
           a15_seed: int = A15_SEED,
           a7_seed: int = A7_SEED) -> Table3Result:
    """Reproduce Table III from the Figure 5/6 viruses."""
    scale = scale or GAScale()
    return Table3Result(
        a15_virus=evolve_virus("cortex_a15", "power", a15_seed,
                               scale=scale, name="A15powerVirus"),
        a7_virus=evolve_virus("cortex_a7", "power", a7_seed,
                              scale=scale, name="A7powerVirus"),
    )
