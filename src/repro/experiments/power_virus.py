"""Figures 5 and 6: bare-metal power viruses on Cortex-A15 / Cortex-A7.

Each figure compares, normalised to coremark:

* the GA power virus evolved *for* that CPU,
* the GA power virus evolved for the *other* CPU (the paper's
  cross-evaluation: "Cortex-A7 GA virus is not a good stress-test for
  Cortex-A15 and Cortex-A15 virus is not a good stress-test for
  Cortex-A7"),
* the platform's manually-written stress test, and
* the conventional bare-metal workloads coremark / imdct / fdct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.reports import bar_chart, figure_rows, normalize
from ..workloads.library import FIGURE_BASELINES
from .common import GAScale, VirusResult, evolve_virus, make_machine, \
    score_baselines

__all__ = ["PowerFigureResult", "run_power_figure", "figure5", "figure6"]

#: Default GA seeds (chosen once; any seed reproduces the shapes).
A15_SEED = 7
A7_SEED = 9


@dataclass
class PowerFigureResult:
    """One power figure: absolute watts, normalised rows, provenance."""

    platform: str
    native_virus: VirusResult
    cross_virus: VirusResult
    power_w: Dict[str, float] = field(default_factory=dict)
    reference: str = "coremark"

    @property
    def normalized(self) -> Dict[str, float]:
        return normalize(self.power_w, self.reference)

    @property
    def native_virus_label(self) -> str:
        return f"GA_virus_{self.native_virus.platform}"

    @property
    def cross_virus_label(self) -> str:
        return f"GA_virus_{self.cross_virus.platform}"

    def rows(self) -> List[Tuple[str, float]]:
        return figure_rows(self.power_w, reference=self.reference)

    def render(self) -> str:
        title = (f"{self.platform} power, normalised to "
                 f"{self.reference} (paper Figure "
                 f"{'5' if self.platform == 'cortex_a15' else '6'})")
        return bar_chart(self.rows(), title=title, unit="x")

    def virus_margin_over_manual(self) -> float:
        """GA native virus power over the manual stress test (>1)."""
        manual = [name for name in self.power_w if "manual" in name]
        if not manual:
            return float("nan")
        return (self.power_w[self.native_virus_label]
                / self.power_w[manual[0]])


def run_power_figure(platform: str, cross_platform: str,
                     baseline_names: List[str],
                     seed: int, cross_seed: int,
                     scale: Optional[GAScale] = None) -> PowerFigureResult:
    """Evolve the native and cross viruses and score everything on
    ``platform`` with one instance per core."""
    scale = scale or GAScale()
    native = evolve_virus(platform, "power", seed, scale=scale)
    cross = evolve_virus(cross_platform, "power", cross_seed, scale=scale)

    machine = make_machine(platform, seed=seed + 20_000)
    cores = machine.arch.core_count
    power: Dict[str, float] = {}
    power[f"GA_virus_{platform}"] = machine.run_source(
        native.source, cores=cores).avg_power_w
    power[f"GA_virus_{cross_platform}"] = machine.run_source(
        cross.source, cores=cores).avg_power_w
    for name, run in score_baselines(platform, baseline_names,
                                     seed=seed).items():
        power[name] = run.avg_power_w

    return PowerFigureResult(platform=platform, native_virus=native,
                             cross_virus=cross, power_w=power)


def figure5(scale: Optional[GAScale] = None,
            seed: int = A15_SEED,
            cross_seed: int = A7_SEED) -> PowerFigureResult:
    """Cortex-A15 power results (paper Figure 5)."""
    return run_power_figure(
        "cortex_a15", "cortex_a7",
        FIGURE_BASELINES["fig5_a15_power"],
        seed=seed, cross_seed=cross_seed, scale=scale)


def figure6(scale: Optional[GAScale] = None,
            seed: int = A7_SEED,
            cross_seed: int = A15_SEED) -> PowerFigureResult:
    """Cortex-A7 power results (paper Figure 6)."""
    return run_power_figure(
        "cortex_a7", "cortex_a15",
        FIGURE_BASELINES["fig6_a7_power"],
        seed=seed, cross_seed=cross_seed, scale=scale)
