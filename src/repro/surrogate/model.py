"""Dependency-free online ridge regression for fitness prediction.

The surrogate search strategy (:mod:`repro.search.surrogate`) needs a
regressor that (a) trains in closed form from a few dozen rows without
any ML dependency, (b) is bit-for-bit deterministic, and (c) checkpoint
round-trips as plain picklable state.  Ridge regression over
standardized features fits all three: the normal equations
``(Zᵀ Z + λI) w = Zᵀ (y − ȳ)`` solve in one small NumPy call (the
feature count is a few dozen), and λ > 0 keeps the system positive
definite no matter how degenerate the training set is.

An optional GBM-flavoured *bucketed residual boost* corrects the linear
model's systematic bias: training predictions are split into quantile
buckets and each bucket's mean residual is added back at prediction
time — a one-level regression stump per bucket, which is as much
"gradient boosting" as a handful of generations of data can support.

Rows are plain ``name → value`` dicts, not fixed-width vectors: the
feature vocabulary may grow as new instruction groups appear in the
population (``mix_*`` features exist only for groups actually used).
The fit re-derives the sorted union of names each time, so insertion
order never matters and a resumed run refits identically.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Any, Dict, List, Optional, Sequence

import numpy

__all__ = ["RidgeModel"]


class RidgeModel:
    """Closed-form ridge regressor over named-feature rows.

    Parameters
    ----------
    l2:
        Ridge penalty λ (> 0); keeps the normal equations solvable even
        when features are collinear or the row count is below the
        feature count (always true in early generations).
    boost_buckets:
        When > 0, fit a bucketed residual correction on top of the
        linear model: training predictions are cut into this many
        quantile buckets and each bucket contributes its mean residual.
        0 disables the boost.
    """

    def __init__(self, l2: float = 1.0, boost_buckets: int = 0) -> None:
        if not l2 > 0.0:
            raise ValueError("l2 must be > 0")
        if boost_buckets < 0:
            raise ValueError("boost_buckets must be >= 0")
        self.l2 = float(l2)
        self.boost_buckets = int(boost_buckets)
        self._names: List[str] = []
        self._means: List[float] = []
        self._stds: List[float] = []
        self._weights: List[float] = []
        self._intercept = 0.0
        #: Quantile cut points over training predictions (len buckets-1)
        #: and the per-bucket mean residuals (len buckets).
        self._boost_cuts: List[float] = []
        self._boost_means: List[float] = []
        self._trained_rows = 0

    # -- training -----------------------------------------------------------

    @property
    def fitted(self) -> bool:
        return self._trained_rows > 0

    @property
    def training_size(self) -> int:
        return self._trained_rows

    def fit(self, rows: Sequence[Dict[str, float]],
            targets: Sequence[float]) -> None:
        """Refit from the full training set (closed-form, so refitting
        per generation costs microseconds at these scales)."""
        if len(rows) != len(targets):
            raise ValueError("need one target per row")
        if not rows:
            raise ValueError("cannot fit on an empty training set")
        names = sorted({name for row in rows for name in row})
        count, dims = len(rows), len(names)
        matrix = numpy.zeros((count, dims), dtype=numpy.float64)
        for r, row in enumerate(rows):
            for c, name in enumerate(names):
                matrix[r, c] = row.get(name, 0.0)
        y = numpy.asarray(targets, dtype=numpy.float64)

        means = matrix.mean(axis=0)
        stds = matrix.std(axis=0)
        # Constant columns carry no signal; a unit std zeroes them after
        # centering instead of dividing by zero.
        stds = numpy.where(stds > 1e-12, stds, 1.0)
        z = (matrix - means) / stds
        y_mean = float(y.mean())
        gram = z.T @ z + self.l2 * numpy.eye(dims)
        weights = numpy.linalg.solve(gram, z.T @ (y - y_mean))

        self._names = names
        self._means = [float(v) for v in means]
        self._stds = [float(v) for v in stds]
        self._weights = [float(v) for v in weights]
        self._intercept = y_mean
        self._trained_rows = count
        self._fit_boost(z @ weights + y_mean, y)

    def _fit_boost(self, predictions: "numpy.ndarray",
                   y: "numpy.ndarray") -> None:
        self._boost_cuts = []
        self._boost_means = []
        buckets = self.boost_buckets
        # Each bucket needs at least a couple of rows to average over;
        # with fewer rows the boost would memorise noise.
        if buckets <= 1 or len(y) < 2 * buckets:
            return
        order = numpy.argsort(predictions, kind="stable")
        sorted_pred = predictions[order]
        residuals = (y - predictions)[order]
        edges = [round(i * len(y) / buckets) for i in range(1, buckets)]
        self._boost_cuts = [float(sorted_pred[e]) for e in edges]
        start = 0
        for edge in edges + [len(y)]:
            chunk = residuals[start:edge]
            self._boost_means.append(
                float(chunk.mean()) if len(chunk) else 0.0)
            start = edge

    # -- prediction ---------------------------------------------------------

    def predict(self, row: Dict[str, float]) -> float:
        """Predicted target for one row (pure-Python dot product — the
        feature count is a few dozen, so NumPy overhead would dominate
        single-row calls)."""
        if not self.fitted:
            raise ValueError("RidgeModel.predict before fit")
        value = self._intercept
        for name, mean, std, weight in zip(self._names, self._means,
                                           self._stds, self._weights):
            value += weight * (row.get(name, 0.0) - mean) / std
        if self._boost_means:
            bucket = bisect_right(self._boost_cuts, value)
            value += self._boost_means[bucket]
        return value if math.isfinite(value) else 0.0

    # -- checkpoint support -------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "l2": self.l2,
            "boost_buckets": self.boost_buckets,
            "names": list(self._names),
            "means": list(self._means),
            "stds": list(self._stds),
            "weights": list(self._weights),
            "intercept": self._intercept,
            "boost_cuts": list(self._boost_cuts),
            "boost_means": list(self._boost_means),
            "trained_rows": self._trained_rows,
        }

    def load_state(self, state: Optional[Dict[str, Any]]) -> None:
        if not state:
            return
        self.l2 = float(state.get("l2", self.l2))
        self.boost_buckets = int(state.get("boost_buckets",
                                           self.boost_buckets))
        self._names = list(state.get("names") or [])
        self._means = list(state.get("means") or [])
        self._stds = list(state.get("stds") or [])
        self._weights = list(state.get("weights") or [])
        self._intercept = float(state.get("intercept", 0.0))
        self._boost_cuts = list(state.get("boost_cuts") or [])
        self._boost_means = list(state.get("boost_means") or [])
        self._trained_rows = int(state.get("trained_rows", 0))
