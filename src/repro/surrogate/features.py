"""Candidate featurization for the surrogate fitness model.

Turns an :class:`~repro.core.individual.Individual` into the flat
``name → float`` row the :class:`~repro.surrogate.model.RidgeModel`
trains on.  Everything is reused machinery:

* the static side is :func:`repro.staticcheck.costmodel.analyze_cost`'s
  :meth:`~repro.staticcheck.costmodel.StaticCostReport.as_features` —
  instruction-mix ratios, dependence-chain shape, the SC3xx critical
  path / port pressure / IPC-energy bands;
* the optional dynamic side is one
  :class:`~repro.evaluation.probe.ShortProbe` pass — a ~1.6k-cycle
  batched simulation contributing ``probe_*`` observables at a small
  fraction of a full measurement's cycle budget.

Unassemblable genomes featurize to ``None``: they would compile-fail
to zero fitness anyway, so the surrogate ranks them last without
spending a probe on them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import AssemblyError
from ..core.individual import Individual
from ..core.template import Template
from ..cpu.microarch import MicroArch
from ..evaluation.probe import ShortProbe
from ..isa import assembler_for
from ..staticcheck.costmodel import analyze_cost

__all__ = ["SurrogateFeaturizer"]


class SurrogateFeaturizer:
    """Renders, assembles and prices candidates into feature rows.

    Parameters
    ----------
    template_text:
        The run's template (the candidate body is spliced into it, so
        features describe the *whole* measured loop, prologue included).
    arch:
        Microarchitecture whose latency/port/energy tables price the
        static features (and whose preset the probe machine runs).
    probe_cycles:
        0 disables the dynamic probe; otherwise the per-candidate probe
        cycle budget (see :class:`~repro.evaluation.probe.ShortProbe`).
    """

    def __init__(self, template_text: str, arch: MicroArch,
                 probe_cycles: int = 0) -> None:
        self.arch = arch
        self._template = Template(template_text)
        self._assembler = assembler_for(arch.isa)
        self._probe = ShortProbe(arch.name, cycles=probe_cycles) \
            if probe_cycles else None

    @property
    def probes(self) -> bool:
        return self._probe is not None

    def featurize_batch(self, individuals: Sequence[Individual]
                        ) -> List[Tuple[str, Optional[Dict[str, float]]]]:
        """``(rendered source, feature row or None)`` per individual.

        The probe (when enabled) runs once for the whole batch — the
        vectorized path is what makes probing a generation cheaper than
        simulating one candidate.
        """
        sources: List[str] = []
        programs: List = []
        rows: List[Optional[Dict[str, float]]] = []
        for individual in individuals:
            source = self._template.instantiate(individual.render_body())
            sources.append(source)
            try:
                program = self._assembler.assemble(
                    source, name=f"uid{individual.uid}.s")
            except AssemblyError:
                programs.append(None)
                rows.append(None)
                continue
            programs.append(program)
            rows.append(analyze_cost(program, self.arch)
                        .cost.as_features())

        if self._probe is not None:
            assembled = [(i, program) for i, program in enumerate(programs)
                         if program is not None]
            probed = self._probe.probe_batch(
                [program for _, program in assembled],
                [sources[i] for i, _ in assembled])
            for (index, _), extra in zip(assembled, probed):
                rows[index].update(extra)
        return list(zip(sources, rows))
