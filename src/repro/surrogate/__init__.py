"""Learned fitness surrogates (the ROADMAP's NeuroScalar direction).

Full cycle-accurate evaluation dominates a GeST search's wall-clock.
This package provides the pieces for predicting a candidate's fitness
*without* simulating it, so a search can pay full measurement for only
the most promising fraction of each generation:

* :class:`~repro.surrogate.model.RidgeModel` — dependency-free
  closed-form ridge regression (optional bucketed residual boost),
  online-refit from the observed (features, fitness) pairs;
* :class:`~repro.surrogate.features.SurrogateFeaturizer` — candidate →
  feature row, combining the static cost model's
  :meth:`~repro.staticcheck.costmodel.StaticCostReport.as_features`
  with an optional batched
  :class:`~repro.evaluation.probe.ShortProbe` pass.

The consumer is the ``surrogate`` wrapper search strategy
(:mod:`repro.search.surrogate`), which composes these with any base
strategy.
"""

from __future__ import annotations

from .features import SurrogateFeaturizer
from .model import RidgeModel

__all__ = ["RidgeModel", "SurrogateFeaturizer"]
