"""GeST-as-a-service: the asyncio run orchestrator.

Pairs with :mod:`repro.store` — the store is the queue and the ledger,
this package is the execution loop.  ``gest serve`` runs an
:class:`Orchestrator`; ``gest submit`` / ``gest runs`` / ``gest tail``
talk to the store directly and need no live server.
"""

from .orchestrator import Orchestrator, execute_run

__all__ = ["Orchestrator", "execute_run"]
