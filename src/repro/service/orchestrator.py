"""Asyncio run orchestrator (GeST-as-a-service execution layer).

The store (:mod:`repro.store`) is the coordination channel: ``gest
submit`` INSERTs a queued run, and this orchestrator claims queued
runs atomically and executes them on a bounded pool of worker slots.
Each slot drives the ordinary engine machinery —
:class:`~repro.core.engine.GeneticEngine` with a
:class:`~repro.store.StoreRecorder` subscriber and a
:class:`~repro.store.SharedEvaluationCache` — in a thread via
``asyncio.to_thread``, so N runs progress concurrently while the event
loop stays responsive for claiming, shutdown and (in tests) clean
``until_idle`` draining.

Lifecycle guarantees:

* **Graceful cancellation** — ``RunStore.request_cancel`` flips a flag
  the engine polls between generations; the run checkpoints its last
  completed generation and lands in status ``cancelled``.
* **Crash-resume** — a run left in status ``running`` by a dead
  orchestrator is re-queued on startup and resumed from the checkpoint
  blob in the store, reproducing exactly what the uninterrupted run
  would have produced (the engine's bit-identical resume contract).
"""

from __future__ import annotations

import asyncio
import pickle
import tempfile
import traceback
from pathlib import Path
from typing import List, Optional, Union

from ..core.engine import GeneticEngine
from ..core.events import RunRecorder
from ..core.loader import instantiate, load_class
from ..core.output import FileRecorder
from ..cpu.machine import SimulatedMachine
from ..cpu.target import SimulatedTarget
from ..fitness.default_fitness import DefaultFitness
from ..measurement.base import Measurement
from ..staticcheck import StaticScreen
from ..store import RunStore, SharedEvaluationCache, StoreRecorder

__all__ = ["Orchestrator", "execute_run"]


def execute_run(store_path: Union[str, Path], run_id: str,
                workdir: Optional[Union[str, Path]] = None,
                workers: int = 1) -> str:
    """Execute one stored run to completion; returns its final status.

    Runs synchronously on the calling thread (the orchestrator wraps
    it in ``asyncio.to_thread``).  The run's configuration, platform
    and strategy come from the store; outputs go back into the store
    through a :class:`StoreRecorder`, plus the paper's directory layout
    under ``<workdir>/<run_id>/`` when a workdir is given.  A stored
    checkpoint (crash or cancellation leftover) is resumed, not
    restarted.  Failures are recorded as status ``failed`` with the
    error message; the exception is not re-raised, so one bad run
    never takes the service down.
    """
    store = RunStore(store_path)
    try:
        row = store.get_run(run_id)
        config = store.load_config(run_id)
        total = row.generations if row.generations is not None \
            else config.ga.generations

        machine = SimulatedMachine(row.platform, seed=config.ga.seed or 0)
        target = SimulatedTarget(machine)
        target.connect()
        measurement = instantiate(config.measurement_class, Measurement,
                                  target, config.measurement_params)
        fitness_cls = load_class(config.fitness_class)
        fitness = fitness_cls() if fitness_cls is not DefaultFitness \
            else DefaultFitness()
        screen = StaticScreen.for_machine(machine)
        fingerprint = (f"{measurement.fingerprint()}"
                       f"|noise_seed={config.ga.seed or 0}")
        cache = SharedEvaluationCache(store_path, fingerprint,
                                      run_id=run_id)

        recorders: List[RunRecorder] = [StoreRecorder(RunStore(store_path))]
        if workdir is not None:
            run_dir = Path(workdir) / run_id
            recorders.append(FileRecorder(run_dir))
        else:
            run_dir = None

        with tempfile.TemporaryDirectory(prefix="gest-run-") as scratch:
            checkpoint_path = (run_dir or Path(scratch)) / "checkpoint.bin"
            stored = store.load_checkpoint(run_id)
            if stored is not None:
                generation, payload = stored
                checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
                checkpoint_path.write_bytes(payload)
                state = pickle.loads(payload)
                complete = all(ind.evaluated
                               for ind in state["population"])
                if complete and generation >= total - 1:
                    # The previous session checkpointed its final
                    # generation but died before the ledger update:
                    # nothing left to compute, just close the books.
                    best = state.get("best")
                    store.finish_run(
                        run_id,
                        best.uid if best is not None else None,
                        best.fitness if best is not None else None)
                    return "finished"
                engine = GeneticEngine.resume(
                    config, measurement, fitness,
                    checkpoint_path=checkpoint_path,
                    recorder=recorders, screen=screen, cache=cache,
                    workers=workers, strategy=row.strategy,
                    run_id=run_id)
            else:
                engine = GeneticEngine(
                    config, measurement, fitness, recorder=recorders,
                    checkpoint_path=checkpoint_path, screen=screen,
                    cache=cache, workers=workers, strategy=row.strategy,
                    run_id=run_id)

            history = engine.run(
                total, stop_check=lambda: store.cancel_requested(run_id))

        best = history.best_individual
        store.finish_run(run_id,
                         best.uid if best is not None else None,
                         best.fitness if best is not None else None,
                         cancelled=history.cancelled)
        cache.close()
        for recorder in recorders:
            recorder.close()
        return "cancelled" if history.cancelled else "finished"
    except Exception as exc:  # noqa: BLE001 - failures land in the ledger
        store.fail_run(run_id,
                       f"{type(exc).__name__}: {exc}\n"
                       f"{traceback.format_exc(limit=5)}")
        return "failed"
    finally:
        store.close()


class Orchestrator:
    """Bounded-concurrency run service over one result store.

    Parameters
    ----------
    store_path:
        The sqlite store file (created on first use).
    workers:
        Concurrent run slots — each executes one run at a time on its
        own thread.
    queue_limit:
        Bound on runs claimed from the store but not yet started;
        keeps a huge backlog in the database (visible to ``gest
        runs``), not in process memory.
    workdir:
        When set, every run also records the paper's results-directory
        layout under ``<workdir>/<run_id>/``.
    evaluation_workers:
        Per-run evaluation worker processes (the engine's ``workers``
        knob); 1 keeps each run serial and lets run-level concurrency
        come from the slots.
    poll_interval:
        Seconds between store polls when idle.
    """

    def __init__(self, store_path: Union[str, Path], workers: int = 2,
                 queue_limit: int = 8,
                 workdir: Optional[Union[str, Path]] = None,
                 evaluation_workers: int = 1,
                 poll_interval: float = 0.1) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.store_path = Path(store_path)
        self.workers = workers
        self.queue_limit = queue_limit
        self.workdir = Path(workdir) if workdir is not None else None
        self.evaluation_workers = evaluation_workers
        self.poll_interval = poll_interval
        self._active = 0
        self.completed: List[str] = []

    # -- store helpers (short-lived handles: thread-pool friendly) ----------

    def _claim_one(self) -> Optional[str]:
        with RunStore(self.store_path) as store:
            return store.claim_next()

    def _recover(self) -> List[str]:
        with RunStore(self.store_path) as store:
            return store.requeue_interrupted()

    # -- serving ------------------------------------------------------------

    async def serve(self, until_idle: bool = False,
                    shutdown: Optional[asyncio.Event] = None) -> List[str]:
        """Claim and execute runs until stopped.

        ``until_idle=True`` returns once the store holds no more
        queued runs and every claimed run has finished (the CI smoke
        and tests use this); otherwise serve until ``shutdown`` is set
        or the task is cancelled.  Returns the run ids executed by
        this call, in completion order.
        """
        recovered = await asyncio.to_thread(self._recover)
        if recovered:
            ids = ", ".join(recovered)
            print(f"recovered {len(recovered)} interrupted run(s): {ids}")
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.queue_limit)
        self.completed = []
        worker_tasks = [asyncio.create_task(self._worker(queue))
                        for _ in range(self.workers)]
        try:
            while True:
                if shutdown is not None and shutdown.is_set():
                    break
                claimed = None
                if not queue.full():
                    claimed = await asyncio.to_thread(self._claim_one)
                if claimed is not None:
                    await queue.put(claimed)
                    continue
                if until_idle and queue.empty() and self._active == 0:
                    break
                await asyncio.sleep(self.poll_interval)
        finally:
            for _ in worker_tasks:
                await queue.put(None)
            await asyncio.gather(*worker_tasks)
        return list(self.completed)

    def serve_until_idle(self) -> List[str]:
        """Synchronous convenience: drain the queue, then return."""
        return asyncio.run(self.serve(until_idle=True))

    async def _worker(self, queue: asyncio.Queue) -> None:
        while True:
            run_id = await queue.get()
            if run_id is None:
                queue.task_done()
                return
            self._active += 1
            try:
                status = await asyncio.to_thread(
                    execute_run, self.store_path, run_id,
                    workdir=self.workdir,
                    workers=self.evaluation_workers)
                print(f"{run_id}: {status}")
                self.completed.append(run_id)
            finally:
                self._active -= 1
                queue.task_done()
