"""The staged evaluation pipeline (render → screen → measure → score).

Measurement dominates a GeST search — the paper runs generations of
individuals against multiple target boards in parallel precisely
because the GA itself is cheap.  This module extracts the evaluation of
*one* individual into an explicit pipeline object so executor backends
(:mod:`repro.evaluation.backends`) can replicate it across worker
processes, the cache (:mod:`repro.evaluation.cache`) can skip it, and
the engine (:mod:`repro.core.engine`) shrinks to pure GA logic.

Stages, mirroring what the engine's old monolithic loop interleaved:

1. **render** — instantiate the template with the individual's loop body;
2. **screen** — optional pre-measurement static screen
   (:class:`repro.staticcheck.screen.StaticScreen`); failures take the
   zero-fitness path without touching the pipeline model;
3. **measure** — ``measure_repeated`` on the measurement plug-in;
   :class:`~repro.core.errors.AssemblyError` becomes a zero-fitness
   compile failure;
4. **score** — the fitness plug-in maps measurements to one value.

Determinism contract
--------------------
Before each measure stage the pipeline reseeds the measurement's noise
stream with a key derived from the GA seed and a digest of the rendered
source (:func:`noise_key`).  Each evaluation is therefore a pure
function of (source, target, measurement parameters) — independent of
the order individuals are measured in and of which process measures
them.  That single property is what makes ``SerialBackend``,
``ProcessPoolBackend`` and cache-hit replay produce bit-identical
populations and run histories.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import List, Optional, Protocol, Sequence

from ..core.errors import AssemblyError, ConfigError
from ..core.individual import Individual
from ..core.template import Template

__all__ = ["MeasurementProtocol", "FitnessProtocol", "ScreenProtocol",
           "ScreenReportProtocol", "StageTimings", "EvaluationResult",
           "EmptyMeasurementError", "EvaluationPipeline", "noise_key"]


# ---------------------------------------------------------------------------
# Plug-in protocols (moved here from repro.core.engine; re-exported there)
# ---------------------------------------------------------------------------

class MeasurementProtocol(Protocol):
    """What the evaluation layer needs from a measurement object
    (paper III.C).

    Both methods are required: the pipeline always dispatches through
    :meth:`measure_repeated`, so a plug-in that omits it fails loudly at
    engine construction instead of silently measuring single-shot.
    Subclasses of :class:`repro.measurement.base.Measurement` inherit a
    correct ``measure_repeated`` and only override ``measure``.
    """

    def measure(self, source_text: str,
                individual: Individual) -> List[float]:
        """Compile and run ``source_text`` on the target, returning the
        list of measurement values (first one is the default fitness)."""
        ...

    def measure_repeated(self, source_text: str,
                         individual: Individual) -> List[float]:
        """Run :meth:`measure` under the plug-in's repetition/aggregation
        policy (identical to one ``measure`` call when repeats == 1)."""
        ...


class FitnessProtocol(Protocol):
    """What the evaluation layer needs from a fitness object (III.C)."""

    def get_fitness(self, measurements: Sequence[float],
                    individual: Individual) -> float:
        ...


class ScreenReportProtocol(Protocol):
    """Verdict shape returned by a static screen."""

    passed: bool
    assembly_failed: bool


class ScreenProtocol(Protocol):
    """What the evaluation layer needs from a pre-measurement static
    screen (see :class:`repro.staticcheck.screen.StaticScreen`)."""

    def screen(self, source_text: str,
               individual: Individual) -> ScreenReportProtocol:
        ...


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

@dataclass
class StageTimings:
    """Cumulative wall-clock seconds spent per pipeline stage.

    Under a process-pool backend the stage clocks tick concurrently in
    the workers, so totals may exceed the generation's wall time — they
    are *work* accounting, not elapsed time.
    """

    render_s: float = 0.0
    screen_s: float = 0.0
    measure_s: float = 0.0
    score_s: float = 0.0

    def add(self, other: "StageTimings") -> None:
        self.render_s += other.render_s
        self.screen_s += other.screen_s
        self.measure_s += other.measure_s
        self.score_s += other.score_s

    @property
    def total_s(self) -> float:
        return self.render_s + self.screen_s + self.measure_s + self.score_s


@dataclass
class EvaluationResult:
    """Everything one trip through the pipeline produced.

    Results cross process boundaries (workers pickle them back to the
    driver), so they carry the individual's ``uid`` rather than the
    individual itself; the driver re-attaches measurements to *its*
    population objects during the deterministic uid-ordered merge.
    """

    uid: int
    source: str
    measurements: List[float]
    fitness: float
    compile_failed: bool = False
    screen_failed: bool = False
    cache_hit: bool = False
    timings: StageTimings = field(default_factory=StageTimings)
    #: Target-machine compile-cache traffic attributable to this
    #: evaluation (deltas around the measure stage).  Carried on the
    #: result because pool workers compile in *replica* machines whose
    #: counters the driver never sees.
    compile_cache_hits: int = 0
    compile_cache_misses: int = 0


class EmptyMeasurementError(ConfigError):
    """A measurement plug-in returned no values at all — a plug-in bug
    the engine turns into a checkpoint-then-abort so an hours-long run
    does not lose its partial generation."""


# ---------------------------------------------------------------------------
# Noise keying
# ---------------------------------------------------------------------------

#: Large odd constant decorrelating the GA seed from the source digest.
_NOISE_MIX = 0x9E3779B97F4A7C15


def noise_key(base_seed: int, source_text: str) -> int:
    """Deterministic per-source noise-substream key.

    Uses sha256 (not the salted builtin ``hash``) so every worker
    process derives the same key for the same rendered source, and so
    identical sources — elitism clones, cache hits — always observe
    identical measurement noise.
    """
    digest = hashlib.sha256(source_text.encode("utf-8")).digest()
    return (int.from_bytes(digest[:8], "big")
            ^ ((base_seed * _NOISE_MIX) & (2 ** 64 - 1)))


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------

class EvaluationPipeline:
    """Evaluates one individual through the staged pipeline.

    Parameters
    ----------
    template:
        The run's :class:`~repro.core.template.Template`.
    measurement, fitness:
        Plug-in objects satisfying the protocols above.  The
        measurement is validated eagerly: missing ``measure`` *or*
        ``measure_repeated`` raises :class:`ConfigError` at
        construction.
    screen:
        Optional pre-measurement static screen.
    noise_seed:
        Base seed mixed into each individual's noise-substream key
        (normally the GA seed, so one config+seed pins the whole run).
    """

    def __init__(self, template: Template,
                 measurement: MeasurementProtocol,
                 fitness: FitnessProtocol,
                 screen: Optional[ScreenProtocol] = None,
                 noise_seed: int = 0) -> None:
        for required in ("measure", "measure_repeated"):
            if not callable(getattr(measurement, required, None)):
                raise ConfigError(
                    f"measurement {type(measurement).__name__!r} does not "
                    f"implement {required}(); MeasurementProtocol requires "
                    "both measure() and measure_repeated() — subclass "
                    "repro.measurement.base.Measurement or define both")
        if not callable(getattr(fitness, "get_fitness", None)):
            raise ConfigError(
                f"fitness {type(fitness).__name__!r} does not implement "
                "get_fitness()")
        self.template = template
        self.measurement = measurement
        self.fitness = fitness
        self.screen = screen
        self.noise_seed = noise_seed
        self._reseed = getattr(measurement, "reseed_noise", None)
        if self._reseed is not None and not callable(self._reseed):
            self._reseed = None
        # Duck-typed handle to the simulated machine, for compile-cache
        # accounting; None for measurements without a simulated target.
        self._machine = getattr(
            getattr(measurement, "target", None), "machine", None)
        if not hasattr(self._machine, "compile_cache_hits"):
            self._machine = None

    # -- stages -------------------------------------------------------------

    def render(self, individual: Individual) -> str:
        """Stage 1: instantiate the template with the loop body."""
        return self.template.instantiate(individual.render_body())

    def score(self, measurements: Sequence[float],
              individual: Individual) -> float:
        """Stage 4, standalone — used for cache-hit replay."""
        return float(self.fitness.get_fitness(measurements, individual))

    def evaluate(self, individual: Individual,
                 source: Optional[str] = None) -> EvaluationResult:
        """Run the full pipeline for one individual.

        ``source`` may be pre-rendered by the driver (it renders
        eagerly for cache lookups); the render stage is then skipped
        and its time is accounted on the driver side.

        Raises :class:`EmptyMeasurementError` when the measurement
        returns an empty list — executor backends convert this into an
        in-band result item so the driver can checkpoint the partial
        generation before aborting.
        """
        timings = StageTimings()
        if source is None:
            began = perf_counter()  # staticcheck: disable=SC404
            source = self.render(individual)
            timings.render_s += perf_counter() - began  # staticcheck: disable=SC404

        if self.screen is not None:
            began = perf_counter()  # staticcheck: disable=SC404
            report = self.screen.screen(source, individual)
            timings.screen_s += perf_counter() - began  # staticcheck: disable=SC404
            if not report.passed:
                # Same zero-fitness path as a compile failure, but the
                # individual never enters the pipeline model.
                return EvaluationResult(
                    uid=individual.uid, source=source,
                    measurements=[0.0], fitness=0.0,
                    compile_failed=report.assembly_failed,
                    screen_failed=True, timings=timings)

        began = perf_counter()  # staticcheck: disable=SC404
        machine = self._machine
        hits_before = machine.compile_cache_hits if machine else 0
        misses_before = machine.compile_cache_misses if machine else 0

        def compile_deltas():
            if machine is None:
                return 0, 0
            return (machine.compile_cache_hits - hits_before,
                    machine.compile_cache_misses - misses_before)

        if self._reseed is not None:
            self._reseed(noise_key(self.noise_seed, source))
        try:
            measurements = self.measurement.measure_repeated(source,
                                                             individual)
        except AssemblyError:
            timings.measure_s += perf_counter() - began  # staticcheck: disable=SC404
            hits, misses = compile_deltas()
            return EvaluationResult(
                uid=individual.uid, source=source,
                measurements=[0.0], fitness=0.0,
                compile_failed=True, timings=timings,
                compile_cache_hits=hits, compile_cache_misses=misses)
        timings.measure_s += perf_counter() - began  # staticcheck: disable=SC404

        if not measurements:
            raise EmptyMeasurementError(
                f"measurement {type(self.measurement).__name__!r} returned "
                f"an empty result list for individual "
                f"uid={individual.uid} in generation "
                f"{individual.generation}")

        began = perf_counter()  # staticcheck: disable=SC404
        value = self.score(measurements, individual)
        timings.score_s += perf_counter() - began  # staticcheck: disable=SC404
        hits, misses = compile_deltas()
        return EvaluationResult(
            uid=individual.uid, source=source,
            measurements=list(measurements), fitness=value,
            timings=timings,
            compile_cache_hits=hits, compile_cache_misses=misses)
