"""The generation-level evaluation driver.

:class:`StagedEvaluator` is what the GA engine talks to: it takes a
population, renders every unevaluated individual (render stays in the
driver so cache addressing never crosses a process boundary), satisfies
what it can from the :class:`~repro.evaluation.cache.EvaluationCache`,
fans the misses out through the configured
:class:`~repro.evaluation.backends.ExecutorBackend`, and hands back a
:class:`GenerationOutcome` whose results are sorted in uid order — the
canonical merge order that makes every backend/cache combination
produce identical populations, checkpoints and run histories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import List, Optional

from .backends import ExecutorBackend, Job, SerialBackend
from .cache import CachedEvaluation, EvaluationCache
from .pipeline import EmptyMeasurementError, EvaluationPipeline, \
    EvaluationResult, StageTimings

__all__ = ["GenerationOutcome", "StagedEvaluator"]

#: Stable stats labels for the stock backends (fallback: class name).
_BACKEND_LABELS = {
    "SerialBackend": "serial",
    "BatchedBackend": "batched",
    "ProcessPoolBackend": "pool",
}


def _backend_label(backend) -> str:
    name = type(backend).__name__
    return _BACKEND_LABELS.get(name, name)


@dataclass
class GenerationOutcome:
    """One generation's evaluation pass, ready to merge.

    ``results`` is uid-ordered and covers every individual evaluated in
    this pass; on a plug-in failure (``error`` set) it covers the
    results completed before the failure point plus all cache hits —
    the driver applies them, checkpoints, then re-raises ``error``.
    """

    results: List[EvaluationResult] = field(default_factory=list)
    error: Optional[EmptyMeasurementError] = None
    timings: StageTimings = field(default_factory=StageTimings)
    cache_hits: int = 0
    measured: int = 0
    screened: int = 0
    #: Target-machine compile-cache traffic summed over the fresh
    #: (non-evaluation-cache-hit) results of this pass.
    compile_cache_hits: int = 0
    compile_cache_misses: int = 0
    #: Which execution engine ran the generation's misses ("serial",
    #: "batched", "pool", ...) and, for auto-selecting backends, why.
    backend: str = ""
    backend_reason: str = ""


class StagedEvaluator:
    """Evaluates populations through cache → backend → uid-order merge."""

    def __init__(self, pipeline: EvaluationPipeline,
                 backend: Optional[ExecutorBackend] = None,
                 cache: Optional[EvaluationCache] = None) -> None:
        self.pipeline = pipeline
        self.backend = backend if backend is not None else SerialBackend()
        self.cache = cache

    def evaluate_population(self, population) -> GenerationOutcome:
        outcome = GenerationOutcome()
        jobs: List[Job] = []
        for individual in population:
            if individual.evaluated:
                continue
            began = perf_counter()  # staticcheck: disable=SC404
            source = self.pipeline.render(individual)
            outcome.timings.render_s += perf_counter() - began  # staticcheck: disable=SC404
            cached = self.cache.get(source) if self.cache is not None \
                else None
            if cached is not None:
                outcome.results.append(
                    self._replay(individual, source, cached,
                                 outcome.timings))
                outcome.cache_hits += 1
            else:
                jobs.append((individual, source))

        # Generation-aware backends get the whole batch at once (the
        # vectorized path needs to see every miss together); classic
        # backends keep their per-job evaluate contract.
        runner = getattr(self.backend, "evaluate_generation", None)
        if callable(runner):
            items = runner(self.pipeline, jobs)
        else:
            items = self.backend.evaluate(self.pipeline, jobs)
        for item in items:
            if isinstance(item, EmptyMeasurementError):
                outcome.error = item
                break
            outcome.results.append(item)
            outcome.timings.add(item.timings)
            outcome.compile_cache_hits += item.compile_cache_hits
            outcome.compile_cache_misses += item.compile_cache_misses
            if self.cache is not None:
                self.cache.put(item.source, CachedEvaluation(
                    measurements=tuple(item.measurements),
                    compile_failed=item.compile_failed,
                    screen_failed=item.screen_failed))

        self._sync_counters(outcome)
        outcome.backend = getattr(self.backend, "last_choice", "") \
            or _backend_label(self.backend)
        outcome.backend_reason = getattr(self.backend, "last_reason", "")
        outcome.results.sort(key=lambda result: result.uid)
        return outcome

    def close(self) -> None:
        """Release backend resources (worker pools)."""
        self.backend.close()

    # -- internals ----------------------------------------------------------

    def _replay(self, individual, source: str, cached: CachedEvaluation,
                timings: StageTimings) -> EvaluationResult:
        """Reconstruct a result from a cache entry (score re-runs)."""
        if cached.compile_failed or cached.screen_failed:
            return EvaluationResult(
                uid=individual.uid, source=source,
                measurements=list(cached.measurements), fitness=0.0,
                compile_failed=cached.compile_failed,
                screen_failed=cached.screen_failed, cache_hit=True)
        began = perf_counter()  # staticcheck: disable=SC404
        fitness = self.pipeline.score(cached.measurements, individual)
        timings.score_s += perf_counter() - began  # staticcheck: disable=SC404
        return EvaluationResult(
            uid=individual.uid, source=source,
            measurements=list(cached.measurements), fitness=fitness,
            cache_hit=True)

    def _sync_counters(self, outcome: GenerationOutcome) -> None:
        """Derive measured/screened counters; replicate screen stats.

        A replicating backend (``shares_state = False``) screens inside
        its worker copies, so the driver-side screen's cumulative
        :class:`~repro.staticcheck.screen.ScreenStats` would otherwise
        stay empty; rebuild them from the returned results.
        """
        screen = self.pipeline.screen
        fresh = [r for r in outcome.results if not r.cache_hit]
        outcome.measured = sum(1 for r in fresh if not r.screen_failed)
        if screen is None:
            return
        outcome.screened = len(fresh)
        if self.backend.shares_state:
            return
        stats = getattr(screen, "stats", None)
        if stats is None:
            return
        for result in fresh:
            stats.screened += 1
            if not result.screen_failed:
                stats.passed += 1
            elif result.compile_failed:
                stats.assembly_failures += 1
            else:
                stats.dataflow_failures += 1
