"""Content-addressed evaluation cache.

An evaluation's observables are a pure function of the rendered source,
the target machine, and the measurement parameters (see the determinism
contract in :mod:`repro.evaluation.pipeline`), so they can be memoised
under a content address: ``sha256(target fingerprint ‖ rendered
source)``.  Hits skip the screen *and* the pipeline model entirely —
re-measured elitism clones cost nothing, and a resumed or re-seeded run
replays previously measured genomes from the cache file instead of the
simulator.

Only the measurements and failure flags are cached.  Fitness is always
re-scored against the hitting individual, because fitness plug-ins may
read genome properties (e.g. the simplicity term of the paper's
Equation 1) that differ between individuals sharing a source digest —
in practice they never do for identical sources, which keeps cached and
uncached runs bit-identical.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from ..core.errors import ConfigError

__all__ = ["CachedEvaluation", "EvaluationCache"]

_FORMAT = "gest-repro-evaluation-cache"
_VERSION = 1


@dataclass(frozen=True)
class CachedEvaluation:
    """The replayable part of one evaluation."""

    measurements: Tuple[float, ...]
    compile_failed: bool = False
    screen_failed: bool = False


class EvaluationCache:
    """In-memory store keyed on (fingerprint, rendered source).

    Parameters
    ----------
    fingerprint:
        Stable description of everything besides the source that
        determines a measurement — target machine, measurement class
        and parameters, noise seed (see
        :meth:`repro.measurement.base.Measurement.fingerprint`).  Two
        caches with different fingerprints never share entries, so a
        cache file recorded against one platform cannot poison a run on
        another.
    """

    def __init__(self, fingerprint: str = "") -> None:
        self.fingerprint = fingerprint
        self._entries: Dict[str, CachedEvaluation] = {}
        self.hits = 0
        self.misses = 0

    # -- addressing ---------------------------------------------------------

    def key(self, source_text: str) -> str:
        digest = hashlib.sha256()
        digest.update(self.fingerprint.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(source_text.encode("utf-8"))
        return digest.hexdigest()

    # -- store --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, source_text: str) -> Optional[CachedEvaluation]:
        entry = self._entries.get(self.key(source_text))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, source_text: str, entry: CachedEvaluation) -> None:
        self._entries[self.key(source_text)] = entry

    def iter_entries(self) -> Iterator[Tuple[str, CachedEvaluation]]:
        """Yield every ``(key, entry)`` pair, in sorted key order.

        The bulk-read protocol for consumers that want the whole store
        at once (the surrogate strategy's warm start); subclasses with
        remote storage override it with one bulk query instead of a
        per-key lookup.  Does not touch the hit/miss counters.
        """
        for key in sorted(self._entries):
            yield key, self._entries[key]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- persistence (resumed runs skip the pipeline model) -----------------

    def save(self, path: Union[str, Path]) -> Path:
        """Write the entries as JSON (atomic replace)."""
        path = Path(path)
        payload = {
            "format": _FORMAT,
            "version": _VERSION,
            "fingerprint": self.fingerprint,
            "entries": {
                key: {
                    "measurements": list(entry.measurements),
                    "compile_failed": entry.compile_failed,
                    "screen_failed": entry.screen_failed,
                }
                for key, entry in sorted(self._entries.items())
            },
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_suffix(path.suffix + ".tmp")
        temp.write_text(json.dumps(payload, indent=1, sort_keys=True))
        temp.replace(path)
        return path

    @classmethod
    def load(cls, path: Union[str, Path],
             fingerprint: str = "") -> "EvaluationCache":
        """Read a cache file.

        A fingerprint mismatch returns an *empty* cache with the given
        fingerprint rather than raising — stale entries from a
        different target or measurement setup are simply not reusable.
        Likewise a corrupt or truncated cache file (a run killed during
        an old non-atomic write, a bad disk) costs only re-measurement:
        the load warns and starts empty instead of refusing to run.
        """
        path = Path(path)
        if not path.exists():
            raise ConfigError(f"evaluation cache {path} does not exist")
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            warnings.warn(
                f"evaluation cache {path} is corrupt ({exc}); starting "
                "with an empty cache — previously cached evaluations "
                "will be re-measured", RuntimeWarning, stacklevel=2)
            return cls(fingerprint)
        if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
            raise ConfigError(
                f"{path} is not an evaluation cache file")
        if payload.get("version") != _VERSION:
            raise ConfigError(
                f"evaluation cache {path} has unsupported version "
                f"{payload.get('version')!r}; this build reads "
                f"version {_VERSION}")
        cache = cls(fingerprint)
        if payload.get("fingerprint") != fingerprint:
            return cache
        for key, raw in payload.get("entries", {}).items():
            cache._entries[key] = CachedEvaluation(
                measurements=tuple(float(m)
                                   for m in raw.get("measurements", [])),
                compile_failed=bool(raw.get("compile_failed", False)),
                screen_failed=bool(raw.get("screen_failed", False)),
            )
        return cache
