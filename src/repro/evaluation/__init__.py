"""Staged evaluation layer: pipeline, executor backends, cache.

The paper's framework treats measurement as a pluggable component and
drives multiple target boards in parallel; this package is that
architecture extracted from the GA engine.  The engine owns selection,
crossover, mutation and bookkeeping; everything between "here is an
unevaluated individual" and "here are its measurements and fitness"
lives here:

* :class:`EvaluationPipeline` — the explicit render → screen → measure
  → score stages for one individual, with per-stage wall-time and a
  per-source noise-substream contract that makes every evaluation a
  pure function (the key to everything below);
* :class:`SerialBackend` / :class:`ProcessPoolBackend` — pluggable
  executors; the pool backend replicates the whole pipeline (machine,
  measurement, screen) into N forked workers, the paper's "multiple
  boards", with results merged in deterministic uid order;
* :class:`EvaluationCache` — content-addressed memoisation keyed on
  (target fingerprint, rendered source), so elitism clones and resumed
  runs skip the pipeline model;
* :class:`StagedEvaluator` — the engine-facing driver composing the
  three.

Same config + seed produces bit-identical populations and run
histories under any backend, with the cache on or off.
"""

from .backends import ExecutorBackend, ProcessPoolBackend, SerialBackend
from .cache import CachedEvaluation, EvaluationCache
from .evaluator import GenerationOutcome, StagedEvaluator
from .pipeline import (EmptyMeasurementError, EvaluationPipeline,
                       EvaluationResult, FitnessProtocol,
                       MeasurementProtocol, ScreenProtocol,
                       ScreenReportProtocol, StageTimings, noise_key)

__all__ = [
    "ExecutorBackend", "ProcessPoolBackend", "SerialBackend",
    "CachedEvaluation", "EvaluationCache",
    "GenerationOutcome", "StagedEvaluator",
    "EmptyMeasurementError", "EvaluationPipeline", "EvaluationResult",
    "FitnessProtocol", "MeasurementProtocol", "ScreenProtocol",
    "ScreenReportProtocol", "StageTimings", "noise_key",
]
