"""Pluggable executor backends (the paper's "multiple boards").

GeST measures a generation's individuals on however many target boards
are attached; the backend abstraction reproduces that degree of
freedom.  A backend takes the pre-rendered jobs the driver could not
satisfy from cache and returns one :class:`EvaluationResult` per job,
**in submission order** — the driver merges them back into the
population in deterministic uid order, so every backend yields
bit-identical checkpoints, populations and run histories.

* :class:`SerialBackend` — the default: evaluates in the driver
  process against the live plug-in objects, sharing their state
  (screen counters, call counters in test doubles) exactly as the old
  monolithic engine loop did.

* :class:`ProcessPoolBackend` — fans jobs out over N forked worker
  processes.  Each worker inherits a *replica* of the whole pipeline —
  its own :class:`~repro.cpu.machine.SimulatedMachine`, measurement,
  fitness and screen — so per-board state never races.  Requires the
  ``fork`` start method (the pipeline deliberately replicates by
  inheritance so even unpicklable user plug-ins parallelise); results
  and the per-job individuals are pickled across the process boundary.

An :class:`EmptyMeasurementError` raised inside a worker is returned
*in band* as the result item for its job; the driver applies every
result before the failure point, checkpoints, and re-raises — so a
plug-in bug costs at most one generation regardless of backend.
"""

from __future__ import annotations

import multiprocessing
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple, Union

from ..core.errors import ConfigError
from ..core.individual import Individual
from .pipeline import EmptyMeasurementError, EvaluationPipeline, \
    EvaluationResult

__all__ = ["ExecutorBackend", "SerialBackend", "ProcessPoolBackend"]

#: A unit of work: the individual plus its pre-rendered source.
Job = Tuple[Individual, str]
#: Backends return results or, in band, the error that stopped a job.
ResultOrError = Union[EvaluationResult, EmptyMeasurementError]


class ExecutorBackend(ABC):
    """Strategy interface for evaluating a batch of pipeline jobs."""

    #: True when the backend evaluates against the driver's live
    #: plug-in objects (their in-process state — screen counters, test
    #: doubles — observes the evaluations).  Replicating backends set
    #: this False so the driver knows to sync observable counters from
    #: the returned results instead.
    shares_state = True

    @abstractmethod
    def evaluate(self, pipeline: EvaluationPipeline,
                 jobs: Sequence[Job]) -> List[ResultOrError]:
        """Evaluate ``jobs``; results in submission order.

        Stops dispatching after the first
        :class:`EmptyMeasurementError`, which is appended in band as
        the final item.
        """

    def close(self) -> None:
        """Release any execution resources (idempotent)."""


class SerialBackend(ExecutorBackend):
    """Evaluate in the driver process — bit-identical to the engine's
    historical single loop, and the default."""

    shares_state = True

    def evaluate(self, pipeline: EvaluationPipeline,
                 jobs: Sequence[Job]) -> List[ResultOrError]:
        results: List[ResultOrError] = []
        for individual, source in jobs:
            try:
                results.append(pipeline.evaluate(individual, source=source))
            except EmptyMeasurementError as exc:
                results.append(exc)
                break
        return results


# -- worker-side plumbing (module-level so the pool can address it) ---------

_WORKER_PIPELINE: Optional[EvaluationPipeline] = None


def _init_worker(pipeline: EvaluationPipeline) -> None:
    global _WORKER_PIPELINE
    _WORKER_PIPELINE = pipeline


def _run_job(job: Job) -> ResultOrError:
    individual, source = job
    try:
        return _WORKER_PIPELINE.evaluate(individual, source=source)
    except EmptyMeasurementError as exc:
        return exc


def _run_chunk(chunk: Sequence[Job]) -> List[ResultOrError]:
    """Evaluate a contiguous slice of the generation in one worker.

    One pickled round trip carries the whole slice's jobs out and its
    results back — per-individual dispatch costs one IPC exchange per
    *individual*, which at simulator evaluation rates dominates the
    work itself and made the pool slower than serial.  Stops at the
    first in-band failure, mirroring SerialBackend within the slice.
    """
    results: List[ResultOrError] = []
    for job in chunk:
        item = _run_job(job)
        results.append(item)
        if isinstance(item, EmptyMeasurementError):
            break
    return results


class ProcessPoolBackend(ExecutorBackend):
    """Fan a generation's unevaluated individuals over worker processes.

    The pool is created lazily on the first batch (so the fork
    snapshots the fully-constructed pipeline) and persists across
    generations; the engine closes it when the run finishes.
    """

    shares_state = False

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigError("evaluation workers must be >= 1")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigError(
                "ProcessPoolBackend needs the 'fork' start method (worker "
                "replicas inherit the pipeline by forking); this platform "
                "offers none — use SerialBackend")
        self.workers = workers
        self._pool = None
        self._pipeline: Optional[EvaluationPipeline] = None

    def evaluate(self, pipeline: EvaluationPipeline,
                 jobs: Sequence[Job]) -> List[ResultOrError]:
        if not jobs:
            return []
        pool = self._ensure_pool(pipeline)
        # One contiguous slice per worker: a single IPC round trip per
        # slice instead of one per individual.  map() preserves
        # submission order, and flattening then truncating at the first
        # in-band error reproduces SerialBackend's stop point exactly
        # (later slices may have run, as with any parallel dispatch,
        # but their results are discarded).
        n = len(jobs)
        worker_count = min(self.workers, n)
        base, extra = divmod(n, worker_count)
        chunks: List[List[Job]] = []
        start = 0
        for index in range(worker_count):
            size = base + (1 if index < extra else 0)
            chunks.append(list(jobs[start:start + size]))
            start += size
        results: List[ResultOrError] = []
        for chunk_results in pool.map(_run_chunk, chunks, chunksize=1):
            stop = False
            for item in chunk_results:
                results.append(item)
                if isinstance(item, EmptyMeasurementError):
                    stop = True
                    break
            if stop:
                break
        return results

    def _ensure_pool(self, pipeline: EvaluationPipeline):
        if self._pool is not None and self._pipeline is not pipeline:
            # A stale pool would evaluate against the old forked replica.
            self.close()
        if self._pool is None:
            context = multiprocessing.get_context("fork")
            self._pool = context.Pool(self.workers,
                                      initializer=_init_worker,
                                      initargs=(pipeline,))
            self._pipeline = pipeline
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self._pipeline = None
