"""Pluggable executor backends (the paper's "multiple boards").

GeST measures a generation's individuals on however many target boards
are attached; the backend abstraction reproduces that degree of
freedom.  A backend takes the pre-rendered jobs the driver could not
satisfy from cache and returns one :class:`EvaluationResult` per job,
**in submission order** — the driver merges them back into the
population in deterministic uid order, so every backend yields
bit-identical checkpoints, populations and run histories.

* :class:`SerialBackend` — the default: evaluates in the driver
  process against the live plug-in objects, sharing their state
  (screen counters, call counters in test doubles) exactly as the old
  monolithic engine loop did.

* :class:`ProcessPoolBackend` — fans jobs out over N forked worker
  processes.  Each worker inherits a *replica* of the whole pipeline —
  its own :class:`~repro.cpu.machine.SimulatedMachine`, measurement,
  fitness and screen — so per-board state never races.  Requires the
  ``fork`` start method (the pipeline deliberately replicates by
  inheritance so even unpicklable user plug-ins parallelise); results
  and the per-job individuals are pickled across the process boundary.

An :class:`EmptyMeasurementError` raised inside a worker is returned
*in band* as the result item for its job; the driver applies every
result before the failure point, checkpoints, and re-raises — so a
plug-in bug costs at most one generation regardless of backend.
"""

from __future__ import annotations

import multiprocessing
from abc import ABC, abstractmethod
from time import perf_counter
from typing import List, Optional, Sequence, Tuple, Union

from ..core.errors import AssemblyError, ConfigError
from ..core.individual import Individual
from ..cpu.machine import BatchedMachine, SimulatedMachine
from ..isa.splice import TemplateSplicer
from .pipeline import EmptyMeasurementError, EvaluationPipeline, \
    EvaluationResult, StageTimings, noise_key

__all__ = ["ExecutorBackend", "SerialBackend", "BatchedBackend",
           "ProcessPoolBackend", "AutoSelectBackend", "supports_batching"]

#: A unit of work: the individual plus its pre-rendered source.
Job = Tuple[Individual, str]
#: Backends return results or, in band, the error that stopped a job.
ResultOrError = Union[EvaluationResult, EmptyMeasurementError]


class ExecutorBackend(ABC):
    """Strategy interface for evaluating a batch of pipeline jobs."""

    #: True when the backend evaluates against the driver's live
    #: plug-in objects (their in-process state — screen counters, test
    #: doubles — observes the evaluations).  Replicating backends set
    #: this False so the driver knows to sync observable counters from
    #: the returned results instead.
    shares_state = True

    @abstractmethod
    def evaluate(self, pipeline: EvaluationPipeline,
                 jobs: Sequence[Job]) -> List[ResultOrError]:
        """Evaluate ``jobs``; results in submission order.

        Stops dispatching after the first
        :class:`EmptyMeasurementError`, which is appended in band as
        the final item.
        """

    def close(self) -> None:
        """Release any execution resources (idempotent)."""


def _serial_loop(pipeline: EvaluationPipeline,
                 jobs: Sequence[Job]) -> List[ResultOrError]:
    """Per-job pipeline evaluation, stopping at the first in-band error."""
    results: List[ResultOrError] = []
    for individual, source in jobs:
        try:
            results.append(pipeline.evaluate(individual, source=source))
        except EmptyMeasurementError as exc:
            results.append(exc)
            break
    return results


class SerialBackend(ExecutorBackend):
    """Evaluate in the driver process — bit-identical to the engine's
    historical single loop, and the default."""

    shares_state = True

    def evaluate(self, pipeline: EvaluationPipeline,
                 jobs: Sequence[Job]) -> List[ResultOrError]:
        return _serial_loop(pipeline, jobs)


def supports_batching(pipeline: EvaluationPipeline) -> bool:
    """True when ``pipeline`` can take the population-batched path.

    Requires a measurement that (a) opts in via
    :meth:`~repro.measurement.base.Measurement.supports_batching` —
    i.e. implements ``measure_from_result`` so one target execution
    fully determines its values, (b) exposes the stock execution
    parameters, and (c) sits on a :class:`SimulatedTarget` backed by a
    real :class:`~repro.cpu.machine.SimulatedMachine` with a reseedable
    noise stream (without per-individual reseeding the serial path's
    noise draws are order-dependent and a batch could not replicate
    them).
    """
    measurement = pipeline.measurement
    probe = getattr(measurement, "supports_batching", None)
    if not callable(probe) or not probe():
        return False
    if getattr(pipeline, "_reseed", None) is None:
        return False
    machine = getattr(getattr(measurement, "target", None), "machine", None)
    if not isinstance(machine, SimulatedMachine):
        return False
    for attr in ("duration_s", "cores", "sample_count", "repeats",
                 "source_name"):
        if not hasattr(measurement, attr):
            return False
    return callable(getattr(measurement, "aggregate_rounds", None))


class BatchedBackend(ExecutorBackend):
    """Evaluate a whole generation as one vectorized pass.

    The render→measure→score path is re-staged population-wide:
    screening stays per-individual (in job order, against the live
    screen object), every surviving source is compiled through a
    :class:`~repro.isa.splice.TemplateSplicer` (template scaffolding
    assembled once, only loop bodies re-decoded), and all programs then
    execute as a single :class:`~repro.cpu.machine.BatchedMachine` pass
    — pipeline lockstep simulation, ``(population, cycles)`` energy
    accumulation and a vectorized PDN solve.  Per-individual noise
    substreams are replayed afterwards in job order, so every
    observable is bit-identical to :class:`SerialBackend`.

    Pipelines that cannot batch (custom measurements without
    ``measure_from_result``, non-simulated targets) silently take the
    serial per-job loop — correctness never depends on batching.

    Stage-time accounting: screen and score remain per-individual;
    the batch's compile+execute wall time is apportioned equally
    across the batched jobs' ``measure_s``.
    """

    shares_state = True

    def __init__(self) -> None:
        self._pipeline: Optional[EvaluationPipeline] = None
        self._splicer: Optional[TemplateSplicer] = None
        self._batched: Optional[BatchedMachine] = None

    def evaluate(self, pipeline: EvaluationPipeline,
                 jobs: Sequence[Job]) -> List[ResultOrError]:
        return self.evaluate_generation(pipeline, jobs)

    def evaluate_generation(self, pipeline: EvaluationPipeline,
                            jobs: Sequence[Job]) -> List[ResultOrError]:
        if not jobs:
            return []
        if not supports_batching(pipeline):
            return _serial_loop(pipeline, jobs)
        measurement = pipeline.measurement
        machine: SimulatedMachine = measurement.target.machine
        if self._pipeline is not pipeline:
            self._pipeline = pipeline
            self._splicer = TemplateSplicer(pipeline.template,
                                            machine.assembler)
            self._batched = BatchedMachine(machine)

        n = len(jobs)
        slots: List[Optional[ResultOrError]] = [None] * n
        timings = [StageTimings() for _ in range(n)]
        runnable: List[int] = []
        for index, (individual, source) in enumerate(jobs):
            if pipeline.screen is not None:
                began = perf_counter()  # staticcheck: disable=SC404
                report = pipeline.screen.screen(source, individual)
                timings[index].screen_s += perf_counter() - began  # staticcheck: disable=SC404
                if not report.passed:
                    slots[index] = EvaluationResult(
                        uid=individual.uid, source=source,
                        measurements=[0.0], fitness=0.0,
                        compile_failed=report.assembly_failed,
                        screen_failed=True, timings=timings[index])
                    continue
            runnable.append(index)

        # Compile (spliced) and execute the whole batch.
        began_measure = perf_counter()  # staticcheck: disable=SC404
        translator = getattr(measurement.target, "translator", None)
        programs = {}
        deltas = {}
        for index in runnable:
            individual, source = jobs[index]
            hits_before = machine.compile_cache_hits
            misses_before = machine.compile_cache_misses
            text = translator(source) if translator is not None else source
            try:
                programs[index] = machine.compile(
                    text, name=measurement.source_name,
                    builder=self._splicer.compile)
            except AssemblyError:
                slots[index] = EvaluationResult(
                    uid=individual.uid, source=source,
                    measurements=[0.0], fitness=0.0,
                    compile_failed=True, timings=timings[index],
                    compile_cache_hits=machine.compile_cache_hits
                    - hits_before,
                    compile_cache_misses=machine.compile_cache_misses
                    - misses_before)
                continue
            deltas[index] = (machine.compile_cache_hits - hits_before,
                             machine.compile_cache_misses - misses_before)
        batch_rows = [index for index in runnable if index in programs]
        rounds_by_row: List[List] = []
        if batch_rows:
            rounds_by_row = self._batched.run_batch(
                [programs[index] for index in batch_rows],
                duration_s=measurement.duration_s,
                cores=measurement.cores,
                power_sample_count=measurement.sample_count,
                noise_keys=[noise_key(pipeline.noise_seed, jobs[index][1])
                            for index in batch_rows],
                repeats=measurement.repeats)
        measure_share = (perf_counter() - began_measure) \
            / max(1, len(runnable))
        for index in runnable:
            timings[index].measure_s += measure_share

        # Interpret, aggregate and score per individual, in job order.
        error_at: Optional[int] = None
        error: Optional[EmptyMeasurementError] = None
        for row, index in enumerate(batch_rows):
            individual, source = jobs[index]
            rounds = [measurement.measure_from_result(result, individual)
                      for result in rounds_by_row[row]]
            measurements = measurement.aggregate_rounds(rounds, individual)
            if not measurements:
                error_at = index
                error = EmptyMeasurementError(
                    f"measurement {type(measurement).__name__!r} returned "
                    f"an empty result list for individual "
                    f"uid={individual.uid} in generation "
                    f"{individual.generation}")
                break
            began = perf_counter()  # staticcheck: disable=SC404
            value = pipeline.score(measurements, individual)
            timings[index].score_s += perf_counter() - began  # staticcheck: disable=SC404
            hits, misses = deltas[index]
            slots[index] = EvaluationResult(
                uid=individual.uid, source=source,
                measurements=list(measurements), fitness=value,
                timings=timings[index],
                compile_cache_hits=hits, compile_cache_misses=misses)

        if error is not None:
            # Mirror the serial stop point: everything before the
            # failing job stands, the error goes in band, later results
            # (already computed, as with any parallel dispatch) drop.
            results: List[ResultOrError] = [
                item for item in slots[:error_at] if item is not None]
            results.append(error)
            return results
        return [item for item in slots if item is not None]


# -- worker-side plumbing (module-level so the pool can address it) ---------

_WORKER_PIPELINE: Optional[EvaluationPipeline] = None


def _init_worker(pipeline: EvaluationPipeline) -> None:
    global _WORKER_PIPELINE
    _WORKER_PIPELINE = pipeline


def _run_job(job: Job) -> ResultOrError:
    individual, source = job
    try:
        return _WORKER_PIPELINE.evaluate(individual, source=source)
    except EmptyMeasurementError as exc:
        return exc


_WORKER_BATCHED: Optional[BatchedBackend] = None


def _run_subbatch(chunk: Sequence[Job]) -> List[ResultOrError]:
    """Evaluate a contiguous slice of the generation as one batch.

    The worker-global :class:`BatchedBackend` runs the slice through
    the vectorized path against the worker's forked pipeline replica —
    the pool's parallelism composes with the batch speedup instead of
    competing with it.
    """
    global _WORKER_BATCHED
    if _WORKER_BATCHED is None:
        _WORKER_BATCHED = BatchedBackend()
    return _WORKER_BATCHED.evaluate_generation(_WORKER_PIPELINE, chunk)


def _run_chunk(chunk: Sequence[Job]) -> List[ResultOrError]:
    """Evaluate a contiguous slice of the generation in one worker.

    One pickled round trip carries the whole slice's jobs out and its
    results back — per-individual dispatch costs one IPC exchange per
    *individual*, which at simulator evaluation rates dominates the
    work itself and made the pool slower than serial.  Stops at the
    first in-band failure, mirroring SerialBackend within the slice.
    """
    results: List[ResultOrError] = []
    for job in chunk:
        item = _run_job(job)
        results.append(item)
        if isinstance(item, EmptyMeasurementError):
            break
    return results


class ProcessPoolBackend(ExecutorBackend):
    """Fan a generation's unevaluated individuals over worker processes.

    The pool is created lazily on the first batch (so the fork
    snapshots the fully-constructed pipeline) and persists across
    generations; the engine closes it when the run finishes.
    """

    shares_state = False

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigError("evaluation workers must be >= 1")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigError(
                "ProcessPoolBackend needs the 'fork' start method (worker "
                "replicas inherit the pipeline by forking); this platform "
                "offers none — use SerialBackend")
        self.workers = workers
        self._pool = None
        self._pipeline: Optional[EvaluationPipeline] = None

    def evaluate(self, pipeline: EvaluationPipeline,
                 jobs: Sequence[Job]) -> List[ResultOrError]:
        return self._fan_out(pipeline, jobs, _run_chunk)

    def evaluate_generation(self, pipeline: EvaluationPipeline,
                            jobs: Sequence[Job]) -> List[ResultOrError]:
        """Fan out as contiguous sub-batches, each evaluated through a
        worker-local :class:`BatchedBackend` — vectorized execution
        inside every worker, process parallelism across them."""
        return self._fan_out(pipeline, jobs, _run_subbatch)

    def _fan_out(self, pipeline: EvaluationPipeline,
                 jobs: Sequence[Job], runner) -> List[ResultOrError]:
        if not jobs:
            return []
        pool = self._ensure_pool(pipeline)
        # One contiguous slice per worker: a single IPC round trip per
        # slice instead of one per individual.  map() preserves
        # submission order, and flattening then truncating at the first
        # in-band error reproduces SerialBackend's stop point exactly
        # (later slices may have run, as with any parallel dispatch,
        # but their results are discarded).
        n = len(jobs)
        worker_count = min(self.workers, n)
        base, extra = divmod(n, worker_count)
        chunks: List[List[Job]] = []
        start = 0
        for index in range(worker_count):
            size = base + (1 if index < extra else 0)
            chunks.append(list(jobs[start:start + size]))
            start += size
        results: List[ResultOrError] = []
        for chunk_results in pool.map(runner, chunks, chunksize=1):
            stop = False
            for item in chunk_results:
                results.append(item)
                if isinstance(item, EmptyMeasurementError):
                    stop = True
                    break
            if stop:
                break
        return results

    def _ensure_pool(self, pipeline: EvaluationPipeline):
        if self._pool is not None and self._pipeline is not pipeline:
            # A stale pool would evaluate against the old forked replica.
            self.close()
        if self._pool is None:
            context = multiprocessing.get_context("fork")
            self._pool = context.Pool(self.workers,
                                      initializer=_init_worker,
                                      initargs=(pipeline,))
            self._pipeline = pipeline
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self._pipeline = None


#: Measured crossover points (dev container, cortex_a15 preset,
#: sim_cycles=600, bare_metal).  Below ``_BATCH_MIN_JOBS`` misses the
#: lockstep batch's setup overhead loses to the plain serial loop;
#: forking/IPC only amortises once a generation carries at least
#: ``_POOL_MIN_CYCLE_WORK`` job·cycles of simulation *and* every worker
#: still receives a batch-worthy slice.
_BATCH_MIN_JOBS = 8
_POOL_MIN_CYCLE_WORK = 64 * 600


class AutoSelectBackend(ExecutorBackend):
    """Pick serial / batched / pooled execution per generation.

    The historical default silently used a process pool whenever
    ``workers > 1`` — on small populations or short simulations the
    fork+pickle overhead made that a net loss.  This backend sizes each
    generation (jobs × ``sim_cycles``) against measured crossover
    points and routes it to the cheapest delegate, recording the
    decision in :attr:`last_choice` / :attr:`last_reason` so each
    generation's stats row shows which engine ran it and why.
    """

    def __init__(self, pool_workers: int = 1) -> None:
        self.pool_workers = max(1, int(pool_workers))
        self._serial = SerialBackend()
        self._batched = BatchedBackend()
        self._pool: Optional[ProcessPoolBackend] = None
        self._last: ExecutorBackend = self._serial
        self.last_choice = "serial"
        self.last_reason = "no generation evaluated yet"

    @property
    def shares_state(self) -> bool:  # type: ignore[override]
        """Reflects the delegate that ran the last generation."""
        return self._last.shares_state

    def evaluate(self, pipeline: EvaluationPipeline,
                 jobs: Sequence[Job]) -> List[ResultOrError]:
        return self.evaluate_generation(pipeline, jobs)

    def evaluate_generation(self, pipeline: EvaluationPipeline,
                            jobs: Sequence[Job]) -> List[ResultOrError]:
        delegate = self._choose(pipeline, jobs)
        self._last = delegate
        if isinstance(delegate, ProcessPoolBackend):
            return delegate.evaluate_generation(pipeline, jobs)
        return delegate.evaluate(pipeline, jobs)

    def _choose(self, pipeline: EvaluationPipeline,
                jobs: Sequence[Job]) -> ExecutorBackend:
        n = len(jobs)
        if not supports_batching(pipeline):
            # Non-batchable pipelines: the only lever left is the pool.
            if self.pool_workers > 1 and n >= 2 * self.pool_workers:
                self.last_choice = "pool"
                self.last_reason = (
                    f"pipeline not batchable; {n} jobs across "
                    f"{self.pool_workers} workers")
                return self._ensure_pool()
            self.last_choice = "serial"
            self.last_reason = (
                f"pipeline not batchable; {n} jobs too few for "
                f"{self.pool_workers} workers")
            return self._serial
        if n < _BATCH_MIN_JOBS:
            self.last_choice = "serial"
            self.last_reason = (
                f"{n} jobs < batch crossover {_BATCH_MIN_JOBS}")
            return self._serial
        cycles = getattr(pipeline.measurement.target.machine,
                         "sim_cycles", 0)
        work = n * cycles
        if (self.pool_workers > 1
                and work >= _POOL_MIN_CYCLE_WORK
                and n // self.pool_workers >= _BATCH_MIN_JOBS):
            self.last_choice = "pool"
            self.last_reason = (
                f"{n} jobs x {cycles} cycles >= pool crossover "
                f"{_POOL_MIN_CYCLE_WORK}; batched sub-batches on "
                f"{self.pool_workers} workers")
            return self._ensure_pool()
        self.last_choice = "batched"
        self.last_reason = (
            f"{n} jobs >= {_BATCH_MIN_JOBS}, single vectorized pass "
            f"beats {self.pool_workers} worker(s) at {cycles} cycles")
        return self._batched

    def _ensure_pool(self) -> ProcessPoolBackend:
        if self._pool is None:
            self._pool = ProcessPoolBackend(self.pool_workers)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
