"""Batched short-run probe: cheap dynamic features for surrogates.

Static features (:mod:`repro.staticcheck.costmodel`) bound what a
candidate *could* do; a short simulated run shows what it actually
does.  :class:`ShortProbe` runs a whole offspring pool for a small
cycle budget (the StaticScreen ``period_probe`` regime, ~1.6k cycles —
a fraction of a full measurement's budget) through
:meth:`~repro.cpu.machine.BatchedMachine.run_batch`, so the entire
generation probes in one vectorized NumPy pass.

Determinism: the probe machine is private (fixed seed, bare-metal
environment) and every program's noise stream is keyed by its rendered
source via :func:`~repro.evaluation.pipeline.noise_key` — probe
features are a pure function of the source text, independent of batch
order, backend, or checkpoint resume.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..cpu.machine import BatchedMachine, SimulatedMachine
from .pipeline import noise_key

__all__ = ["ShortProbe", "PROBE_FEATURE_NAMES"]

#: The feature names one probe contributes, in emission order.
PROBE_FEATURE_NAMES = ("probe_ipc", "probe_power_w", "probe_vpp",
                       "probe_temp_c")


class ShortProbe:
    """Short-run dynamic feature extractor over a private machine.

    Parameters
    ----------
    platform:
        Microarchitecture preset name (``cortex_a15``, ...).
    cycles:
        Simulated cycle budget per probe run (floored to the machine's
        100-cycle minimum).  The default matches the StaticScreen
        ``period_probe`` regime.
    seed:
        Seed of the private probe machine.  Fixed per strategy so probe
        features never depend on how many probes ran before.
    """

    def __init__(self, platform: str, cycles: int = 1600,
                 seed: int = 0) -> None:
        self.platform = platform
        self.cycles = max(100, int(cycles))
        self.seed = int(seed)
        machine = SimulatedMachine(platform, environment="bare_metal",
                                   seed=self.seed,
                                   sim_cycles=self.cycles)
        self._batch = BatchedMachine(machine)

    def probe_batch(self, programs: Sequence,
                    sources: Sequence[str]) -> List[Dict[str, float]]:
        """One feature dict per program, batch-simulated in one pass.

        ``sources`` are the rendered source texts the programs were
        assembled from; they key each program's noise substream.
        """
        if len(programs) != len(sources):
            raise ValueError("need one source per program")
        if not programs:
            return []
        keys = [noise_key(self.seed, source) for source in sources]
        rounds = self._batch.run_batch(list(programs), duration_s=1.0,
                                       power_sample_count=4,
                                       noise_keys=keys)
        features: List[Dict[str, float]] = []
        for per_program in rounds:
            run = per_program[0]
            features.append({
                "probe_ipc": float(run.ipc),
                "probe_power_w": float(run.core_power_w),
                "probe_vpp": float(run.peak_to_peak_v),
                "probe_temp_c": float(run.temperature_c),
            })
        return features
