"""SSH-style target abstraction (paper Section III.C).

GeST's ``Measurement`` base class ships utilities for talking to the
target machine over ssh — copying files with scp and executing
arbitrary commands.  Our targets are simulated, so
:class:`SimulatedTarget` reproduces that *workflow* (upload source →
compile → run binary → collect output → clean up) against an in-memory
filesystem and a :class:`~repro.cpu.machine.SimulatedMachine`, keeping
the measurement classes structured exactly like ones that would drive
real hardware.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.errors import TargetError
from ..isa.model import Program
from .machine import RunResult, SimulatedMachine

__all__ = ["SimulatedTarget"]


class SimulatedTarget:
    """A remotely-operated (simulated) test machine."""

    def __init__(self, machine: SimulatedMachine,
                 hostname: str = "target",
                 translator: Optional[Callable[[str], str]] = None) -> None:
        self.machine = machine
        self.hostname = hostname
        #: Optional source-to-assembly translation step, applied before
        #: the machine's assembler — a stand-in for invoking a
        #: higher-level-language compiler (gcc) on the target, enabling
        #: C-level GA searches (see repro.isa.clike).
        self.translator = translator
        self._files: Dict[str, str] = {}
        self._binaries: Dict[str, Program] = {}
        self.connected = False

    # -- session -------------------------------------------------------------

    def connect(self) -> None:
        """Open the (pretend) ssh session."""
        self.connected = True

    def disconnect(self) -> None:
        self.connected = False

    def _require_connection(self) -> None:
        if not self.connected:
            raise TargetError(
                f"not connected to {self.hostname!r}; call connect() first")

    # -- scp-like file transfer --------------------------------------------------

    def copy_file(self, remote_name: str, content: str) -> None:
        """scp a source file onto the target."""
        self._require_connection()
        if not remote_name:
            raise TargetError("remote file name must be non-empty")
        self._files[remote_name] = content

    def read_file(self, remote_name: str) -> str:
        self._require_connection()
        try:
            return self._files[remote_name]
        except KeyError:
            raise TargetError(
                f"no file {remote_name!r} on {self.hostname!r}") from None

    def remove_file(self, remote_name: str) -> None:
        self._require_connection()
        self._files.pop(remote_name, None)
        self._binaries.pop(_binary_name(remote_name), None)

    def list_files(self) -> tuple:
        self._require_connection()
        return tuple(sorted(self._files))

    # -- remote compilation and execution ----------------------------------------

    def compile_file(self, remote_name: str) -> str:
        """Compile an uploaded source file; returns the binary name.

        Raises :class:`~repro.core.errors.AssemblyError` exactly as a
        failing compiler invocation over ssh would surface.
        """
        self._require_connection()
        source = self.read_file(remote_name)
        if self.translator is not None:
            source = self.translator(source)
        program = self.machine.compile(source, name=remote_name)
        binary = _binary_name(remote_name)
        self._binaries[binary] = program
        return binary

    def run_binary(self, binary_name: str, duration_s: float = 5.0,
                   cores: Optional[int] = None,
                   power_sample_count: int = 10,
                   supply_v: Optional[float] = None) -> RunResult:
        """Run a compiled binary and collect the machine's observables."""
        self._require_connection()
        try:
            program = self._binaries[binary_name]
        except KeyError:
            raise TargetError(
                f"no binary {binary_name!r} on {self.hostname!r}; "
                "compile_file() first") from None
        return self.machine.run(program, duration_s=duration_s, cores=cores,
                                power_sample_count=power_sample_count,
                                supply_v=supply_v)

    def cleanup(self) -> None:
        """Remove all uploaded files and binaries (end-of-run hygiene)."""
        self._require_connection()
        self._files.clear()
        self._binaries.clear()


def _binary_name(source_name: str) -> str:
    stem = source_name.rsplit(".", 1)[0]
    return stem + ".bin"
