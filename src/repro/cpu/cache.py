"""Cache hierarchy model (paper Section VII extension).

The paper notes that GeST "is possible to stress LLC or DRAM by
instructing the framework to optimize towards cache-misses and
providing in the input file load/store instruction definitions with
various strides, base memory registers and various min-max immediate
values.  We are currently investigating such extensions."  This module
implements that extension's substrate: a two-level set-associative
cache hierarchy with LRU replacement, per-level latencies and energies.

The stock power/dI/dt experiments keep the hierarchy disabled — the
paper observes that power viruses have "extremely high L1 hit rates",
so a flat L1-hit latency is the right default — but a
:class:`MemoryHierarchy` can be attached to a simulated machine, after
which memory instructions see real hit/miss latencies, misses burn
L2/DRAM energy, and the new cache-miss measurement becomes meaningful.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict

from ..core.errors import ConfigError

__all__ = ["CacheConfig", "CacheStats", "Cache", "MemoryHierarchy",
           "AccessResult"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and costs of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int
    ways: int
    hit_latency: int          # cycles
    hit_energy_pj: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ConfigError(f"{self.name}: geometry must be positive")
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ConfigError(
                f"{self.name}: size must be divisible by line*ways")
        if self.line_bytes & (self.line_bytes - 1):
            raise ConfigError(f"{self.name}: line size must be a power of 2")

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


@dataclass
class CacheStats:
    """Hit/miss counters for one level."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one memory access through the hierarchy."""

    level: str                # 'l1', 'l2' or 'dram'
    latency: int              # total cycles to data
    energy_pj: float          # total energy beyond the core's load EPI


class Cache:
    """One set-associative LRU cache level."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        # One OrderedDict per set: tag -> None, LRU order = insertion.
        self._sets = [OrderedDict() for _ in range(config.sets)]
        self._offset_bits = config.line_bytes.bit_length() - 1

    def lookup(self, address: int) -> bool:
        """Access ``address``; returns True on hit.  On miss the line is
        installed (allocate-on-miss for loads and stores alike)."""
        line = address >> self._offset_bits
        index = line % self.config.sets
        tag = line // self.config.sets
        entries = self._sets[index]
        self.stats.accesses += 1
        if tag in entries:
            entries.move_to_end(tag)
            self.stats.hits += 1
            return True
        if len(entries) >= self.config.ways:
            entries.popitem(last=False)     # evict LRU
        entries[tag] = None
        return False

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def flush(self) -> None:
        for entries in self._sets:
            entries.clear()
        self.reset_stats()


#: Default geometries loosely modelled on the X-Gene2-class server core.
_DEFAULT_L1 = CacheConfig(name="l1d", size_bytes=32 * 1024, line_bytes=64,
                          ways=8, hit_latency=4, hit_energy_pj=0.0)
_DEFAULT_L2 = CacheConfig(name="l2", size_bytes=256 * 1024, line_bytes=64,
                          ways=8, hit_latency=14, hit_energy_pj=450.0)


@dataclass
class MemoryHierarchy:
    """L1 + L2 + DRAM.

    ``hit_energy_pj`` of the L1 is zero because the core's load/store
    EPI already covers it; L2 hits and DRAM accesses add their energy
    on top (that extra energy is what makes an LLC/DRAM virus draw
    power the flat model cannot represent).
    """

    l1_config: CacheConfig = _DEFAULT_L1
    l2_config: CacheConfig = _DEFAULT_L2
    dram_latency: int = 140
    dram_energy_pj: float = 6500.0

    def __post_init__(self) -> None:
        self.l1 = Cache(self.l1_config)
        self.l2 = Cache(self.l2_config)

    def access(self, address: int) -> AccessResult:
        """One load/store through the hierarchy."""
        if self.l1.lookup(address):
            return AccessResult("l1", self.l1_config.hit_latency, 0.0)
        if self.l2.lookup(address):
            return AccessResult(
                "l2",
                self.l1_config.hit_latency + self.l2_config.hit_latency,
                self.l2_config.hit_energy_pj)
        return AccessResult(
            "dram",
            self.l1_config.hit_latency + self.l2_config.hit_latency
            + self.dram_latency,
            self.l2_config.hit_energy_pj + self.dram_energy_pj)

    def reset(self) -> None:
        self.l1.flush()
        self.l2.flush()

    # -- figures the cache-miss measurement reports ------------------------

    def l1_miss_rate(self) -> float:
        return self.l1.stats.miss_rate

    def l2_miss_rate(self) -> float:
        return self.l2.stats.miss_rate

    def llc_misses(self) -> int:
        """Misses past the last cache level (DRAM accesses)."""
        return self.l2.stats.misses

    def summary(self) -> Dict[str, float]:
        return {
            "l1_accesses": self.l1.stats.accesses,
            "l1_misses": self.l1.stats.misses,
            "l1_miss_rate": self.l1_miss_rate(),
            "l2_accesses": self.l2.stats.accesses,
            "l2_misses": self.l2.stats.misses,
            "l2_miss_rate": self.l2_miss_rate(),
            "llc_misses": float(self.llc_misses()),
        }
