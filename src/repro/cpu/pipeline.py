"""Cycle-approximate pipeline model.

Executes a :class:`~repro.isa.model.Program` loop on a
:class:`~repro.cpu.microarch.MicroArch`, producing an
:class:`ExecutionTrace`: cycle count, IPC, per-cycle issue lists and
window occupancy.  The trace drives the power model (energy per cycle →
current waveform → PDN voltage), so the *timing texture* matters as much
as the averages: dependency stalls create the low-current phases a dI/dt
virus alternates with bursts of wide issue.

Model summary
-------------

* The loop body repeats; fetch is a sliding window over that infinite
  stream (``window_size`` entries, refilled each cycle).
* Register dependencies are resolved at fetch through a perfect-renaming
  ``last_writer`` map, so only true (RAW) dependencies stall — like the
  rename stage of the real OOO cores the paper stresses.  In-order
  presets simply use a tiny window and must issue in program order.
* Functional units live in port groups (``int``/``fp``/``mem``/``br``);
  each unit accepts one instruction per ``initiation_interval`` — fully
  pipelined ops every cycle, dividers block their unit for the whole
  latency.
* Branches are predicted-taken and never flush (GA loops use the
  ``b 1f`` idiom and a perfectly predictable loop edge, matching the
  paper's observation that viruses have very predictable branches).
* Loads always hit the L1 (the paper: power viruses have "extremely
  high L1 hit rates"); the hit latency comes from the preset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.errors import SimulationError
from ..isa.model import DecodedInstruction, Program
from .cache import MemoryHierarchy
from .microarch import MicroArch

__all__ = ["ExecutionTrace", "PipelineSimulator"]


@dataclass
class ExecutionTrace:
    """The observable result of running a loop for ``cycles`` cycles."""

    cycles: int
    instructions_issued: int
    loop_iterations: int
    #: per-cycle lists of static loop-slot indices issued that cycle
    issued_per_cycle: List[List[int]]
    #: per-cycle instruction-window occupancy (dependency-tracking load)
    occupancy: List[int]
    #: total dynamic issues per latency group
    group_counts: Dict[str, int] = field(default_factory=dict)
    #: per-cycle energy (pJ) added by cache misses — present only when
    #: a memory hierarchy was attached to the run
    extra_energy_per_cycle: Optional[List[float]] = None
    #: hierarchy hit/miss summary for the run (see MemoryHierarchy)
    cache_summary: Optional[Dict[str, float]] = None

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions_issued / self.cycles

    def issue_width_histogram(self) -> Dict[int, int]:
        """How many cycles issued 0, 1, 2... instructions — the
        activity texture the dI/dt analysis looks at."""
        histogram: Dict[int, int] = {}
        for issued in self.issued_per_cycle:
            histogram[len(issued)] = histogram.get(len(issued), 0) + 1
        return histogram


class _StaticSlot:
    """Pre-resolved per-loop-slot scheduling facts."""

    __slots__ = ("index", "port", "latency", "interval", "reads", "writes",
                 "group", "is_memory", "mem_base", "mem_offset",
                 "opcode", "immediate")

    def __init__(self, index: int, instr: DecodedInstruction,
                 arch: MicroArch) -> None:
        group = instr.group or instr.iclass.value
        self.index = index
        self.group = group
        self.port = arch.port_group_of(group, instr.iclass)
        self.latency = arch.latency_of(group, instr.iclass)
        self.interval = arch.initiation_interval(group, instr.iclass)
        self.reads = instr.reads
        self.writes = instr.writes
        self.is_memory = instr.iclass.is_memory
        self.mem_base = instr.mem_base
        self.mem_offset = instr.mem_offset
        self.opcode = instr.opcode
        self.immediate = instr.immediate


class PipelineSimulator:
    """Greedy list-scheduling pipeline model for one core."""

    def __init__(self, arch: MicroArch) -> None:
        arch.validate()
        self.arch = arch

    #: Memory footprint wrap for cache modelling: base-advancing loops
    #: walk a region of this size, like a large working-set buffer.
    MEMORY_REGION_BYTES = 16 * 1024 * 1024

    def execute(self, program: Program, max_cycles: int = 1600,
                hierarchy: Optional[MemoryHierarchy] = None
                ) -> ExecutionTrace:
        """Run the program's loop for exactly ``max_cycles`` cycles.

        The init section is executed architecturally (register values)
        but not timed — it runs once against seconds of loop execution.

        With a ``hierarchy`` attached, memory instructions compute real
        addresses (tracked base-register values plus offsets, wrapped
        over a large working-set region) and see hit/miss latencies and
        miss energies; without one, every access is the flat L1 hit the
        stock experiments assume.
        """
        if not program.loop:
            raise SimulationError(
                f"program {program.name!r} has an empty loop body")
        if max_cycles < 1:
            raise SimulationError("max_cycles must be >= 1")

        arch = self.arch
        slots = [_StaticSlot(i, instr, arch)
                 for i, instr in enumerate(program.loop)]
        loop_len = len(slots)

        # Unit bookkeeping: per port group, the next-free cycle of each unit.
        unit_free: Dict[str, List[int]] = {
            port: [0] * count for port, count in arch.ports.items()}

        # Dynamic state.
        window: List[list] = []   # [dyn_id, slot, (src_dyn_ids...)]
        completion: Dict[int, int] = {}
        last_writer: Dict[str, int] = {}
        next_dyn_id = 0
        fetch_index = 0           # position within the loop body

        issued_per_cycle: List[List[int]] = []
        occupancy: List[int] = []
        group_counts: Dict[str, int] = {}
        issued_total = 0
        iterations = 0

        extra_energy: Optional[List[float]] = None
        reg_values: Dict[str, int] = {}
        if hierarchy is not None:
            hierarchy.reset()
            extra_energy = [0.0] * max_cycles
            reg_values = dict(program.register_values)

        window_size = arch.window_size
        issue_width = arch.issue_width
        in_order = arch.in_order

        for cycle in range(max_cycles):
            # ---- fetch: refill the window from the looping stream ------
            while len(window) < window_size:
                slot = slots[fetch_index]
                sources = tuple(last_writer[reg] for reg in slot.reads
                                if reg in last_writer)
                dyn_id = next_dyn_id
                next_dyn_id += 1
                for reg in slot.writes:
                    last_writer[reg] = dyn_id
                window.append([dyn_id, slot, sources])
                fetch_index += 1
                if fetch_index == loop_len:
                    fetch_index = 0

            occupancy.append(len(window))

            # ---- issue ---------------------------------------------------
            issued_now: List[int] = []
            issued_positions: List[int] = []
            for position, entry in enumerate(window):
                if len(issued_now) >= issue_width:
                    break
                dyn_id, slot, sources = entry
                ready = True
                for src in sources:
                    done = completion.get(src)
                    if done is None or done > cycle:
                        ready = False
                        break
                if ready:
                    units = unit_free[slot.port]
                    unit_index = -1
                    for u, free_at in enumerate(units):
                        if free_at <= cycle:
                            unit_index = u
                            break
                    if unit_index >= 0:
                        units[unit_index] = cycle + slot.interval
                        latency = slot.latency
                        if hierarchy is not None:
                            if slot.is_memory:
                                base = reg_values.get(slot.mem_base, 0)
                                address = (base + slot.mem_offset) \
                                    % self.MEMORY_REGION_BYTES
                                result = hierarchy.access(address)
                                latency = max(latency, result.latency)
                                extra_energy[cycle] += result.energy_pj
                            else:
                                self._track_value(slot, reg_values)
                        completion[dyn_id] = cycle + latency
                        issued_now.append(slot.index)
                        issued_positions.append(position)
                        group_counts[slot.group] = \
                            group_counts.get(slot.group, 0) + 1
                        if slot.index == loop_len - 1:
                            iterations += 1
                        continue
                # Not issued: an in-order machine stalls at the first
                # blocked instruction; an OOO machine scans on.
                if in_order:
                    break

            for position in reversed(issued_positions):
                del window[position]
            issued_per_cycle.append(issued_now)
            issued_total += len(issued_now)

        return ExecutionTrace(
            cycles=max_cycles,
            instructions_issued=issued_total,
            loop_iterations=iterations,
            issued_per_cycle=issued_per_cycle,
            occupancy=occupancy,
            group_counts=group_counts,
            extra_energy_per_cycle=extra_energy,
            cache_summary=hierarchy.summary() if hierarchy is not None
            else None,
        )

    @staticmethod
    def _track_value(slot: "_StaticSlot", reg_values: Dict[str, int]) -> None:
        """Architecturally execute the simple integer ops that stride
        base registers (mov/add/sub with an immediate), so cache
        addresses advance across iterations.  Any other write to a
        tracked register invalidates its value."""
        if len(slot.writes) == 1 and slot.immediate is not None:
            dst = slot.writes[0]
            if slot.opcode == "mov":
                reg_values[dst] = slot.immediate
                return
            if slot.opcode in ("add", "sub") and slot.reads \
                    and slot.reads[0] == dst:
                # Untracked registers start from 0 so bare snippets
                # stride correctly without explicit init code.
                delta = slot.immediate if slot.opcode == "add" \
                    else -slot.immediate
                reg_values[dst] = reg_values.get(dst, 0) + delta
                return
        for reg in slot.writes:
            if reg in reg_values and reg != "flags":
                reg_values.pop(reg, None)

    # -- convenience -------------------------------------------------------

    def steady_state_ipc(self, program: Program,
                         max_cycles: int = 1600,
                         warmup_fraction: float = 0.2) -> float:
        """IPC measured after discarding the pipeline warm-up prefix."""
        trace = self.execute(program, max_cycles=max_cycles)
        start = int(trace.cycles * warmup_fraction)
        issued = sum(len(c) for c in trace.issued_per_cycle[start:])
        cycles = trace.cycles - start
        return issued / cycles if cycles else 0.0
