"""Cycle-approximate pipeline model.

Executes a :class:`~repro.isa.model.Program` loop on a
:class:`~repro.cpu.microarch.MicroArch`, producing an
:class:`ExecutionTrace`: cycle count, IPC, per-cycle issue lists and
window occupancy.  The trace drives the power model (energy per cycle →
current waveform → PDN voltage), so the *timing texture* matters as much
as the averages: dependency stalls create the low-current phases a dI/dt
virus alternates with bursts of wide issue.

Model summary
-------------

* The loop body repeats; fetch is a sliding window over that infinite
  stream (``window_size`` entries, refilled each cycle).
* Register dependencies are resolved at fetch through a perfect-renaming
  ``last_writer`` map, so only true (RAW) dependencies stall — like the
  rename stage of the real OOO cores the paper stresses.  In-order
  presets simply use a tiny window and must issue in program order.
* Functional units live in port groups (``int``/``fp``/``mem``/``br``);
  each unit accepts one instruction per ``initiation_interval`` — fully
  pipelined ops every cycle, dividers block their unit for the whole
  latency.
* Branches are predicted-taken and never flush (GA loops use the
  ``b 1f`` idiom and a perfectly predictable loop edge, matching the
  paper's observation that viruses have very predictable branches).
* Loads always hit the L1 (the paper: power viruses have "extremely
  high L1 hit rates"); the hit latency comes from the preset.

Steady-state kernel detection
-----------------------------

GeST loops are periodic by construction — a single predictable loop
with no data-dependent control flow — so the scheduler state must
eventually recur.  Each time fetch wraps the loop start, the simulator
hashes its dynamic state *relative to the current cycle and fetch
position* (window contents, unit free-times, in-flight completions,
pending writers).  When a state recurs, every cycle after that point is
a bit-exact tiling of the cycles between the two occurrences: the
simulator stops, records the warm-up prefix plus one period, and the
trace analytically extends them to ``max_cycles``.  The tiled trace is
observationally identical to the full simulation — same IPC, same
per-cycle issue lists, same waveform downstream — it just never
simulates a cycle twice.

Detection is skipped when a :class:`~repro.cpu.cache.MemoryHierarchy`
is attached: memory addresses then depend on *absolute* base-register
values that stride across iterations, and the cache arrays are part of
the machine state, so periodicity of the scheduler alone proves
nothing.  Those runs fall back to the full cycle-by-cycle simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import SimulationError
from ..isa.model import DecodedInstruction, Program
from .cache import MemoryHierarchy
from .microarch import MicroArch

__all__ = ["ExecutionTrace", "PipelineSimulator"]


@dataclass
class ExecutionTrace:
    """The observable result of running a loop for ``cycles`` cycles.

    The per-cycle data is stored compactly: only the *simulated* cycles
    (the warm-up prefix plus one detected period, or every cycle when
    no period was found) are materialised, as NumPy arrays in CSR-style
    form.  ``prefix_cycles``/``period_cycles`` describe how the
    simulated segment tiles out to the full ``cycles``; the
    backward-compatible accessors (:attr:`issued_per_cycle`,
    :attr:`occupancy`, :meth:`expand`) reconstruct full-length views on
    demand and are bit-identical to what a full simulation records.
    """

    cycles: int
    instructions_issued: int
    loop_iterations: int
    #: flattened static loop-slot indices issued over the simulated
    #: cycles; cycle ``c`` issued ``issue_slots[issue_offsets[c]:
    #: issue_offsets[c + 1]]`` in issue order
    issue_slots: np.ndarray = field(repr=False,
                                    default_factory=lambda: np.empty(
                                        0, dtype=np.int32))
    #: CSR offsets into ``issue_slots``; length ``simulated_cycles + 1``
    issue_offsets: np.ndarray = field(repr=False,
                                      default_factory=lambda: np.zeros(
                                          1, dtype=np.int64))
    #: instruction-window occupancy per simulated cycle
    occupancy_counts: np.ndarray = field(repr=False,
                                         default_factory=lambda: np.empty(
                                             0, dtype=np.int32))
    #: total dynamic issues per latency group over the full ``cycles``
    group_counts: Dict[str, int] = field(default_factory=dict)
    #: dynamic issue count per static loop slot over the full ``cycles``
    slot_counts: np.ndarray = field(repr=False,
                                    default_factory=lambda: np.empty(
                                        0, dtype=np.int64))
    #: warm-up cycles before the detected period (== simulated cycle
    #: count when no period was found)
    prefix_cycles: int = 0
    #: length of the detected steady-state kernel; 0 when the whole
    #: trace was simulated cycle by cycle
    period_cycles: int = 0
    #: per-cycle energy (pJ) added by cache misses — present only when
    #: a memory hierarchy was attached to the run (hierarchies disable
    #: period detection, so this always covers all ``cycles``)
    extra_energy_per_cycle: Optional[np.ndarray] = None
    #: hierarchy hit/miss summary for the run (see MemoryHierarchy)
    cache_summary: Optional[Dict[str, float]] = None

    # -- compressed-form geometry -------------------------------------------

    @property
    def simulated_cycles(self) -> int:
        """Cycles actually simulated (prefix + one period, or all)."""
        return int(len(self.occupancy_counts))

    @property
    def repeats(self) -> int:
        """Complete period repetitions tiled over ``[prefix, cycles)``."""
        if not self.period_cycles:
            return 0
        return (self.cycles - self.prefix_cycles) // self.period_cycles

    @property
    def remainder_cycles(self) -> int:
        """Partial-period cycles at the end of the tiled trace."""
        if not self.period_cycles:
            return 0
        return (self.cycles - self.prefix_cycles) % self.period_cycles

    def expand(self, values: np.ndarray) -> np.ndarray:
        """Tile per-simulated-cycle ``values`` out to ``cycles`` entries.

        With no detected period this is the identity; with one, the
        period segment is repeated (plus a partial tail) exactly as the
        full simulation would have produced it.  Values are copied, not
        recomputed, so tiled results are bit-identical by construction.
        """
        if len(values) != self.simulated_cycles:
            raise SimulationError(
                f"expand() needs one value per simulated cycle "
                f"({self.simulated_cycles}), got {len(values)}")
        if not self.period_cycles:
            return values
        prefix, period = self.prefix_cycles, self.period_cycles
        kernel = values[prefix:prefix + period]
        parts = [values[:prefix]]
        if self.repeats:
            parts.append(np.tile(kernel, self.repeats))
        if self.remainder_cycles:
            parts.append(kernel[:self.remainder_cycles])
        return np.concatenate(parts)

    # -- full-length views (backward-compatible accessors) ------------------

    @property
    def issue_counts(self) -> np.ndarray:
        """Instructions issued per cycle over the full ``cycles``."""
        return self.expand(np.diff(self.issue_offsets).astype(np.int32))

    @property
    def occupancy(self) -> List[int]:
        """Per-cycle instruction-window occupancy (full length)."""
        return self.expand(self.occupancy_counts).tolist()

    @property
    def issued_per_cycle(self) -> List[List[int]]:
        """Per-cycle lists of static loop-slot indices (full length)."""
        offsets = self.issue_offsets
        slots = self.issue_slots.tolist()
        simulated = [slots[offsets[c]:offsets[c + 1]]
                     for c in range(self.simulated_cycles)]
        if not self.period_cycles:
            return simulated
        prefix, period = self.prefix_cycles, self.period_cycles
        kernel = simulated[prefix:prefix + period]
        return (simulated[:prefix] + kernel * self.repeats
                + kernel[:self.remainder_cycles])

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions_issued / self.cycles

    def issue_width_histogram(self) -> Dict[int, int]:
        """How many cycles issued 0, 1, 2... instructions — the
        activity texture the dI/dt analysis looks at."""
        counts = np.diff(self.issue_offsets)
        per_width = np.bincount(counts, minlength=1)
        if self.period_cycles:
            kernel = counts[self.prefix_cycles:
                            self.prefix_cycles + self.period_cycles]
            per_width = (
                np.bincount(counts[:self.prefix_cycles],
                            minlength=len(per_width))
                + self.repeats * np.bincount(kernel,
                                             minlength=len(per_width))
                + np.bincount(kernel[:self.remainder_cycles],
                              minlength=len(per_width)))
        return {width: int(cycles)
                for width, cycles in enumerate(per_width) if cycles}


class _StaticSlot:
    """Pre-resolved per-loop-slot scheduling facts."""

    __slots__ = ("index", "port", "latency", "interval", "reads", "writes",
                 "group", "is_memory", "mem_base", "mem_offset",
                 "opcode", "immediate")

    def __init__(self, index: int, instr: DecodedInstruction,
                 arch: MicroArch) -> None:
        group = instr.group or instr.iclass.value
        self.index = index
        self.group = group
        self.port = arch.port_group_of(group, instr.iclass)
        self.latency = arch.latency_of(group, instr.iclass)
        self.interval = arch.initiation_interval(group, instr.iclass)
        self.reads = instr.reads
        self.writes = instr.writes
        self.is_memory = instr.iclass.is_memory
        self.mem_base = instr.mem_base
        self.mem_offset = instr.mem_offset
        self.opcode = instr.opcode
        self.immediate = instr.immediate


class PipelineSimulator:
    """Greedy list-scheduling pipeline model for one core."""

    def __init__(self, arch: MicroArch,
                 detect_steady_state: bool = True) -> None:
        arch.validate()
        self.arch = arch
        #: When True (the default), the simulator stops once the
        #: scheduler state recurs and tiles the detected period out to
        #: ``max_cycles`` — observationally identical, much faster.
        self.detect_steady_state = detect_steady_state

    #: Memory footprint wrap for cache modelling: base-advancing loops
    #: walk a region of this size, like a large working-set buffer.
    MEMORY_REGION_BYTES = 16 * 1024 * 1024

    def execute(self, program: Program, max_cycles: int = 1600,
                hierarchy: Optional[MemoryHierarchy] = None,
                detect_steady_state: Optional[bool] = None
                ) -> ExecutionTrace:
        """Run the program's loop for exactly ``max_cycles`` cycles.

        The init section is executed architecturally (register values)
        but not timed — it runs once against seconds of loop execution.

        With a ``hierarchy`` attached, memory instructions compute real
        addresses (tracked base-register values plus offsets, wrapped
        over a large working-set region) and see hit/miss latencies and
        miss energies; without one, every access is the flat L1 hit the
        stock experiments assume.  ``detect_steady_state`` overrides
        the simulator-level default; hierarchies always force a full
        simulation (see the module docstring).
        """
        if not program.loop:
            raise SimulationError(
                f"program {program.name!r} has an empty loop body")
        if max_cycles < 1:
            raise SimulationError("max_cycles must be >= 1")

        detect = self.detect_steady_state if detect_steady_state is None \
            else detect_steady_state
        if hierarchy is not None:
            # Absolute striding addresses + cache array contents are part
            # of the machine state; scheduler recurrence proves nothing.
            detect = False

        arch = self.arch
        slots = [_StaticSlot(i, instr, arch)
                 for i, instr in enumerate(program.loop)]
        loop_len = len(slots)

        # Unit bookkeeping: per port group, the next-free cycle of each unit.
        unit_free: Dict[str, List[int]] = {
            port: [0] * count for port, count in arch.ports.items()}

        # Dynamic state.
        window: List[list] = []   # [dyn_id, slot, (src_dyn_ids...)]
        completion: Dict[int, int] = {}
        last_writer: Dict[str, int] = {}
        next_dyn_id = 0
        fetch_index = 0           # position within the loop body

        issue_slots: List[int] = []
        issue_offsets: List[int] = [0]
        occupancy: List[int] = []

        extra_energy: Optional[List[float]] = None
        reg_values: Dict[str, int] = {}
        if hierarchy is not None:
            hierarchy.reset()
            extra_energy = [0.0] * max_cycles
            reg_values = dict(program.register_values)

        window_size = arch.window_size
        issue_width = arch.issue_width
        in_order = arch.in_order

        seen_states: Dict[tuple, int] = {}
        wrapped = False           # fetch crossed the loop start since
        prefix = 0                # the last state snapshot
        period = 0
        # Snapshotting the scheduler state is not free (the window can
        # hold tens of entries), so the sampling interval doubles every
        # 16 snapshots: long pre-periodic transients cost amortised
        # O(log) keys instead of one per loop iteration.  A recurrence
        # between any two sampled states is a valid (possibly
        # non-minimal) period, so thinning never breaks correctness —
        # it only delays detection by at most one interval.
        wrap_count = 0
        snapshot_interval = 1
        snapshots_at_interval = 0

        cycle = 0
        while cycle < max_cycles:
            # ---- steady-state check (before this cycle's fetch) --------
            if wrapped:
                wrapped = False
                wrap_count += 1
                if wrap_count % snapshot_interval == 0:
                    key = self._state_key(fetch_index, window, unit_free,
                                          completion, last_writer,
                                          next_dyn_id, cycle)
                    earlier = seen_states.get(key)
                    if earlier is not None:
                        prefix = earlier
                        period = cycle - earlier
                        break
                    seen_states[key] = cycle
                    snapshots_at_interval += 1
                    if snapshots_at_interval >= 16:
                        snapshots_at_interval = 0
                        snapshot_interval *= 2

            # ---- fetch: refill the window from the looping stream ------
            while len(window) < window_size:
                slot = slots[fetch_index]
                sources = tuple(last_writer[reg] for reg in slot.reads
                                if reg in last_writer)
                dyn_id = next_dyn_id
                next_dyn_id += 1
                for reg in slot.writes:
                    last_writer[reg] = dyn_id
                window.append([dyn_id, slot, sources])
                fetch_index += 1
                if fetch_index == loop_len:
                    fetch_index = 0
                    wrapped = detect

            occupancy.append(len(window))

            # ---- issue ---------------------------------------------------
            issued_count = 0
            issued_positions: List[int] = []
            for position, entry in enumerate(window):
                if issued_count >= issue_width:
                    break
                dyn_id, slot, sources = entry
                ready = True
                for src in sources:
                    done = completion.get(src)
                    if done is None or done > cycle:
                        ready = False
                        break
                if ready:
                    units = unit_free[slot.port]
                    unit_index = -1
                    for u, free_at in enumerate(units):
                        if free_at <= cycle:
                            unit_index = u
                            break
                    if unit_index >= 0:
                        units[unit_index] = cycle + slot.interval
                        latency = slot.latency
                        if hierarchy is not None:
                            if slot.is_memory:
                                base = reg_values.get(slot.mem_base, 0)
                                address = (base + slot.mem_offset) \
                                    % self.MEMORY_REGION_BYTES
                                result = hierarchy.access(address)
                                latency = max(latency, result.latency)
                                extra_energy[cycle] += result.energy_pj
                            else:
                                self._track_value(slot, reg_values)
                        completion[dyn_id] = cycle + latency
                        issue_slots.append(slot.index)
                        issued_count += 1
                        issued_positions.append(position)
                        continue
                # Not issued: an in-order machine stalls at the first
                # blocked instruction; an OOO machine scans on.
                if in_order:
                    break

            # Single-pass window compaction: issued_positions is sorted
            # ascending, so one merge walk rebuilds the window without
            # the quadratic repeated-del of removing by index.
            if issued_positions:
                removed = iter(issued_positions)
                next_removed = next(removed)
                compacted = []
                for position, entry in enumerate(window):
                    if position == next_removed:
                        next_removed = next(removed, -1)
                    else:
                        compacted.append(entry)
                window = compacted
            issue_offsets.append(len(issue_slots))
            cycle += 1

        return self._build_trace(
            [slot.group for slot in slots], loop_len, max_cycles,
            prefix, period, issue_slots, issue_offsets, occupancy,
            extra_energy, hierarchy)

    @staticmethod
    def _build_trace(groups: Sequence[str], loop_len: int,
                     max_cycles: int, prefix: int, period: int,
                     issue_slots: List[int], issue_offsets: List[int],
                     occupancy: List[int],
                     extra_energy: Optional[List[float]],
                     hierarchy: Optional[MemoryHierarchy]
                     ) -> ExecutionTrace:
        """Derive the trace totals analytically from the simulated
        segment — per-slot issue counts come from one ``bincount`` pass
        rather than per-issue bookkeeping in the scheduler loop."""
        slots_arr = np.asarray(issue_slots, dtype=np.int32)
        offsets_arr = np.asarray(issue_offsets, dtype=np.int64)
        occ_arr = np.asarray(occupancy, dtype=np.int32)
        if not period:
            prefix = len(occupancy)

        def counts_between(begin: int, end: int) -> np.ndarray:
            return np.bincount(
                slots_arr[offsets_arr[begin]:offsets_arr[end]],
                minlength=loop_len)

        if period:
            repeats = (max_cycles - prefix) // period
            remainder = (max_cycles - prefix) % period
            totals = (counts_between(0, prefix)
                      + repeats * counts_between(prefix, prefix + period)
                      + counts_between(prefix, prefix + remainder))
        else:
            totals = counts_between(0, len(occupancy))

        # Group totals in first-dynamic-issue order (every group's first
        # issue happens inside the simulated segment, so the tiled run's
        # insertion order matches a full simulation's).
        group_counts: Dict[str, int] = {}
        issued_slots, first_seen = np.unique(slots_arr, return_index=True)
        for slot_index in issued_slots[np.argsort(first_seen)]:
            group = groups[slot_index]
            group_counts[group] = group_counts.get(group, 0) \
                + int(totals[slot_index])

        return ExecutionTrace(
            cycles=max_cycles,
            instructions_issued=int(totals.sum()),
            loop_iterations=int(totals[loop_len - 1]),
            issue_slots=slots_arr,
            issue_offsets=offsets_arr,
            occupancy_counts=occ_arr,
            group_counts=group_counts,
            slot_counts=totals.astype(np.int64),
            prefix_cycles=prefix,
            period_cycles=period,
            extra_energy_per_cycle=np.asarray(extra_energy)
            if extra_energy is not None else None,
            cache_summary=hierarchy.summary() if hierarchy is not None
            else None,
        )

    @staticmethod
    def _state_key(fetch_index: int, window: List[list],
                   unit_free: Dict[str, List[int]],
                   completion: Dict[int, int],
                   last_writer: Dict[str, int],
                   next_dyn_id: int, cycle: int) -> tuple:
        """Canonical scheduler state, relative to the current cycle and
        fetch position.

        Dynamic instruction ids are renamed to their offset from
        ``next_dyn_id`` and completion times to their delta from
        ``cycle``; two states with equal keys are related by exactly
        that renaming, and the scheduler is equivariant under it — so
        equal keys guarantee bit-identical futures.  Completed sources
        collapse to a single ``ready`` marker (delta 0) because their
        actual finish time can never matter again; completions not
        referenced by the window or a pending writer are unreachable
        and omitted entirely.
        """
        def norm(dyn: int) -> Tuple[int, int]:
            done = completion.get(dyn)
            if done is None:
                return (dyn - next_dyn_id, -1)      # not yet issued
            delta = done - cycle
            return (dyn - next_dyn_id, delta if delta > 0 else 0)

        window_key = tuple(
            (entry[0] - next_dyn_id, entry[1].index,
             tuple(norm(src) for src in entry[2]))
            for entry in window)
        units_key = tuple(
            tuple(free - cycle if free > cycle else 0 for free in units)
            for units in unit_free.values())
        # Dict insertion order is part of the key; it stabilises once
        # the loop has written each destination register once, and an
        # order mismatch merely makes the key over-strict (safe).
        writers_key = tuple(
            (reg, norm(dyn)) for reg, dyn in last_writer.items())
        return (fetch_index, window_key, units_key, writers_key)

    @staticmethod
    def _track_value(slot: "_StaticSlot", reg_values: Dict[str, int]) -> None:
        """Architecturally execute the simple integer ops that stride
        base registers (mov/add/sub with an immediate), so cache
        addresses advance across iterations.  Any other write to a
        tracked register invalidates its value."""
        if len(slot.writes) == 1 and slot.immediate is not None:
            dst = slot.writes[0]
            if slot.opcode == "mov":
                reg_values[dst] = slot.immediate
                return
            if slot.opcode in ("add", "sub") and slot.reads \
                    and slot.reads[0] == dst:
                # Untracked registers start from 0 so bare snippets
                # stride correctly without explicit init code.
                delta = slot.immediate if slot.opcode == "add" \
                    else -slot.immediate
                reg_values[dst] = reg_values.get(dst, 0) + delta
                return
        for reg in slot.writes:
            if reg in reg_values and reg != "flags":
                reg_values.pop(reg, None)

    # -- convenience -------------------------------------------------------

    def detect_period(self, program: Program,
                      max_cycles: int = 1600
                      ) -> Optional[Tuple[int, int]]:
        """Probe the steady-state kernel of ``program``.

        Returns ``(prefix_cycles, period_cycles)`` when the scheduler
        state recurs within ``max_cycles`` cycles, else None.  Cheap by
        construction — simulation stops at the first recurrence — so
        screening and analysis code can reuse the detected period
        without paying for a full run.
        """
        trace = self.execute(program, max_cycles=max_cycles,
                             detect_steady_state=True)
        if not trace.period_cycles:
            return None
        return (trace.prefix_cycles, trace.period_cycles)

    def steady_state_ipc(self, program: Program,
                         max_cycles: int = 1600,
                         warmup_fraction: float = 0.2) -> float:
        """IPC measured after discarding the pipeline warm-up prefix."""
        trace = self.execute(program, max_cycles=max_cycles)
        start = int(trace.cycles * warmup_fraction)
        issued = int(trace.issue_counts[start:].sum())
        cycles = trace.cycles - start
        return issued / cycles if cycles else 0.0
