"""The simulated target machine.

:class:`SimulatedMachine` stands in for the paper's four hardware
platforms (Table II).  It glues the substrate together: assembler
("toolchain"), pipeline ("silicon"), power, thermal and PDN models
("sensors and instruments"), and exposes exactly the observables the
paper's measurement procedures read:

* averaged power samples (ARM energy probe / wall plug),
* a quantised chip temperature (i2c sensor),
* retired-instructions-per-cycle (``perf``),
* the die voltage waveform (oscilloscope on the sense points),
* and whether the run *crashed* — the die voltage fell below the
  critical timing voltage, which is what a V_MIN characterisation
  sweeps for.

An ``os`` execution environment adds measurement noise relative to
``bare_metal`` (the paper runs the GA on one core partly because OS
environments measure noisily).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from random import Random
from typing import List, Optional, Tuple

import numpy as np

from ..core.errors import SimulationError, TargetError
from ..core.rng import make_rng
from ..isa import assembler_for
from ..isa.model import Program
from .cache import MemoryHierarchy
from .microarch import MicroArch, microarch_for
from .pdn import PDNModel, VoltageTrace
from .pipeline import ExecutionTrace, PipelineSimulator
from .power import PowerModel
from .thermal import ThermalModel

__all__ = ["RunResult", "SimulatedMachine", "BatchedMachine",
           "ENVIRONMENTS", "SHARED_SEGMENT_BASE"]

#: Memory addresses at or above this boundary live in the *shared*
#: segment: accesses there traverse the interconnect to a shared LLC
#: slice instead of staying core-private.  Templates opt in by pointing
#: a base register at the segment (see
#: :func:`repro.isa.catalogs.arm_shared_template`).
SHARED_SEGMENT_BASE = 0x100000

ENVIRONMENTS = ("bare_metal", "os")

#: Relative 1-sigma noise on power samples per environment.
_POWER_NOISE = {"bare_metal": 0.002, "os": 0.02}
_IPC_NOISE = {"bare_metal": 0.0, "os": 0.01}
_TEMP_NOISE_C = {"bare_metal": 0.0, "os": 0.25}

#: Fraction of nominal supply below which timing fails at nominal
#: frequency (the V_crit of the V_MIN model).
_CRITICAL_VOLTAGE_FRACTION = 0.78


@dataclass
class RunResult:
    """Everything observable from one program execution."""

    program_name: str
    cores_used: int
    duration_s: float
    supply_v: float
    ipc: float
    core_power_w: float
    chip_power_w: float
    power_samples_w: List[float]
    temperature_samples_c: List[float]
    voltage: VoltageTrace
    crashed: bool
    trace: ExecutionTrace = field(repr=False, default=None)
    #: hierarchy hit/miss summary; None when caches are not modelled
    cache: Optional[dict] = None
    #: interconnect power from shared-memory traffic (0 when the
    #: workload touches no shared segment or the preset has no NoC)
    noc_power_w: float = 0.0

    @property
    def avg_power_w(self) -> float:
        return sum(self.power_samples_w) / len(self.power_samples_w)

    @property
    def temperature_c(self) -> float:
        """Mean of the sensor readings taken during the run."""
        return (sum(self.temperature_samples_c)
                / len(self.temperature_samples_c))

    @property
    def peak_power_w(self) -> float:
        return max(self.power_samples_w)

    @property
    def peak_to_peak_v(self) -> float:
        return self.voltage.peak_to_peak

    @property
    def v_min(self) -> float:
        return self.voltage.v_min


class SimulatedMachine:
    """One simulated platform (chip + board + instruments)."""

    def __init__(self, arch: MicroArch | str,
                 environment: str = "bare_metal",
                 seed: int = 0,
                 supply_v: Optional[float] = None,
                 sim_cycles: int = 1600,
                 hierarchy: Optional[MemoryHierarchy] = None,
                 nominal_frequency_hz: Optional[float] = None,
                 steady_state_detection: bool = True) -> None:
        if isinstance(arch, str):
            arch = microarch_for(arch)
        arch.validate()
        if environment not in ENVIRONMENTS:
            raise TargetError(
                f"unknown environment {environment!r}; "
                f"expected one of {ENVIRONMENTS}")
        if sim_cycles < 100:
            raise TargetError("sim_cycles must be >= 100")
        self.arch = arch
        self.environment = environment
        self.supply_v = supply_v if supply_v is not None else arch.vdd_nominal
        self.sim_cycles = sim_cycles
        self._rng: Random = make_rng(seed)
        self._seed = seed
        #: The chip's specification frequency: the anchor of the timing
        #: (critical-voltage) model.  Differs from arch.frequency_hz on
        #: machines produced by at_frequency().
        self.nominal_frequency_hz = nominal_frequency_hz \
            if nominal_frequency_hz is not None else arch.frequency_hz
        self.hierarchy = hierarchy
        self.assembler = assembler_for(arch.isa)
        #: Whether the pipeline may stop at a recurring scheduler state
        #: and tile the detected period (observably identical; see
        #: :mod:`repro.cpu.pipeline`).  Exposed for A/B validation.
        self.steady_state_detection = steady_state_detection
        self.pipeline = PipelineSimulator(
            arch, detect_steady_state=steady_state_detection)
        self.power = PowerModel(arch)
        self.thermal = ThermalModel(arch.thermal)
        self.pdn = PDNModel(arch.pdn, arch.frequency_hz)
        self._compile_cache: "OrderedDict[Tuple[str, str], Program]" = \
            OrderedDict()
        #: Content-addressed compile-cache counters: GA populations
        #: re-render many identical sources (elites, converged genes),
        #: so assembly work repeats.  Surfaced per generation in
        #: :class:`repro.core.engine.GenerationStats`.
        self.compile_cache_hits = 0
        self.compile_cache_misses = 0

    #: Entries kept in the compile cache; enough for several
    #: generations of distinct sources at paper-scale populations.
    COMPILE_CACHE_CAP = 512

    # -- toolchain -----------------------------------------------------------

    def compile(self, source: str, name: str = "stress.s",
                builder=None) -> Program:
        """Assemble source text; raises AssemblyError on bad code.

        Results are cached content-addressed on ``(name, source)`` —
        assembly is pure, and :class:`~repro.isa.model.Program` is
        treated as immutable by every consumer — with LRU eviction at
        :data:`COMPILE_CACHE_CAP` entries.  Failures are not cached.

        ``builder`` optionally supplies the Program on a cache miss in
        place of the full assembler — the batched evaluation path
        passes a :class:`~repro.isa.splice.TemplateSplicer` here.  The
        builder must produce exactly what ``assemble`` would (splicers
        self-validate), so cache content is identical either way.
        """
        key = (name, source)
        cached = self._compile_cache.get(key)
        if cached is not None:
            self._compile_cache.move_to_end(key)
            self.compile_cache_hits += 1
            return cached
        if builder is not None:
            program = builder(source, name)
        else:
            program = self.assembler.assemble(source, name=name)
        self.compile_cache_misses += 1
        self._compile_cache[key] = program
        if len(self._compile_cache) > self.COMPILE_CACHE_CAP:
            self._compile_cache.popitem(last=False)
        return program

    # -- noise stream control ------------------------------------------------

    def reseed(self, seed: int) -> None:
        """Reset the measurement-noise stream to a known point.

        The staged evaluation layer (:mod:`repro.evaluation`) pins a
        per-individual noise substream before every measurement so that
        a run's observables are a pure function of (source, machine,
        measurement parameters) — independent of evaluation order.
        That is what makes serial, process-pool and cached evaluation
        bit-identical, exactly like measuring on replicated boards.
        """
        self._rng = make_rng(seed)

    # -- idle characteristics ----------------------------------------------------

    def idle_core_power_w(self) -> float:
        """Power of a core executing nothing (clock + leakage)."""
        scale = (self.supply_v / self.arch.vdd_nominal) ** 2
        clock = self.arch.base_cycle_pj * 1e-12 * self.arch.frequency_hz
        return clock * scale + self.power.static_power_w(self.supply_v)

    def idle_chip_power_w(self) -> float:
        return self.power.chip_power_w(self.idle_core_power_w())

    def idle_temperature_c(self) -> float:
        """Steady idle chip temperature — Equation 1's ``I_T``."""
        return self.thermal.steady_state_c(self.idle_chip_power_w())

    def max_temperature_c(self, active_cores: Optional[int] = None) -> float:
        """A TJMAX-style bound used to normalise Equation 1's
        temperature score: the steady temperature if every issue slot of
        ``active_cores`` (default: all) burned the most energetic op
        every cycle.  GA searches that measure on a single core should
        normalise against ``active_cores=1`` so the temperature score
        spans a useful range."""
        cores = active_cores if active_cores is not None \
            else self.arch.core_count
        peak_epi = max(self.arch.epi_pj.values()) * 1.1
        per_core = (peak_epi * self.arch.issue_width
                    + self.arch.base_cycle_pj
                    + self.arch.window_slot_pj * self.arch.window_size)
        power = per_core * 1e-12 * self.arch.frequency_hz \
            + self.power.static_power_w(self.supply_v)
        chip = self.power.chip_power_w(power, cores) \
            + self.idle_core_power_w() * (self.arch.core_count - cores)
        return self.thermal.steady_state_c(chip)

    # -- execution ------------------------------------------------------------

    def run(self, program: Program, duration_s: float = 5.0,
            cores: Optional[int] = None,
            power_sample_count: int = 10,
            supply_v: Optional[float] = None) -> RunResult:
        """Execute ``program`` for ``duration_s`` seconds (modelled).

        ``cores`` follows the paper's methodology: the GA optimises on a
        single core, final viruses are scored with one instance per
        core.  ``supply_v`` overrides the machine setting for V_MIN
        sweeps.
        """
        if duration_s <= 0:
            raise SimulationError("duration must be positive")
        if power_sample_count < 1:
            raise SimulationError("need at least one power sample")
        cores = cores if cores is not None else 1
        if not 1 <= cores <= self.arch.core_count:
            raise SimulationError(
                f"cores={cores} outside 1..{self.arch.core_count}")
        supply = supply_v if supply_v is not None else self.supply_v

        trace = self.pipeline.execute(program, max_cycles=self.sim_cycles,
                                      hierarchy=self.hierarchy)

        core_power = self.power.core_power_w(program, trace, vdd=supply)
        # Idle cores still burn clock and leakage.
        idle = self.idle_core_power_w()
        noc_power = self._noc_power_w(program, trace, cores, supply)
        chip_power = self.power.chip_power_w(core_power, cores) \
            + idle * (self.arch.core_count - cores) + noc_power

        ipc = self._noisy(trace.ipc, _IPC_NOISE[self.environment])
        samples = [
            max(0.0, self._noisy(chip_power, _POWER_NOISE[self.environment]))
            for _ in range(power_sample_count)
        ]
        temperature_samples = [
            self.thermal.sensor_reading_c(chip_power, duration_s)
            + self._rng.gauss(0.0, _TEMP_NOISE_C[self.environment])
            for _ in range(power_sample_count)
        ]

        current = self.power.current_trace_a(program, trace, vdd=supply)
        # Independent per-core instances do not align their activity
        # phases, so AC current adds incoherently (~sqrt(N)) while the
        # DC component adds linearly.
        mean_current = float(np.mean(current))
        total_current = (mean_current * cores
                         + (current - mean_current) * np.sqrt(cores))
        voltage = self.pdn.simulate(
            total_current, supply,
            period=trace.period_cycles or None,
            prefix=trace.prefix_cycles)
        crashed = voltage.v_min < self.critical_voltage_v()

        return RunResult(
            program_name=program.name,
            cores_used=cores,
            duration_s=duration_s,
            supply_v=supply,
            ipc=max(0.0, ipc),
            core_power_w=core_power,
            chip_power_w=chip_power,
            power_samples_w=samples,
            temperature_samples_c=temperature_samples,
            voltage=voltage,
            crashed=crashed,
            trace=trace,
            cache=trace.cache_summary,
            noc_power_w=noc_power,
        )

    def run_source(self, source: str, name: str = "stress.s",
                   **kwargs) -> RunResult:
        """Compile-and-run convenience used by tests and examples."""
        return self.run(self.compile(source, name=name), **kwargs)

    def shared_access_fraction(self, program: Program) -> float:
        """Fraction of the loop's memory instructions whose base
        register points into the shared segment."""
        mem_slots = [i for i in program.loop if i.iclass.is_memory]
        if not mem_slots:
            return 0.0
        shared = sum(
            1 for i in mem_slots
            if program.register_values.get(i.mem_base, 0)
            >= SHARED_SEGMENT_BASE)
        return shared / len(mem_slots)

    def _noc_power_w(self, program: Program, trace: ExecutionTrace,
                     cores: int, supply: float) -> float:
        """Interconnect power from shared-segment traffic.

        Every shared access crosses the NoC to the shared LLC slice;
        with N instances the traffic scales by N.  This reproduces the
        MAMPO-style finding the paper cites: on simulated multi-cores,
        shared-memory virus threads raise total power substantially
        through the network-on-chip."""
        if self.arch.noc_epi_pj <= 0.0:
            return 0.0
        fraction = self.shared_access_fraction(program)
        if fraction == 0.0:
            return 0.0
        mem_issues = sum(
            count for group, count in trace.group_counts.items()
            if group in ("load", "store", "load_pair", "store_pair"))
        accesses_per_cycle = mem_issues / max(1, trace.cycles)
        scale = (supply / self.arch.vdd_nominal) ** 2
        return (accesses_per_cycle * fraction * cores
                * self.arch.noc_epi_pj * 1e-12
                * self.arch.frequency_hz * scale)

    def critical_voltage_v(self) -> float:
        """Minimum die voltage for timing-correct operation at this
        machine's clock; crossing it makes the run "crash".

        Critical-path delay shrinks with voltage headroom, so the
        voltage floor rises with clock frequency: at the specification
        frequency it is the classic 78% of nominal supply; overclocked
        machines need more, underclocked ones tolerate less — the
        slope a frequency/voltage shmoo plot walks."""
        ratio = self.arch.frequency_hz / self.nominal_frequency_hz
        fraction = _CRITICAL_VOLTAGE_FRACTION * (0.55 + 0.45 * ratio)
        return self.arch.vdd_nominal * fraction

    def at_frequency(self, frequency_hz: float) -> "SimulatedMachine":
        """A copy of this machine clocked at ``frequency_hz``.

        The timing model stays anchored at the original specification
        frequency, so V_MIN sweeps across the returned machines trace a
        frequency/voltage shmoo.  Loop current spectra shift with the
        clock (cycles per iteration are frequency-invariant), so a
        dI/dt virus tuned to the PDN resonance at one clock detunes at
        another — exactly as on silicon."""
        if frequency_hz <= 0:
            raise TargetError("frequency must be positive")
        return SimulatedMachine(
            self.arch.with_overrides(frequency_hz=frequency_hz),
            environment=self.environment,
            seed=self._seed,
            supply_v=self.supply_v,
            sim_cycles=self.sim_cycles,
            hierarchy=self.hierarchy,
            nominal_frequency_hz=self.nominal_frequency_hz,
            steady_state_detection=self.steady_state_detection,
        )

    # -- internals ---------------------------------------------------------------

    def _noisy(self, value: float, sigma_rel: float) -> float:
        if sigma_rel <= 0.0:
            return value
        return value * (1.0 + self._rng.gauss(0.0, sigma_rel))


class BatchedMachine:
    """Population-batched execution path over a :class:`SimulatedMachine`.

    :meth:`run_batch` evaluates a whole generation's programs in one
    pass: the pipeline model runs as a lockstep array simulation
    (:func:`repro.cpu.batch.simulate_population`), the power model's
    energy accumulation stacks into ``(population, cycles)`` arrays,
    and the PDN responses solve as one vectorized Euler integration —
    all bit-identical per individual to :meth:`SimulatedMachine.run`.

    Measurement noise is replayed per individual: the caller passes one
    noise key per program (the evaluation layer's per-source substream
    key) and the batch reseeds and draws each individual's noise in
    exactly the order the serial path would, so every observable —
    including the noisy samples — matches the serial result bit for
    bit.  Because the underlying simulation is deterministic, repeated
    measurements (``repeats > 1``) replay only the noise draws instead
    of re-running the simulator.

    Machines with a :class:`~repro.cpu.cache.MemoryHierarchy` attached
    fall back to the serial path internally (the lockstep scheduler
    models core-private execution only); the call still returns the
    same results, just without the batching speedup.
    """

    def __init__(self, machine: SimulatedMachine) -> None:
        self.machine = machine

    def run_batch(self, programs: List[Program],
                  duration_s: float = 5.0,
                  cores: Optional[int] = None,
                  power_sample_count: int = 10,
                  supply_v: Optional[float] = None,
                  noise_keys: Optional[List[int]] = None,
                  repeats: int = 1) -> List[List[RunResult]]:
        """Run every program; returns one result list (``repeats`` long)
        per program, in order."""
        machine = self.machine
        if duration_s <= 0:
            raise SimulationError("duration must be positive")
        if power_sample_count < 1:
            raise SimulationError("need at least one power sample")
        if repeats < 1:
            raise SimulationError("repeats must be >= 1")
        cores = cores if cores is not None else 1
        if not 1 <= cores <= machine.arch.core_count:
            raise SimulationError(
                f"cores={cores} outside 1..{machine.arch.core_count}")
        if noise_keys is not None and len(noise_keys) != len(programs):
            raise SimulationError("need one noise key per program")
        if not programs:
            return []

        if machine.hierarchy is not None:
            # Cache modelling is core-private serial state; run the
            # ordinary path per program (reseeding exactly as the
            # evaluation layer would).
            out: List[List[RunResult]] = []
            for index, program in enumerate(programs):
                if noise_keys is not None:
                    machine.reseed(noise_keys[index])
                out.append([
                    machine.run(program, duration_s=duration_s, cores=cores,
                                power_sample_count=power_sample_count,
                                supply_v=supply_v)
                    for _ in range(repeats)])
            return out

        from .batch import simulate_population
        supply = supply_v if supply_v is not None else machine.supply_v
        traces = simulate_population(
            programs, machine.arch, max_cycles=machine.sim_cycles,
            detect_steady_state=machine.steady_state_detection)

        power = machine.power
        scale = (supply / machine.arch.vdd_nominal) ** 2
        static = power.static_power_w(supply)
        frequency = machine.arch.frequency_hz
        idle = machine.idle_core_power_w()
        idle_cores = machine.arch.core_count - cores
        root_cores = np.sqrt(cores)

        energies = power.energy_traces_pj(programs, traces)
        core_powers: List[float] = []
        chip_powers: List[float] = []
        noc_powers: List[float] = []
        currents: List[np.ndarray] = []
        for program, trace, energy in zip(programs, traces, energies):
            energy = energy * scale
            # Mirrors PowerModel.core_power_w with the shared trace.
            start = int(len(energy) * 0.2)
            steady = energy[start:] if len(energy) > start else energy
            mean_pj = float(np.mean(steady)) if len(steady) else 0.0
            core_power = mean_pj * 1e-12 * frequency + static
            noc_power = machine._noc_power_w(program, trace, cores, supply)
            chip_power = power.chip_power_w(core_power, cores) \
                + idle * idle_cores + noc_power
            # Mirrors PowerModel.current_trace_a with the shared trace.
            current = (energy * 1e-12 * frequency + static) / supply
            mean_current = float(np.mean(current))
            currents.append(mean_current * cores
                            + (current - mean_current) * root_cores)
            core_powers.append(core_power)
            chip_powers.append(chip_power)
            noc_powers.append(noc_power)

        voltages = machine.pdn.simulate_batch(
            currents, supply,
            periods=[t.period_cycles or None for t in traces],
            prefixes=[t.prefix_cycles for t in traces])
        critical = machine.critical_voltage_v()

        power_sigma = _POWER_NOISE[machine.environment]
        ipc_sigma = _IPC_NOISE[machine.environment]
        temp_sigma = _TEMP_NOISE_C[machine.environment]
        results: List[List[RunResult]] = []
        for index, (program, trace) in enumerate(zip(programs, traces)):
            if noise_keys is not None:
                machine.reseed(noise_keys[index])
            chip_power = chip_powers[index]
            sensor = machine.thermal.sensor_reading_c(chip_power, duration_s)
            voltage = voltages[index]
            crashed = voltage.v_min < critical
            rounds: List[RunResult] = []
            for _ in range(repeats):
                # Noise draw order matches SimulatedMachine.run exactly:
                # ipc, then the power samples, then the temperatures.
                ipc = machine._noisy(trace.ipc, ipc_sigma)
                samples = [
                    max(0.0, machine._noisy(chip_power, power_sigma))
                    for _ in range(power_sample_count)
                ]
                temperature_samples = [
                    sensor + machine._rng.gauss(0.0, temp_sigma)
                    for _ in range(power_sample_count)
                ]
                rounds.append(RunResult(
                    program_name=program.name,
                    cores_used=cores,
                    duration_s=duration_s,
                    supply_v=supply,
                    ipc=max(0.0, ipc),
                    core_power_w=core_powers[index],
                    chip_power_w=chip_power,
                    power_samples_w=samples,
                    temperature_samples_c=temperature_samples,
                    voltage=voltage,
                    crashed=crashed,
                    trace=trace,
                    cache=trace.cache_summary,
                    noc_power_w=noc_powers[index],
                ))
            results.append(rounds)
        return results
