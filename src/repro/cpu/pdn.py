"""Second-order power delivery network (PDN) model.

The substrate for the paper's oscilloscope experiments (Section VI).
The die's supply node sits behind a series R–L (regulator, board and
package loop) and is held up by the on-die/package decoupling
capacitance C:

``L·di/dt = V_reg − v − R·i``        (inductor current)
``C·dv/dt = i − i_load(t)``           (die voltage node)

This network has a first-order resonance at ``f_res = 1/(2π√(LC))``
with quality factor ``Q = √(L/C)/R``.  A workload whose current
waveform carries energy at ``f_res`` — the paper's "periodic current
surges that match the CPU's PDN 1st order resonance-frequency" —
produces the deepest droops and largest peak-to-peak swings; a flat
high current only produces IR drop.  Both effects emerge from the same
two state equations.

Integration uses semi-implicit Euler at one step per clock cycle
(dt = 1/f_clk ≈ 0.3 ns, ~30 samples per resonance period at the Athlon
preset), which is stable for damped oscillators at this step size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .microarch import PDNParams

__all__ = ["VoltageTrace", "PDNModel"]


@dataclass
class VoltageTrace:
    """Die voltage waveform and derived scope statistics (volts)."""

    voltage: np.ndarray
    supply: float
    warmup_samples: int

    @property
    def steady(self) -> np.ndarray:
        return self.voltage[self.warmup_samples:]

    @property
    def v_min(self) -> float:
        return float(np.min(self.steady))

    @property
    def v_max(self) -> float:
        return float(np.max(self.steady))

    @property
    def peak_to_peak(self) -> float:
        """The oscilloscope's max−min measurement (Figure 8's metric)."""
        return self.v_max - self.v_min

    @property
    def max_droop(self) -> float:
        """Deepest excursion below the supply setting."""
        return self.supply - self.v_min

    @property
    def mean(self) -> float:
        return float(np.mean(self.steady))


class PDNModel:
    """Simulates the die voltage response to a per-cycle current trace."""

    def __init__(self, params: PDNParams, frequency_hz: float) -> None:
        if min(params.r_ohm, params.l_h, params.c_f) <= 0:
            raise ValueError("PDN R, L, C must all be positive")
        if frequency_hz <= 0:
            raise ValueError("clock frequency must be positive")
        self.params = params
        self.frequency_hz = frequency_hz
        self.dt = 1.0 / frequency_hz

    @property
    def resonance_hz(self) -> float:
        return self.params.resonance_hz

    @property
    def resonance_period_cycles(self) -> float:
        """Clock cycles per resonance period — the denominator of the
        paper's loop-length rule of thumb."""
        return self.frequency_hz / self.resonance_hz

    def simulate(self, current_a: np.ndarray, supply_v: float,
                 warmup_fraction: float = 0.25,
                 period: int | None = None,
                 prefix: int = 0) -> VoltageTrace:
        """Integrate the network against a per-cycle load current.

        The state starts at the DC solution for the trace's mean current
        so the scope statistics reflect steady operation, and an
        additional ``warmup_fraction`` of samples is excluded from the
        min/max/peak-to-peak statistics.

        ``period``/``prefix`` are an optional hint that ``current_a`` is
        periodic with that period from ``prefix`` onwards (the pipeline's
        detected steady-state kernel).  The damped RLC map is a
        contraction, so with a periodic input the float64 state lands on
        a bit-exact periodic orbit; the integrator checks the ``(v, i)``
        state at every period boundary and, on an exact recurrence,
        stops stepping and tiles the captured voltage segment over the
        remaining samples.  Because recurrence is checked with bitwise
        equality and the map is deterministic, the tiled waveform is
        identical to full integration — a wrong hint simply never
        matches and costs nothing.  (A frequency-domain convolution
        would be asymptotically faster still, but changes the result in
        the last ulps, violating the bit-identical contract.)
        """
        if len(current_a) == 0:
            raise ValueError("current trace is empty")
        p = self.params
        dt = self.dt
        n = len(current_a)

        mean_current = float(np.mean(current_a))
        v = supply_v - p.r_ohm * mean_current   # DC operating point
        i = mean_current

        voltage = np.empty(n)
        r, l, c = p.r_ohm, p.l_h, p.c_f
        # Scalar indexing into a plain list is several times faster than
        # into an ndarray, and float arithmetic on the resulting Python
        # floats is bit-identical to numpy scalar float64 arithmetic.
        samples = np.asarray(current_a, dtype=np.float64).tolist()

        check_at = prefix if period and period > 0 else -1
        seen: dict = {}
        k = 0
        while k < n:
            if k == check_at:
                state = (v, i)
                first = seen.get(state)
                if first is not None:
                    segment = voltage[first:k]
                    remaining = n - k
                    repeats = remaining // len(segment)
                    tail = remaining % len(segment)
                    if repeats:
                        voltage[k:k + repeats * len(segment)] = \
                            np.tile(segment, repeats)
                    if tail:
                        voltage[n - tail:] = segment[:tail]
                    break
                seen[state] = k
                check_at += period
            # Semi-implicit Euler: advance inductor current with the old
            # node voltage, then the node voltage with the new current.
            i += dt * (supply_v - v - r * i) / l
            v += dt * (i - samples[k]) / c
            voltage[k] = v
            k += 1

        warmup = int(n * warmup_fraction)
        warmup = min(warmup, n - 1)
        return VoltageTrace(voltage=voltage, supply=supply_v,
                            warmup_samples=warmup)

    def simulate_batch(self, currents: "list[np.ndarray]", supply_v: float,
                       periods: "list[int | None]",
                       prefixes: "list[int]",
                       warmup_fraction: float = 0.25
                       ) -> "list[VoltageTrace]":
        """Integrate many current traces in one lockstep pass.

        Bit-identical to calling :meth:`simulate` per trace: the
        semi-implicit Euler update is applied elementwise over a
        ``(population,)`` state vector, and IEEE-754 arithmetic is
        performed per element in the same order as the scalar loop.
        Rows whose ``(v, i)`` state recurs at a period boundary lock in
        exactly as in :meth:`simulate` (tile the captured segment) and
        drop out of the active set, so a batch of steady-state-detected
        traces costs no more than the serial path while a batch of
        full-length traces (no period hints) integrates as pure
        vectorized lockstep.

        Traces of different lengths are grouped by length and each
        group runs as its own lockstep pass.
        """
        population = len(currents)
        if population == 0:
            return []
        if len(periods) != population or len(prefixes) != population:
            raise ValueError("currents/periods/prefixes length mismatch")
        lengths = {len(c) for c in currents}
        if len(lengths) != 1:
            by_length: "dict[int, list[int]]" = {}
            for row, trace in enumerate(currents):
                by_length.setdefault(len(trace), []).append(row)
            out: "list" = [None] * population
            for rows in by_length.values():
                solved = self.simulate_batch(
                    [currents[r] for r in rows], supply_v,
                    [periods[r] for r in rows],
                    [prefixes[r] for r in rows],
                    warmup_fraction=warmup_fraction)
                for row, trace in zip(rows, solved):
                    out[row] = trace
            return out
        n = lengths.pop()
        if n == 0:
            raise ValueError("current trace is empty")

        p = self.params
        dt = self.dt
        r, l, c = p.r_ohm, p.l_h, p.c_f
        cur = np.empty((population, n), dtype=np.float64)
        for row, trace in enumerate(currents):
            cur[row] = trace
        # Per-row np.mean over a contiguous row uses the same pairwise
        # reduction as the scalar path's np.mean of the 1-D trace.
        mean = np.array([float(np.mean(cur[row]))
                         for row in range(population)])
        v = supply_v - r * mean            # DC operating point, per row
        i = mean.copy()
        voltage = np.empty((population, n), dtype=np.float64)

        check_at = np.array(
            [prefixes[row] if periods[row] and periods[row] > 0 else -1
             for row in range(population)], dtype=np.int64)
        period_arr = np.array(
            [periods[row] if periods[row] else 0 for row in range(population)],
            dtype=np.int64)
        seen: "list[dict]" = [{} for _ in range(population)]

        act = np.arange(population)        # global row per active lane
        k = 0
        while k < n and len(act):
            due = np.nonzero(check_at[act] == k)[0]
            if len(due):
                finished = []
                for lane in due:
                    row = int(act[lane])
                    state = (float(v[lane]), float(i[lane]))
                    first = seen[row].get(state)
                    if first is not None:
                        segment = voltage[row, first:k]
                        remaining = n - k
                        repeats = remaining // len(segment)
                        tail = remaining % len(segment)
                        if repeats:
                            voltage[row, k:k + repeats * len(segment)] = \
                                np.tile(segment, repeats)
                        if tail:
                            voltage[row, n - tail:] = segment[:tail]
                        finished.append(lane)
                    else:
                        seen[row][state] = k
                        check_at[row] += period_arr[row]
                if finished:
                    keep = np.ones(len(act), dtype=bool)
                    keep[finished] = False
                    act = act[keep]
                    v = v[keep]
                    i = i[keep]
                    if not len(act):
                        break
            i += dt * (supply_v - v - r * i) / l
            v += dt * (i - cur[act, k]) / c
            voltage[act, k] = v
            k += 1

        warmup = min(int(n * warmup_fraction), n - 1)
        return [VoltageTrace(voltage=voltage[row], supply=supply_v,
                             warmup_samples=warmup)
                for row in range(population)]

    def impedance_magnitude(self, frequency_hz: float) -> float:
        """|Z(f)| seen by the die load — peaks near the resonance.

        Useful for tests and for explaining why a loop frequency works:
        droop ≈ ΔI · |Z(f_loop)|.
        """
        if frequency_hz < 0:
            raise ValueError("frequency cannot be negative")
        p = self.params
        omega = 2.0 * np.pi * frequency_hz
        series = p.r_ohm + 1j * omega * p.l_h
        if omega == 0:
            return float(abs(series))
        cap = 1.0 / (1j * omega * p.c_f)
        z = (series * cap) / (series + cap)
        return float(abs(z))

    def resonant_loop_length(self, ipc: float) -> int:
        """The paper's rule of thumb: loop length ≈ IPC · f_clk / f_res,
        i.e. one loop iteration per resonance period."""
        if ipc <= 0:
            raise ValueError("ipc must be positive")
        return max(1, round(ipc * self.resonance_period_cycles))
