"""Population-batched execution: lockstep pipeline scheduling.

The serial :class:`~repro.cpu.pipeline.PipelineSimulator` pays its cost
per *individual* — a Python-level scheduler loop per simulated cycle.
A GA generation evaluates tens to hundreds of individuals whose loops
run on the *same* microarchitecture, so the per-cycle work can be
stacked along a population axis and executed as a handful of NumPy
operations per cycle instead of a Python loop per individual per cycle.

This module implements that lockstep scheduler.  The contract is
**bit-identical observables**: every per-individual quantity the serial
path exposes (expanded issue counts, occupancy, totals, and everything
the power/PDN stages derive from them) is reproduced exactly, enforced
by the golden suite in ``tests/test_batched_golden.py``.

Why the lockstep step can be exact
----------------------------------

* **Static dependency offsets.**  The serial scheduler resolves RAW
  dependencies through a ``last_writer`` dict at fetch.  Because fetch
  walks the loop body cyclically, the *distance* from a dynamic
  instruction to the nearest prior writer of each register it reads is
  a pure function of its loop slot: for dynamic id ``d`` at slot
  ``d mod L``, the k-th source is ``d - back_off[slot][k]`` (no
  dependence while ``d - off < 0``, i.e. during the first iteration
  before the register's first write).  The offsets are precomputed per
  individual by replaying two loop iterations of the serial fetch rule,
  so lockstep fetch needs no sequential bookkeeping — and the whole
  window (slots, ports, sources) is derivable from the dynamic-id
  matrix alone, which is the only per-entry state carried cycle to
  cycle.
* **Constant window occupancy.**  Serial fetch refills the window to
  ``window_size`` entries every cycle (there is no fetch bandwidth
  limit), so occupancy is the constant ``W`` and the window is a
  fixed-shape ``(population, W)`` array.
* **Rank-based issue selection.**  The serial greedy scan issues a
  ready entry iff fewer than ``avail[port]`` ready same-port entries
  precede it *and* fewer than ``issue_width`` entries issued before it.
  Width exhaustion blocks every later entry (the scan breaks), so the
  scan is equivalent to: select ready entries whose same-port ready
  rank fits the port's free units, then keep the first ``issue_width``
  of those.  Both ranks are cumulative sums along the window axis (the
  per-port ranks are packed one byte per port group into a single
  int64 cumsum).  An in-order core additionally stalls at the first
  entry that fails either test — a ``logical_and.accumulate`` prefix.
* **Functional units are interchangeable.**  Within a port group only
  the *multiset* of unit free-times matters, never which unit an
  instruction landed on; per-port busy counters plus a release ring
  (busy counts scheduled to drop at ``cycle + interval``) reproduce the
  serial free-time lists exactly.
* **Completion ring.**  Source readiness needs completion cycles for
  dynamic ids at most ``window span + loop length`` behind the fetch
  head; a power-of-two ring indexed by ``dyn & (R - 1)`` holds them,
  re-initialised to "not issued" at fetch.  The ring is grown (rarely)
  if a pathological stall makes the window span approach ``R``.

Steady-state recurrence is detected per individual with the serial
snapshot cadence (on fetch wrap, sampling interval doubling every 16
snapshots).  The key is a different — but equally canonical —
relativisation of the scheduler state: fetch phase, window contents
relative to the fetch head, completion deltas for exactly the ids a
future cycle can still observe (the window span plus one loop length
behind the head — older ids are unreachable, and including them would
both miss recurrences against stale ring slots and over-strictly
compare completions nothing can read), port busy counts and the rolled
release ring.  Equal keys therefore guarantee a true recurrence of the
lockstep state machine.  Any true recurrence yields bit-identical
*expanded* observables (``ExecutionTrace.expand`` copies values and
totals are derived analytically), so the detected (prefix, period) pair
need not match the serial one — the goldens compare expanded forms,
which do match bitwise.

Individuals leave the lockstep set as soon as they recur (or reach
``max_cycles``); the state arrays are compacted so stragglers do not
pay for finished rows.  Memory hierarchies are *not* supported here —
address-dependent latencies break the static-offset argument — and
callers fall back to the serial simulator in that case.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.errors import SimulationError
from ..isa.model import Program
from .microarch import MicroArch
from .pipeline import ExecutionTrace, PipelineSimulator

__all__ = ["simulate_population"]

#: "Fetched but not yet issued" sentinel in the completion ring.  Well
#: below int32 overflow even after ``- cycle`` normalisation.
_NOT_ISSUED = np.int32(2 ** 30)
#: Padding offset for absent sources: ``dyn - _PAD_OFF`` is always
#: negative, which is exactly the "no dependence" condition.
_PAD_OFF = 2 ** 29
#: Stragglers are handed to the serial simulator once fewer than
#: ``population / _EJECT_DIVISOR`` rows remain active (tuned on the
#: evaluation benchmark; the re-run restarts from cycle zero, so a low
#: threshold quickly loses what the lockstep pass already paid for).
_EJECT_DIVISOR = 32


class _ProgramTables:
    """Per-individual static scheduling tables for the lockstep loop."""

    __slots__ = ("groups", "loop_len", "port", "latency", "interval",
                 "back_off", "n_sources")

    def __init__(self, program: Program, arch: MicroArch,
                 port_index: Dict[str, int],
                 lookup_memo: Dict[tuple, Tuple[str, int, int, int]]) -> None:
        loop = program.loop
        if not loop:
            raise SimulationError(
                f"program {program.name!r} has an empty loop body")
        loop_len = len(loop)
        self.loop_len = loop_len
        memo_get = lookup_memo.get
        entries = []
        for instr in loop:
            key = (instr.group, instr.iclass)
            entry = memo_get(key)
            if entry is None:
                group = instr.group or instr.iclass.value
                entry = (group,
                         port_index[arch.port_group_of(group, instr.iclass)],
                         arch.latency_of(group, instr.iclass),
                         arch.initiation_interval(group, instr.iclass))
                lookup_memo[key] = entry
            entries.append(entry)
        self.groups = [entry[0] for entry in entries]
        self.port = np.array([entry[1] for entry in entries], np.int16)
        self.latency = np.array([entry[2] for entry in entries], np.int32)
        self.interval = np.array([entry[3] for entry in entries], np.int32)
        # Replay two loop iterations of the serial fetch rule to read
        # off the cyclic nearest-writer distances.  The first pass
        # seeds last_writer; the second is in steady state, where every
        # in-loop-written register has a writer within L instructions.
        last_writer: Dict[str, int] = {}
        for index, instr in enumerate(loop):
            for reg in instr.writes:
                last_writer[reg] = index
        offsets: List[List[int]] = []
        n_sources = 0
        for index, instr in enumerate(loop):
            dyn = loop_len + index
            offs = [dyn - last_writer[reg] for reg in instr.reads
                    if reg in last_writer]
            offsets.append(offs)
            if len(offs) > n_sources:
                n_sources = len(offs)
            for reg in instr.writes:
                last_writer[reg] = dyn
        self.n_sources = n_sources
        pad_row = [_PAD_OFF] * max(n_sources, 1)
        self.back_off = np.array(
            [offs + pad_row[len(offs):] for offs in offsets], np.int32)


def _pow2_at_least(value: int) -> int:
    size = 1
    while size < value:
        size *= 2
    return size


def simulate_population(programs: Sequence[Program], arch: MicroArch,
                        max_cycles: int,
                        detect_steady_state: bool = True
                        ) -> List[ExecutionTrace]:
    """Execute every program's loop for ``max_cycles`` cycles, lockstep.

    Returns one :class:`ExecutionTrace` per program, in input order,
    with observables bit-identical to
    ``PipelineSimulator(arch).execute(program, max_cycles)`` (no memory
    hierarchy; see the module docstring).
    """
    arch.validate()
    if max_cycles < 1:
        raise SimulationError("max_cycles must be >= 1")
    population = len(programs)
    if population == 0:
        return []

    port_names = list(arch.ports)
    if len(port_names) > 8:
        raise SimulationError(
            "lockstep scheduler supports at most 8 port groups "
            f"({arch.name} has {len(port_names)})")
    if arch.window_size > 250:
        raise SimulationError(
            "lockstep scheduler packs per-port ready ranks into bytes; "
            f"window_size {arch.window_size} exceeds 250")
    port_index = {name: i for i, name in enumerate(port_names)}
    units = np.fromiter((arch.ports[name] for name in port_names),
                        np.int32, len(port_names))
    n_ports = len(port_names)

    lookup_memo: Dict[tuple, Tuple[int, int, int]] = {}
    tables = [_ProgramTables(program, arch, port_index, lookup_memo)
              for program in programs]

    window = arch.window_size
    width = arch.issue_width
    in_order = arch.in_order
    loop_max = max(t.loop_len for t in tables)
    n_src = max(max(t.n_sources for t in tables), 1)
    lat_max = int(max(int(t.latency.max()) for t in tables))
    intv_max = int(max(int(t.interval.max()) for t in tables))

    # Dynamic ids are bounded by window + max_cycles * width; when that
    # (and every completion cycle) fits comfortably under 2**14, the id
    # matrices, completion ring and source offsets all shrink to int16,
    # roughly halving the memory traffic of the per-cycle hot path.
    id_bound = window + max_cycles * width
    small_ids = id_bound < 16000 and max_cycles + lat_max < 16000
    id_dtype = np.int16 if small_ids else np.int32
    not_issued = id_dtype(2 ** 14 if small_ids else _NOT_ISSUED)
    pad_off = 2 ** 14 if small_ids else _PAD_OFF

    # Stacked static tables, padded to the longest loop.
    loop_lens = np.fromiter((t.loop_len for t in tables), np.int16,
                            population)
    port_tab = np.zeros((population, loop_max), np.int16)
    lat_tab = np.ones((population, loop_max), np.int32)
    intv_tab = np.ones((population, loop_max), np.int32)
    back_tab = np.full((population, loop_max, n_src), pad_off, id_dtype)
    for row, t in enumerate(tables):
        port_tab[row, :t.loop_len] = t.port
        lat_tab[row, :t.loop_len] = t.latency
        intv_tab[row, :t.loop_len] = t.interval
        back_tab[row, :t.loop_len, :t.back_off.shape[1]] = \
            np.where(t.back_off == _PAD_OFF, pad_off, t.back_off)

    # Hot-path layouts: flat views consumed by ``np.take`` (measurably
    # faster than multi-axis fancy indexing), per-source-slot 2D slices
    # of the back-offset table, and pre-shifted issue-rank tables.
    port_flat = port_tab.reshape(-1)
    lat_flat = lat_tab.reshape(-1)
    intv_flat = intv_tab.reshape(-1)
    back_flats = [np.ascontiguousarray(back_tab[:, :, k]).reshape(-1)
                  for k in range(n_src)]
    rank_dtype = np.int32 if n_ports <= 4 else np.int64
    pow_flat = np.left_shift(rank_dtype(1),
                             port_tab.astype(rank_dtype) << 3).reshape(-1)
    shift_flat = (port_tab.astype(np.int32) << 3).reshape(-1)

    ring_size = _pow2_at_least(2 * (window + loop_max + lat_max + width))
    ring_size = max(ring_size, 64)
    release_depth = max(_pow2_at_least(intv_max + 2), 32)

    # Per-individual (global-row) output buffers.  Rows are removed
    # from the lockstep set the moment they finish, so buffer lengths
    # never exceed the recorded simulated-cycle counts.
    issue_buf = np.zeros((population, window + max_cycles * width),
                         np.int16)
    issue_len = np.zeros(population, np.int64)
    count_buf = np.zeros((population, max_cycles), np.int16)
    res_prefix = np.zeros(population, np.int64)
    res_period = np.zeros(population, np.int64)
    res_cycles = np.full(population, max_cycles, np.int64)

    # Recurrence bookkeeping.  Wrap counting and snapshot-cadence
    # filtering are vectorised; only rows actually due for a snapshot
    # pay Python-level key construction.
    seen_states: List[dict] = [dict() for _ in range(population)]
    wrap_count = np.zeros(population, np.int64)
    snapshot_interval = np.ones(population, np.int64)
    snapshots_at_interval = np.zeros(population, np.int64)

    # Lockstep state over the active rows (always the leading slice of
    # each array; ``act`` maps active row → global row).  The window is
    # one int32 matrix of dynamic ids in fetch order — slots, ports and
    # sources are recomputed from it each cycle via the static tables.
    act = np.arange(population)
    w_dyn = np.zeros((population, window), id_dtype)
    ring = np.full((population, ring_size), not_issued, id_dtype)
    busy = np.zeros((population, n_ports), np.int32)
    release = np.zeros((population, n_ports, release_depth), np.int16)
    next_dyn = np.zeros(population, np.int32)
    phase = np.zeros(population, np.int32)
    survivors = np.zeros(population, np.int32)
    wrapped = np.zeros(population, bool)

    ring_ages = np.arange(ring_size, dtype=np.int32)[None, :]
    detect = bool(detect_steady_state)
    loop_act = loop_lens.copy()
    #: Sentinel above every live dynamic id: issued entries are bumped
    #: to it so an in-place sort compacts survivors (ids are strictly
    #: increasing in fetch order, so sorting IS the stable compaction).
    dyn_max = id_dtype(2 ** 14 + 2 ** 13 if small_ids else 2 ** 30 + 1)
    #: Once the active set is this small, vectorised per-cycle overhead
    #: exceeds the cost of simply re-running the stragglers through the
    #: serial simulator (whose traces are bit-identical by the same
    #: arguments this module rests on).  The serial re-run starts from
    #: cycle zero, so the threshold is deliberately conservative.
    eject_below = max(2, population // _EJECT_DIVISOR)

    take = np.take
    rows01 = gbase = rbase = pbase = ring_flat = None
    n_cached = -1

    cycle = 0
    ejected: Dict[int, ExecutionTrace] = {}
    while cycle < max_cycles and len(act):
        n_active = len(act)

        # ---- straggler ejection: once only a handful of rows remain,
        # the fixed cost of vector dispatch per cycle exceeds the serial
        # simulator's per-row cost; hand the rest over (bit-identical by
        # the equivalence arguments in the module docstring) ------------
        if n_active <= eject_below and n_active < population:
            break

        # ---- free units whose initiation interval elapsed ------------
        due = cycle & (release_depth - 1)
        busy[:n_active] -= release[:n_active, :, due]
        release[:n_active, :, due] = 0

        # ---- steady-state check (before this cycle's fetch) ----------
        if detect:
            wrapped_rows = np.nonzero(wrapped[:n_active])[0]
            finished = None
            if len(wrapped_rows):
                wrapped[:n_active] = False
                wg = act[wrapped_rows]
                wrap_count[wg] += 1
                due_rows = wrapped_rows[
                    wrap_count[wg] % snapshot_interval[wg] == 0]
                if len(due_rows):
                    finished = _check_recurrence(
                        due_rows, act, w_dyn, ring, busy, release,
                        next_dyn, phase, survivors, loop_act, cycle,
                        ring_size, release_depth, not_issued,
                        seen_states, snapshot_interval,
                        snapshots_at_interval, res_prefix,
                        res_period, res_cycles)
            if finished:
                keep = np.ones(n_active, bool)
                keep[finished] = False
                kept = int(keep.sum())
                for state in (w_dyn, ring, busy, next_dyn, phase,
                              survivors, loop_act, act):
                    state[:kept] = state[:n_active][keep]
                release[:kept] = release[:n_active][keep]
                act = act[:kept]
                if not kept:
                    break
                n_active = kept

        a_dyn = w_dyn[:n_active]
        a_busy = busy[:n_active]
        a_next = next_dyn[:n_active]
        a_phase = phase[:n_active]
        a_surv = survivors[:n_active]
        a_loop = loop_act[:n_active]

        # ---- guard: grow the completion ring if the window span plus
        # the dependency horizon approaches its capacity --------------
        span = int((a_next - a_dyn[:, 0]).max()) if cycle else 0
        if span + loop_max + lat_max + window >= ring_size:
            new_size = ring_size * 2
            grown = np.full((population, new_size), not_issued, id_dtype)
            r01 = np.arange(n_active)[:, None]
            old_ids = (a_next[:, None] - ring_size) + ring_ages
            grown[r01, old_ids & (new_size - 1)] = \
                ring[:n_active][r01, old_ids & (ring_size - 1)]
            ring = grown
            ring_size = new_size
            ring_ages = np.arange(ring_size, dtype=np.int32)[None, :]
            n_cached = -1

        # ---- hoisted flat-index bases, recomputed only when the
        # active set or the ring geometry changes ----------------------
        if n_active != n_cached:
            rows01 = np.arange(n_active)
            gbase = (act * loop_max)[:, None]
            rbase = (rows01 * ring_size)[:, None]
            pbase = (rows01 * n_ports)[:, None]
            ring_flat = ring[:n_active].reshape(-1)
            n_cached = n_active
        mask = ring_size - 1

        # ---- fetch: refill every window to exactly W entries ---------
        n_new = window - a_surv
        total = int(n_new.sum())
        if total:
            rows_rep = np.repeat(rows01, n_new)
            starts = np.cumsum(n_new) - n_new
            offs = np.arange(total, dtype=np.int32) - starts[rows_rep]
            new_dyn = a_next[rows_rep] + offs
            a_dyn[rows_rep, a_surv[rows_rep] + offs] = new_dyn
            ring_flat[rows_rep * ring_size + (new_dyn & mask)] = \
                not_issued
            advanced = a_phase + n_new
            wrapped[:n_active] = advanced >= a_loop
            a_phase[:] = advanced % a_loop
            a_next += n_new

        # ---- rebuild window facts from the dynamic ids ---------------
        slot = a_dyn % a_loop[:, None]
        base2 = gbase + slot
        port = take(port_flat, base2)

        # ---- readiness: all sources complete by this cycle -----------
        src = a_dyn - take(back_flats[0], base2)
        done = take(ring_flat, rbase + (src & mask))
        blocked = (src >= 0) & (done > cycle)
        for k in range(1, n_src):
            src = a_dyn - take(back_flats[k], base2)
            done = take(ring_flat, rbase + (src & mask))
            blocked |= (src >= 0) & (done > cycle)
        ready = ~blocked

        # ---- issue selection (see module docstring for the proof) ----
        rank_packed = np.cumsum(take(pow_flat, base2) * ready, axis=1)
        port_rank = (rank_packed >> take(shift_flat, base2)) & 0xFF
        avail = units[None, :] - a_busy
        avail_here = take(avail.reshape(-1), pbase + port)
        selected = ready & (port_rank <= avail_here)
        sel_rank = np.cumsum(selected, axis=1, dtype=np.int32)
        if in_order:
            selected = np.logical_and.accumulate(selected, axis=1)
        issued = selected & (sel_rank <= width)

        # ---- apply issues --------------------------------------------
        rows_i, cols_i = np.nonzero(issued)
        glob_i = act[rows_i]
        base_i = base2[rows_i, cols_i]
        dyn_i = a_dyn[rows_i, cols_i]
        lat_i = lat_flat[base_i]
        intv_i = intv_flat[base_i]
        ring_flat[rows_i * ring_size + (dyn_i & mask)] = cycle + lat_i
        # Unit busy/release tracking only matters past an initiation
        # interval of 1: a fully-pipelined instruction's unit is free
        # again before the next cycle's selection ever reads the busy
        # counter, so its increment/decrement pair is unobservable.
        long_ix = np.nonzero(intv_i > 1)[0]
        if len(long_ix):
            rows_l = rows_i[long_ix]
            ports_l = port[rows_l, cols_i[long_ix]]
            a_busy += np.bincount(rows_l * n_ports + ports_l,
                                  minlength=n_active * n_ports) \
                .reshape(n_active, n_ports).astype(np.int32)
            np.add.at(
                release[:n_active],
                (rows_l, ports_l,
                 (cycle + intv_i[long_ix]) & (release_depth - 1)),
                1)
        issue_buf[glob_i, issue_len[glob_i]
                  + (sel_rank[rows_i, cols_i] - 1)] = \
            slot[rows_i, cols_i].astype(np.int64)
        per_row = issued.sum(axis=1, dtype=np.int32)
        count_buf[act, cycle] = per_row
        issue_len[act] += per_row

        # ---- compact: bump issued ids past every live id, then an
        # in-place sort IS the stable compaction (ids are strictly
        # increasing along each row in fetch order) --------------------
        np.copyto(a_dyn, dyn_max, where=issued)
        a_dyn.sort(axis=1)
        a_surv[:] = window - per_row
        cycle += 1

    # ---- straggler rows: re-run serially from scratch ----------------
    if len(act) and cycle < max_cycles:
        serial = PipelineSimulator(arch)
        for g in act:
            ejected[int(g)] = serial.execute(
                programs[int(g)], max_cycles, detect_steady_state=detect)

    # ---- materialise one trace per individual ------------------------
    traces: List[ExecutionTrace] = []
    for g, t in enumerate(tables):
        done_trace = ejected.get(g)
        if done_trace is not None:
            traces.append(done_trace)
            continue
        sim = int(res_cycles[g])
        counts = count_buf[g, :sim].astype(np.int64)
        offsets = np.zeros(sim + 1, np.int64)
        np.cumsum(counts, out=offsets[1:])
        traces.append(PipelineSimulator._build_trace(
            t.groups, t.loop_len, max_cycles,
            int(res_prefix[g]), int(res_period[g]),
            issue_buf[g, :int(issue_len[g])].astype(np.int32),
            offsets, np.full(sim, window, np.int32), None, None))
    return traces


def _check_recurrence(due_rows, act, w_dyn, ring, busy, release,
                      next_dyn, phase, survivors, loop_act, cycle,
                      ring_size, release_depth, not_issued, seen_states,
                      snapshot_interval, snapshots_at_interval,
                      res_prefix, res_period, res_cycles):
    """Snapshot the scheduler state of ``due_rows`` and record any
    recurrence.  Returns the active-row indices that just finished.

    The canonical key is built vectorised for all due rows at once;
    only the final ``tobytes`` + dict probe run per row.  Completion
    deltas cover exactly the reachable horizon (window span plus one
    loop length behind the fetch head): older ids can never be read by
    a future cycle, and early in a run their ring slots still hold
    initialisation values — including them would both miss genuine
    recurrences and over-strictly compare dead completions.
    """
    rows = np.asarray(due_rows)
    heads = next_dyn[rows]
    # Ring statuses in oldest→newest id order: entry j is id
    # ``head - ring_size + j``.
    ages = np.arange(ring_size, dtype=np.int32)[None, :]
    rolled = ring[rows[:, None], (heads[:, None] + ages) & (ring_size - 1)]
    deltas = np.where(rolled == not_issued, np.int32(-1),
                      np.maximum(rolled - np.int32(cycle), np.int32(0)))
    spin = (np.int32(cycle) + np.arange(release_depth, dtype=np.int32)) \
        & (release_depth - 1)
    pending = release[rows][:, :, spin]
    keep_counts = survivors[rows]
    cols = np.arange(w_dyn.shape[1], dtype=np.int32)[None, :]
    live = cols < keep_counts[:, None]
    rel_ids = np.where(live, w_dyn[rows] - heads[:, None], np.int32(0))
    rel_slot = np.where(live, w_dyn[rows] % loop_act[rows][:, None],
                        np.int32(0))
    finished: List[int] = []
    for i, row in enumerate(due_rows):
        g = int(act[row])
        keep = int(keep_counts[i])
        oldest = int(w_dyn[row, 0]) if keep else int(heads[i])
        horizon = min(int(heads[i]) - oldest + int(loop_act[row]),
                      ring_size)
        key = (int(phase[row]), keep,
               rel_ids[i].tobytes(), rel_slot[i].tobytes(),
               deltas[i, ring_size - horizon:].tobytes(),
               busy[row].tobytes(), pending[i].tobytes())
        earlier = seen_states[g].get(key)
        if earlier is not None:
            res_prefix[g] = earlier
            res_period[g] = cycle - earlier
            res_cycles[g] = cycle
            finished.append(row)
            continue
        seen_states[g][key] = cycle
        snapshots_at_interval[g] += 1
        if snapshots_at_interval[g] >= 16:
            snapshots_at_interval[g] = 0
            snapshot_interval[g] *= 2
    return finished
