"""Microarchitecture descriptions and the four CPU presets of Table II.

A :class:`MicroArch` bundles everything the substrate models need:

* **timing** — issue width, in-order vs out-of-order scheduling window,
  functional-unit port groups, per-group latencies and pipelining;
* **power** — per-group energy-per-instruction (EPI) in picojoules, a
  per-cycle base (clock tree) energy, a per-window-slot occupancy energy
  (the "issue queue and dependency tracking logic" the paper credits for
  the power virus's temperature), static and uncore power;
* **thermal** — ambient temperature, junction-to-ambient thermal
  resistance and time constant for the first-order RC model;
* **PDN** — series R/L and die capacitance for the second-order
  power-delivery model whose first resonance dI/dt viruses must hit.

The presets are *behavioural stand-ins*, not datasheet models: their
numbers are chosen so the qualitative landscape matches what the paper
reports for each platform (see DESIGN.md).  In particular:

* ``cortex_a15`` — wide OOO core; float/SIMD ops carry the largest EPI
  so power viruses go float/SIMD-heavy (Table III row 1).
* ``cortex_a7`` — narrow in-order core with a single FP port, a cheap
  folded-branch port and comparatively expensive fetch/branch energy,
  so stressing it needs branch-rich mixes (Table III row 2).
* ``xgene2`` — server core where memory instructions are the most
  energetic per slot and long-latency ops keep the window occupied,
  reproducing the power-vs-IPC virus trade-off of Table IV.
* ``athlon_x4`` — desktop x86 with a pronounced PDN resonance at
  ~100 MHz for the dI/dt experiments of Figures 8/9.
* ``cortex_a57`` — the dual-core 28 nm cluster of the authors' own
  power-integrity studies (paper references [11], [12] and [22]); not
  part of Table II's evaluation but the platform GeST served in
  industry, provided for experimentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from ..core.errors import ConfigError
from ..isa.model import InstrClass

__all__ = ["PDNParams", "ThermalParams", "MicroArch", "PRESETS",
           "microarch_for", "preset_names"]


@dataclass(frozen=True)
class PDNParams:
    """Series-RLC power delivery network parameters.

    The die sees ``v(t)`` across the decoupling capacitance ``c_f``;
    board inductance ``l_h`` and loop resistance ``r_ohm`` connect it to
    the voltage regulator.  First-order resonance sits at
    ``1/(2*pi*sqrt(LC))`` with quality factor ``sqrt(L/C)/R``.
    """

    r_ohm: float
    l_h: float
    c_f: float

    @property
    def resonance_hz(self) -> float:
        import math
        return 1.0 / (2.0 * math.pi * math.sqrt(self.l_h * self.c_f))

    @property
    def q_factor(self) -> float:
        import math
        return math.sqrt(self.l_h / self.c_f) / self.r_ohm


@dataclass(frozen=True)
class ThermalParams:
    """First-order RC thermal model parameters."""

    t_ambient_c: float
    r_th_c_per_w: float     # junction-to-ambient thermal resistance
    tau_s: float            # thermal time constant

    def steady_state_c(self, power_w: float) -> float:
        return self.t_ambient_c + self.r_th_c_per_w * power_w

    def transient_c(self, power_w: float, t_s: float) -> float:
        import math
        rise = self.r_th_c_per_w * power_w
        return self.t_ambient_c + rise * (1.0 - math.exp(-t_s / self.tau_s))


#: Fallback latency (cycles) per instruction class when a group has no
#: explicit entry in ``MicroArch.latency``.
_CLASS_DEFAULT_LATENCY = {
    InstrClass.INT_SHORT: 1,
    InstrClass.INT_LONG: 4,
    InstrClass.FLOAT: 4,
    InstrClass.SIMD: 4,
    InstrClass.MEM_LOAD: 3,
    InstrClass.MEM_STORE: 1,
    InstrClass.BRANCH: 1,
    InstrClass.NOP: 1,
}

#: Fallback port-group per instruction class.
_CLASS_DEFAULT_PORT = {
    InstrClass.INT_SHORT: "int",
    InstrClass.INT_LONG: "int",
    InstrClass.FLOAT: "fp",
    InstrClass.SIMD: "fp",
    InstrClass.MEM_LOAD: "mem",
    InstrClass.MEM_STORE: "mem",
    InstrClass.BRANCH: "br",
    InstrClass.NOP: "int",
}

#: Fallback EPI (pJ) per class when a group has no explicit entry.
_CLASS_DEFAULT_EPI = {
    InstrClass.INT_SHORT: 30.0,
    InstrClass.INT_LONG: 80.0,
    InstrClass.FLOAT: 110.0,
    InstrClass.SIMD: 160.0,
    InstrClass.MEM_LOAD: 100.0,
    InstrClass.MEM_STORE: 90.0,
    InstrClass.BRANCH: 25.0,
    InstrClass.NOP: 6.0,
}


@dataclass(frozen=True)
class MicroArch:
    """One simulated CPU."""

    name: str
    isa: str                       # 'arm' or 'x86' — selects the assembler
    frequency_hz: float
    core_count: int
    in_order: bool
    issue_width: int
    window_size: int
    ports: Dict[str, int] = field(default_factory=dict)
    port_of: Dict[str, str] = field(default_factory=dict)    # group → port
    latency: Dict[str, int] = field(default_factory=dict)    # group → cycles
    unpipelined: frozenset = frozenset()                     # groups
    epi_pj: Dict[str, float] = field(default_factory=dict)   # group → pJ
    base_cycle_pj: float = 20.0
    window_slot_pj: float = 0.8
    static_power_w: float = 0.2
    uncore_power_w: float = 0.5
    #: Energy per shared-memory access routed over the interconnect
    #: (NoC + LLC bank).  Zero disables shared-memory power modelling;
    #: the multi-core server preset sets it, reproducing the MAMPO
    #: observation the paper discusses in Section IV (shared accesses
    #: engage the NoC, a large contributor on many-core chips).
    noc_epi_pj: float = 0.0
    vdd_nominal: float = 1.0
    max_ipc: float = 2.0
    thermal: ThermalParams = ThermalParams(25.0, 10.0, 8.0)
    pdn: PDNParams = PDNParams(2e-3, 8e-12, 3.2e-7)

    # -- lookup helpers used by the pipeline/power models -------------------

    def latency_of(self, group: str, iclass: InstrClass) -> int:
        value = self.latency.get(group)
        if value is None:
            value = _CLASS_DEFAULT_LATENCY[iclass]
        return value

    def port_group_of(self, group: str, iclass: InstrClass) -> str:
        port = self.port_of.get(group)
        if port is None:
            port = _CLASS_DEFAULT_PORT[iclass]
        if port not in self.ports:
            raise ConfigError(
                f"{self.name}: port group {port!r} (for {group!r}) has no "
                f"port count configured")
        return port

    def epi_of(self, group: str, iclass: InstrClass) -> float:
        value = self.epi_pj.get(group)
        if value is None:
            value = _CLASS_DEFAULT_EPI[iclass]
        return value

    def initiation_interval(self, group: str, iclass: InstrClass) -> int:
        if group in self.unpipelined:
            return self.latency_of(group, iclass)
        return 1

    def with_overrides(self, **kwargs) -> "MicroArch":
        """A copy with selected fields replaced (for ablations)."""
        return replace(self, **kwargs)

    def validate(self) -> None:
        if self.issue_width < 1:
            raise ConfigError(f"{self.name}: issue width must be >= 1")
        if self.window_size < self.issue_width:
            raise ConfigError(
                f"{self.name}: window must be at least the issue width")
        if self.frequency_hz <= 0:
            raise ConfigError(f"{self.name}: frequency must be positive")
        if self.core_count < 1:
            raise ConfigError(f"{self.name}: core count must be >= 1")
        if not self.ports:
            raise ConfigError(f"{self.name}: no port groups configured")


# ---------------------------------------------------------------------------
# Presets (Table II stand-ins)
# ---------------------------------------------------------------------------

_CORTEX_A15 = MicroArch(
    name="cortex_a15",
    isa="arm",
    frequency_hz=1.2e9,
    core_count=2,
    in_order=False,
    issue_width=3,
    window_size=40,
    ports={"int": 2, "fp": 2, "mem": 2, "br": 1},
    port_of={"alu": "int", "shift": "int", "mul": "int", "div": "int",
             "fadd": "fp", "fmul": "fp", "fdiv": "fp", "fma": "fp",
             "vadd": "fp", "vmul": "fp",
             "load": "mem", "load_pair": "mem",
             "store": "mem", "store_pair": "mem",
             "branch": "br", "nop": "int"},
    latency={"alu": 1, "shift": 1, "mul": 4, "div": 19,
             "fadd": 5, "fmul": 5, "fdiv": 18, "fma": 9,
             "vadd": 3, "vmul": 4,
             "load": 4, "load_pair": 5, "store": 1, "store_pair": 2,
             "branch": 1, "nop": 1},
    unpipelined=frozenset({"div", "fdiv"}),
    epi_pj={"alu": 35.0, "shift": 32.0, "mul": 95.0, "div": 260.0,
            "fadd": 130.0, "fmul": 150.0, "fdiv": 300.0, "fma": 225.0,
            "vadd": 170.0, "vmul": 185.0,
            "load": 125.0, "load_pair": 185.0,
            "store": 110.0, "store_pair": 160.0,
            "branch": 28.0, "nop": 8.0},
    base_cycle_pj=70.0,
    window_slot_pj=0.9,
    static_power_w=0.30,
    uncore_power_w=0.25,
    vdd_nominal=1.05,
    max_ipc=3.0,
    thermal=ThermalParams(t_ambient_c=28.0, r_th_c_per_w=18.0, tau_s=1.8),
    pdn=PDNParams(r_ohm=3e-3, l_h=12e-12, c_f=2.1e-7),
)

_CORTEX_A7 = MicroArch(
    name="cortex_a7",
    isa="arm",
    frequency_hz=1.0e9,
    core_count=3,
    in_order=True,
    issue_width=2,
    window_size=4,
    ports={"int": 2, "fp": 1, "mem": 1, "br": 1},
    port_of={"alu": "int", "shift": "int", "mul": "int", "div": "int",
             "fadd": "fp", "fmul": "fp", "fdiv": "fp", "fma": "fp",
             "vadd": "fp", "vmul": "fp",
             "load": "mem", "load_pair": "mem",
             "store": "mem", "store_pair": "mem",
             "branch": "br", "nop": "int"},
    latency={"alu": 1, "shift": 1, "mul": 3, "div": 10,
             "fadd": 4, "fmul": 4, "fdiv": 14, "fma": 8,
             "vadd": 4, "vmul": 4,
             "load": 3, "load_pair": 4, "store": 1, "store_pair": 2,
             "branch": 1, "nop": 1},
    unpipelined=frozenset({"div", "fdiv", "fma"}),
    epi_pj={"alu": 22.0, "shift": 20.0, "mul": 55.0, "div": 120.0,
            "fadd": 62.0, "fmul": 70.0, "fdiv": 140.0, "fma": 105.0,
            "vadd": 72.0, "vmul": 78.0,
            "load": 48.0, "load_pair": 68.0,
            "store": 44.0, "store_pair": 58.0,
            "branch": 55.0, "nop": 4.0},
    base_cycle_pj=22.0,
    window_slot_pj=0.3,
    static_power_w=0.08,
    uncore_power_w=0.10,
    vdd_nominal=1.0,
    max_ipc=2.0,
    thermal=ThermalParams(t_ambient_c=28.0, r_th_c_per_w=30.0, tau_s=1.5),
    pdn=PDNParams(r_ohm=4e-3, l_h=15e-12, c_f=1.7e-7),
)

_XGENE2 = MicroArch(
    name="xgene2",
    isa="arm",
    frequency_hz=2.4e9,
    core_count=8,
    in_order=False,
    issue_width=4,
    window_size=48,
    ports={"int": 2, "fp": 2, "mem": 2, "br": 1},
    port_of={"alu": "int", "shift": "int", "mul": "int", "div": "int",
             "fadd": "fp", "fmul": "fp", "fdiv": "fp", "fma": "fp",
             "vadd": "fp", "vmul": "fp",
             "load": "mem", "load_pair": "mem",
             "store": "mem", "store_pair": "mem",
             "branch": "br", "nop": "int"},
    latency={"alu": 1, "shift": 1, "mul": 4, "div": 16,
             "fadd": 4, "fmul": 5, "fdiv": 16, "fma": 8,
             "vadd": 3, "vmul": 4,
             "load": 4, "load_pair": 5, "store": 1, "store_pair": 2,
             "branch": 1, "nop": 1},
    unpipelined=frozenset({"div", "fdiv"}),
    epi_pj={"alu": 55.0, "shift": 50.0, "mul": 165.0, "div": 1450.0,
            "fadd": 170.0, "fmul": 190.0, "fdiv": 1550.0, "fma": 270.0,
            "vadd": 200.0, "vmul": 215.0,
            "load": 260.0, "load_pair": 390.0,
            "store": 240.0, "store_pair": 350.0,
            "branch": 45.0, "nop": 10.0},
    base_cycle_pj=120.0,
    window_slot_pj=2.4,
    static_power_w=0.9,
    uncore_power_w=4.0,
    noc_epi_pj=340.0,
    vdd_nominal=0.95,
    max_ipc=4.0,
    thermal=ThermalParams(t_ambient_c=30.0, r_th_c_per_w=1.6, tau_s=2.2),
    pdn=PDNParams(r_ohm=1.5e-3, l_h=9e-12, c_f=2.8e-7),
)

_ATHLON_X4 = MicroArch(
    name="athlon_x4",
    isa="x86",
    frequency_hz=3.1e9,
    core_count=4,
    in_order=False,
    issue_width=3,
    window_size=42,
    ports={"int": 3, "fp": 2, "mem": 2, "br": 1},
    port_of={"alu": "int", "shift": "int", "mul": "int", "div": "int",
             "fadd": "fp", "fmul": "fp", "fdiv": "fp", "fma": "fp",
             "vadd": "fp", "vmul": "fp",
             "load": "mem", "store": "mem",
             "branch": "br", "nop": "int"},
    latency={"alu": 1, "shift": 1, "mul": 3, "div": 22,
             "fadd": 4, "fmul": 4, "fdiv": 20, "fma": 5,
             "vadd": 3, "vmul": 4,
             "load": 3, "store": 1, "branch": 1, "nop": 1},
    unpipelined=frozenset({"div", "fdiv"}),
    epi_pj={"alu": 420.0, "shift": 400.0, "mul": 900.0, "div": 2600.0,
            "fadd": 1500.0, "fmul": 1700.0, "fdiv": 3400.0, "fma": 2300.0,
            "vadd": 2100.0, "vmul": 2300.0,
            "load": 1300.0, "store": 1200.0,
            "branch": 350.0, "nop": 60.0},
    base_cycle_pj=800.0,
    window_slot_pj=9.0,
    static_power_w=4.5,
    uncore_power_w=9.0,
    vdd_nominal=1.35,
    max_ipc=3.0,
    thermal=ThermalParams(t_ambient_c=30.0, r_th_c_per_w=0.45, tau_s=2.5),
    # ~100 MHz first-order resonance, Q ≈ 4 — the knee the dI/dt GA hunts.
    pdn=PDNParams(r_ohm=1.8e-3, l_h=6e-12, c_f=4.22e-7),
)

_CORTEX_A57 = MicroArch(
    name="cortex_a57",
    isa="arm",
    frequency_hz=1.8e9,
    core_count=2,
    in_order=False,
    issue_width=3,
    window_size=44,
    ports={"int": 2, "fp": 2, "mem": 2, "br": 1},
    port_of={"alu": "int", "shift": "int", "mul": "int", "div": "int",
             "fadd": "fp", "fmul": "fp", "fdiv": "fp", "fma": "fp",
             "vadd": "fp", "vmul": "fp",
             "load": "mem", "load_pair": "mem",
             "store": "mem", "store_pair": "mem",
             "branch": "br", "nop": "int"},
    latency={"alu": 1, "shift": 1, "mul": 3, "div": 18,
             "fadd": 5, "fmul": 5, "fdiv": 17, "fma": 9,
             "vadd": 3, "vmul": 4,
             "load": 4, "load_pair": 5, "store": 1, "store_pair": 2,
             "branch": 1, "nop": 1},
    unpipelined=frozenset({"div", "fdiv"}),
    epi_pj={"alu": 45.0, "shift": 42.0, "mul": 110.0, "div": 330.0,
            "fadd": 150.0, "fmul": 175.0, "fdiv": 380.0, "fma": 260.0,
            "vadd": 195.0, "vmul": 215.0,
            "load": 150.0, "load_pair": 220.0,
            "store": 130.0, "store_pair": 190.0,
            "branch": 32.0, "nop": 9.0},
    base_cycle_pj=85.0,
    window_slot_pj=1.1,
    static_power_w=0.40,
    uncore_power_w=0.35,
    vdd_nominal=0.90,
    max_ipc=3.0,
    thermal=ThermalParams(t_ambient_c=28.0, r_th_c_per_w=12.0, tau_s=2.0),
    # The dual-core A57 cluster of the authors' power-integrity studies
    # (paper refs [11][12][22]) — its measured PDN had a pronounced
    # first-order resonance around 100 MHz; the preset places it there.
    pdn=PDNParams(r_ohm=2.5e-3, l_h=9e-12, c_f=2.8e-7),
)

PRESETS: Dict[str, MicroArch] = {
    arch.name: arch
    for arch in (_CORTEX_A15, _CORTEX_A7, _XGENE2, _ATHLON_X4,
                 _CORTEX_A57)
}


def microarch_for(name: str) -> MicroArch:
    """Look up a preset by name (``cortex_a15``, ``cortex_a7``,
    ``xgene2``, ``athlon_x4``)."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown microarchitecture {name!r}; "
            f"available: {sorted(PRESETS)}") from None


def preset_names() -> tuple:
    return tuple(sorted(PRESETS))
