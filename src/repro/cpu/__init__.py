"""CPU substrate: microarchitectures, pipeline, power, thermal, PDN,
cache hierarchy."""

from .cache import (AccessResult, Cache, CacheConfig, CacheStats,
                    MemoryHierarchy)

from .machine import ENVIRONMENTS, RunResult, SimulatedMachine
from .microarch import (MicroArch, PDNParams, PRESETS, ThermalParams,
                        microarch_for, preset_names)
from .pdn import PDNModel, VoltageTrace
from .pipeline import ExecutionTrace, PipelineSimulator
from .power import PowerModel, value_toggle_activity
from .target import SimulatedTarget
from .thermal import ThermalModel

__all__ = [
    "AccessResult", "Cache", "CacheConfig", "CacheStats",
    "MemoryHierarchy",
    "ENVIRONMENTS", "RunResult", "SimulatedMachine",
    "MicroArch", "PDNParams", "PRESETS", "ThermalParams",
    "microarch_for", "preset_names",
    "PDNModel", "VoltageTrace",
    "ExecutionTrace", "PipelineSimulator",
    "PowerModel", "value_toggle_activity",
    "SimulatedTarget",
    "ThermalModel",
]
