"""Energy and power model.

Power is modelled bottom-up from the execution trace:

``P = f · (Σ_issued EPI_eff + base_cycle + window·slot) + P_static``

* **EPI_eff** — each static loop slot's nominal energy-per-instruction
  (from the microarchitecture preset, keyed by latency group) scaled by
  a *data-toggle factor* derived from the operand values flowing through
  it.  The paper stresses that register initialisation "must be
  initialized judiciously" and uses checkerboard patterns (0xAAAA...)
  because they maximise bit switching; here a checkerboard value yields
  toggle ≈ 1.0 and an all-zeros value ≈ 0.0, scaling EPI over roughly a
  2× range.
* **base_cycle** — clock-tree and fetch energy burnt every live cycle.
* **window·slot** — per-occupied-window-slot energy, standing in for
  the issue-queue/dependency-tracking power the paper credits for the
  power virus's extra temperature over the IPC virus.
* **P_static** — leakage, scaled with the square of supply voltage.

Dynamic energy scales with ``(V/V_nom)²`` so V_MIN sweeps see slightly
lower currents at lower supply, as on real silicon.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..isa.model import InstrClass, Program
from .microarch import MicroArch
from .pipeline import ExecutionTrace

__all__ = ["value_toggle_activity", "PowerModel"]

#: Toggle activity assumed for values loaded from (checkerboard-
#: initialised) memory and for registers never written by init code.
DEFAULT_MEMORY_ACTIVITY = 0.9
DEFAULT_REGISTER_ACTIVITY = 0.35

#: EPI multiplier range driven by toggle activity: 0.55× (static data)
#: up to 1.1× (checkerboard).
_EPI_FLOOR = 0.55
_EPI_SPAN = 0.55


def value_toggle_activity(value: int) -> float:
    """Bit-switching score of a 64-bit value in [0, 1].

    Counts transitions between adjacent bits: a checkerboard pattern
    (``0xAAAA...`` or ``0x5555...``) scores 1.0, a constant word scores
    0.0, a random word ≈ 0.5.
    """
    word = value & (2**64 - 1)
    transitions = bin((word ^ (word >> 1)) & (2**63 - 1)).count("1")
    # word ^ (word >> 1) has a set bit for each adjacent-bit transition;
    # 63 adjacent pairs exist in a 64-bit word.
    return min(1.0, transitions / 63.0)


class PowerModel:
    """Derives energy traces and power figures from execution traces."""

    def __init__(self, arch: MicroArch,
                 memory_activity: float = DEFAULT_MEMORY_ACTIVITY,
                 default_activity: float = DEFAULT_REGISTER_ACTIVITY) -> None:
        self.arch = arch
        self.memory_activity = memory_activity
        self.default_activity = default_activity

    # -- per-slot effective energies ------------------------------------------

    def slot_activities(self, program: Program,
                        propagation_passes: int = 3) -> List[float]:
        """Converged data-toggle activity per static loop slot.

        Register activities start from the init section's immediate
        values and propagate through the loop dataflow for a few passes
        (destination activity = mean of source activities; loads import
        the memory pattern's activity).
        """
        activity: Dict[str, float] = {}
        for reg, value in program.register_values.items():
            activity[reg] = value_toggle_activity(value)

        slot_activity = [self.default_activity] * len(program.loop)
        for _ in range(max(1, propagation_passes)):
            for index, instr in enumerate(program.loop):
                sources = [activity.get(reg, self.default_activity)
                           for reg in instr.reads if reg != "flags"]
                if instr.immediate is not None:
                    sources.append(value_toggle_activity(instr.immediate))
                if instr.iclass is InstrClass.MEM_LOAD:
                    op_activity = self.memory_activity
                elif sources:
                    op_activity = sum(sources) / len(sources)
                else:
                    op_activity = self.default_activity
                slot_activity[index] = op_activity
                for reg in instr.writes:
                    if reg != "flags":
                        if instr.iclass is InstrClass.MEM_LOAD:
                            activity[reg] = self.memory_activity
                        else:
                            activity[reg] = op_activity
        return slot_activity

    def slot_energies_pj(self, program: Program) -> np.ndarray:
        """Effective EPI (pJ) per static loop slot."""
        activities = self.slot_activities(program)
        energies = np.empty(len(program.loop))
        for index, instr in enumerate(program.loop):
            group = instr.group or instr.iclass.value
            nominal = self.arch.epi_of(group, instr.iclass)
            factor = _EPI_FLOOR + _EPI_SPAN * activities[index]
            energies[index] = nominal * factor
        return energies

    # -- traces ----------------------------------------------------------------

    def energy_trace_pj(self, program: Program,
                        trace: ExecutionTrace) -> np.ndarray:
        """Dynamic energy per cycle (pJ) over the executed window.

        Vectorised over the trace's compact form: energy is computed
        for the simulated cycles only and tiled out to ``trace.cycles``
        with :meth:`ExecutionTrace.expand`.  The accumulation order per
        cycle (base, then window occupancy, then each issued slot in
        issue order) matches the historical per-cycle Python loop
        exactly, so the floating-point result is bit-identical.
        """
        slot_energy = self.slot_energies_pj(program)
        arch = self.arch
        per_sim = arch.base_cycle_pj + arch.window_slot_pj \
            * trace.occupancy_counts.astype(np.float64)
        counts = np.diff(trace.issue_offsets)
        starts = trace.issue_offsets[:-1]
        issue_energy = slot_energy[trace.issue_slots]
        for position in range(int(counts.max()) if len(counts) else 0):
            mask = counts > position
            per_sim[mask] += issue_energy[starts[mask] + position]
        per_cycle = trace.expand(per_sim)
        if trace.extra_energy_per_cycle is not None:
            per_cycle = per_cycle + np.asarray(trace.extra_energy_per_cycle)
        return per_cycle

    def energy_traces_pj(self, programs: "List[Program]",
                         traces: "List[ExecutionTrace]"
                         ) -> "List[np.ndarray]":
        """Per-cycle dynamic energy for a whole population at once.

        Bit-identical to calling :meth:`energy_trace_pj` per pair: when
        every trace simulated the same number of cycles (the common
        case for a batched generation) the base + window-occupancy term
        and the per-issue-position accumulation run as single
        ``(population, cycles)`` array operations — each element sees
        the same IEEE operations in the same order as the per-row path.
        Ragged batches (mixed steady-state windows, cache effects) fall
        back to the per-row computation.
        """
        if len(programs) != len(traces):
            raise ValueError("programs/traces length mismatch")
        population = len(programs)
        if population == 0:
            return []
        sim_lengths = {len(t.occupancy_counts) for t in traces}
        uniform = len(sim_lengths) == 1 and all(
            t.extra_energy_per_cycle is None for t in traces)
        if not uniform:
            return [self.energy_trace_pj(program, trace)
                    for program, trace in zip(programs, traces)]
        n_sim = sim_lengths.pop()
        arch = self.arch

        occ = np.empty((population, n_sim), dtype=np.float64)
        for row, trace in enumerate(traces):
            occ[row] = trace.occupancy_counts
        per_sim = arch.base_cycle_pj + arch.window_slot_pj * occ

        # Flatten the ragged per-row issue lists; index the per-program
        # slot energies through per-row offsets into one flat table.
        slot_energy = [self.slot_energies_pj(p) for p in programs]
        slot_base = np.zeros(population, dtype=np.int64)
        for row in range(1, population):
            slot_base[row] = slot_base[row - 1] + len(slot_energy[row - 1])
        energy_flat = np.concatenate(slot_energy) if slot_energy else \
            np.empty(0)
        issue_energy = [
            energy_flat[trace.issue_slots + slot_base[row]]
            if len(trace.issue_slots) else np.empty(0)
            for row, trace in enumerate(traces)]
        issue_base = np.zeros(population, dtype=np.int64)
        for row in range(1, population):
            issue_base[row] = issue_base[row - 1] + len(issue_energy[row - 1])
        issue_flat = np.concatenate(issue_energy) if issue_energy else \
            np.empty(0)

        counts = np.empty((population, n_sim), dtype=np.int64)
        starts = np.empty((population, n_sim), dtype=np.int64)
        for row, trace in enumerate(traces):
            counts[row] = np.diff(trace.issue_offsets)
            starts[row] = trace.issue_offsets[:-1] + issue_base[row]
        max_count = int(counts.max()) if counts.size else 0
        for position in range(max_count):
            mask = counts > position
            per_sim[mask] += issue_flat[starts[mask] + position]

        return [trace.expand(per_sim[row])
                for row, trace in enumerate(traces)]

    def current_trace_a(self, program: Program, trace: ExecutionTrace,
                        vdd: float | None = None) -> np.ndarray:
        """Per-cycle die current draw (amps) for the PDN model."""
        vdd = vdd if vdd is not None else self.arch.vdd_nominal
        scale = (vdd / self.arch.vdd_nominal) ** 2
        energy_pj = self.energy_trace_pj(program, trace) * scale
        dynamic_power_w = energy_pj * 1e-12 * self.arch.frequency_hz
        total_power_w = dynamic_power_w + self.static_power_w(vdd)
        return total_power_w / vdd

    # -- aggregate figures --------------------------------------------------------

    def static_power_w(self, vdd: float | None = None) -> float:
        vdd = vdd if vdd is not None else self.arch.vdd_nominal
        return self.arch.static_power_w * (vdd / self.arch.vdd_nominal) ** 2

    def core_power_w(self, program: Program, trace: ExecutionTrace,
                     vdd: float | None = None,
                     warmup_fraction: float = 0.2) -> float:
        """Average single-core power over the post-warm-up window."""
        vdd = vdd if vdd is not None else self.arch.vdd_nominal
        scale = (vdd / self.arch.vdd_nominal) ** 2
        energy = self.energy_trace_pj(program, trace) * scale
        start = int(len(energy) * warmup_fraction)
        steady = energy[start:] if len(energy) > start else energy
        mean_pj = float(np.mean(steady)) if len(steady) else 0.0
        return mean_pj * 1e-12 * self.arch.frequency_hz \
            + self.static_power_w(vdd)

    def chip_power_w(self, core_power_w: float,
                     active_cores: int | None = None) -> float:
        """Whole-chip power: independent virus instances per core plus
        uncore — the paper runs one instance per core with no shared
        resources, so per-core power simply scales."""
        cores = active_cores if active_cores is not None \
            else self.arch.core_count
        cores = max(0, min(cores, self.arch.core_count))
        return core_power_w * cores + self.arch.uncore_power_w
