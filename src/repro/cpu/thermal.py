"""First-order RC thermal model.

The paper's X-Gene2 experiments read the chip temperature through the
i2c interface; the thermal substrate here produces the value such a
sensor would report.  A single junction-to-ambient RC stage is enough
for the paper's use (steady, whole-chip workloads measured after a few
seconds):

``T(t) = T_amb + R_th · P · (1 − e^(−t/τ))``

The sensor quantises to the step of a typical on-die thermal diode
readout (0.125 °C, as in LM75-class i2c sensors), which also gives the GA a realistic plateaued fitness
landscape instead of an infinitely precise one.
"""

from __future__ import annotations

import math

from .microarch import ThermalParams

__all__ = ["ThermalModel"]


class ThermalModel:
    """Chip temperature from chip power."""

    def __init__(self, params: ThermalParams,
                 sensor_step_c: float = 0.125) -> None:
        if params.r_th_c_per_w <= 0 or params.tau_s <= 0:
            raise ValueError("thermal resistance and tau must be positive")
        self.params = params
        self.sensor_step_c = sensor_step_c

    def temperature_c(self, power_w: float, elapsed_s: float) -> float:
        """Exact model temperature after ``elapsed_s`` at ``power_w``."""
        if elapsed_s < 0:
            raise ValueError("elapsed time cannot be negative")
        p = self.params
        rise = p.r_th_c_per_w * power_w
        return p.t_ambient_c + rise * (1.0 - math.exp(-elapsed_s / p.tau_s))

    def steady_state_c(self, power_w: float) -> float:
        return self.params.steady_state_c(power_w)

    def sensor_reading_c(self, power_w: float, elapsed_s: float) -> float:
        """Temperature as the quantised i2c sensor would report it."""
        exact = self.temperature_c(power_w, elapsed_s)
        step = self.sensor_step_c
        if step <= 0:
            return exact
        return round(exact / step) * step

    def idle_temperature_c(self, idle_power_w: float) -> float:
        """Steady-state temperature under idle power — the ``I_T`` term
        of the paper's Equation 1."""
        return self.steady_state_c(idle_power_w)
