"""V_MIN characterisation (paper Section VI, Figure 9).

"To characterize the V_MIN of a workload we run the workload multiple
times and each time we lower the operating voltage in steps of 12.5mV.
We keep the CPU frequency stable at the nominal value..."  A workload
passes at a supply setting when the die voltage never dips below the
critical timing voltage during the run; V_MIN is the lowest passing
setting.  A workload with a *higher* V_MIN is the better stability
test — it exposes the margin first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.errors import SimulationError
from ..cpu.machine import SimulatedMachine
from ..isa.model import Program

__all__ = ["VMIN_STEP_V", "VminResult", "characterize_vmin", "vmin_table"]

#: The paper's sweep step.
VMIN_STEP_V = 0.0125


@dataclass
class VminResult:
    """Outcome of one workload's V_MIN sweep."""

    workload: str
    vmin_v: float
    nominal_v: float
    #: (supply setting, passed) pairs in sweep order (downwards).
    sweep: List[Tuple[float, bool]] = field(default_factory=list)

    @property
    def guardband_v(self) -> float:
        """Margin between nominal supply and V_MIN."""
        return self.nominal_v - self.vmin_v


def characterize_vmin(machine: SimulatedMachine, program: Program,
                      cores: Optional[int] = None,
                      step_v: float = VMIN_STEP_V,
                      floor_v: Optional[float] = None,
                      name: Optional[str] = None) -> VminResult:
    """Sweep the supply down from nominal until the workload crashes.

    Returns the lowest passing setting.  ``floor_v`` bounds the sweep
    (default: the critical voltage itself — below it nothing passes).
    """
    if step_v <= 0:
        raise SimulationError("sweep step must be positive")
    nominal = machine.arch.vdd_nominal
    floor = floor_v if floor_v is not None \
        else machine.critical_voltage_v() - 2 * step_v
    cores = cores if cores is not None else machine.arch.core_count

    sweep: List[Tuple[float, bool]] = []
    last_passing: Optional[float] = None
    supply = nominal
    while supply > floor:
        result = machine.run(program, cores=cores, supply_v=supply,
                             power_sample_count=1)
        passed = not result.crashed
        sweep.append((supply, passed))
        if not passed:
            break
        last_passing = supply
        supply = round(supply - step_v, 6)

    if last_passing is None:
        # Crashes even at nominal: V_MIN is above the nominal supply;
        # report nominal + one step to preserve ordering.
        last_passing = nominal + step_v
    return VminResult(workload=name or program.name, vmin_v=last_passing,
                      nominal_v=nominal, sweep=sweep)


def vmin_table(results: List[VminResult]) -> str:
    """Render a Figure 9 style listing, highest V_MIN first."""
    ordered = sorted(results, key=lambda r: r.vmin_v, reverse=True)
    width = max(len(r.workload) for r in ordered)
    lines = [f"{'workload'.ljust(width)}  V_MIN (V)  guardband (mV)"]
    for r in ordered:
        lines.append(f"{r.workload.ljust(width)}  {r.vmin_v:9.4f}  "
                     f"{r.guardband_v * 1000:14.1f}")
    return "\n".join(lines)
