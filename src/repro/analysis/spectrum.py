"""Current-spectrum analysis for dI/dt viruses (paper Sections II/VI).

The paper's explanation for dI/dt viruses is spectral: "Periodic
current surges that match the CPU's PDN 1st order resonance-frequency
maximize the CPU voltage droops and overshoots."  This module makes
that mechanism inspectable: FFT the per-cycle current trace of a run
and report where its AC energy sits relative to the PDN resonance.

A good dI/dt virus concentrates current energy near ``f_res``; a
power virus (flat current) has almost no AC content at all.  The
spectrum benchmark verifies this on the evolved viruses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.errors import SimulationError

__all__ = ["CurrentSpectrum", "current_spectrum", "resonance_band_ratio"]

#: Equivalent noise bandwidth of the Hann window in bins: the window
#: spreads a tone's energy over ~1.5 bins, so root-sum-square band
#: amplitudes must be divided by sqrt(1.5) to recover the tone
#: amplitude.
_HANN_ENBW = 1.5


@dataclass
class CurrentSpectrum:
    """One-sided amplitude spectrum of a current trace."""

    frequencies_hz: np.ndarray
    amplitudes_a: np.ndarray
    dc_a: float
    sample_rate_hz: float

    def dominant_frequency_hz(self) -> float:
        """Frequency of the largest AC component."""
        if len(self.amplitudes_a) == 0:
            return 0.0
        return float(self.frequencies_hz[int(np.argmax(self.amplitudes_a))])

    def amplitude_near(self, frequency_hz: float,
                       bandwidth_hz: float) -> float:
        """RMS-combined amplitude within ±bandwidth/2 of a frequency."""
        low = frequency_hz - bandwidth_hz / 2.0
        high = frequency_hz + bandwidth_hz / 2.0
        mask = (self.frequencies_hz >= low) & (self.frequencies_hz <= high)
        if not np.any(mask):
            return 0.0
        return float(np.sqrt(np.sum(self.amplitudes_a[mask] ** 2)
                             / _HANN_ENBW))

    def total_ac_amplitude(self) -> float:
        return float(np.sqrt(np.sum(self.amplitudes_a ** 2)
                             / _HANN_ENBW))


def current_spectrum(current_a: np.ndarray,
                     sample_rate_hz: float,
                     warmup_fraction: float = 0.25) -> CurrentSpectrum:
    """One-sided FFT of a per-cycle current trace.

    The warm-up prefix (pipeline fill, cache warming) is discarded, the
    mean (DC) removed and a Hann window applied so loop harmonics don't
    leak across the whole spectrum.
    """
    current_a = np.asarray(current_a, dtype=float)
    if current_a.ndim != 1 or len(current_a) < 8:
        raise SimulationError(
            "current trace must be a 1-D array of at least 8 samples")
    if sample_rate_hz <= 0:
        raise SimulationError("sample rate must be positive")

    start = int(len(current_a) * warmup_fraction)
    steady = current_a[start:] if len(current_a) - start >= 8 else current_a
    dc = float(np.mean(steady))
    ac = steady - dc
    window = np.hanning(len(ac))
    # Amplitude-correct for the Hann window's coherent gain (0.5).
    spectrum = np.fft.rfft(ac * window)
    scale = 2.0 / (len(ac) * 0.5)
    amplitudes = np.abs(spectrum) * scale
    frequencies = np.fft.rfftfreq(len(ac), d=1.0 / sample_rate_hz)
    # Drop the DC bin; it is reported separately.
    return CurrentSpectrum(frequencies_hz=frequencies[1:],
                           amplitudes_a=amplitudes[1:],
                           dc_a=dc,
                           sample_rate_hz=sample_rate_hz)


def resonance_band_ratio(spectrum: CurrentSpectrum,
                         resonance_hz: float,
                         relative_bandwidth: float = 0.25
                         ) -> Tuple[float, float]:
    """(amplitude near resonance, fraction of total AC energy there).

    ``relative_bandwidth`` is the band's width as a fraction of the
    resonance frequency (default ±12.5%).
    """
    if resonance_hz <= 0:
        raise SimulationError("resonance frequency must be positive")
    band = spectrum.amplitude_near(resonance_hz,
                                   resonance_hz * relative_bandwidth)
    total = spectrum.total_ac_amplitude()
    fraction = (band / total) ** 2 if total > 0 else 0.0
    return band, fraction
