"""Genealogy of evolved individuals (paper Section III.D).

The population binaries carry "the source code, the id, the parent ids
and the measurement values of each individual", which makes ancestry
reconstructable after the fact: where did the winning virus's genes
come from, when did its line overtake the population, how much of its
final loop survives from each ancestor?

This module answers those questions over a recorded run directory (or
a list of loaded populations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.errors import ConfigError
from ..core.individual import Individual
from ..core.population import Population
from .postprocess import load_run

__all__ = ["LineageStep", "Lineage", "trace_lineage", "lineage_of_best"]


@dataclass
class LineageStep:
    """One ancestor on the best individual's primary line."""

    generation: int
    uid: int
    fitness: float
    parent_ids: tuple
    #: Instructions shared (same opcode+operands, position-free
    #: multiset intersection) with the final individual.
    genes_in_common: int


@dataclass
class Lineage:
    """The primary ancestry chain of one individual, oldest first."""

    target_uid: int
    steps: List[LineageStep] = field(default_factory=list)

    @property
    def depth(self) -> int:
        return len(self.steps)

    def fitness_series(self) -> List[float]:
        return [step.fitness for step in self.steps]

    def render(self) -> str:
        lines = [f"lineage of uid {self.target_uid} "
                 f"({self.depth} generations deep):"]
        for step in self.steps:
            lines.append(
                f"  gen {step.generation:3d}  uid {step.uid:5d}  "
                f"fitness {step.fitness:10.4f}  "
                f"shared genes {step.genes_in_common}")
        return "\n".join(lines)


def _shared_genes(a: Individual, b: Individual) -> int:
    """Multiset intersection of (opcode, operand values) genes."""
    pool: Dict[tuple, int] = {}
    for instr in a.instructions:
        key = (instr.name, instr.values)
        pool[key] = pool.get(key, 0) + 1
    shared = 0
    for instr in b.instructions:
        key = (instr.name, instr.values)
        if pool.get(key, 0) > 0:
            pool[key] -= 1
            shared += 1
    return shared


def trace_lineage(populations: List[Population],
                  individual: Individual) -> Lineage:
    """Follow the *fitter parent* chain of ``individual`` back to the
    seed population.

    Crossover gives two parents; the chain follows the fitter one
    (ties: the first listed), which is the conventional "primary
    parent" reading of GA genealogies.
    """
    by_uid: Dict[int, Individual] = {}
    generation_of: Dict[int, int] = {}
    for population in populations:
        for member in population:
            by_uid[member.uid] = member
            generation_of[member.uid] = population.number

    if individual.uid not in by_uid:
        raise ConfigError(
            f"individual uid {individual.uid} not found in the recorded "
            "populations")

    chain: List[Individual] = []
    current: Optional[Individual] = individual
    seen = set()
    while current is not None and current.uid not in seen:
        seen.add(current.uid)
        chain.append(current)
        parents = [by_uid[pid] for pid in current.parent_ids
                   if pid in by_uid]
        if not parents:
            current = None
        else:
            current = max(parents,
                          key=lambda p: p.fitness
                          if p.fitness is not None else float("-inf"))

    chain.reverse()   # oldest first
    lineage = Lineage(target_uid=individual.uid)
    for ancestor in chain:
        lineage.steps.append(LineageStep(
            generation=generation_of[ancestor.uid],
            uid=ancestor.uid,
            fitness=ancestor.fitness or 0.0,
            parent_ids=ancestor.parent_ids,
            genes_in_common=_shared_genes(ancestor, individual)))
    return lineage


def lineage_of_best(results_dir: Union[str, Path]) -> Lineage:
    """Trace the overall-best individual of a recorded run."""
    populations = load_run(results_dir)
    best: Optional[Individual] = None
    for population in populations:
        candidate = population.fittest()
        if best is None or (candidate.fitness or 0) > (best.fitness or 0):
            best = candidate
    assert best is not None   # load_run guarantees >= 1 population
    return trace_lineage(populations, best)
