"""Frequency/voltage shmoo characterisation.

Generalises the paper's Figure 9 methodology (V_MIN at the fixed
nominal 3.1 GHz) across clock frequencies — the characterisation that
guardband studies built on GeST-style viruses perform (e.g. the paper's
reference [25], "Measuring and Exploiting Guardbands of Server-Grade
ARMv8 CPU Cores").  For each frequency setting the supply is swept
downward in the paper's 12.5 mV steps until the workload crashes; the
result is the pass/fail boundary V_MIN(f).

Physically interesting on this substrate: a dI/dt virus is *tuned* —
its loop period in cycles matches the PDN resonance at the nominal
clock, so re-clocking detunes it and its V_MIN advantage over plain
power hogs shrinks away from the sweet spot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.errors import SimulationError
from ..cpu.machine import SimulatedMachine
from .vmin import VMIN_STEP_V, VminResult, characterize_vmin

__all__ = ["ShmooResult", "frequency_shmoo", "shmoo_table"]

#: Default frequency grid as fractions of the nominal clock.
DEFAULT_FREQUENCY_FRACTIONS = (0.85, 1.0, 1.15)


@dataclass
class ShmooResult:
    """V_MIN as a function of clock frequency for one workload."""

    workload: str
    nominal_frequency_hz: float
    #: frequency (Hz) -> the full V_MIN sweep at that clock
    sweeps: Dict[float, VminResult] = field(default_factory=dict)

    @property
    def frequencies_hz(self) -> List[float]:
        return sorted(self.sweeps)

    def vmin_at(self, frequency_hz: float) -> float:
        return self.sweeps[frequency_hz].vmin_v

    def vmin_curve(self) -> List[tuple]:
        return [(f, self.sweeps[f].vmin_v) for f in self.frequencies_hz]

    def is_monotonic_in_frequency(self) -> bool:
        """Higher clock should never need *less* voltage."""
        curve = [v for _, v in self.vmin_curve()]
        return all(b >= a - 1e-9 for a, b in zip(curve, curve[1:]))


def frequency_shmoo(machine: SimulatedMachine, source: str,
                    name: str,
                    frequency_fractions: Sequence[float]
                    = DEFAULT_FREQUENCY_FRACTIONS,
                    cores: Optional[int] = None,
                    step_v: float = VMIN_STEP_V) -> ShmooResult:
    """Characterise V_MIN over a grid of clock frequencies.

    ``source`` is compiled per frequency point on the re-clocked
    machine, exactly as the binary would be re-run after an
    overclock/underclock on hardware.
    """
    if not frequency_fractions:
        raise SimulationError("need at least one frequency point")
    if any(fraction <= 0 for fraction in frequency_fractions):
        raise SimulationError("frequency fractions must be positive")
    cores = cores if cores is not None else machine.arch.core_count

    result = ShmooResult(workload=name,
                         nominal_frequency_hz=machine.nominal_frequency_hz)
    for fraction in frequency_fractions:
        frequency = machine.nominal_frequency_hz * fraction
        clocked = machine.at_frequency(frequency)
        program = clocked.compile(source, name=name)
        result.sweeps[frequency] = characterize_vmin(
            clocked, program, cores=cores, step_v=step_v, name=name)
    return result


def shmoo_table(results: List[ShmooResult]) -> str:
    """Render several workloads' V_MIN(f) curves side by side."""
    if not results:
        raise SimulationError("no shmoo results to render")
    frequencies = results[0].frequencies_hz
    width = max(len(r.workload) for r in results)
    header = "f (GHz)".ljust(10) + "  ".join(
        r.workload.rjust(max(width, 9)) for r in results)
    lines = [header]
    for frequency in frequencies:
        cells = [f"{frequency / 1e9:.2f}".ljust(10)]
        for r in results:
            cells.append(f"{r.vmin_at(frequency):.4f} V".rjust(
                max(width, 9)))
        lines.append("  ".join(cells))
    return "\n".join(lines)
