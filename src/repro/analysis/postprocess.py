"""Post-processing of recorded GA runs (paper Section III.D).

"As part of the framework release, there is a Python script that reads
the populations in binary format and extracts statistics such as the
fitness value of the fittest individual per generation and instruction
mix breakdown of fittest individual per generation."  This module is
that script's API: point it at a results directory written by
:class:`~repro.core.output.OutputRecorder`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from ..core.errors import ConfigError
from ..core.individual import Individual
from ..core.output import read_stats
from ..core.population import Population, load_population
from .instruction_mix import mix_of_individual

__all__ = ["RunStatistics", "load_run", "run_statistics"]


@dataclass
class RunStatistics:
    """Aggregate statistics for a recorded run."""

    generations: int
    best_fitness_per_generation: List[float] = field(default_factory=list)
    mean_fitness_per_generation: List[float] = field(default_factory=list)
    best_mix_per_generation: List[Dict[str, int]] = field(
        default_factory=list)
    overall_best_fitness: float = 0.0
    overall_best_generation: int = -1
    #: The run's ``stats.jsonl`` records, when present — read
    #: tolerantly: unknown keys (newer schema versions) pass through
    #: untouched and unparseable lines are skipped, so post-processing
    #: keeps working across schema evolution and torn writes.
    stats_records: List[dict] = field(default_factory=list)

    def improvement(self) -> float:
        """Final best over initial best (1.0 = no improvement)."""
        series = self.best_fitness_per_generation
        if not series or series[0] == 0:
            return 1.0
        return series[-1] / series[0]


def load_run(results_dir: Union[str, Path]) -> List[Population]:
    """Load every generation binary of a recorded run, in order."""
    populations_dir = Path(results_dir) / "populations"
    if not populations_dir.is_dir():
        raise ConfigError(
            f"{results_dir} does not look like a recorded run "
            "(no populations/ directory)")
    files = sorted(populations_dir.glob("population_*.bin"),
                   key=lambda p: int(p.stem.split("_")[1]))
    if not files:
        raise ConfigError(f"no population binaries under {populations_dir}")
    return [load_population(path) for path in files]


def run_statistics(results_dir: Union[str, Path]) -> RunStatistics:
    """The paper's released post-processing: per-generation fittest
    fitness and fittest-individual instruction mix."""
    populations = load_run(results_dir)
    stats = RunStatistics(generations=len(populations))
    stats_path = Path(results_dir) / "stats.jsonl"
    if stats_path.exists():
        stats.stats_records = list(read_stats(stats_path))
    for population in populations:
        best: Individual = population.fittest()
        stats.best_fitness_per_generation.append(best.fitness or 0.0)
        stats.mean_fitness_per_generation.append(population.mean_fitness())
        stats.best_mix_per_generation.append(mix_of_individual(best))
        if (best.fitness or 0.0) >= stats.overall_best_fitness:
            stats.overall_best_fitness = best.fitness or 0.0
            stats.overall_best_generation = population.number
    return stats
