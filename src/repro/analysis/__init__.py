"""Analysis: instruction mixes, convergence, V_MIN, reports.

The static features derived by :mod:`repro.staticcheck.dataflow`
(dependency-chain depth, mix vector, footprint bounds) are re-exported
here: they are analysis inputs — distance metrics, fitness predictors —
as much as lint artefacts.
"""

from ..staticcheck.dataflow import (DataflowReport, StaticProfile,
                                    analyze_program)
from .convergence import (area_under_curve, best_fitness_series,
                          final_improvement, generations_to_exceed,
                          is_monotonic)
from .instruction_mix import (TABLE_CATEGORIES, breakdown_table,
                              dominant_category, mix_of_individual,
                              mix_of_program)
from .diversity import (DiversityStats, diversity_series,
                        population_diversity)
from .lineage import Lineage, LineageStep, lineage_of_best, trace_lineage
from .postprocess import RunStatistics, load_run, run_statistics
from .related_work import (FrameworkEntry, RELATED_WORK,
                           related_work_table)
from .reports import bar_chart, figure_rows, normalize
from .shmoo import ShmooResult, frequency_shmoo, shmoo_table
from .spectrum import (CurrentSpectrum, current_spectrum,
                       resonance_band_ratio)
from .vmin import VMIN_STEP_V, VminResult, characterize_vmin, vmin_table

__all__ = [
    "DataflowReport", "StaticProfile", "analyze_program",
    "area_under_curve", "best_fitness_series", "final_improvement",
    "generations_to_exceed", "is_monotonic",
    "TABLE_CATEGORIES", "breakdown_table", "dominant_category",
    "mix_of_individual", "mix_of_program",
    "DiversityStats", "diversity_series", "population_diversity",
    "Lineage", "LineageStep", "lineage_of_best", "trace_lineage",
    "RunStatistics", "load_run", "run_statistics",
    "FrameworkEntry", "RELATED_WORK", "related_work_table",
    "bar_chart", "figure_rows", "normalize",
    "ShmooResult", "frequency_shmoo", "shmoo_table",
    "CurrentSpectrum", "current_spectrum", "resonance_band_ratio",
    "VMIN_STEP_V", "VminResult", "characterize_vmin", "vmin_table",
]
