"""Instruction-mix breakdowns (paper Tables III and IV).

The paper characterises each virus by its loop-body instruction counts
in five categories: short-latency integer, long-latency integer,
float/SIMD (combined), memory and branch.  This module classifies
individuals (GA genomes, via their declared instruction types) and
assembled programs (via decoded instruction classes) into those
categories and renders the tables.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from ..core.individual import Individual
from ..isa.model import Program

__all__ = ["TABLE_CATEGORIES", "mix_of_individual", "mix_of_program",
           "breakdown_table", "dominant_category"]

#: Column order of the paper's tables.
TABLE_CATEGORIES = ("ShortInt", "LongInt", "Float/SIMD", "Mem", "Branch")

#: GA instruction-type tag → table category.
_ITYPE_TO_CATEGORY = {
    "int_short": "ShortInt",
    "int_long": "LongInt",
    "float": "Float/SIMD",
    "simd": "Float/SIMD",
    "mem": "Mem",
    "branch": "Branch",
    "nop": "Nop",
}


def _empty_row() -> Dict[str, int]:
    row = {category: 0 for category in TABLE_CATEGORIES}
    row["Nop"] = 0
    return row


def mix_of_individual(individual: Individual) -> Dict[str, int]:
    """Classify a GA individual's loop by its instruction-type tags."""
    row = _empty_row()
    for instr in individual.instructions:
        category = _ITYPE_TO_CATEGORY.get(instr.itype)
        if category is None:
            # User-defined types outside the canonical set are counted
            # under their own name so nothing silently disappears.
            row[instr.itype] = row.get(instr.itype, 0) + 1
        else:
            row[category] += 1
    return row


def mix_of_program(program: Program) -> Dict[str, int]:
    """Classify an assembled program's loop by decoded classes."""
    row = _empty_row()
    for category, count in program.table_breakdown().items():
        row[category] = row.get(category, 0) + count
    return row


def dominant_category(mix: Mapping[str, int]) -> str:
    """The category with the highest count (ties: table column order)."""
    ordered = list(TABLE_CATEGORIES) + [k for k in mix
                                        if k not in TABLE_CATEGORIES]
    best = ordered[0]
    for category in ordered:
        if mix.get(category, 0) > mix.get(best, 0):
            best = category
    return best


def breakdown_table(rows: Sequence[Tuple[str, Mapping[str, int]]],
                    extra_columns: Sequence[Tuple[str, Mapping[str, object]]]
                    = ()) -> str:
    """Render a Table III/IV style ASCII table.

    ``rows`` are (virus name, mix) pairs; ``extra_columns`` optionally
    append columns like Relative IPC or # of Unique Instructions, each
    given as (column title, {virus name: value}).
    """
    headers = ["GA virus", *TABLE_CATEGORIES, "Total"]
    headers += [title for title, _ in extra_columns]
    table_rows: List[List[str]] = []
    for name, mix in rows:
        total = sum(mix.get(c, 0) for c in TABLE_CATEGORIES) \
            + mix.get("Nop", 0)
        cells = [name]
        cells += [str(mix.get(c, 0)) for c in TABLE_CATEGORIES]
        cells.append(str(total))
        for _, values in extra_columns:
            value = values.get(name, "")
            cells.append(f"{value:.2f}" if isinstance(value, float)
                         else str(value))
        table_rows.append(cells)

    widths = [max(len(headers[i]), *(len(r[i]) for r in table_rows))
              for i in range(len(headers))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in table_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
