"""Convergence analysis of GA runs (paper Sections III.A and IV).

The paper reports that GeST "produces stress-tests that exceed
significantly conventional workloads after 70-100 generations" and that
preserving instruction order (one-point crossover) and low mutation
rates accelerate convergence.  These helpers extract the series and
summary statistics the convergence and ablation benchmarks assert on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.engine import RunHistory

__all__ = ["best_fitness_series", "generations_to_exceed",
           "final_improvement", "area_under_curve", "is_monotonic"]


def best_fitness_series(history: RunHistory) -> List[float]:
    """Best fitness per generation (elitism makes this non-decreasing
    up to measurement noise)."""
    return history.best_fitness_series()


def generations_to_exceed(history: RunHistory,
                          threshold: float) -> Optional[int]:
    """First generation whose best fitness exceeds ``threshold``
    (e.g. the best conventional workload's score); ``None`` if never."""
    for stats in history.generations:
        if stats.best_fitness > threshold:
            return stats.number
    return None


def final_improvement(history: RunHistory) -> float:
    """Relative improvement of the final best over the initial random
    population's best — how much the search actually learned."""
    series = best_fitness_series(history)
    if not series:
        return 0.0
    first = series[0]
    if first == 0:
        return float("inf") if series[-1] > 0 else 0.0
    return (series[-1] - first) / abs(first)


def area_under_curve(series: Sequence[float]) -> float:
    """Sum of per-generation best fitness — a convergence-speed proxy
    used to compare crossover operators (higher = climbed earlier)."""
    return float(sum(series))


def is_monotonic(series: Sequence[float], tolerance: float = 0.0) -> bool:
    """True when the series never drops by more than ``tolerance``.

    With elitism and noise-free measurement the best-fitness series is
    exactly monotonic; with measurement noise small dips up to the
    noise magnitude are expected.
    """
    for previous, current in zip(series, series[1:]):
        if current < previous - tolerance:
            return False
    return True
