"""Table V: qualitative comparison of GA stress-test frameworks.

The paper's related-work table is static scholarship rather than an
experiment; it is reproduced here as data (with a renderer) so the
Table V benchmark can regenerate it verbatim and tests can assert on
the claims the paper derives from it (e.g. GeST is the only
instruction-level, real-hardware, multi-metric framework in the set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["FrameworkEntry", "RELATED_WORK", "related_work_table"]


@dataclass(frozen=True)
class FrameworkEntry:
    """One row of Table V."""

    framework: str
    optimization_type: str          # Instruction-Level / Abstract-Workload
    optimization_language: str
    evaluated_on: str               # Real-Hardware / Simulator / both
    metrics_evaluated: Tuple[str, ...]
    component_stressed: str
    references: str


RELATED_WORK: List[FrameworkEntry] = [
    FrameworkEntry("AUDIT", "Instruction-Level", "x86 ISA",
                   "Real-Hardware / Simulator", ("dI/dt",), "CPU",
                   "[1][3]"),
    FrameworkEntry("MAMPO", "Abstract-Workload", "SPARC ISA",
                   "Simulator", ("power",), "CPU+DRAM", "[7],[6]"),
    FrameworkEntry("Joshi et al.", "Abstract-Workload", "Alpha ISA",
                   "Simulator", ("power",), "CPU", "[4]"),
    FrameworkEntry("Powermark", "Abstract-Workload", "C",
                   "Real-Hardware", ("power",), "Full-System", "[5]"),
    FrameworkEntry("GeST", "Instruction-Level", "ARM,x86",
                   "Real-Hardware", ("dI/dt", "power"), "CPU",
                   "this work"),
]


def related_work_table() -> str:
    """Render Table V as ASCII."""
    headers = ["Framework", "OptimizationType", "Optimization-Language",
               "Evaluated-On", "Metrics Evaluated", "Component Stressed",
               "References"]
    rows = [[e.framework, e.optimization_type, e.optimization_language,
             e.evaluated_on, ",".join(e.metrics_evaluated),
             e.component_stressed, e.references]
            for e in RELATED_WORK]
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              for i in range(len(headers))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
