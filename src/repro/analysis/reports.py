"""Figure-style reporting helpers.

The paper's figures plot *relative* results: power normalised to
coremark (Figures 5/6), chip temperature normalised to bodytrack
(Figure 7), raw volts for the oscilloscope figures.  These helpers turn
``{workload: value}`` mappings into normalised series and render them
as the ASCII bar charts the benchmark harness prints.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from ..core.errors import ConfigError

__all__ = ["normalize", "figure_rows", "bar_chart"]


def normalize(values: Mapping[str, float],
              reference: str) -> Dict[str, float]:
    """Divide every entry by the reference workload's value."""
    if reference not in values:
        raise ConfigError(
            f"normalisation reference {reference!r} missing from results "
            f"({sorted(values)})")
    ref = values[reference]
    if ref == 0:
        raise ConfigError(f"reference {reference!r} measured zero")
    return {name: value / ref for name, value in values.items()}


def figure_rows(values: Mapping[str, float],
                reference: str = "",
                descending: bool = True) -> List[Tuple[str, float]]:
    """Sorted (name, value) rows, optionally normalised."""
    data = normalize(values, reference) if reference else dict(values)
    return sorted(data.items(), key=lambda kv: kv[1], reverse=descending)


def bar_chart(rows: Sequence[Tuple[str, float]], title: str = "",
              width: int = 48, unit: str = "") -> str:
    """Render rows as a horizontal ASCII bar chart."""
    if not rows:
        raise ConfigError("cannot chart an empty result set")
    label_width = max(len(name) for name, _ in rows)
    peak = max(value for _, value in rows)
    if peak <= 0:
        raise ConfigError("cannot chart non-positive values")
    lines = [title] if title else []
    for name, value in rows:
        bar = "#" * max(1, round(width * value / peak))
        lines.append(f"{name.ljust(label_width)}  {value:8.3f}{unit}  {bar}")
    return "\n".join(lines)
