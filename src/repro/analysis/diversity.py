"""Population-diversity analysis.

GA practitioners track diversity to diagnose premature convergence —
when selection pressure collapses the gene pool before the optimum is
found (the failure mode behind the paper's low-mutation-rate and
tournament-size recommendations).  These metrics operate on the
recorded per-generation population binaries:

* **unique-genome fraction** — distinct individuals / population size;
* **per-slot opcode entropy** — Shannon entropy of the opcode
  distribution at each loop position, averaged (bits);
* **dominant-opcode concentration** — how much of the whole gene pool
  the single most common opcode occupies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from ..core.errors import ConfigError
from ..core.population import Population
from .postprocess import load_run

__all__ = ["DiversityStats", "population_diversity", "diversity_series"]


@dataclass
class DiversityStats:
    """Diversity snapshot of one generation."""

    generation: int
    population_size: int
    unique_genomes: int
    mean_slot_entropy_bits: float
    dominant_opcode: str
    dominant_opcode_share: float

    @property
    def unique_fraction(self) -> float:
        return self.unique_genomes / self.population_size


def population_diversity(population: Population) -> DiversityStats:
    """Compute the diversity metrics of one generation."""
    if len(population) == 0:
        raise ConfigError("population is empty")

    genomes = {ind.genome_key() for ind in population}

    # Per-slot opcode entropy over the common prefix length.
    length = min(len(ind) for ind in population)
    entropies: List[float] = []
    for slot in range(length):
        counts: Dict[str, int] = {}
        for ind in population:
            name = ind.instructions[slot].name
            counts[name] = counts.get(name, 0) + 1
        total = sum(counts.values())
        entropy = -sum((c / total) * math.log2(c / total)
                       for c in counts.values())
        entropies.append(entropy)
    mean_entropy = sum(entropies) / len(entropies) if entropies else 0.0

    pool: Dict[str, int] = {}
    for ind in population:
        for instr in ind.instructions:
            pool[instr.name] = pool.get(instr.name, 0) + 1
    dominant = max(pool, key=pool.get) if pool else ""
    share = pool[dominant] / sum(pool.values()) if pool else 0.0

    return DiversityStats(
        generation=population.number,
        population_size=len(population),
        unique_genomes=len(genomes),
        mean_slot_entropy_bits=mean_entropy,
        dominant_opcode=dominant,
        dominant_opcode_share=share)


def diversity_series(results_dir: Union[str, Path]
                     ) -> List[DiversityStats]:
    """Diversity per generation of a recorded run, in order."""
    return [population_diversity(population)
            for population in load_run(results_dir)]
