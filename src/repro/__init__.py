"""GeST reproduction: automatic CPU stress-test generation.

Reproduction of Hadjilambrou et al., "GeST: An Automatic Framework For
Generating CPU Stress-Tests" (ISPASS 2019).  The package combines:

* :mod:`repro.core` — the GA framework (the paper's contribution);
* :mod:`repro.isa` — SimISA assemblers + instruction catalogs;
* :mod:`repro.cpu` — simulated platforms (pipeline/power/thermal/PDN)
  standing in for the paper's hardware (see DESIGN.md);
* :mod:`repro.measurement` / :mod:`repro.fitness` — the plug-in
  measurement procedures and fitness functions;
* :mod:`repro.workloads` — baseline benchmark/stress-test proxies;
* :mod:`repro.analysis` / :mod:`repro.experiments` — result analysis
  and one driver per paper table/figure.

Quickstart::

    from repro.experiments import evolve_virus
    virus = evolve_virus("cortex_a15", "power", seed=7)
    print(virus.fitness, virus.individual.instruction_mix())
"""

from .core import (GAParameters, GeneticEngine, Individual,
                   InstructionLibrary, Population, RunConfig, Template)
from .cpu import SimulatedMachine, SimulatedTarget, microarch_for
from .fitness import DefaultFitness, TemperatureSimplicityFitness
from .measurement import (IPCMeasurement, Measurement,
                          OscilloscopeMeasurement, PowerMeasurement,
                          TemperatureMeasurement)

__version__ = "1.0.0"

__all__ = [
    "GAParameters", "GeneticEngine", "Individual", "InstructionLibrary",
    "Population", "RunConfig", "Template",
    "SimulatedMachine", "SimulatedTarget", "microarch_for",
    "DefaultFitness", "TemperatureSimplicityFitness",
    "IPCMeasurement", "Measurement", "OscilloscopeMeasurement",
    "PowerMeasurement", "TemperatureMeasurement",
    "__version__",
]
