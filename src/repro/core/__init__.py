"""Core GA framework: the paper's primary contribution.

Public surface re-exported here:

* configuration — :class:`GAParameters`, :class:`RunConfig`, XML parsing
* genome model — operands, instruction specs, individuals, populations
* GA machinery — operators, :class:`GeneticEngine`, run history
* plumbing — templates, output recording, dynamic class loading
"""

from .config import (EvaluationParameters, GAParameters, RunConfig,
                     SearchParameters, config_to_xml, parse_config_file,
                     parse_config_text, parse_measurement_config)
from .engine import (GenerationStats, GeneticEngine, RunHistory,
                     derive_run_id)
from .errors import (AssemblyError, ConfigError, GestError, LoaderError,
                     MeasurementError, SimulationError, TargetError,
                     TemplateError)
from .events import (STATS_SCHEMA_VERSION, CheckpointWritten,
                     GenerationCompleted, IndividualEvaluated, RecorderSet,
                     RunEvent, RunFinished, RunRecorder, RunStarted)
from .individual import Individual, random_individual
from .instruction import ConcreteInstruction, InstructionLibrary, InstructionSpec
from .loader import instantiate, load_class
from .operand import ImmediateOperand, LabelOperand, Operand, RegisterOperand
from .operators import (CROSSOVER_OPERATORS, mutate, one_point_crossover,
                        tournament_select, uniform_crossover)
from .output import (FileRecorder, OutputRecorder, individual_filename,
                     read_stats)
from .population import Population, load_population
from .rng import make_rng, spawn
from .template import LOOP_MARKER, Template

__all__ = [
    "EvaluationParameters", "GAParameters", "RunConfig", "SearchParameters",
    "config_to_xml",
    "parse_config_file", "parse_config_text", "parse_measurement_config",
    "GenerationStats", "GeneticEngine", "RunHistory", "derive_run_id",
    "AssemblyError", "ConfigError", "GestError", "LoaderError",
    "MeasurementError", "SimulationError", "TargetError", "TemplateError",
    "STATS_SCHEMA_VERSION", "CheckpointWritten", "GenerationCompleted",
    "IndividualEvaluated", "RecorderSet", "RunEvent", "RunFinished",
    "RunRecorder", "RunStarted",
    "Individual", "random_individual",
    "ConcreteInstruction", "InstructionLibrary", "InstructionSpec",
    "instantiate", "load_class",
    "ImmediateOperand", "LabelOperand", "Operand", "RegisterOperand",
    "CROSSOVER_OPERATORS", "mutate", "one_point_crossover",
    "tournament_select", "uniform_crossover",
    "FileRecorder", "OutputRecorder", "individual_filename", "read_stats",
    "Population", "load_population",
    "make_rng", "spawn",
    "LOOP_MARKER", "Template",
]
