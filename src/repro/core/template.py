"""Template source files (paper Section III.B.2).

The template is an assembly source file with an empty loop body marked
by the string ``#loop_code``.  Before compiling an individual, the
framework removes the marker and prints the individual's instruction
sequence starting from that line.  Everything else in the template —
register/memory initialisation before the loop, fixed padding inside
the loop, the loop back-branch — is preserved verbatim across all
individuals.

The paper stresses that register initialisation matters for power, and
that checkerboard patterns (``0xAAAAAAAA``) maximise bit switching;
the stock templates shipped with :mod:`repro.isa.catalogs` initialise
registers that way.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from .errors import TemplateError

__all__ = ["Template", "LOOP_MARKER"]

LOOP_MARKER = "#loop_code"


class Template:
    """An assembly template with a ``#loop_code`` insertion point."""

    def __init__(self, text: str, name: str = "<inline>") -> None:
        self.name = name
        self.text = text
        marker_count = _count_marker_lines(text)
        if marker_count == 0:
            raise TemplateError(
                f"template {name!r} does not contain the {LOOP_MARKER!r} "
                "marker line")
        if marker_count > 1:
            raise TemplateError(
                f"template {name!r} contains {marker_count} "
                f"{LOOP_MARKER!r} markers; exactly one is required")

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "Template":
        path = Path(path)
        if not path.exists():
            raise TemplateError(f"template file {path} does not exist")
        return cls(path.read_text(), name=str(path))

    def instantiate(self, loop_body: str) -> str:
        """Replace the marker line with ``loop_body``.

        The marker's leading whitespace is applied to every body line so
        generated sources keep the template's indentation style.
        """
        out_lines = []
        for line in self.text.splitlines():
            if line.strip() == LOOP_MARKER:
                indent = line[:len(line) - len(line.lstrip())]
                for body_line in loop_body.splitlines():
                    out_lines.append(indent + body_line if body_line else "")
            else:
                out_lines.append(line)
        return "\n".join(out_lines) + "\n"


def _count_marker_lines(text: str) -> int:
    return sum(1 for line in text.splitlines() if line.strip() == LOOP_MARKER)
