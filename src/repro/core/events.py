"""Typed run events and the :class:`RunRecorder` subscriber interface.

The engine used to write its outputs (individual sources, population
binaries, stats lines) directly through one hard-wired recorder object.
That coupling is gone: the engine now *emits* a stream of typed events
— ``run_started``, ``individual_evaluated``, ``generation_completed``,
``checkpoint_written``, ``run_finished`` — and any number of
:class:`RunRecorder` subscribers consume them.  The paper's directory
layout survives as exactly one such subscriber
(:class:`~repro.core.output.FileRecorder`); the sqlite-backed
:class:`~repro.store.StoreRecorder` is another, and tests plug in
in-memory recorders to observe a run without touching the filesystem.

Events are plain frozen dataclasses.  They carry live framework objects
(individuals, populations, the run configuration) rather than
serialized copies — each subscriber decides its own persistence format.
Subscribers must not mutate what they are handed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from .config import RunConfig
from .individual import Individual
from .population import Population

__all__ = ["RunEvent", "RunStarted", "IndividualEvaluated",
           "GenerationCompleted", "CheckpointWritten", "RunFinished",
           "RunRecorder", "RecorderSet", "as_recorders",
           "STATS_SCHEMA_VERSION"]

#: Version stamped into every ``stats.jsonl`` record (and the
#: ``generation_completed`` event payload) as the ``schema`` field.
#: Bump when a record's keys change meaning; readers must tolerate
#: unknown keys so the version can move without breaking them.
STATS_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class RunEvent:
    """Base class: every event names the run that produced it."""

    run_id: str


@dataclass(frozen=True)
class RunStarted(RunEvent):
    """A run's identity is established (engine construction).

    Emitted before any evaluation happens — also on resume, where the
    same run id picks up from its last checkpoint.
    """

    config: RunConfig
    strategy: str
    seed: Optional[int]
    resumed: bool = False


@dataclass(frozen=True)
class IndividualEvaluated(RunEvent):
    """One individual came back from the evaluation pipeline."""

    individual: Individual
    source: str


@dataclass(frozen=True)
class GenerationCompleted(RunEvent):
    """A full generation is evaluated, observed and summarized.

    ``stats`` is the serializable stats record — already stamped with
    ``schema`` (:data:`STATS_SCHEMA_VERSION`) and ``run_id`` — exactly
    what lands as one ``stats.jsonl`` line.
    """

    population: Population
    stats: dict = field(compare=False)


@dataclass(frozen=True)
class CheckpointWritten(RunEvent):
    """The engine persisted a resume point after ``generation``."""

    path: Path
    generation: int


@dataclass(frozen=True)
class RunFinished(RunEvent):
    """The run left the generation loop.

    ``cancelled`` distinguishes a graceful stop (service cancellation)
    from natural completion; either way ``generations`` generations
    were fully evaluated and recorded.
    """

    best: Optional[Individual]
    generations: int
    cancelled: bool = False


class RunRecorder:
    """Subscriber base class: override the hooks you care about.

    :meth:`handle` dispatches an event to its ``on_*`` hook; the
    default hooks do nothing, so a subscriber implements only the
    events it consumes.  Recorders are called synchronously in emission
    order from the engine thread — a recorder that needs to do slow I/O
    should buffer internally.
    """

    def handle(self, event: RunEvent) -> None:
        if isinstance(event, RunStarted):
            self.on_run_started(event)
        elif isinstance(event, IndividualEvaluated):
            self.on_individual_evaluated(event)
        elif isinstance(event, GenerationCompleted):
            self.on_generation_completed(event)
        elif isinstance(event, CheckpointWritten):
            self.on_checkpoint_written(event)
        elif isinstance(event, RunFinished):
            self.on_run_finished(event)
        else:  # pragma: no cover - future event types
            self.on_event(event)

    # -- hooks (no-op defaults) --------------------------------------------

    def on_run_started(self, event: RunStarted) -> None:
        pass

    def on_individual_evaluated(self, event: IndividualEvaluated) -> None:
        pass

    def on_generation_completed(self, event: GenerationCompleted) -> None:
        pass

    def on_checkpoint_written(self, event: CheckpointWritten) -> None:
        pass

    def on_run_finished(self, event: RunFinished) -> None:
        pass

    def on_event(self, event: RunEvent) -> None:
        """Fallback for event types this build does not know."""

    def close(self) -> None:
        """Release any resources (files, database connections)."""


class RecorderSet(RunRecorder):
    """Fan one event stream out to several recorders, in order."""

    def __init__(self, recorders: Iterable[RunRecorder] = ()) -> None:
        self.recorders: List[RunRecorder] = list(recorders)

    def handle(self, event: RunEvent) -> None:
        for recorder in self.recorders:
            recorder.handle(event)

    def close(self) -> None:
        for recorder in self.recorders:
            recorder.close()


def as_recorders(recorder: Union[None, RunRecorder,
                                 Sequence[RunRecorder]]
                 ) -> List[RunRecorder]:
    """Normalize the engine's ``recorder`` argument to a list."""
    if recorder is None:
        return []
    if isinstance(recorder, RunRecorder):
        return [recorder]
    return list(recorder)
