"""Exception hierarchy for the GeST reproduction.

Every error raised by the framework derives from :class:`GestError` so
callers can catch framework failures without swallowing genuine bugs
(``TypeError`` and friends propagate untouched).
"""

from __future__ import annotations


class GestError(Exception):
    """Base class for all framework errors."""


class ConfigError(GestError):
    """A configuration file or programmatic configuration is invalid.

    The paper specifies that the framework terminates execution when an
    instruction definition references an undefined operand id; that
    condition surfaces as this exception.

    ``diagnostic_code`` optionally names the static-analysis code this
    error corresponds to (e.g. ``SC210`` for an unknown search
    strategy), so ``lint_config_file`` can report parse-time rejections
    under their dedicated code instead of the generic ``SC201``.
    """

    def __init__(self, *args, diagnostic_code: str | None = None) -> None:
        self.diagnostic_code = diagnostic_code
        super().__init__(*args)


class TemplateError(GestError):
    """The template source file is malformed.

    Typically the ``#loop_code`` marker required by Section III.B.2 of
    the paper is missing.
    """


class AssemblyError(GestError):
    """Generated source code failed to assemble ("compile failure").

    The paper notes that instruction definitions with ISA-incompatible
    operands produce sequences that fail to compile; the GA treats such
    individuals as unfit rather than aborting the search.
    """

    def __init__(self, message: str, line_number: int | None = None,
                 line: str | None = None) -> None:
        self.line_number = line_number
        self.line = line
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class MeasurementError(GestError):
    """A measurement procedure failed (target unreachable, bad sensor...)."""


class TargetError(GestError):
    """The (simulated) target machine rejected an operation."""


class LoaderError(GestError):
    """A measurement or fitness class could not be dynamically loaded."""


class SimulationError(GestError):
    """The CPU model could not execute a program."""
