"""Populations and their serialisation (paper Sections III.A, III.D).

A :class:`Population` is one GA generation.  The paper saves each
generation as a binary file carrying source code, ids, parent ids and
measurements per individual, loadable later for post-processing or as
the *seed population* of a new search.  We serialise with ``pickle``
(the original GeST does the same); :func:`load_population` is the
inverse.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from .errors import ConfigError
from .individual import Individual

__all__ = ["Population", "load_population"]

_PICKLE_PROTOCOL = 4


class Population:
    """One generation of individuals, ordered by insertion."""

    def __init__(self, individuals: Iterable[Individual],
                 number: int = 0) -> None:
        self.individuals: List[Individual] = list(individuals)
        self.number = number
        for individual in self.individuals:
            individual.generation = number

    # -- container protocol -----------------------------------------------

    def __len__(self) -> int:
        return len(self.individuals)

    def __iter__(self) -> Iterator[Individual]:
        return iter(self.individuals)

    def __getitem__(self, index: int) -> Individual:
        return self.individuals[index]

    # -- queries -----------------------------------------------------------

    @property
    def evaluated(self) -> bool:
        return all(ind.evaluated for ind in self.individuals)

    def fittest(self) -> Individual:
        """The individual with the highest fitness value."""
        if not self.individuals:
            raise ConfigError("population is empty")
        best = self.individuals[0]
        for individual in self.individuals[1:]:
            if individual.fitness is None:
                raise ConfigError(
                    f"individual uid={individual.uid} is unevaluated")
            if best.fitness is None or individual.fitness > best.fitness:
                best = individual
        if best.fitness is None:
            raise ConfigError("population has no evaluated individuals")
        return best

    def ranked(self) -> List[Individual]:
        """Individuals sorted fittest-first (stable for equal fitness)."""
        if not self.evaluated:
            raise ConfigError("cannot rank a partially evaluated population")
        return sorted(self.individuals,
                      key=lambda ind: ind.fitness, reverse=True)

    def mean_fitness(self) -> float:
        if not self.individuals:
            raise ConfigError("population is empty")
        total = 0.0
        for individual in self.individuals:
            if individual.fitness is None:
                raise ConfigError(
                    f"individual uid={individual.uid} is unevaluated")
            total += individual.fitness
        return total / len(self.individuals)

    # -- persistence ---------------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        """Write this generation to a binary file (paper III.D)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": "gest-repro-population",
            "version": 1,
            "number": self.number,
            "individuals": self.individuals,
        }
        with open(path, "wb") as handle:
            pickle.dump(payload, handle, protocol=_PICKLE_PROTOCOL)
        return path


def load_population(path: Union[str, Path],
                    expected_size: Optional[int] = None) -> Population:
    """Load a generation saved by :meth:`Population.save`.

    Used both for post-processing and for seeding a new GA search from
    a previous run's population (paper III.D).  ``expected_size``
    lets the engine validate that a seed population matches the
    configured population size.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"population file {path} does not exist")
    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    if not isinstance(payload, dict) or \
            payload.get("format") != "gest-repro-population":
        raise ConfigError(f"{path} is not a population file")
    individuals: Sequence[Individual] = payload["individuals"]
    if expected_size is not None and len(individuals) != expected_size:
        raise ConfigError(
            f"seed population {path} has {len(individuals)} individuals, "
            f"expected {expected_size}")
    return Population(individuals, number=payload.get("number", 0))
